//! End-to-end reproduction of the paper's Example 1.1 through the facade
//! crate, exercising every public entry point on the same tiny instance
//! via the [`RepairEngine`] request/report API.

use repair_count::counting::Strategy as EngineStrategy;
use repair_count::db::{count_repairs, BlockPartition, Repair, RepairIter};
use repair_count::lambda::{reduce_compactor_to_cqa, unfold_count, CqaCompactor};
use repair_count::prelude::*;
use repair_count::query::{evaluate, keywidth, rewrite_to_ucq};
use repair_count::workloads::employee_example;

fn query() -> Query {
    parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap()
}

fn engine() -> RepairEngine {
    let (db, keys) = employee_example();
    RepairEngine::new(db, keys)
}

#[test]
fn the_running_example_counts_two_of_four() {
    let engine = engine();
    let q = query();

    assert_eq!(engine.total_repairs().to_u64(), Some(4));
    let count = engine.run(&CountRequest::exact(q.clone())).unwrap();
    assert_eq!(count.answer.as_count().unwrap().to_u64(), Some(2));
    let freq = engine.run(&CountRequest::frequency(q.clone())).unwrap();
    assert_eq!(freq.answer.as_frequency().unwrap().to_string(), "1/2");
    assert_eq!(engine.keywidth(&q), 2);
    let possible = engine.run(&CountRequest::decision(q.clone())).unwrap();
    assert_eq!(possible.answer.as_bool(), Some(true));
    let certain = engine.run(&CountRequest::certain_answer(q)).unwrap();
    assert_eq!(certain.answer.as_bool(), Some(false));
    // Five requests, one planning pass.
    assert_eq!(engine.cache_stats().misses, 1);
    assert_eq!(engine.cache_stats().hits, 4);
}

#[test]
fn blocks_and_repairs_match_the_paper() {
    let (db, keys) = employee_example();
    let blocks = BlockPartition::new(&db, &keys);
    assert_eq!(blocks.len(), 2);
    assert_eq!(blocks.sizes(), vec![2, 2]);
    assert_eq!(count_repairs(&blocks).to_u64(), Some(4));

    let q = query();
    let mut entailing = 0;
    for repair in RepairIter::new(&blocks) {
        assert!(Repair::is_repair(&db, &keys, repair.facts()));
        let repaired = repair.to_database(&db);
        assert!(repaired.is_consistent(&keys));
        if evaluate(&repaired, &q).unwrap() {
            entailing += 1;
        }
    }
    assert_eq!(entailing, 2);
}

#[test]
fn all_counting_routes_agree_on_the_example() {
    let engine = engine();
    let q = query();
    let ucq = rewrite_to_ucq(&q).unwrap();

    let by_enumeration = engine
        .run(&CountRequest::exact(q.clone()).with_strategy(EngineStrategy::Enumeration))
        .unwrap()
        .answer
        .as_count()
        .unwrap()
        .clone();
    let by_boxes = engine
        .run(&CountRequest::exact(q.clone()).with_strategy(EngineStrategy::CertificateBoxes))
        .unwrap()
        .answer
        .as_count()
        .unwrap()
        .clone();
    let compactor = CqaCompactor::new(engine.database(), engine.keys(), &ucq).unwrap();
    let by_compactor = unfold_count(&compactor, 1_000).unwrap();
    let by_reduction = reduce_compactor_to_cqa(&compactor)
        .unwrap()
        .count(1_000_000)
        .unwrap();
    assert_eq!(by_enumeration.to_u64(), Some(2));
    assert_eq!(by_boxes, by_enumeration);
    assert_eq!(by_compactor, by_enumeration);
    assert_eq!(by_reduction, by_enumeration);
}

#[test]
fn approximations_bracket_the_exact_answer() {
    let engine = engine();
    let q = query();
    let exact = BigNat::from(2u64);
    for seed in 0..5u64 {
        let fpras = engine
            .run(&CountRequest::approximate(q.clone(), 0.1, 0.05).with_seed(seed))
            .unwrap();
        let kl = engine
            .run(
                &CountRequest::approximate(q.clone(), 0.1, 0.05)
                    .with_seed(seed)
                    .with_strategy(EngineStrategy::KarpLuby),
            )
            .unwrap();
        assert!(
            fpras.answer.as_estimate().unwrap().relative_error(&exact) <= 0.1,
            "seed {seed}"
        );
        assert!(
            kl.answer.as_estimate().unwrap().relative_error(&exact) <= 0.1,
            "seed {seed}"
        );
    }
    // All ten runs shared one plan.
    assert_eq!(engine.cache_stats().misses, 1);
}

#[test]
fn keywidth_of_the_example_query_is_two() {
    let (db, keys) = employee_example();
    let q = query();
    assert_eq!(keywidth(&q, db.schema(), &keys), 2);
    let ucq = rewrite_to_ucq(&q).unwrap();
    assert_eq!(ucq.len(), 1);
    // Both atoms use the Employee relation, so the single disjunct is a
    // self-join — exactly why the keywidth is 2, not 1.
    assert!(ucq.has_self_join());
}

#[test]
fn the_deprecated_facade_still_reproduces_the_example() {
    let (db, keys) = employee_example();
    let counter = RepairCounter::new(&db, &keys);
    let q = query();
    assert_eq!(counter.total_repairs().to_u64(), Some(4));
    assert_eq!(counter.count(&q).unwrap().count.to_u64(), Some(2));
    assert_eq!(counter.frequency(&q).unwrap().to_string(), "1/2");
    assert_eq!(counter.keywidth(&q), 2);
    assert!(counter.holds_in_some_repair(&q).unwrap());
    assert!(!counter.holds_in_every_repair(&q).unwrap());
}
