//! Hot-path parity suite for the counting core.
//!
//! The interned-symbol database representation, the flat pin-set boxes and
//! the allocation-free samplers are pure *representation* changes: every
//! `CountReport` — exact counts, decisions, certain answers, frequencies
//! and **seeded** Karp–Luby / FPRAS estimates — must be bit-for-bit
//! identical to what the pre-refactor structures produced.
//!
//! The `GOLDEN` constant below was recorded by running
//! `regenerate_goldens` on the tree *before* the hot-path refactor
//! (BTreeMap boxes, `Arc<str>` values, per-sample allocation); the suite
//! replays the same deterministic workloads — including a scripted
//! mutation phase through the engine — and requires byte-identical output.
//! To refresh after an *intentional* semantic change:
//!
//! ```text
//! cargo test --test hotpath_parity -- --ignored --nocapture
//! ```
//!
//! and paste the printed block over `GOLDEN`.
//!
//! A property-style pass additionally checks, on random workloads, that
//! the certificate/box counter agrees with repair enumeration and that
//! engine-cached estimators reproduce fresh estimators sample-for-sample.

use proptest::prelude::*;
use repair_count::counting::{
    count_by_enumeration, FprasEstimator, KarpLubyEstimator, Strategy as EngineStrategy,
};
use repair_count::db::FactId;
use repair_count::prelude::*;
use repair_count::query::rewrite_to_ucq;

/// A tiny deterministic generator (SplitMix64) so workloads are stable
/// across platforms and independent of any library RNG.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const NAMES: [&str; 4] = ["ann", "bob", "cat", "dan"];
const DEPTS: [&str; 3] = ["hr", "it", "ops"];
const TAGS: [&str; 3] = ["x", "y", "z"];

/// Builds a small inconsistent database: keyed `R/3` and `S/2` with
/// conflicting blocks, plus an unkeyed `Log/1`.
fn workload(seed: u64) -> (Database, KeySet) {
    let mut schema = Schema::new();
    schema.add_relation("R", 3).unwrap();
    schema.add_relation("S", 2).unwrap();
    schema.add_relation("Log", 1).unwrap();
    let keys = KeySet::builder(&schema)
        .key("R", 1)
        .unwrap()
        .key("S", 1)
        .unwrap()
        .build();
    let mut db = Database::new(schema);
    let mut lcg = Lcg(seed);
    for k in 0..6i64 {
        let size = 1 + lcg.below(3);
        for _ in 0..size {
            let name = NAMES[lcg.below(4) as usize];
            let dept = DEPTS[lcg.below(3) as usize];
            // Set semantics: duplicate draws collapse, which is fine.
            db.insert_parsed(&format!("R({k}, '{name}', '{dept}')"))
                .unwrap();
        }
    }
    for k in 0..4i64 {
        let size = 1 + lcg.below(2);
        for _ in 0..size {
            let tag = TAGS[lcg.below(3) as usize];
            db.insert_parsed(&format!("S({k}, '{tag}')")).unwrap();
        }
    }
    db.insert_parsed("Log('audit')").unwrap();
    (db, keys)
}

/// The fixed query battery; constants come from the generator pools so
/// hit rates are non-trivial on every workload.
const QUERIES: [&str; 5] = [
    "EXISTS n, d . R(0, n, d)",
    "EXISTS n . R(1, n, 'it')",
    "R(0, 'ann', 'hr') OR R(2, 'bob', 'it') OR (EXISTS t . S(1, t))",
    "EXISTS k, n . R(k, n, 'it') AND S(k, 'x')",
    "(EXISTS n . R(3, n, 'hr')) AND (EXISTS t . S(0, t)) AND Log('audit')",
];

/// Queries whose seeded estimates are part of the golden record.
const ESTIMATE_QUERIES: [usize; 2] = [2, 3];
const ESTIMATE_SEEDS: [u64; 2] = [9, 77];

fn approx_request(q: &Query, seed: u64) -> CountRequest {
    CountRequest::approximate(q.clone(), 0.4, 0.1)
        .with_seed(seed)
        .with_sample_cap(400)
}

/// Renders every tracked answer of one engine state, one line per fact.
fn render_engine(out: &mut String, tag: &str, engine: &RepairEngine, queries: &[Query]) {
    use std::fmt::Write as _;
    writeln!(out, "{tag} total {}", engine.total_repairs()).unwrap();
    for (i, q) in queries.iter().enumerate() {
        let exact = engine.run(&CountRequest::exact(q.clone())).unwrap();
        let freq = engine.run(&CountRequest::frequency(q.clone())).unwrap();
        let some = engine.run(&CountRequest::decision(q.clone())).unwrap();
        let every = engine
            .run(&CountRequest::certain_answer(q.clone()))
            .unwrap();
        writeln!(
            out,
            "{tag} q{i} exact {} freq {} some {} every {}",
            exact.answer.as_count().unwrap(),
            freq.answer.as_frequency().unwrap(),
            some.answer.as_bool().unwrap(),
            every.answer.as_bool().unwrap(),
        )
        .unwrap();
    }
    for &qi in &ESTIMATE_QUERIES {
        for &seed in &ESTIMATE_SEEDS {
            for (label, strategy) in [
                ("fpras", EngineStrategy::Auto),
                ("kl", EngineStrategy::KarpLuby),
            ] {
                let report = engine
                    .run(&approx_request(&queries[qi], seed).with_strategy(strategy))
                    .unwrap();
                let est = report.answer.as_estimate().unwrap();
                writeln!(
                    out,
                    "{tag} q{qi} {label} seed {seed} est {} pos {} used {}",
                    est.estimate, est.positive_samples, est.samples_used,
                )
                .unwrap();
            }
        }
    }
}

/// The scripted mutation phase: two inserts and one delete, applied
/// through the engine so the incremental partition/total paths are the
/// ones being recorded.
fn mutate(engine: &mut RepairEngine) {
    for text in ["R(0, 'eve', 'ops')", "S(0, 'z')"] {
        let fact = engine.database().parse_fact(text).unwrap();
        engine.apply(Mutation::Insert(fact)).unwrap();
    }
    let rel = engine.database().schema().relation_id("R").unwrap();
    let victim = engine.database().facts_of(rel)[0];
    engine.apply(Mutation::Delete(victim)).unwrap();
}

fn render_goldens() -> String {
    let mut out = String::new();
    for seed in [3u64, 11, 29, 54, 90] {
        let (db, keys) = workload(seed);
        let queries: Vec<Query> = QUERIES.iter().map(|t| parse_query(t).unwrap()).collect();
        let mut engine = RepairEngine::new(db, keys);
        render_engine(&mut out, &format!("w{seed}"), &engine, &queries);
        mutate(&mut engine);
        render_engine(&mut out, &format!("w{seed}m"), &engine, &queries);
    }
    out
}

#[test]
fn reports_match_the_pre_refactor_golden_record() {
    let rendered = render_goldens();
    if rendered != GOLDEN {
        let golden_lines: Vec<&str> = GOLDEN.lines().collect();
        for (i, line) in rendered.lines().enumerate() {
            let expected = golden_lines.get(i).copied().unwrap_or("<missing>");
            assert_eq!(
                line, expected,
                "first divergence from the pre-refactor record at line {i}"
            );
        }
        panic!("rendered output is a prefix of the golden record but shorter");
    }
}

/// Compaction is a pure renaming: dropping tombstones, remapping fact
/// ids onto a dense prefix and renumbering block slots in `≺` order must
/// leave every tracked answer — exact counts, decisions, certain
/// answers, frequencies and **seeded** KL/FPRAS estimates — byte-for-byte
/// identical.  Render the full battery on the mutated engine (non-dense
/// ids, a retired slot from the delete), compact, render again with the
/// same tag: the two blocks must be equal strings.
#[test]
fn compaction_preserves_every_report_bit_for_bit() {
    for seed in [3u64, 11, 29, 54, 90] {
        let (db, keys) = workload(seed);
        let queries: Vec<Query> = QUERIES.iter().map(|t| parse_query(t).unwrap()).collect();
        let mut engine = RepairEngine::new(db, keys);
        mutate(&mut engine);
        let mut before = String::new();
        render_engine(&mut before, "c", &engine, &queries);
        let outcome = engine.compact();
        assert!(
            outcome.report.ids_reclaimed() > 0,
            "the delete left a tombstone"
        );
        assert!(outcome.total_cross_checked, "∏ |Bᵢ| cross-check");
        let mut after = String::new();
        render_engine(&mut after, "c", &engine, &queries);
        assert_eq!(before, after, "seed {seed}: compaction changed an answer");
    }
}

/// The scripted mutation phase of [`mutate`], applied through the
/// sharded router instead of the bare engine.
fn mutate_sharded(engine: &ShardedEngine) {
    for text in ["R(0, 'eve', 'ops')", "S(0, 'z')"] {
        let fact = engine.parse_database().parse_fact(text).unwrap();
        engine.apply(Mutation::Insert(fact)).unwrap();
    }
    let victim = engine.read(|e| {
        let rel = e.database().schema().relation_id("R").unwrap();
        e.database().facts_of(rel)[0]
    });
    engine.apply(Mutation::Delete(victim)).unwrap();
}

/// The wire-visible fields of a [`MutationReport`]: `duration` is
/// wall-clock and a sharded report's deltas carry shard-local block
/// slots, so neither participates in parity.
fn report_digest(report: &MutationReport) -> String {
    let deltas: Vec<(usize, usize)> = report
        .deltas
        .iter()
        .map(|d| (d.old_len, d.new_len))
        .collect();
    format!(
        "applied={} noops={} gen={} deltas={deltas:?}",
        report.applied, report.noops, report.generation
    )
}

/// Acceptance for the sharded engine: the full battery — exact counts,
/// decisions, certain answers, frequencies, **seeded** KL/FPRAS
/// estimates, and the scripted mutation phase — rendered through an
/// N-shard engine is byte-identical to the 1-shard golden record for
/// every shard count.  This is the determinism contract: the gathered
/// view replays the global mutation sequence, so its flattened block
/// arrays (and hence every seeded draw sequence) are in global `≺` order,
/// never per-shard RNG streams.
#[test]
fn sharded_battery_is_byte_identical_to_the_golden_record() {
    for n in [1usize, 2, 4, 7] {
        let mut out = String::new();
        for seed in [3u64, 11, 29, 54, 90] {
            let (db, keys) = workload(seed);
            let queries: Vec<Query> = QUERIES.iter().map(|t| parse_query(t).unwrap()).collect();
            let sharded = ShardedEngine::new(db, keys, n);
            sharded.read(|e| render_engine(&mut out, &format!("w{seed}"), e, &queries));
            mutate_sharded(&sharded);
            sharded.read(|e| render_engine(&mut out, &format!("w{seed}m"), e, &queries));
        }
        if out != GOLDEN {
            let golden_lines: Vec<&str> = GOLDEN.lines().collect();
            for (i, line) in out.lines().enumerate() {
                let expected = golden_lines.get(i).copied().unwrap_or("<missing>");
                assert_eq!(line, expected, "{n}-shard divergence at line {i}");
            }
            panic!("{n}-shard output is a prefix of the golden record but shorter");
        }
    }
}

/// Sharded compaction is the same pure renaming: every tracked answer,
/// including seeded estimates, survives `ShardedEngine::compact`
/// byte-for-byte at every shard count.
#[test]
fn sharded_compaction_preserves_every_report_bit_for_bit() {
    for n in [2usize, 4, 7] {
        for seed in [3u64, 29, 90] {
            let (db, keys) = workload(seed);
            let queries: Vec<Query> = QUERIES.iter().map(|t| parse_query(t).unwrap()).collect();
            let sharded = ShardedEngine::new(db, keys, n);
            mutate_sharded(&sharded);
            let mut before = String::new();
            sharded.read(|e| render_engine(&mut before, "c", e, &queries));
            let outcome = sharded.compact();
            assert!(
                outcome.report.ids_reclaimed() > 0,
                "the delete left a tombstone"
            );
            assert!(outcome.total_cross_checked, "∏ |Bᵢ| cross-check");
            let mut after = String::new();
            sharded.read(|e| render_engine(&mut after, "c", e, &queries));
            assert_eq!(
                before, after,
                "seed {seed}: {n}-shard compaction changed an answer"
            );
        }
    }
}

/// Sanity for the battery itself: the boxes-strategy counts in the golden
/// record agree with exhaustive repair enumeration, before and after the
/// mutation phase.
#[test]
fn golden_workloads_agree_with_enumeration() {
    for seed in [3u64, 11, 29, 54, 90] {
        let (db, keys) = workload(seed);
        let queries: Vec<Query> = QUERIES.iter().map(|t| parse_query(t).unwrap()).collect();
        let mut engine = RepairEngine::new(db, keys);
        mutate(&mut engine);
        for q in &queries {
            let by_engine = engine
                .run(&CountRequest::exact(q.clone()))
                .unwrap()
                .answer
                .as_count()
                .unwrap()
                .clone();
            let direct =
                count_by_enumeration(engine.database(), engine.keys(), q, u64::MAX).unwrap();
            assert_eq!(by_engine, direct, "seed {seed}, query {q}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random workloads: the certificate/box union counter and exhaustive
    /// enumeration agree, and engine-cached estimators reproduce fresh
    /// estimators sample-for-sample (same blocks, same seeds, same
    /// drawing order).
    #[test]
    fn random_workloads_are_internally_consistent(seed in 0u64..1_000_000) {
        let (db, keys) = workload(seed);
        let queries: Vec<Query> = QUERIES.iter().map(|t| parse_query(t).unwrap()).collect();
        let engine = RepairEngine::new(db.clone(), keys.clone());
        for q in &queries {
            let by_engine = engine
                .run(&CountRequest::exact(q.clone()))
                .unwrap()
                .answer
                .as_count()
                .unwrap()
                .clone();
            let direct = count_by_enumeration(&db, &keys, q, u64::MAX).unwrap();
            prop_assert_eq!(&by_engine, &direct, "boxes vs enumeration for {}", q);
        }
        let q = &queries[ESTIMATE_QUERIES[0]];
        let ucq = rewrite_to_ucq(q).unwrap();
        let config = ApproxConfig {
            epsilon: 0.4,
            delta: 0.1,
            max_samples: 400,
            seed: seed ^ 0xA5A5,
        };
        let fresh_fpras = FprasEstimator::new(&db, &keys, &ucq).unwrap().estimate(&config).unwrap();
        let fresh_kl = KarpLubyEstimator::new(&db, &keys, &ucq).unwrap().estimate(&config).unwrap();
        let via_engine_fpras = engine
            .run(&approx_request(q, config.seed))
            .unwrap();
        let via_engine_kl = engine
            .run(&approx_request(q, config.seed).with_strategy(EngineStrategy::KarpLuby))
            .unwrap();
        let engine_fpras = via_engine_fpras.answer.as_estimate().unwrap();
        let engine_kl = via_engine_kl.answer.as_estimate().unwrap();
        prop_assert_eq!(&fresh_fpras.estimate, &engine_fpras.estimate);
        prop_assert_eq!(fresh_fpras.positive_samples, engine_fpras.positive_samples);
        prop_assert_eq!(&fresh_kl.estimate, &engine_kl.estimate);
        prop_assert_eq!(fresh_kl.positive_samples, engine_kl.positive_samples);
    }

    /// Random mutation interleavings — inserts, deletes (including
    /// misses) and auto-compaction probes — applied in lockstep through an
    /// N-shard engine and a fresh unsharded engine: every report, every
    /// error and the final full battery must agree exactly.  Reports are
    /// compared on their wire-visible fields — `duration` is wall-clock
    /// and a sharded delta carries the *shard-local* block slot.
    #[test]
    fn random_mutation_interleavings_match_a_fresh_unsharded_engine(
        seed in 0u64..1_000_000,
        op_seed in 0u64..1_000_000,
        shards in 1usize..6,
    ) {
        let (db, keys) = workload(seed);
        let mut reference = RepairEngine::new(db.clone(), keys.clone());
        let sharded = ShardedEngine::new(db, keys, shards);
        let mut lcg = Lcg(op_seed);
        for _ in 0..40 {
            let roll = lcg.below(10);
            if roll < 6 {
                let k = lcg.below(8) as i64;
                let text = match lcg.below(3) {
                    0 => {
                        let name = NAMES[lcg.below(4) as usize];
                        let dept = DEPTS[lcg.below(3) as usize];
                        format!("R({k}, '{name}', '{dept}')")
                    }
                    1 => {
                        let tag = TAGS[lcg.below(3) as usize];
                        format!("S({k}, '{tag}')")
                    }
                    _ => format!("Log('entry{k}')"),
                };
                let fact = reference.database().parse_fact(&text).unwrap();
                let lhs = reference.apply(Mutation::Insert(fact.clone()));
                let rhs = sharded.apply(Mutation::Insert(fact));
                match (lhs, rhs) {
                    (Ok(l), Ok(r)) => {
                        prop_assert_eq!(report_digest(&l), report_digest(&r.report));
                        prop_assert_eq!(reference.total_repairs(), &*r.total);
                    }
                    (l, r) => prop_assert_eq!(
                        format!("{:?}", l.map(|_| ())),
                        format!("{:?}", r.map(|_| ()))
                    ),
                }
            } else if roll < 9 {
                let bound = reference.database().fact_ids_assigned() as u64 + 2;
                let id = FactId::new(lcg.below(bound) as usize);
                let lhs = reference.apply(Mutation::Delete(id));
                let rhs = sharded.apply(Mutation::Delete(id));
                match (lhs, rhs) {
                    (Ok(l), Ok(r)) => {
                        prop_assert_eq!(report_digest(&l), report_digest(&r.report));
                        prop_assert_eq!(reference.total_repairs(), &*r.total);
                    }
                    (l, r) => prop_assert_eq!(
                        format!("{:?}", l.map(|_| ())),
                        format!("{:?}", r.map(|_| ()))
                    ),
                }
            } else {
                let threshold = 1 + lcg.below(6);
                let lhs = reference.maybe_compact(threshold);
                let rhs = sharded.maybe_compact(threshold);
                prop_assert_eq!(
                    lhs.is_some(),
                    rhs.is_some(),
                    "auto-compaction policies diverged"
                );
            }
        }
        prop_assert_eq!(reference.total_repairs(), &sharded.total_repairs());
        let queries: Vec<Query> = QUERIES.iter().map(|t| parse_query(t).unwrap()).collect();
        let mut lhs = String::new();
        render_engine(&mut lhs, "p", &reference, &queries);
        let mut rhs = String::new();
        sharded.read(|e| render_engine(&mut rhs, "p", e, &queries));
        prop_assert_eq!(lhs, rhs, "final battery diverged");
    }
}

/// Prints the golden block; run ignored with `--nocapture` to refresh
/// `GOLDEN` after an intentional semantic change.
#[test]
#[ignore = "regenerates the golden record; run with --nocapture and paste"]
fn regenerate_goldens() {
    println!("=== GOLDEN BEGIN ===");
    print!("{}", render_goldens());
    println!("=== GOLDEN END ===");
}

/// Recorded on the pre-refactor tree (see module docs).
const GOLDEN: &str = "\
w3 total 72\n\
w3 q0 exact 72 freq 1 some true every true\n\
w3 q1 exact 48 freq 2/3 some true every false\n\
w3 q2 exact 72 freq 1 some true every true\n\
w3 q3 exact 36 freq 1/2 some true every false\n\
w3 q4 exact 36 freq 1/2 some true every false\n\
w3 q2 fpras seed 9 est 72 pos 135 used 135\n\
w3 q2 kl seed 9 est 72 pos 45 used 45\n\
w3 q2 fpras seed 77 est 72 pos 135 used 135\n\
w3 q2 kl seed 77 est 72 pos 45 used 45\n\
w3 q3 fpras seed 9 est 36 pos 202 used 400\n\
w3 q3 kl seed 9 est 36 pos 45 used 45\n\
w3 q3 fpras seed 77 est 35 pos 196 used 400\n\
w3 q3 kl seed 77 est 36 pos 45 used 45\n\
w3m total 72\n\
w3m q0 exact 72 freq 1 some true every true\n\
w3m q1 exact 48 freq 2/3 some true every false\n\
w3m q2 exact 72 freq 1 some true every true\n\
w3m q3 exact 36 freq 1/2 some true every false\n\
w3m q4 exact 36 freq 1/2 some true every false\n\
w3m q2 fpras seed 9 est 72 pos 135 used 135\n\
w3m q2 kl seed 9 est 72 pos 45 used 45\n\
w3m q2 fpras seed 77 est 72 pos 135 used 135\n\
w3m q2 kl seed 77 est 72 pos 45 used 45\n\
w3m q3 fpras seed 9 est 36 pos 202 used 400\n\
w3m q3 kl seed 9 est 36 pos 45 used 45\n\
w3m q3 fpras seed 77 est 35 pos 196 used 400\n\
w3m q3 kl seed 77 est 36 pos 45 used 45\n\
w11 total 48\n\
w11 q0 exact 48 freq 1 some true every true\n\
w11 q1 exact 32 freq 2/3 some true every false\n\
w11 q2 exact 48 freq 1 some true every true\n\
w11 q3 exact 32 freq 2/3 some true every false\n\
w11 q4 exact 0 freq 0 some false every false\n\
w11 q2 fpras seed 9 est 48 pos 135 used 135\n\
w11 q2 kl seed 9 est 54 pos 67 used 90\n\
w11 q2 fpras seed 77 est 48 pos 135 used 135\n\
w11 q2 kl seed 77 est 42 pos 53 used 90\n\
w11 q3 fpras seed 9 est 31 pos 262 used 400\n\
w11 q3 kl seed 9 est 32 pos 90 used 90\n\
w11 q3 fpras seed 77 est 34 pos 281 used 400\n\
w11 q3 kl seed 77 est 32 pos 90 used 90\n\
w11m total 48\n\
w11m q0 exact 48 freq 1 some true every true\n\
w11m q1 exact 32 freq 2/3 some true every false\n\
w11m q2 exact 48 freq 1 some true every true\n\
w11m q3 exact 32 freq 2/3 some true every false\n\
w11m q4 exact 0 freq 0 some false every false\n\
w11m q2 fpras seed 9 est 48 pos 135 used 135\n\
w11m q2 kl seed 9 est 54 pos 67 used 90\n\
w11m q2 fpras seed 77 est 48 pos 135 used 135\n\
w11m q2 kl seed 77 est 42 pos 53 used 90\n\
w11m q3 fpras seed 9 est 31 pos 262 used 400\n\
w11m q3 kl seed 9 est 32 pos 90 used 90\n\
w11m q3 fpras seed 77 est 34 pos 281 used 400\n\
w11m q3 kl seed 77 est 32 pos 90 used 90\n\
w29 total 24\n\
w29 q0 exact 24 freq 1 some true every true\n\
w29 q1 exact 0 freq 0 some false every false\n\
w29 q2 exact 24 freq 1 some true every true\n\
w29 q3 exact 0 freq 0 some false every false\n\
w29 q4 exact 24 freq 1 some true every true\n\
w29 q2 fpras seed 9 est 24 pos 135 used 135\n\
w29 q2 kl seed 9 est 22 pos 42 used 90\n\
w29 q2 fpras seed 77 est 24 pos 135 used 135\n\
w29 q2 kl seed 77 est 21 pos 39 used 90\n\
w29 q3 fpras seed 9 est 0 pos 0 used 0\n\
w29 q3 kl seed 9 est 0 pos 0 used 0\n\
w29 q3 fpras seed 77 est 0 pos 0 used 0\n\
w29 q3 kl seed 77 est 0 pos 0 used 0\n\
w29m total 48\n\
w29m q0 exact 48 freq 1 some true every true\n\
w29m q1 exact 0 freq 0 some false every false\n\
w29m q2 exact 48 freq 1 some true every true\n\
w29m q3 exact 0 freq 0 some false every false\n\
w29m q4 exact 48 freq 1 some true every true\n\
w29m q2 fpras seed 9 est 48 pos 135 used 135\n\
w29m q2 kl seed 9 est 45 pos 42 used 90\n\
w29m q2 fpras seed 77 est 48 pos 135 used 135\n\
w29m q2 kl seed 77 est 42 pos 39 used 90\n\
w29m q3 fpras seed 9 est 0 pos 0 used 0\n\
w29m q3 kl seed 9 est 0 pos 0 used 0\n\
w29m q3 fpras seed 77 est 0 pos 0 used 0\n\
w29m q3 kl seed 77 est 0 pos 0 used 0\n\
w54 total 2\n\
w54 q0 exact 2 freq 1 some true every true\n\
w54 q1 exact 2 freq 1 some true every true\n\
w54 q2 exact 2 freq 1 some true every true\n\
w54 q3 exact 1 freq 1/2 some true every false\n\
w54 q4 exact 1 freq 1/2 some true every false\n\
w54 q2 fpras seed 9 est 2 pos 90 used 90\n\
w54 q2 kl seed 9 est 2 pos 45 used 45\n\
w54 q2 fpras seed 77 est 2 pos 90 used 90\n\
w54 q2 kl seed 77 est 2 pos 45 used 45\n\
w54 q3 fpras seed 9 est 1 pos 98 used 180\n\
w54 q3 kl seed 9 est 1 pos 45 used 45\n\
w54 q3 fpras seed 77 est 1 pos 82 used 180\n\
w54 q3 kl seed 77 est 1 pos 45 used 45\n\
w54m total 2\n\
w54m q0 exact 2 freq 1 some true every true\n\
w54m q1 exact 2 freq 1 some true every true\n\
w54m q2 exact 2 freq 1 some true every true\n\
w54m q3 exact 1 freq 1/2 some true every false\n\
w54m q4 exact 1 freq 1/2 some true every false\n\
w54m q2 fpras seed 9 est 2 pos 90 used 90\n\
w54m q2 kl seed 9 est 2 pos 45 used 45\n\
w54m q2 fpras seed 77 est 2 pos 90 used 90\n\
w54m q2 kl seed 77 est 2 pos 45 used 45\n\
w54m q3 fpras seed 9 est 1 pos 98 used 180\n\
w54m q3 kl seed 9 est 1 pos 45 used 45\n\
w54m q3 fpras seed 77 est 1 pos 82 used 180\n\
w54m q3 kl seed 77 est 1 pos 45 used 45\n\
w90 total 16\n\
w90 q0 exact 16 freq 1 some true every true\n\
w90 q1 exact 0 freq 0 some false every false\n\
w90 q2 exact 16 freq 1 some true every true\n\
w90 q3 exact 16 freq 1 some true every true\n\
w90 q4 exact 0 freq 0 some false every false\n\
w90 q2 fpras seed 9 est 16 pos 90 used 90\n\
w90 q2 kl seed 9 est 16 pos 45 used 45\n\
w90 q2 fpras seed 77 est 16 pos 90 used 90\n\
w90 q2 kl seed 77 est 16 pos 45 used 45\n\
w90 q3 fpras seed 9 est 16 pos 180 used 180\n\
w90 q3 kl seed 9 est 16 pos 89 used 135\n\
w90 q3 fpras seed 77 est 16 pos 180 used 180\n\
w90 q3 kl seed 77 est 16 pos 89 used 135\n\
w90m total 16\n\
w90m q0 exact 16 freq 1 some true every true\n\
w90m q1 exact 0 freq 0 some false every false\n\
w90m q2 exact 16 freq 1 some true every true\n\
w90m q3 exact 16 freq 1 some true every true\n\
w90m q4 exact 0 freq 0 some false every false\n\
w90m q2 fpras seed 9 est 16 pos 90 used 90\n\
w90m q2 kl seed 9 est 16 pos 45 used 45\n\
w90m q2 fpras seed 77 est 16 pos 90 used 90\n\
w90m q2 kl seed 77 est 16 pos 45 used 45\n\
w90m q3 fpras seed 9 est 16 pos 180 used 180\n\
w90m q3 kl seed 9 est 17 pos 77 used 90\n\
w90m q3 fpras seed 77 est 16 pos 180 used 180\n\
w90m q3 kl seed 77 est 16 pos 71 used 90\n\
";
