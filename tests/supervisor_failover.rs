//! End-to-end supervised failover: a [`Supervisor`] heartbeats a
//! primary through a (delaying) chaos proxy, declares it dead after the
//! configured consecutive misses plus a confirming probe, promotes the
//! most-caught-up follower, retargets the survivor, and fences the
//! revived old primary — all over the line protocol, with no test
//! thread driving any of it.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use cdr_chaos::{ChaosConfig, ChaosProxy, Direction, FaultKind};
use repair_count::prelude::*;
use repair_count::workloads::{churn_base, replication_battery};

fn temp_log_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cdr-supervisor-test-{}-{tag}", std::process::id()))
}

fn churn_engine() -> RepairEngine {
    let (db, keys) = churn_base();
    RepairEngine::new(db, keys)
}

fn stat_u64(line: &str, key: &str) -> u64 {
    line.split_whitespace()
        .find_map(|token| token.strip_prefix(key))
        .and_then(|value| value.parse().ok())
        .unwrap_or_else(|| panic!("no `{key}` field in `{line}`"))
}

fn battery_replies(client: &mut Client) -> Vec<String> {
    replication_battery()
        .iter()
        .map(|line| client.send(line).expect("battery line"))
        .collect()
}

fn wait_for_offset(client: &mut Client, target: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let reply = client.send("STATS").expect("STATS");
        if stat_u64(&reply, "end=") >= target {
            return reply;
        }
        assert!(
            Instant::now() < deadline,
            "stuck short of offset {target}: {reply}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Probes the supervisor's status socket: one line in, one line out.
fn ask_status(addr: SocketAddr) -> String {
    use std::io::{BufRead, BufReader, Write};
    let mut stream = TcpStream::connect(addr).expect("connect status socket");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    stream.write_all(b"STATUS\n").expect("status request");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("status reply");
    line.trim_end().to_string()
}

/// Delay-only faults: the supervisor must ride out slow probes without
/// a spurious failover (its read deadline is well above the fault
/// delays).
fn probe_leg() -> ChaosConfig {
    ChaosConfig {
        seed: 0x50be_41a1,
        fault_probability: 0.3,
        menu: vec![FaultKind::Delay],
        directions: vec![Direction::ClientToServer, Direction::ServerToClient],
        trigger_bytes: (0, 128),
        delay_ms: (1, 30),
    }
}

#[test]
fn the_supervisor_promotes_retargets_and_fences_automatically() {
    let dir = temp_log_dir("auto");
    let _ = std::fs::remove_dir_all(&dir);

    // The primary listens on a reserved fixed port so its "revival"
    // below can come back at the same address the supervisor fences.
    let primary_port = {
        let probe = TcpListener::bind("127.0.0.1:0").expect("reserve port");
        let port = probe.local_addr().expect("local addr").port();
        drop(probe);
        port
    };
    let primary_bind = format!("127.0.0.1:{primary_port}");

    let start_primary_at = |bind: &str| {
        let backend = ReplicatedBackend::primary(churn_engine(), &dir).expect("primary log");
        let mut config = ServerConfig::bind(bind);
        config.poll_interval = Duration::from_millis(25);
        config.admin_token = Some("sekrit".to_string());
        Server::start_replicated(backend, config).expect("bind primary")
    };
    let primary = start_primary_at(&primary_bind);
    let primary_addr = primary.addr();

    let start_follower = || {
        let backend = ReplicatedBackend::follower(&primary_addr.to_string(), None, |engine| engine)
            .expect("bootstrap");
        let mut config = ServerConfig::bind("127.0.0.1:0");
        config.poll_interval = Duration::from_millis(25);
        config.admin_token = Some("sekrit".to_string());
        Server::start_replicated(backend, config).expect("bind follower")
    };
    let follower_a = start_follower();
    let follower_b = start_follower();

    let mut client = Client::connect(primary_addr).expect("connect primary");
    for k in 700..706 {
        let reply = client
            .send(&format!("INSERT Event({k}, 'pre-failover')"))
            .expect("insert");
        assert!(reply.starts_with("OK INSERT "), "{reply}");
    }
    let target = stat_u64(&client.send("STATS").expect("STATS"), "end=");
    let mut a = Client::connect(follower_a.addr()).expect("connect follower a");
    let mut b = Client::connect(follower_b.addr()).expect("connect follower b");
    wait_for_offset(&mut a, target);
    wait_for_offset(&mut b, target);

    // The supervisor watches the primary *through* a delaying chaos
    // proxy: slow probes must not trigger a failover, a dead upstream
    // must.
    let proxy = ChaosProxy::start(primary_addr, probe_leg()).expect("probe proxy");
    let mut config =
        SupervisorConfig::watch(proxy.addr(), vec![follower_a.addr(), follower_b.addr()]);
    config.interval = Duration::from_millis(25);
    config.misses_to_fail = 3;
    config.connect_timeout = Duration::from_millis(250);
    config.read_timeout = Duration::from_millis(500);
    config.auth = Some("sekrit".to_string());
    config.catch_up = Duration::from_secs(5);
    let supervisor = Supervisor::start(config).expect("start supervisor");

    // Healthy phase: probes accumulate, no misses escalate, the last
    // acknowledged offset is tracked.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let status = supervisor.status();
        if status.probes >= 5 && status.last_acked == target {
            assert_eq!(status.state, SupervisorState::Watching);
            assert_eq!(status.promotions, 0);
            break;
        }
        assert!(Instant::now() < deadline, "no healthy probes: {status:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
    let line = ask_status(supervisor.status_addr());
    assert!(line.starts_with("OK SUPERVISOR state=watching "), "{line}");

    // The primary dies.  The supervisor must notice, confirm, promote
    // follower A (config order breaks the caught-up tie) and retarget
    // follower B — within the deadline, unattended.
    primary.shutdown();
    primary.join();
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let status = supervisor.status();
        if status.promotions == 1 {
            assert_eq!(status.primary, follower_a.addr());
            assert_eq!(status.epoch, 1);
            break;
        }
        assert!(Instant::now() < deadline, "no promotion driven: {status:?}");
        std::thread::sleep(Duration::from_millis(20));
    }

    // Follower A is now a primary at epoch 1 and takes writes; the
    // retargeted follower B replicates them byte-for-byte.
    let stats = a.send("STATS").expect("STATS");
    assert!(stats.contains("role=primary"), "{stats}");
    assert!(stats.contains("epoch=1"), "{stats}");
    let reply = a
        .send("INSERT Event(706, 'post-failover')")
        .expect("insert");
    assert!(reply.starts_with("OK INSERT "), "{reply}");
    let stats = wait_for_offset(&mut b, target + 1);
    assert!(stats.contains("role=follower"), "{stats}");
    assert_eq!(battery_replies(&mut a), battery_replies(&mut b));

    // The old primary revives at its old address (cold restart over the
    // same log) — the supervisor's epoch announcements must fence it:
    // writes refuse with `ERR FENCED`, reads still flow.
    let revived = start_primary_at(&primary_bind);
    let mut stale = Client::connect(revived.addr()).expect("connect revived");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let reply = stale
            .send("INSERT Event(999, 'split-brain')")
            .expect("fenced write");
        if reply.starts_with("ERR FENCED ") {
            assert_eq!(
                reply,
                "ERR FENCED epoch=1 INSERT refused; a newer primary was promoted"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "the revived primary was never fenced: {reply}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    let read = stale.send("COUNT auto TRUE").expect("fenced read");
    assert!(read.starts_with("OK COUNT "), "reads keep flowing: {read}");
    let stats = stale.send("STATS").expect("STATS");
    assert!(stats.contains("fenced=1"), "{stats}");

    // Final status line: one promotion, watching the new primary.
    let line = ask_status(supervisor.status_addr());
    assert!(line.contains(" promotions=1 "), "{line}");
    assert!(
        line.contains(&format!(" primary={} ", follower_a.addr())),
        "{line}"
    );

    supervisor.shutdown();
    supervisor.join();
    proxy.shutdown();
    revived.shutdown();
    revived.join();
    follower_b.shutdown();
    assert_eq!(follower_b.join().recovered_panics, 0);
    follower_a.shutdown();
    assert_eq!(follower_a.join().recovered_panics, 0);
    std::fs::remove_dir_all(&dir).ok();
}
