//! End-to-end socket tests for the replicated command log: a primary
//! over `--log-dir` that logs-then-applies every mutation, snapshots at
//! compaction and recovers by replaying only the post-snapshot suffix; a
//! follower that bootstraps from `REPL SNAPSHOT`, tails `REPL FETCH`,
//! serves reads byte-identically and refuses writes; `PROMOTE` failover;
//! and the per-connection token-bucket rate limiter.
//!
//! Every byte-parity assertion here leans on the same property the rest
//! of the suite does: wire replies are a pure function of engine state
//! and command order, so replicas that replay the same log must answer
//! identically — including `gen=`/`cached=` provenance and seeded
//! `APPROX` estimates.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use repair_count::prelude::*;
use repair_count::workloads::{churn_base, churn_session, employee_example, replication_battery};

/// Distinct per-test log directories under the system temp dir.
static LOG_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_log_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "cdr-replication-test-{}-{}-{}",
        std::process::id(),
        tag,
        LOG_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn test_config() -> ServerConfig {
    let mut config = ServerConfig::bind("127.0.0.1:0");
    config.poll_interval = Duration::from_millis(25);
    config
}

fn churn_engine() -> RepairEngine {
    let (db, keys) = churn_base();
    RepairEngine::new(db, keys)
}

/// Starts a primary over `dir` with the churn base and the given
/// auto-compaction threshold.
fn start_primary(dir: &Path, auto_compact: Option<u64>) -> Server {
    let backend = ReplicatedBackend::primary(churn_engine(), dir).expect("fresh primary");
    let mut config = test_config();
    config.auto_compact = auto_compact;
    Server::start_replicated(backend, config).expect("bind primary")
}

/// Starts a follower of `upstream` (identity tuning — the churn engines
/// here run default budgets).
fn start_follower(
    upstream: &str,
    auto_compact: Option<u64>,
    configure: impl FnOnce(&mut ServerConfig),
) -> Server {
    let backend =
        ReplicatedBackend::follower(upstream, auto_compact, |engine| engine).expect("bootstrap");
    let mut config = test_config();
    config.auto_compact = auto_compact;
    configure(&mut config);
    Server::start_replicated(backend, config).expect("bind follower")
}

/// Starts a follower with an explicit feed mode and fetch batch size.
fn start_follower_feed(
    upstream: &str,
    auto_compact: Option<u64>,
    feed: FeedMode,
    fetch_batch: u64,
) -> Server {
    let backend =
        ReplicatedBackend::follower_with(upstream, auto_compact, feed, fetch_batch, |engine| {
            engine
        })
        .expect("bootstrap");
    let mut config = test_config();
    config.auto_compact = auto_compact;
    Server::start_replicated(backend, config).expect("bind follower")
}

/// `key=value` extraction from a `STATS` / `REPL` reply.
fn stat_u64(line: &str, key: &str) -> u64 {
    line.split_whitespace()
        .find_map(|token| token.strip_prefix(key))
        .and_then(|value| value.parse().ok())
        .unwrap_or_else(|| panic!("no `{key}` field in `{line}`"))
}

/// The gauge head of a `STATS` reply — everything before the first ` | `
/// tail (cache traffic and the repl gauge legitimately differ per node).
fn stats_head(reply: &str) -> &str {
    reply.split(" | ").next().unwrap_or(reply)
}

/// Polls the node's `STATS` until its replicated offset reaches
/// `target`, returning the final reply.
fn wait_for_offset(client: &mut Client, target: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let reply = client.send("STATS").expect("STATS");
        if stat_u64(&reply, "end=") >= target {
            return reply;
        }
        assert!(
            Instant::now() < deadline,
            "stuck short of offset {target}: {reply}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Sends the read battery and returns every reply — the byte-comparable
/// fingerprint of a node (each battery line runs twice, so `cached=`
/// provenance is part of the fingerprint).
fn battery_replies(client: &mut Client) -> Vec<String> {
    replication_battery()
        .iter()
        .map(|line| client.send(line).expect("battery line"))
        .collect()
}

/// Acceptance: a primary that logged a churn workload (including
/// auto-compactions, which snapshot and truncate the disk log) restarts
/// into byte-identical state, replaying only the records after the last
/// snapshot — the `replayed=` gauge proves the suffix stayed short.
#[test]
fn a_cold_restart_replays_only_the_post_snapshot_suffix() {
    let dir = temp_log_dir("restart");
    let (_, _, trace) = churn_session(120, Some(16));

    let server = start_primary(&dir, Some(16));
    let mut client = Client::connect(server.addr()).expect("connect");
    for line in &trace {
        let reply = client.send(line).expect("trace line");
        assert!(reply.starts_with("OK "), "`{line}` drew `{reply}`");
    }
    let before_stats = client.send("STATS").expect("STATS");
    let before_battery = battery_replies(&mut client);
    let hello = client.send("REPL HELLO").expect("HELLO");
    let end = stat_u64(&hello, "end=");
    let snap = stat_u64(&hello, "snap=");
    assert!(
        snap > 0,
        "the churn trace must auto-compact (and so snapshot): {hello}"
    );
    assert!(end > snap, "mutations landed after the last snapshot");
    assert_eq!(client.send("SHUTDOWN").expect("SHUTDOWN"), "OK SHUTDOWN");
    server.join();

    // Cold restart over the same directory: snapshot + suffix replay.
    let server = start_primary(&dir, Some(16));
    let mut client = Client::connect(server.addr()).expect("connect");
    let after_stats = client.send("STATS").expect("STATS");
    assert_eq!(
        stats_head(&after_stats),
        stats_head(&before_stats),
        "the recovered gauges (facts, slots, gen, total) must match"
    );
    assert_eq!(stat_u64(&after_stats, "base="), snap);
    assert_eq!(stat_u64(&after_stats, "end="), end);
    assert_eq!(
        stat_u64(&after_stats, "replayed="),
        end - snap,
        "recovery replays exactly the post-snapshot suffix: {after_stats}"
    );
    assert_eq!(
        battery_replies(&mut client),
        before_battery,
        "the recovered node answers the read battery byte-identically"
    );

    // The records before the recovery snapshot are gone from the log:
    // a stale fetch is told to re-bootstrap, a future one is refused.
    let reply = client.send("REPL FETCH 0 8").expect("FETCH");
    assert!(reply.starts_with("ERR REPL COMPACTED "), "{reply}");
    let reply = client
        .send(&format!("REPL FETCH {} 8", end + 5))
        .expect("FETCH");
    assert!(reply.starts_with("ERR REPL RANGE "), "{reply}");

    server.shutdown();
    assert_eq!(server.join().recovered_panics, 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// Acceptance: a follower bootstraps from the primary's snapshot, tails
/// the log through a replicated churn workload (mutations, batches and
/// auto-compactions), and then answers the read battery byte-for-byte —
/// while every mutating verb draws a deterministic `ERR READONLY`.
#[test]
fn a_follower_serves_reads_byte_identically_and_refuses_writes() {
    let dir = temp_log_dir("follower");
    let (_, _, trace) = churn_session(90, Some(16));

    let primary = start_primary(&dir, Some(16));
    let primary_addr = primary.addr().to_string();
    let follower = start_follower(&primary_addr, Some(16), |_| {});

    let mut client = Client::connect(primary.addr()).expect("connect primary");
    for line in &trace {
        let reply = client.send(line).expect("trace line");
        assert!(reply.starts_with("OK "), "`{line}` drew `{reply}`");
    }
    let primary_stats = client.send("STATS").expect("STATS");
    let target = stat_u64(&primary_stats, "end=");

    let mut reader = Client::connect(follower.addr()).expect("connect follower");
    let follower_stats = wait_for_offset(&mut reader, target);
    assert_eq!(stats_head(&primary_stats), stats_head(&follower_stats));
    assert_eq!(stat_u64(&follower_stats, "epoch="), 0);
    assert_eq!(battery_replies(&mut client), battery_replies(&mut reader));

    // Writes are refused with the exact documented reply — and the
    // refusal is a reply, never a disconnect.
    for (line, verb) in [
        ("INSERT Event(300, 'nope')", "INSERT"),
        ("DELETE 0", "DELETE"),
        ("COMPACT", "COMPACT"),
        ("COMPACT VERBOSE", "COMPACT"),
    ] {
        assert_eq!(
            reader.send(line).expect("refused write"),
            format!("ERR READONLY {verb} is not served by a follower; write to the primary"),
            "on `{line}`"
        );
    }
    let refused = reader
        .send_batch(&["INSERT Event(301, 'nope')", "INSERT Event(302, 'nope')"])
        .expect("refused batch");
    assert_eq!(
        refused,
        vec!["ERR READONLY BATCH is not served by a follower; write to the primary".to_string()]
    );
    assert!(reader.send("STATS").expect("STATS").starts_with("OK STATS"));

    follower.shutdown();
    assert_eq!(follower.join().recovered_panics, 0, "tailer never panics");
    primary.shutdown();
    assert_eq!(primary.join().recovered_panics, 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// Acceptance: failover.  The primary dies mid-stream; `PROMOTE` (an
/// admin verb, gated behind `AUTH`) flips the caught-up follower into a
/// primary at a new epoch, and it takes writes from exactly the
/// replicated state.
#[test]
fn promote_turns_a_follower_into_a_primary_at_a_new_epoch() {
    let dir = temp_log_dir("promote");
    let primary = start_primary(&dir, None);
    let primary_addr = primary.addr().to_string();
    let follower = start_follower(&primary_addr, None, |config| {
        config.admin_token = Some("sekrit".to_string());
    });

    let mut client = Client::connect(primary.addr()).expect("connect primary");
    for k in 200..206 {
        let reply = client
            .send(&format!("INSERT Event({k}, 'pre-failover')"))
            .expect("insert");
        assert!(reply.starts_with("OK INSERT "), "{reply}");
    }
    let target = stat_u64(&client.send("STATS").expect("STATS"), "end=");

    let mut surviving = Client::connect(follower.addr()).expect("connect follower");
    wait_for_offset(&mut surviving, target);
    let expected_gen = stat_u64(&surviving.send("STATS").expect("STATS"), "gen=");

    // The primary is gone — a dead upstream idles the tailer, it never
    // panics (recovered_panics stays 0 below).
    primary.shutdown();
    primary.join();

    // PROMOTE is an admin verb.
    assert_eq!(
        surviving.send("PROMOTE").expect("PROMOTE"),
        "ERR DENIED PROMOTE requires AUTH on this server"
    );
    assert_eq!(surviving.send("AUTH sekrit").expect("AUTH"), "OK AUTH");
    assert_eq!(
        surviving.send("PROMOTE").expect("PROMOTE"),
        format!("OK PROMOTED epoch=1 end={target}")
    );
    assert_eq!(
        surviving.send("PROMOTE").expect("PROMOTE"),
        "ERR REPL already primary at epoch=1",
        "promotion is idempotent-safe, not repeatable"
    );

    // The promoted node serves writes, continuing the replicated
    // generation counter — nothing was lost or double-applied.
    let stats = surviving.send("STATS").expect("STATS");
    assert!(stats.contains(" | repl role=primary epoch=1 "), "{stats}");
    let reply = surviving
        .send("INSERT Event(207, 'post-failover')")
        .expect("insert");
    assert!(
        reply.starts_with("OK INSERT id=") && reply.contains(&format!(" gen={}", expected_gen + 1)),
        "{reply}"
    );
    assert_eq!(
        stat_u64(&surviving.send("STATS").expect("STATS"), "end="),
        target + 1,
        "the promoted primary logs its own mutations"
    );

    follower.shutdown();
    assert_eq!(follower.join().recovered_panics, 0, "tailer never panics");
    std::fs::remove_dir_all(&dir).ok();
}

/// Regression: promoting a follower that has not yet applied everything
/// the upstream acknowledged must refuse with `ERR REPL BEHIND end=<e>
/// upstream=<u>` — the failover soak once raced the final `REPL FETCH`
/// and promoted a node missing the acknowledged tail.  Once the tailer
/// catches up, the same node promotes cleanly.
#[test]
fn promote_refuses_while_the_follower_is_behind_the_upstream() {
    let dir = temp_log_dir("behind");
    let primary = start_primary(&dir, None);
    let primary_addr = primary.addr().to_string();
    let mut client = Client::connect(primary.addr()).expect("connect primary");
    for k in 400..404 {
        let reply = client
            .send(&format!("INSERT Event({k}, 'pre-snap')"))
            .expect("insert");
        assert!(reply.starts_with("OK INSERT "), "{reply}");
    }
    let reply = client.send("COMPACT").expect("COMPACT");
    assert!(reply.starts_with("OK COMPACTED "), "{reply}");
    for k in 404..406 {
        let reply = client
            .send(&format!("INSERT Event({k}, 'post-snap')"))
            .expect("insert");
        assert!(reply.starts_with("OK INSERT "), "{reply}");
    }
    let hello = client.send("REPL HELLO").expect("HELLO");
    let snap = stat_u64(&hello, "snap=");
    let end = stat_u64(&hello, "end=");
    assert!(end > snap, "mutations landed after the snapshot: {hello}");

    // Bootstrap a follower but never serve it: the tailer never runs, so
    // the node sits at the snapshot offset while the bootstrap HELLO
    // already told it how far the upstream really is.
    let backend =
        ReplicatedBackend::follower(&primary_addr, None, |engine| engine).expect("bootstrap");
    assert_eq!(
        backend.promote(false),
        format!("ERR REPL BEHIND end={snap} upstream={end}"),
        "a behind follower must refuse promotion"
    );

    // Served normally, the tailer applies the suffix and the very same
    // node promotes at the acknowledged offset.
    let follower = Server::start_replicated(backend, test_config()).expect("bind follower");
    let mut surviving = Client::connect(follower.addr()).expect("connect follower");
    wait_for_offset(&mut surviving, end);
    primary.shutdown();
    primary.join();
    assert_eq!(
        surviving.send("PROMOTE").expect("PROMOTE"),
        format!("OK PROMOTED epoch=1 end={end}")
    );

    follower.shutdown();
    assert_eq!(follower.join().recovered_panics, 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// Acceptance: three-node failover by hand — the exact sequence the
/// supervisor drives.  The primary dies; its surviving followers count
/// tail retries (visible as `repl retries=` in `STATS`) while backing
/// off; one follower is promoted; `RETARGET` (admin-gated) re-points
/// the other at the new primary, and post-failover writes replicate to
/// it with full byte parity.
#[test]
fn retarget_repoints_a_survivor_at_the_promoted_primary() {
    let dir = temp_log_dir("retarget");
    let primary = start_primary(&dir, None);
    let primary_addr = primary.addr().to_string();
    let follower_a = start_follower(&primary_addr, None, |config| {
        config.admin_token = Some("sekrit".to_string());
    });
    let follower_b = start_follower(&primary_addr, None, |config| {
        config.admin_token = Some("sekrit".to_string());
    });

    let mut client = Client::connect(primary.addr()).expect("connect primary");
    for k in 500..505 {
        let reply = client
            .send(&format!("INSERT Event({k}, 'pre-failover')"))
            .expect("insert");
        assert!(reply.starts_with("OK INSERT "), "{reply}");
    }
    let target = stat_u64(&client.send("STATS").expect("STATS"), "end=");

    let mut a = Client::connect(follower_a.addr()).expect("connect follower a");
    let mut b = Client::connect(follower_b.addr()).expect("connect follower b");
    wait_for_offset(&mut a, target);
    wait_for_offset(&mut b, target);

    // The primary dies for real; the surviving tailers' fetches fail and
    // the `retries=` gauge starts counting (with capped backoff behind
    // it — asserted by the deadline staying comfortable).
    primary.shutdown();
    primary.join();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = b.send("STATS").expect("STATS");
        if stat_u64(&stats, "retries=") >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "no retry counted: {stats}");
        std::thread::sleep(Duration::from_millis(25));
    }

    assert_eq!(a.send("AUTH sekrit").expect("AUTH"), "OK AUTH");
    assert_eq!(
        a.send("PROMOTE").expect("PROMOTE"),
        format!("OK PROMOTED epoch=1 end={target}")
    );

    // RETARGET is an admin verb with a usage line; the happy path swaps
    // the upstream and acknowledges it.
    assert_eq!(
        b.send("RETARGET").expect("RETARGET"),
        "ERR DENIED RETARGET requires AUTH on this server"
    );
    assert_eq!(b.send("AUTH sekrit").expect("AUTH"), "OK AUTH");
    assert_eq!(
        b.send("RETARGET").expect("RETARGET"),
        "ERR REPL usage: RETARGET <host:port>"
    );
    let new_primary = follower_a.addr().to_string();
    assert_eq!(
        b.send(&format!("RETARGET {new_primary}"))
            .expect("RETARGET"),
        format!("OK RETARGET {new_primary}")
    );

    // A post-failover write on the new primary reaches the retargeted
    // survivor, byte for byte.
    let reply = a
        .send("INSERT Event(505, 'post-failover')")
        .expect("insert");
    assert!(reply.starts_with("OK INSERT "), "{reply}");
    let stats = wait_for_offset(&mut b, target + 1);
    assert!(stats.contains("role=follower"), "{stats}");
    assert!(stat_u64(&stats, "retries=") >= 1, "{stats}");
    assert_eq!(battery_replies(&mut a), battery_replies(&mut b));

    follower_b.shutdown();
    assert_eq!(follower_b.join().recovered_panics, 0);
    follower_a.shutdown();
    assert_eq!(follower_a.join().recovered_panics, 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// Acceptance: the binary feed is an encoding, not a semantic: followers
/// tailing the same primary over `--feed text`, `--feed bin` and the two
/// mixed legs (bootstrap textual / tail binary, and vice versa) all end
/// byte-identical to the primary, surface the negotiated encoding as the
/// `feed=` gauge, and the binary leg pays measurably fewer wire bytes.
#[test]
fn feed_encodings_interoperate_byte_identically() {
    let dir = temp_log_dir("feeds");
    let (_, _, trace) = churn_session(90, Some(16));
    let primary = start_primary(&dir, Some(16));
    let primary_addr = primary.addr().to_string();

    let text_leg = start_follower_feed(&primary_addr, Some(16), FeedMode::Text, 7);
    let bin_leg = start_follower_feed(&primary_addr, Some(16), FeedMode::Bin, 64);
    // Mixed legs: bootstrap over one encoding, then swap the preference
    // so the tailer negotiates the other at its first handshake.
    let mixed_to_bin = {
        let backend = ReplicatedBackend::follower_with(
            &primary_addr,
            Some(16),
            FeedMode::Text,
            64,
            |engine| engine,
        )
        .expect("bootstrap");
        backend.set_feed(FeedMode::Bin);
        let mut config = test_config();
        config.auto_compact = Some(16);
        Server::start_replicated(backend, config).expect("bind follower")
    };
    let mixed_to_text = {
        let backend = ReplicatedBackend::follower_with(
            &primary_addr,
            Some(16),
            FeedMode::Bin,
            64,
            |engine| engine,
        )
        .expect("bootstrap");
        backend.set_feed(FeedMode::Text);
        let mut config = test_config();
        config.auto_compact = Some(16);
        Server::start_replicated(backend, config).expect("bind follower")
    };

    let mut client = Client::connect(primary.addr()).expect("connect primary");
    for line in &trace {
        let reply = client.send(line).expect("trace line");
        assert!(reply.starts_with("OK "), "`{line}` drew `{reply}`");
    }
    let primary_stats = client.send("STATS").expect("STATS");
    let target = stat_u64(&primary_stats, "end=");
    let primary_battery = battery_replies(&mut client);

    let legs = [
        (&text_leg, " feed=text bytes=", "text"),
        (&bin_leg, " feed=bin bytes=", "bin"),
        (&mixed_to_bin, " feed=bin bytes=", "mixed-to-bin"),
        (&mixed_to_text, " feed=text bytes=", "mixed-to-text"),
    ];
    let mut wire_bytes = Vec::new();
    for (server, gauge, tag) in legs {
        let mut reader = Client::connect(server.addr()).expect("connect follower");
        let stats = wait_for_offset(&mut reader, target);
        assert_eq!(
            stats_head(&primary_stats),
            stats_head(&stats),
            "{tag} leg diverged"
        );
        assert!(stats.contains(gauge), "{tag} leg gauge missing: {stats}");
        let bytes = stat_u64(&stats, "bytes=");
        assert!(bytes > 0, "{tag} leg counted no wire bytes: {stats}");
        wire_bytes.push(bytes);
        assert_eq!(
            battery_replies(&mut reader),
            primary_battery,
            "{tag} leg battery diverged"
        );
    }
    // Same workload, same bootstrap: the pure-binary leg must be
    // decisively cheaper on the wire than the pure-textual one.
    assert!(
        wire_bytes[1] < wire_bytes[0],
        "binary feed {} bytes vs textual {} bytes",
        wire_bytes[1],
        wire_bytes[0]
    );

    for server in [text_leg, bin_leg, mixed_to_bin, mixed_to_text] {
        server.shutdown();
        assert_eq!(server.join().recovered_panics, 0, "tailer never panics");
    }
    primary.shutdown();
    assert_eq!(primary.join().recovered_panics, 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// Acceptance: re-bootstrap over the binary snapshot path.  A follower
/// whose cursor predates the primary's snapshot horizon is told
/// `ERR REPL COMPACTED`; a binary-feed tailer then restarts itself from
/// `REPL SNAPSHOT BIN` and catches up byte-identically (a textual leg
/// rides the same sequence through the hex path).
#[test]
fn a_stale_follower_rebootstraps_through_the_binary_snapshot() {
    let dir = temp_log_dir("rebootstrap");
    let primary = start_primary(&dir, None);
    let primary_addr = primary.addr().to_string();
    let mut client = Client::connect(primary.addr()).expect("connect primary");
    for k in 800..804 {
        let reply = client
            .send(&format!("INSERT Event({k}, 'pre-compact')"))
            .expect("insert");
        assert!(reply.starts_with("OK INSERT "), "{reply}");
    }

    // Bootstrap both followers at the primary's pre-compaction snapshot
    // (offset 0) but do not serve them yet: their cursors stay put.
    let bin_backend =
        ReplicatedBackend::follower_with(&primary_addr, None, FeedMode::Bin, 64, |engine| engine)
            .expect("bootstrap binary");
    let text_backend =
        ReplicatedBackend::follower_with(&primary_addr, None, FeedMode::Text, 64, |engine| engine)
            .expect("bootstrap textual");

    // Compact, then cold-restart the primary: the records behind the new
    // snapshot are gone from its in-memory window, so the stale cursors
    // will draw `ERR REPL COMPACTED`.
    let reply = client.send("COMPACT").expect("COMPACT");
    assert!(reply.starts_with("OK COMPACTED "), "{reply}");
    assert_eq!(client.send("SHUTDOWN").expect("SHUTDOWN"), "OK SHUTDOWN");
    primary.join();
    let primary = start_primary(&dir, None);
    let mut client = Client::connect(primary.addr()).expect("connect primary");
    let hello = client.send("REPL HELLO").expect("HELLO");
    let base = stat_u64(&hello, "base=");
    assert!(base > 0, "the restart recovered from the snapshot: {hello}");
    let reply = client.send("REPL FETCH 0 8").expect("FETCH");
    assert!(reply.starts_with("ERR REPL COMPACTED "), "{reply}");
    for k in 804..806 {
        let reply = client
            .send(&format!("INSERT Event({k}, 'post-compact')"))
            .expect("insert");
        assert!(reply.starts_with("OK INSERT "), "{reply}");
    }
    let target = stat_u64(&client.send("STATS").expect("STATS"), "end=");
    let primary_battery = battery_replies(&mut client);
    let new_addr = primary.addr().to_string();

    // Serve the stale followers and point them at the restarted primary;
    // each tailer re-bootstraps over its own snapshot encoding.
    for (backend, gauge, tag) in [
        (bin_backend, " feed=bin bytes=", "binary"),
        (text_backend, " feed=text bytes=", "textual"),
    ] {
        let follower = Server::start_replicated(backend, test_config()).expect("bind follower");
        let mut reader = Client::connect(follower.addr()).expect("connect follower");
        assert_eq!(
            reader
                .send(&format!("RETARGET {new_addr}"))
                .expect("RETARGET"),
            format!("OK RETARGET {new_addr}")
        );
        let stats = wait_for_offset(&mut reader, target);
        assert_eq!(
            stat_u64(&stats, "base="),
            base,
            "{tag} leg re-bootstrapped from the post-compaction snapshot: {stats}"
        );
        assert!(stats.contains(gauge), "{tag} leg gauge missing: {stats}");
        assert_eq!(
            battery_replies(&mut reader),
            primary_battery,
            "{tag} leg battery diverged after re-bootstrap"
        );
        follower.shutdown();
        assert_eq!(follower.join().recovered_panics, 0, "tailer never panics");
    }

    primary.shutdown();
    assert_eq!(primary.join().recovered_panics, 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// Acceptance: `--rate-limit N` is a per-connection token bucket with a
/// deterministic refusal — the N+1-th command inside the burst window
/// draws exactly `ERR BUSY RATE LIMITED`, an open `BATCH` is aborted,
/// and blank/comment lines are never charged.
#[test]
fn rate_limit_draws_deterministic_busy_and_aborts_the_batch() {
    let (db, keys) = employee_example();
    let mut config = test_config();
    config.rate_limit = Some(2);
    let server = Server::start(RepairEngine::new(db, keys), config).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    // Two tokens: BATCH opens (1), the collected mutation spends (2) —
    // the END that would commit is refused with the exact busy reply.
    client.send_line("BATCH").expect("open batch");
    client
        .send_line("INSERT Employee(2, 'Eve', 'Finance')")
        .expect("collect");
    assert_eq!(client.send("END").expect("END"), "ERR BUSY RATE LIMITED");

    // The throttle aborted the open batch: once the bucket refills, END
    // has no batch to commit, and the collected INSERT never applied.
    std::thread::sleep(Duration::from_millis(1200));
    assert_eq!(
        client.send("END").expect("END after refill"),
        "ERR BATCH END without an open BATCH"
    );
    std::thread::sleep(Duration::from_millis(1200));
    let reply = client.send("STATS").expect("STATS");
    assert!(
        reply.starts_with("OK STATS facts=4 "),
        "the aborted batch left the engine untouched: {reply}"
    );

    // Blank and comment lines are free: after a full refill (2 tokens),
    // a pile of comments followed by two commands still fits the budget.
    std::thread::sleep(Duration::from_millis(1200));
    for _ in 0..8 {
        client.send_line("# not charged").expect("comment");
        client.send_line("").expect("blank");
    }
    let reply = client.send("COUNT auto EXISTS n . Employee(2, n, 'IT')");
    assert!(reply.expect("query").starts_with("OK COUNT 4 "));
    assert!(client.send("STATS").expect("STATS").starts_with("OK STATS"));
    assert_eq!(
        client.send("STATS").expect("STATS"),
        "ERR BUSY RATE LIMITED"
    );

    // The limiter is per-connection: a fresh session has its own bucket.
    let mut other = Client::connect(server.addr()).expect("connect");
    assert!(other.send("STATS").expect("STATS").starts_with("OK STATS"));

    // Replication verbs on a non-replicated server are a reply, too
    // (after a refill tick — the fresh bucket holds two tokens).
    std::thread::sleep(Duration::from_millis(1200));
    assert_eq!(
        other.send("REPL HELLO").expect("REPL"),
        "ERR REPL replication is not enabled on this server"
    );
    assert_eq!(
        other.send("PROMOTE").expect("PROMOTE"),
        "ERR REPL replication is not enabled on this server"
    );

    server.shutdown();
    let stats = server.join();
    assert!(stats.busy_rejections >= 2, "both refusals were counted");
    assert_eq!(stats.recovered_panics, 0);
}

/// Regression: `PROMOTE FORCE` is the catch-up escape hatch.  A
/// follower stranded behind an upstream that died before serving its
/// acknowledged tail refuses a plain `PROMOTE` forever — FORCE promotes
/// anyway and reports the accepted loss as `dropped=<n>`.
#[test]
fn promote_force_overrides_the_behind_refusal() {
    let dir = temp_log_dir("force");
    let primary = start_primary(&dir, None);
    let primary_addr = primary.addr().to_string();
    let mut client = Client::connect(primary.addr()).expect("connect primary");
    for k in 600..604 {
        let reply = client
            .send(&format!("INSERT Event({k}, 'pre-snap')"))
            .expect("insert");
        assert!(reply.starts_with("OK INSERT "), "{reply}");
    }
    let reply = client.send("COMPACT").expect("COMPACT");
    assert!(reply.starts_with("OK COMPACTED "), "{reply}");
    for k in 604..606 {
        let reply = client
            .send(&format!("INSERT Event({k}, 'post-snap')"))
            .expect("insert");
        assert!(reply.starts_with("OK INSERT "), "{reply}");
    }
    let hello = client.send("REPL HELLO").expect("HELLO");
    let snap = stat_u64(&hello, "snap=");
    let end = stat_u64(&hello, "end=");
    assert!(end > snap, "mutations landed after the snapshot: {hello}");

    // Bootstrap a follower, then kill the upstream before the tailer can
    // fetch the post-snapshot suffix: the records are gone for good.
    let backend =
        ReplicatedBackend::follower(&primary_addr, None, |engine| engine).expect("bootstrap");
    primary.shutdown();
    primary.join();
    let mut config = test_config();
    config.admin_token = Some("sekrit".to_string());
    let stranded = Server::start_replicated(backend, config).expect("bind follower");
    let mut surviving = Client::connect(stranded.addr()).expect("connect follower");
    assert_eq!(surviving.send("AUTH sekrit").expect("AUTH"), "OK AUTH");

    // The refusal is deterministic, a malformed operand is an error, and
    // FORCE promotes at the replicated offset, reporting the loss.
    assert_eq!(
        surviving.send("PROMOTE").expect("PROMOTE"),
        format!("ERR REPL BEHIND end={snap} upstream={end}")
    );
    assert_eq!(
        surviving.send("PROMOTE NOW PLEASE").expect("PROMOTE"),
        "ERR REPL usage: PROMOTE [FORCE]"
    );
    assert_eq!(
        surviving.send("PROMOTE FORCE").expect("PROMOTE FORCE"),
        format!("OK PROMOTED epoch=1 end={snap} dropped={}", end - snap)
    );
    let stats = surviving.send("STATS").expect("STATS");
    assert!(stats.contains(" | repl role=primary epoch=1 "), "{stats}");
    let reply = surviving
        .send("INSERT Event(607, 'post-force')")
        .expect("insert");
    assert!(reply.starts_with("OK INSERT "), "{reply}");

    stranded.shutdown();
    assert_eq!(stranded.join().recovered_panics, 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// Regression: the fencing bite of `REPL HELLO epoch=<n>` is as
/// destructive as `PROMOTE` (it stops all writes, monotonically), so on
/// a server that gates admin verbs it must be gated too — otherwise any
/// unauthenticated client could halt the primary with one line.
#[test]
fn fencing_over_the_wire_requires_auth() {
    let dir = temp_log_dir("fence-auth");
    let backend = ReplicatedBackend::primary(churn_engine(), &dir).expect("fresh primary");
    let mut config = test_config();
    config.admin_token = Some("sekrit".to_string());
    let primary = Server::start_replicated(backend, config).expect("bind primary");
    let mut client = Client::connect(primary.addr()).expect("connect");

    // Probe forms stay open to unauthenticated sessions.
    let hello = client.send("REPL HELLO").expect("HELLO");
    assert!(hello.starts_with("OK REPL HELLO "), "{hello}");
    let hello = client.send("REPL HELLO epoch=0").expect("HELLO");
    assert!(hello.starts_with("OK REPL HELLO "), "{hello}");

    // A fencing announcement without AUTH is refused and leaves the
    // primary serving writes.
    assert_eq!(
        client.send("REPL HELLO epoch=9").expect("HELLO"),
        "ERR DENIED REPL HELLO epoch=9 would fence this primary and requires AUTH \
         on this server"
    );
    let reply = client
        .send("INSERT Event(700, 'still-writable')")
        .expect("insert");
    assert!(reply.starts_with("OK INSERT "), "{reply}");
    let stats = client.send("STATS").expect("STATS");
    assert!(!stats.contains("fenced="), "{stats}");

    // The same announcement after AUTH fences: writes refuse, reads flow.
    assert_eq!(client.send("AUTH sekrit").expect("AUTH"), "OK AUTH");
    let hello = client.send("REPL HELLO epoch=9").expect("HELLO");
    assert!(hello.ends_with("fenced=9"), "{hello}");
    assert_eq!(
        client
            .send("INSERT Event(701, 'split-brain')")
            .expect("insert"),
        "ERR FENCED epoch=9 INSERT refused; a newer primary was promoted"
    );
    assert!(client.send("STATS").expect("STATS").contains("fenced=9"));

    primary.shutdown();
    assert_eq!(primary.join().recovered_panics, 0);
    std::fs::remove_dir_all(&dir).ok();
}
