//! Replication parity *through failure*: the deterministic
//! fault-injection proxy ([`cdr_chaos::ChaosProxy`]) sits on both legs
//! of a replicated pair while a random churn trace runs, and parity
//! must still hold byte for byte.
//!
//! The two legs get different fault menus, matching what each can
//! tolerate without changing the observable trace:
//!
//! - **client ↔ primary**: delays only.  A delayed byte arrives intact,
//!   so every reply must still equal the [`Oracle`] replay exactly; a
//!   truncated command, by contrast, would have to be resent and the
//!   trace would no longer be the reference trace.
//! - **primary ↔ follower**: delays *and* truncations.  The pull-based
//!   `REPL` protocol is idempotent — a cut fetch or a cut bootstrap is
//!   simply retried from the same offsets — so the follower must
//!   converge to byte parity through arbitrary cuts.  (Blackholes are
//!   excluded here only because a stalled socket ties up the test for
//!   its full read deadline, not because they break parity.)

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use cdr_chaos::{ChaosConfig, ChaosProxy, Direction, FaultKind};
use proptest::prelude::*;
use repair_count::prelude::*;
use repair_count::workloads::{churn_base, churn_session, replication_battery};

static LOG_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_log_dir() -> PathBuf {
    std::env::temp_dir().join(format!(
        "cdr-chaos-test-{}-{}",
        std::process::id(),
        LOG_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn test_config() -> ServerConfig {
    let mut config = ServerConfig::bind("127.0.0.1:0");
    config.poll_interval = Duration::from_millis(25);
    config.auto_compact = Some(16);
    config
}

fn churn_engine() -> RepairEngine {
    let (db, keys) = churn_base();
    RepairEngine::new(db, keys)
}

/// Delay-only faults for the client leg: bytes may be late, never lost.
fn client_leg(seed: u64) -> ChaosConfig {
    ChaosConfig {
        seed,
        fault_probability: 0.4,
        menu: vec![FaultKind::Delay],
        directions: vec![Direction::ClientToServer, Direction::ServerToClient],
        trigger_bytes: (0, 512),
        delay_ms: (1, 40),
    }
}

/// Delays and hard cuts for the replication leg — the pull protocol
/// retries both.
fn repl_leg(seed: u64) -> ChaosConfig {
    ChaosConfig {
        seed: seed ^ 0xdead_beef,
        fault_probability: 0.5,
        menu: vec![FaultKind::Delay, FaultKind::Truncate],
        directions: vec![Direction::ClientToServer, Direction::ServerToClient],
        trigger_bytes: (0, 2048),
        delay_ms: (1, 30),
    }
}

/// Bootstraps a follower through the faulty proxy, retrying cut
/// snapshot transfers — each attempt is a fresh proxied connection with
/// its own (deterministic) fault plan.
fn bootstrap_through(proxy_addr: &str) -> ReplicatedBackend {
    let mut last = None;
    for _ in 0..30 {
        match ReplicatedBackend::follower(proxy_addr, Some(16), |engine| engine) {
            Ok(backend) => return backend,
            Err(e) => last = Some(e),
        }
    }
    panic!("bootstrap kept failing through the chaos proxy: {last:?}")
}

fn stat_u64(line: &str, key: &str) -> u64 {
    line.split_whitespace()
        .find_map(|token| token.strip_prefix(key))
        .and_then(|value| value.parse().ok())
        .unwrap_or_else(|| panic!("no `{key}` field in `{line}`"))
}

fn stats_head(reply: &str) -> &str {
    reply.split(" | ").next().unwrap_or(reply)
}

fn battery_replies(client: &mut Client) -> Vec<String> {
    replication_battery()
        .iter()
        .map(|line| client.send(line).expect("battery line"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Property: fault injection changes nothing observable.  A churn
    /// trace driven through a delaying client proxy answers
    /// byte-identically to the Oracle replay, and a follower tailing
    /// through a cutting proxy still converges to byte parity.
    #[test]
    fn prop_parity_survives_the_chaos_proxies(
        seed in 0u64..1_000,
        ops in 20usize..45,
    ) {
        let dir = temp_log_dir();
        let (db, keys, trace) = churn_session(ops, Some(16));
        let mut oracle = Oracle::new(RepairEngine::new(db, keys)).with_auto_compact(16);

        let backend = ReplicatedBackend::primary(churn_engine(), &dir).expect("fresh primary");
        let primary = Server::start_replicated(backend, test_config()).expect("bind primary");

        let client_proxy =
            ChaosProxy::start(primary.addr(), client_leg(seed)).expect("client proxy");
        let repl_proxy = ChaosProxy::start(primary.addr(), repl_leg(seed)).expect("repl proxy");

        let follower_backend = bootstrap_through(&repl_proxy.addr().to_string());
        let follower =
            Server::start_replicated(follower_backend, test_config()).expect("bind follower");

        // The whole trace flows through the delaying proxy; every reply
        // must equal the Oracle's — delays reorder nothing.
        let mut client = Client::connect(client_proxy.addr()).expect("connect via proxy");
        for line in &trace {
            let reply = client.send(line).expect("trace line");
            let expected = oracle.feed(line);
            prop_assert_eq!(expected.len(), 1, "`{}` is a single-reply line", line);
            if line.trim_start().starts_with("STATS") {
                // The replicated node carries a ` | repl …` gauge tail
                // the bare Oracle engine does not; the gauge head must
                // still match exactly.
                prop_assert_eq!(
                    stats_head(&reply),
                    stats_head(&expected[0]),
                    "`{}` diverged through the proxy",
                    line
                );
            } else {
                prop_assert_eq!(
                    &reply,
                    &expected[0],
                    "`{}` diverged through the proxy",
                    line
                );
            }
        }

        let primary_stats = client.send("STATS").expect("STATS");
        let target = stat_u64(&primary_stats, "end=");
        let oracle_stats = oracle.feed("STATS").remove(0);
        prop_assert_eq!(stats_head(&primary_stats), stats_head(&oracle_stats));

        // The follower converges through cut fetches: the tailer
        // re-handshakes and re-pulls from the same offsets after every
        // truncation, so the deadline is generous but convergence is
        // certain.
        let mut reader = Client::connect(follower.addr()).expect("connect follower");
        let deadline = Instant::now() + Duration::from_secs(45);
        let follower_stats = loop {
            let reply = reader.send("STATS").expect("follower STATS");
            if stat_u64(&reply, "end=") >= target {
                break reply;
            }
            prop_assert!(
                Instant::now() < deadline,
                "follower stuck short of offset {} through the chaos proxy: {} \
                 (proxy: {} connections, {} faults)",
                target, reply, repl_proxy.connections(), repl_proxy.faults()
            );
            std::thread::sleep(Duration::from_millis(25));
        };
        prop_assert_eq!(stats_head(&primary_stats), stats_head(&follower_stats));

        // The 16-line read battery answers byte-identically on the
        // proxied primary connection and on the follower.
        let primary_battery = battery_replies(&mut client);
        let follower_battery = battery_replies(&mut reader);
        prop_assert_eq!(&primary_battery, &follower_battery);
        let oracle_battery: Vec<String> = replication_battery()
            .iter()
            .map(|line| oracle.feed(line).remove(0))
            .collect();
        prop_assert_eq!(&primary_battery, &oracle_battery);

        follower.shutdown();
        prop_assert_eq!(follower.join().recovered_panics, 0);
        primary.shutdown();
        primary.join();
        client_proxy.shutdown();
        repl_proxy.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}
