//! Mutation-parity suite for the [`RepairEngine`]: after any interleaving
//! of inserts, deletes and queries, every report the mutated engine
//! produces must equal the report of a *fresh* engine built on the final
//! database state, and the incrementally maintained `total_repairs` must
//! match the recomputed product `∏ |Bᵢ|`.  Checked on the named scenarios
//! (including the streaming sensor-update stream) and, property-style, on
//! random interleavings over generated databases.

use proptest::prelude::*;
use repair_count::db::{count_repairs, BlockPartition};
use repair_count::prelude::*;
use repair_count::workloads::{
    employee_example, random_join_query, random_point_query_union, streaming_sensor_updates,
    BlockSizeDistribution, InconsistentDbConfig, QueryGenConfig, RelationSpec,
};

/// Rebuilds a database containing exactly the live facts of `db`, inserted
/// in live id order — the state a cold restart would load.
fn fresh_copy(db: &Database) -> Database {
    let mut out = Database::new(db.schema().clone());
    for (_, fact) in db.iter() {
        out.insert(fact.clone()).expect("live facts are valid");
    }
    out
}

/// Asserts that the mutated engine and a fresh engine over the same live
/// facts agree on every semantics for every query, and that the mutated
/// engine's incrementally maintained total matches a recomputed product.
fn assert_parity(engine: &RepairEngine, queries: &[Query]) {
    let fresh = RepairEngine::new(fresh_copy(engine.database()), engine.keys().clone());

    // total_repairs: incremental divide-out/multiply-in vs full reproduct.
    assert_eq!(engine.total_repairs(), fresh.total_repairs());
    let recomputed = count_repairs(&BlockPartition::new(engine.database(), engine.keys()));
    assert_eq!(*engine.total_repairs(), recomputed);

    for q in queries {
        let exact = engine
            .run(&CountRequest::exact(q.clone()))
            .unwrap()
            .answer
            .as_count()
            .unwrap()
            .clone();
        let fresh_exact = fresh
            .run(&CountRequest::exact(q.clone()))
            .unwrap()
            .answer
            .as_count()
            .unwrap()
            .clone();
        assert_eq!(exact, fresh_exact, "exact count for {q}");

        let frequency = engine
            .run(&CountRequest::frequency(q.clone()))
            .unwrap()
            .answer
            .as_frequency()
            .unwrap()
            .clone();
        assert_eq!(
            frequency,
            Ratio::new(exact.clone(), engine.total_repairs().clone()),
            "frequency for {q}"
        );

        let decision = engine
            .run(&CountRequest::decision(q.clone()))
            .unwrap()
            .answer
            .as_bool()
            .unwrap();
        assert_eq!(decision, !exact.is_zero(), "decision for {q}");

        let certain = engine
            .run(&CountRequest::certain_answer(q.clone()))
            .unwrap()
            .answer
            .as_bool()
            .unwrap();
        assert_eq!(
            certain,
            exact == *engine.total_repairs(),
            "certain answer for {q}"
        );

        // Approximations share the sample path: same seed, same estimate.
        let request = CountRequest::approximate(q.clone(), 0.25, 0.1)
            .with_seed(4242)
            .with_sample_cap(2_000);
        let estimate = engine.run(&request).unwrap();
        let fresh_estimate = fresh.run(&request).unwrap();
        assert_eq!(
            estimate.answer.as_estimate().unwrap().estimate,
            fresh_estimate.answer.as_estimate().unwrap().estimate,
            "estimate for {q}"
        );
        assert_eq!(
            estimate.samples_used, fresh_estimate.samples_used,
            "sample counts for {q}"
        );
    }
}

#[test]
fn employee_session_stays_in_parity_step_by_step() {
    let (db, keys) = employee_example();
    let mut engine = RepairEngine::new(db, keys);
    let queries: Vec<Query> = [
        "EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)",
        "EXISTS n . Employee(2, n, 'IT')",
        "Employee(1, 'Bob', 'HR')",
        "EXISTS n, d . Employee(3, n, d)",
        "TRUE",
        "FALSE",
    ]
    .into_iter()
    .map(|text| parse_query(text).unwrap())
    .collect();

    // A session that grows a block, creates a block, retires a block, and
    // re-creates it — parity must hold after every step.
    let steps: Vec<(&str, bool)> = vec![
        ("Employee(2, 'Eve', 'Finance')", true),  // grow block 2
        ("Employee(3, 'Ann', 'IT')", true),       // create a block
        ("Employee(1, 'Bob', 'HR')", false),      // shrink block 1
        ("Employee(1, 'Bob', 'IT')", false),      // retire block 1
        ("Employee(1, 'Bob', 'Support')", true),  // re-create employee 1
        ("Employee(3, 'Ann', 'IT')", false),      // retire block 3 again
        ("Employee(2, 'Eve', 'Finance')", false), // back towards the start
    ];
    for (text, is_insert) in steps {
        let fact = engine.database().parse_fact(text).unwrap();
        let mutation = if is_insert {
            Mutation::Insert(fact)
        } else {
            Mutation::Delete(engine.database().fact_id(&fact).unwrap())
        };
        engine.apply(mutation).unwrap();
        assert_parity(&engine, &queries);
    }
}

#[test]
fn streaming_sensor_updates_stay_in_parity() {
    let (db, keys, stream) = streaming_sensor_updates(6, 3, 45);
    let mut engine = RepairEngine::new(db, keys).with_parallelism(3);
    // Existential positive probes (the certificate path is polynomial even
    // though this database has far too many repairs to enumerate).
    let queries: Vec<Query> = [
        "EXISTS v . Reading(0, 0, v)",
        "EXISTS s, v . Reading(s, 1, v) AND Reading(s, 2, v)",
        "EXISTS v . Reading(3, 0, v) AND Reading(3, 1, v)",
    ]
    .into_iter()
    .map(|text| parse_query(text).unwrap())
    .collect();

    for chunk in stream.chunks(9) {
        let report = engine.apply_batch(chunk.to_vec()).unwrap();
        assert_eq!(report.applied + report.noops, chunk.len());
        // Queries between mutation barriers go through the parallel batch.
        let requests: Vec<CountRequest> = queries
            .iter()
            .map(|q| CountRequest::exact(q.clone()))
            .collect();
        let batched = engine.run_batch(&requests);
        let fresh = RepairEngine::new(fresh_copy(engine.database()), engine.keys().clone());
        for (request, report) in requests.iter().zip(batched) {
            let got = report.unwrap();
            let expected = fresh.run(request).unwrap();
            assert_eq!(
                got.answer.as_count().unwrap(),
                expected.answer.as_count().unwrap(),
                "batched count for {}",
                request.query()
            );
        }
        let recomputed = count_repairs(&BlockPartition::new(engine.database(), engine.keys()));
        assert_eq!(*engine.total_repairs(), recomputed);
    }
}

/// One pseudo-random session step: an insert, a delete of a live fact, or
/// nothing (when the coin asks for a delete on an empty database).
fn random_mutation(db: &Database, state: u64) -> Option<Mutation> {
    let relation = if state & 1 == 0 { "R" } else { "S" };
    let key = (state >> 8) % 5;
    let payload = (state >> 16) % 3;
    if (state >> 24).is_multiple_of(3) {
        let victim = db
            .iter()
            .nth((state >> 32) as usize % db.len().max(1))
            .map(|(id, _)| id)?;
        Some(Mutation::Delete(victim))
    } else {
        let fact = db
            .parse_fact(&format!("{relation}({key}, 'p{payload}')"))
            .expect("generated facts are well-formed");
        Some(Mutation::Insert(fact))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Property: after any random interleaving of inserts, deletes and
    /// queries, every report equals one from a fresh engine built on the
    /// final database state, and `total_repairs` matches the recomputed
    /// product.
    #[test]
    fn prop_mutated_engine_matches_fresh_engine(
        seed in 0u64..500,
        blocks in 2usize..4,
        steps in 4usize..12,
    ) {
        let (db, keys) = InconsistentDbConfig {
            relations: vec![RelationSpec::keyed("R", blocks), RelationSpec::keyed("S", blocks)],
            block_sizes: BlockSizeDistribution::Fixed(2),
            payload_domain: 3,
            seed,
        }
        .generate();
        let mut engine = RepairEngine::new(db.clone(), keys);
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        for step in 0..steps {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if let Some(mutation) = random_mutation(engine.database(), state) {
                engine.apply(mutation).unwrap();
            }
            // Interleave queries so plans are cached (and later re-derived)
            // mid-session, not only at the end.
            let q = random_point_query_union(
                engine.database(),
                &QueryGenConfig { size: 2, seed: state },
            );
            engine.run(&CountRequest::exact(q)).unwrap();
            if step % 3 == 1 {
                let q = random_join_query(
                    engine.database(),
                    engine.keys(),
                    &QueryGenConfig { size: 2, seed: state },
                );
                engine.run(&CountRequest::decision(q)).unwrap();
            }
        }
        let final_queries: Vec<Query> = vec![
            random_point_query_union(engine.database(), &QueryGenConfig { size: 2, seed }),
            random_join_query(engine.database(), engine.keys(), &QueryGenConfig { size: 2, seed }),
            parse_query("TRUE").unwrap(),
            parse_query("FALSE").unwrap(),
        ];
        assert_parity(&engine, &final_queries);
    }
}
