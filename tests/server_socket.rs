//! End-to-end socket tests for the serving front end.
//!
//! The ground truth everywhere is the [`Oracle`]: a single-threaded
//! replay of the same wire lines through the same parsing, scheduling
//! surface and rendering code over a bare [`RepairEngine`].  Wire replies
//! carry no wall-clock provenance, so a recorded interleaving must
//! reproduce byte for byte.

use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use repair_count::prelude::*;
use repair_count::workloads::{employee_example, two_source_customers};

fn start_server(engine: RepairEngine, configure: impl FnOnce(&mut ServerConfig)) -> Server {
    let mut config = ServerConfig::bind("127.0.0.1:0");
    let mut poll = Duration::from_millis(25);
    std::mem::swap(&mut config.poll_interval, &mut poll);
    configure(&mut config);
    Server::start(engine, config).expect("binding an ephemeral loopback port")
}

fn employee_engine() -> RepairEngine {
    let (db, keys) = employee_example();
    RepairEngine::new(db, keys)
}

/// The id a successful `OK INSERT id=<n> …` reply assigned.
fn inserted_id(reply: &str) -> usize {
    reply
        .strip_prefix("OK INSERT id=")
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|id| id.parse().ok())
        .unwrap_or_else(|| panic!("not an insert reply: {reply}"))
}

/// Acceptance: two concurrent clients interleave mutations and
/// `COUNT`/`CERTAIN` queries over real sockets; every reply must match a
/// single-threaded replay of the recorded command sequence against a bare
/// engine.
#[test]
fn concurrent_clients_match_single_threaded_replay() {
    // Each entry is one command with the replies it drew, in the global
    // order the server processed them (the turn lock serialises turns
    // while both clients stay genuinely concurrent connections).
    type TurnLog = Arc<Mutex<Vec<(String, Vec<String>)>>>;

    let server = start_server(employee_engine(), |_| {});
    let log: TurnLog = Arc::new(Mutex::new(Vec::new()));

    let q_join = "EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)";
    let q_it = "EXISTS n . Employee(2, n, 'IT')";

    let addr = server.addr();
    let scripted = |script: Vec<String>, log: TurnLog| {
        thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            let mut last_insert_id = None;
            for step in script {
                // A `DELETE last` step deletes the fact this client
                // inserted most recently — ids are learned from replies,
                // exactly like a real client.
                let line = match (step.as_str(), last_insert_id) {
                    ("DELETE last", Some(id)) => format!("DELETE {id}"),
                    _ => step.clone(),
                };
                let mut log = log.lock().unwrap();
                let replies = if line == "BATCH-DEMO" {
                    let items = [format!("COUNT auto {q_it}"), format!("CERTAIN {q_join}")];
                    let items: Vec<&str> = items.iter().map(String::as_str).collect();
                    let replies = client.send_batch(&items).expect("batch");
                    let mut lines = vec!["BATCH".to_string()];
                    lines.extend(items.iter().map(|s| s.to_string()));
                    lines.push("END".to_string());
                    log.push((lines.join("\u{1}"), replies.clone()));
                    replies
                } else {
                    let reply = client.send(&line).expect("send");
                    log.push((line.clone(), vec![reply.clone()]));
                    vec![reply]
                };
                if replies[0].starts_with("OK INSERT id=") {
                    last_insert_id = Some(inserted_id(&replies[0]));
                }
            }
        })
    };

    let a = scripted(
        vec![
            format!("COUNT auto {q_join}"),
            "INSERT Employee(2, 'Eve', 'Finance')".to_string(),
            format!("CERTAIN {q_it}"),
            format!("COUNT auto {q_join}"),
            "DELETE last".to_string(),
            format!("CERTAIN {q_it}"),
            "STATS".to_string(),
        ],
        Arc::clone(&log),
    );
    let b = scripted(
        vec![
            format!("CERTAIN {q_it}"),
            "INSERT Employee(3, 'Ann', 'IT')".to_string(),
            format!("COUNT auto {q_it}"),
            "BATCH-DEMO".to_string(),
            "INSERT Employee(3, 'Kim', 'HR')".to_string(),
            format!("COUNT auto {q_join}"),
            "STATS".to_string(),
        ],
        Arc::clone(&log),
    );
    a.join().expect("client A panicked");
    b.join().expect("client B panicked");

    // Single-threaded replay of the recorded global order.
    let mut oracle = Oracle::new(employee_engine());
    let log = log.lock().unwrap();
    assert_eq!(log.len(), 14, "both scripts ran to completion");
    for (command, expected) in log.iter() {
        let mut got = Vec::new();
        for line in command.split('\u{1}') {
            got.extend(oracle.feed(line));
        }
        assert_eq!(&got, expected, "replay diverged on `{command}`");
    }

    server.shutdown();
    let stats = server.join();
    assert_eq!(stats.recovered_panics, 0);
    assert_eq!(stats.connections, 2);
}

/// Free-running concurrency (no turn lock): one client mutates and
/// queries `Customer`, another only queries `Order`.  The mutator's
/// replies must match its own single-threaded replay exactly (it is the
/// only mutator, so ids, generations and totals are its own); the
/// reader's `FREQ`/`CERTAIN`/`DECIDE` payloads are invariant under
/// other-relation mutations and must match a replay over the base engine.
#[test]
fn free_running_clients_stay_consistent() {
    let engine = || {
        let (db, keys) = two_source_customers(12, 3);
        RepairEngine::new(db, keys)
    };
    let server = start_server(engine(), |config| config.workers = 4);
    let addr = server.addr();

    let mutator = thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        let mut log = Vec::new();
        let mut inserted = Vec::new();
        for round in 0..12 {
            let fact = format!("INSERT Customer({}, 'Springfield', 'merged')", round % 5);
            let reply = client.send(&fact).expect("send");
            if reply.starts_with("OK INSERT id=") {
                inserted.push(inserted_id(&reply));
            }
            log.push((fact, reply));
            let query = format!("FREQ EXISTS s . Customer({}, 'Springfield', s)", round % 5);
            let reply = client.send(&query).expect("send");
            log.push((query, reply));
            if round % 3 == 2 {
                if let Some(id) = inserted.pop() {
                    let line = format!("DELETE {id}");
                    let reply = client.send(&line).expect("send");
                    log.push((line, reply));
                }
            }
        }
        log
    });
    let reader = thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        let mut log = Vec::new();
        for round in 0..24 {
            let id = 1000 + (round % 12);
            let line = match round % 3 {
                0 => format!("FREQ EXISTS c, a . Order({id}, c, a)"),
                1 => format!("CERTAIN EXISTS c, a . Order({id}, c, a)"),
                _ => format!("DECIDE EXISTS o, a . Order(o, {}, a)", round % 12),
            };
            let reply = client.send(&line).expect("send");
            log.push((line, reply));
        }
        log
    });
    let mutator_log = mutator.join().expect("mutator panicked");
    let reader_log = reader.join().expect("reader panicked");

    // The mutator replays exactly: it owned every mutation.
    let mut oracle = Oracle::new(engine());
    for (line, expected) in &mutator_log {
        let got = oracle.feed(line);
        assert_eq!(&got[0], expected, "mutator replay diverged on `{line}`");
    }
    // The reader's payloads (the part before provenance) are invariant.
    let mut oracle = Oracle::new(engine());
    for (line, expected) in &reader_log {
        let got = oracle.feed(line);
        let payload = |reply: &str| {
            reply
                .split(" strategy=")
                .next()
                .unwrap_or(reply)
                .to_string()
        };
        assert_eq!(
            payload(&got[0]),
            payload(expected),
            "reader payload diverged on `{line}`"
        );
    }

    server.shutdown();
    assert_eq!(server.join().recovered_panics, 0);
}

/// Acceptance: a `BATCH` overload draws a `SERVER BUSY` backpressure
/// reply immediately instead of queueing without bound (or hanging).
#[test]
fn batch_overload_draws_server_busy() {
    let server = start_server(employee_engine(), |config| {
        config.batch_permits = 1;
        config.workers = 4;
    });
    let addr = server.addr();

    // Client A occupies the only batch permit for ~1.5 s.
    let occupant = thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client
            .send_batch(&["SLEEP 1500", "COUNT auto EXISTS n . Employee(2, n, 'IT')"])
            .expect("batch")
    });
    thread::sleep(Duration::from_millis(300));

    // Client B's batch is refused immediately, and the same connection
    // keeps working: plain queries bypass batch admission, and the batch
    // succeeds once the permit frees up.
    let mut probe = Client::connect(addr).expect("connect");
    let started = std::time::Instant::now();
    let refused = probe
        .send_batch(&["COUNT auto EXISTS n . Employee(2, n, 'IT')"])
        .expect("probe batch");
    assert!(
        started.elapsed() < Duration::from_millis(700),
        "backpressure must reply immediately, not queue behind the sleeper"
    );
    assert_eq!(refused.len(), 1);
    assert!(
        refused[0].starts_with("ERR BUSY SERVER BUSY"),
        "{}",
        refused[0]
    );
    let reply = probe
        .send("COUNT auto EXISTS n . Employee(2, n, 'IT')")
        .expect("plain query");
    assert!(reply.starts_with("OK COUNT 4 "), "{reply}");

    let replies = occupant.join().expect("occupant panicked");
    assert_eq!(replies[0], "OK BATCH 2");
    assert_eq!(replies[1], "OK SLEPT 1500");
    assert!(replies[2].starts_with("OK COUNT 4 "), "{}", replies[2]);

    let retried = probe
        .send_batch(&["COUNT auto EXISTS n . Employee(2, n, 'IT')"])
        .expect("retry batch");
    assert_eq!(retried[0], "OK BATCH 1");
    assert!(retried[1].starts_with("OK COUNT 4 "), "{}", retried[1]);

    server.shutdown();
    let stats = server.join();
    assert!(stats.busy_rejections >= 1);
    assert_eq!(stats.recovered_panics, 0);
}

/// Regression: fact-id exhaustion (and every other engine error) is an
/// `ERR <code> <msg>` reply that keeps the connection and the worker
/// alive — `Database::insert` used to panic, which would unwind a worker
/// mid-command.
#[test]
fn fact_id_exhaustion_is_a_reply_not_a_dead_worker() {
    let (db, keys) = employee_example();
    let engine = RepairEngine::new(db.with_fact_id_capacity(5), keys);
    let server = start_server(engine, |_| {});
    let mut client = Client::connect(server.addr()).expect("connect");

    // The base consumed ids 0..=3; one id remains.
    let reply = client.send("INSERT Employee(3, 'Ann', 'IT')").unwrap();
    assert_eq!(reply, "OK INSERT id=4 applied=1 gen=1 total=4");
    let reply = client.send("INSERT Employee(4, 'Joe', 'IT')").unwrap();
    assert!(reply.starts_with("ERR EXHAUSTED "), "{reply}");
    // The connection survives; deletes do not reclaim id space.
    let reply = client.send("DELETE 4").unwrap();
    assert!(reply.starts_with("OK DELETE id=4 "), "{reply}");
    let reply = client.send("INSERT Employee(3, 'Ann', 'IT')").unwrap();
    assert!(reply.starts_with("ERR EXHAUSTED "), "{reply}");
    // An atomic batch that would exhaust ids is rejected up front.
    let replies = client
        .send_batch(&[
            "INSERT Employee(5, 'Amy', 'IT')",
            "INSERT Employee(6, 'Max', 'IT')",
        ])
        .unwrap();
    assert_eq!(replies.len(), 1);
    assert!(replies[0].starts_with("ERR EXHAUSTED "), "{}", replies[0]);
    let reply = client.send("STATS").unwrap();
    assert!(reply.starts_with("OK STATS facts=4 ids=5 "), "{reply}");

    server.shutdown();
    let stats = server.join();
    assert_eq!(stats.recovered_panics, 0, "no worker unwound");
}

/// Acceptance: a capped session that would previously die with
/// `ERR EXHAUSTED` survives indefinitely under `--auto-compact` — the
/// scheduler compacts (an exclusive write-guard operation between
/// commands) before a mutation would run out of id headroom, and a
/// manual `COMPACT` recovers an already-exhausted session too.
#[test]
fn auto_compact_outlives_the_fact_id_cap() {
    let (db, keys) = employee_example();
    let engine = RepairEngine::new(db.with_fact_id_capacity(8), keys);
    let server = start_server(engine, |config| config.auto_compact = Some(3));
    let mut client = Client::connect(server.addr()).expect("connect");

    // 60 insert/delete cycles consume 60 fact ids against a capacity of
    // 8.  Without the policy the 5th cycle dies; with it, every reply is
    // OK and the waste gauge stays under the threshold.
    for cycle in 0..60 {
        let reply = client.send("INSERT Employee(9, 'Flux', 'Ops')").unwrap();
        assert!(reply.starts_with("OK INSERT "), "cycle {cycle}: {reply}");
        let id = inserted_id(&reply);
        let reply = client.send(&format!("DELETE {id}")).unwrap();
        assert!(reply.starts_with("OK DELETE "), "cycle {cycle}: {reply}");
    }
    let reply = client.send("STATS").unwrap();
    assert!(reply.starts_with("OK STATS facts=4 "), "{reply}");
    assert!(reply.contains(" cap=8 "), "{reply}");
    let ids: u32 = reply
        .split_whitespace()
        .find_map(|field| field.strip_prefix("ids="))
        .and_then(|v| v.parse().ok())
        .expect("STATS reports ids=");
    assert!(ids <= 8, "id consumption stays within the cap: {reply}");

    // A manual COMPACT recovers a session that already hit the wall.
    let reply = client.send("COMPACT").unwrap();
    assert!(
        reply.starts_with("OK COMPACTED facts=4 slots=2 "),
        "{reply}"
    );

    server.shutdown();
    let stats = server.join();
    assert_eq!(stats.recovered_panics, 0, "no worker unwound");
}

/// Regression: a handler panicking while holding the engine's *write*
/// lock poisons it; later guards must recover instead of wedging or
/// killing the server.  The chaos-only `PANIC` verb reproduces the old
/// `Database::insert` unwind-in-worker failure mode on demand.
#[test]
fn poisoned_lock_recovery_keeps_serving() {
    let server = start_server(employee_engine(), |config| config.chaos = true);
    let addr = server.addr();

    let mut victim = Client::connect(addr).expect("connect");
    victim.send_line("PANIC").expect("send");
    // The handler dies without a reply; the worker catches the unwind and
    // drops the connection.
    assert!(victim.read_line().is_err(), "the panicking session closes");

    // A fresh session reads and writes through the recovered lock.
    let mut client = Client::connect(addr).expect("connect");
    let reply = client.send("STATS").unwrap();
    assert!(reply.starts_with("OK STATS facts=4 "), "{reply}");
    let reply = client.send("INSERT Employee(2, 'Eve', 'Finance')").unwrap();
    assert_eq!(reply, "OK INSERT id=4 applied=1 gen=1 total=6");
    let reply = client
        .send("COUNT auto EXISTS n . Employee(2, n, 'IT')")
        .unwrap();
    assert!(reply.starts_with("OK COUNT 4 "), "{reply}");

    // The same state as a never-poisoned single-threaded session.
    let mut oracle = Oracle::new(employee_engine());
    oracle.feed("STATS");
    oracle.feed("INSERT Employee(2, 'Eve', 'Finance')");
    oracle.feed("COUNT auto EXISTS n . Employee(2, n, 'IT')");
    let expected = oracle.feed("STATS");
    assert_eq!(client.send("STATS").unwrap(), expected[0]);

    server.shutdown();
    let stats = server.join();
    assert_eq!(stats.recovered_panics, 1, "exactly the chaos panic");
}

/// `PANIC` without `--chaos` is just an unknown verb.
#[test]
fn chaos_verbs_are_gated() {
    let server = start_server(employee_engine(), |_| {});
    let mut client = Client::connect(server.addr()).expect("connect");
    let reply = client.send("PANIC").unwrap();
    assert!(reply.starts_with("ERR UNKNOWN "), "{reply}");
    server.shutdown();
    assert_eq!(server.join().recovered_panics, 0);
}

/// Acceptance: with `--admin-token` set, `SHUTDOWN` and the chaos verbs
/// (`SLEEP`, `PANIC`) answer `ERR DENIED …` until the connection sends
/// `AUTH <token>` — and a denial is a reply, never a disconnect.
#[test]
fn admin_token_gates_shutdown_and_chaos_verbs() {
    let server = start_server(employee_engine(), |config| {
        config.chaos = true;
        config.admin_token = Some("sesame".to_string());
    });
    let mut client = Client::connect(server.addr()).expect("connect");

    for (line, verb) in [
        ("SLEEP 0", "SLEEP"),
        ("PANIC", "PANIC"),
        ("SHUTDOWN", "SHUTDOWN"),
    ] {
        let reply = client.send(line).unwrap();
        assert_eq!(
            reply,
            format!("ERR DENIED {verb} requires AUTH on this server")
        );
    }
    // The connection survives every denial, and data verbs are open.
    let reply = client
        .send("COUNT auto EXISTS n . Employee(2, n, 'IT')")
        .unwrap();
    assert!(reply.starts_with("OK COUNT 4 "), "{reply}");
    // A batch-embedded SLEEP is gated too.
    let replies = client
        .send_batch(&["COUNT auto EXISTS n . Employee(2, n, 'IT')", "SLEEP 0"])
        .unwrap();
    assert_eq!(
        replies,
        vec!["ERR DENIED SLEEP requires AUTH on this server"]
    );

    // A wrong token does not unlock; the right one does.
    assert_eq!(
        client.send("AUTH opensesame").unwrap(),
        "ERR DENIED bad admin token"
    );
    assert_eq!(
        client.send("SLEEP 0").unwrap(),
        "ERR DENIED SLEEP requires AUTH on this server"
    );
    assert_eq!(client.send("AUTH sesame").unwrap(), "OK AUTH");
    assert_eq!(client.send("SLEEP 0").unwrap(), "OK SLEPT 0");

    // AUTH is per-connection: a fresh session starts denied.
    let mut other = Client::connect(server.addr()).expect("connect");
    assert_eq!(
        other.send("SHUTDOWN").unwrap(),
        "ERR DENIED SHUTDOWN requires AUTH on this server"
    );

    assert_eq!(client.send("SHUTDOWN").unwrap(), "OK SHUTDOWN");
    let stats = server.join();
    assert_eq!(stats.recovered_panics, 0, "every denial was a reply");
}

/// Acceptance: a sharded server's replies — mutations, scatter–gather
/// queries, batches, compaction, seeded estimates — are byte-identical
/// to the single-engine oracle replaying the same lines, and its `STATS`
/// head matches with per-shard gauges appended.
#[test]
fn sharded_server_matches_the_unsharded_oracle() {
    let (db, keys) = employee_example();
    let engine = ShardedEngine::new(db, keys, 4);
    let mut config = ServerConfig::bind("127.0.0.1:0");
    config.poll_interval = Duration::from_millis(25);
    let server = Server::start_sharded(engine, config).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let mut oracle = Oracle::new(employee_engine());

    let q_join = "EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)";
    let script = [
        format!("COUNT auto {q_join}"),
        "INSERT Employee(2, 'Eve', 'Finance')".to_string(),
        "FREQ EXISTS n . Employee(2, n, 'IT')".to_string(),
        "APPROX 0.25 0.1 42 EXISTS n . Employee(2, n, 'IT')".to_string(),
        "DELETE 1".to_string(),
        "COMPACT VERBOSE".to_string(),
        format!("CERTAIN {q_join}"),
        "DELETE 99".to_string(),
    ];
    for line in &script {
        let expected = oracle.feed(line);
        if line == "COMPACT VERBOSE" {
            // Multi-line reply: read the header, then one line per remap.
            client.send_line(line).expect("send");
            let mut got = vec![client.read_line().expect("header")];
            let remaps: usize = got[0]
                .rsplit("remaps=")
                .next()
                .and_then(|n| n.parse().ok())
                .expect("remap count");
            for _ in 0..remaps {
                got.push(client.read_line().expect("remap line"));
            }
            assert_eq!(got, expected, "diverged on `{line}`");
        } else {
            let reply = client.send(line).expect("send");
            assert_eq!(vec![reply], expected, "diverged on `{line}`");
        }
    }
    // Mutation batches aggregate identically.
    let batch = [
        "INSERT Employee(3, 'Ann', 'IT')",
        "INSERT Employee(3, 'Kim', 'HR')",
    ];
    let replies = client.send_batch(&batch).expect("batch");
    let mut expected = Vec::new();
    expected.extend(oracle.feed("BATCH"));
    for line in batch {
        expected.extend(oracle.feed(line));
    }
    expected.extend(oracle.feed("END"));
    assert_eq!(replies, expected);

    // STATS: the unsharded head plus per-shard gauges.
    let stats_line = client.send("STATS").unwrap();
    let oracle_stats = oracle.feed("STATS");
    assert!(stats_line.starts_with(&oracle_stats[0]), "{stats_line}");
    assert!(stats_line.contains(" | shards=4 s0="), "{stats_line}");

    server.shutdown();
    assert_eq!(server.join().recovered_panics, 0);
}

/// Regression for the sharded path's permit-pool audit: an overloaded
/// batch pool on a sharded server answers `ERR BUSY` immediately, and the
/// permit always comes back when the admitted batch finishes — the pool
/// must not leak under the sharded backend any more than under the
/// single-engine one.
#[test]
fn sharded_batch_overload_draws_server_busy_and_recovers() {
    let (db, keys) = employee_example();
    let mut config = ServerConfig::bind("127.0.0.1:0");
    config.poll_interval = Duration::from_millis(25);
    config.batch_permits = 1;
    config.workers = 4;
    let server = Server::start_sharded(ShardedEngine::new(db, keys, 4), config).expect("bind");
    let addr = server.addr();

    // Client A occupies the only batch permit for ~1.2 s.
    let occupant = thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client
            .send_batch(&["SLEEP 1200", "COUNT auto EXISTS n . Employee(2, n, 'IT')"])
            .expect("batch")
    });
    thread::sleep(Duration::from_millis(300));

    // Client B is refused immediately; plain scatter–gather queries
    // bypass batch admission and keep working on the same connection.
    let mut probe = Client::connect(addr).expect("connect");
    let refused = probe
        .send_batch(&["COUNT auto EXISTS n . Employee(2, n, 'IT')"])
        .expect("probe batch");
    assert_eq!(refused.len(), 1);
    assert!(
        refused[0].starts_with("ERR BUSY SERVER BUSY"),
        "{}",
        refused[0]
    );
    let reply = probe
        .send("COUNT auto EXISTS n . Employee(2, n, 'IT')")
        .expect("plain query");
    assert!(reply.starts_with("OK COUNT 4 "), "{reply}");

    let replies = occupant.join().expect("occupant panicked");
    assert_eq!(replies[0], "OK BATCH 2");

    // The finished batch returned its permit: the retry is admitted.
    let retried = probe
        .send_batch(&["COUNT auto EXISTS n . Employee(2, n, 'IT')"])
        .expect("retry batch");
    assert_eq!(retried[0], "OK BATCH 1");
    assert!(retried[1].starts_with("OK COUNT 4 "), "{}", retried[1]);

    server.shutdown();
    let stats = server.join();
    assert!(stats.busy_rejections >= 1);
    assert_eq!(stats.recovered_panics, 0);
}

/// `QUIT` closes one session; `SHUTDOWN` drains the whole server and
/// `join` returns its final counters.
#[test]
fn quit_and_shutdown_are_clean() {
    let server = start_server(employee_engine(), |_| {});
    let mut client = Client::connect(server.addr()).expect("connect");
    assert_eq!(client.send("QUIT").unwrap(), "OK BYE");
    assert!(client.read_line().is_err(), "the session is closed");

    let mut client = Client::connect(server.addr()).expect("connect");
    assert_eq!(client.send("SHUTDOWN").unwrap(), "OK SHUTDOWN");
    let stats = server.join();
    assert_eq!(stats.connections, 2);
    assert_eq!(stats.recovered_panics, 0);
}
