//! Protocol robustness: arbitrary byte lines — garbage verbs, overlong
//! lines, partial writes, abrupt disconnects, interleaved mutations from
//! two clients — must never panic a server thread, and after any session
//! the served engine must be bit-for-bit equal to a fresh engine built on
//! the final fact set (the `engine_mutation_parity` harness's criterion,
//! checked here through the wire).  Each generated case also picks the
//! backend — the classic `RwLock<RepairEngine>`, the sharded
//! scatter–gather router at 1–4 shards, or a replicated primary logging
//! to disk — since hostile input must not care what engine is behind the
//! socket.  The replicated cases additionally boot a follower afterwards
//! and demand catch-up plus gauge parity, and every case now mixes
//! garbage `REPL` frames into the hostile stream.
//!
//! Binary `BULK` frames joined the chaos with the bulk-ingest PR: valid
//! frames must answer exactly like their textual lines, while flipped
//! payload bytes, flipped checksums, truncated structures, unknown
//! versions, out-of-range symbol indexes and oversize length prefixes
//! must each draw one deterministic `ERR FRAME …` line, execute
//! nothing, and leave the connection in line mode — and a peer that
//! vanishes mid-frame must not disturb anyone else.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use proptest::prelude::*;
use repair_count::db::snapshot::crc32;
use repair_count::db::{count_repairs, BlockPartition};
use repair_count::prelude::*;
use repair_count::workloads::sensor_readings;

fn fuzz_config() -> ServerConfig {
    let mut config = ServerConfig::bind("127.0.0.1:0");
    config.poll_interval = Duration::from_millis(25);
    config.max_line_bytes = 512;
    config
}

fn start_server(engine: RepairEngine, chaos_free_config: impl FnOnce(&mut ServerConfig)) -> Server {
    let mut config = fuzz_config();
    chaos_free_config(&mut config);
    Server::start(engine, config).expect("binding an ephemeral loopback port")
}

static REPLOG_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh, empty directory for one replicated-primary case's log.
fn temp_log_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cdr-fuzz-replog-{}-{}",
        std::process::id(),
        REPLOG_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// `mode == 0` serves the classic `RwLock<RepairEngine>` backend, modes
/// 1–4 the sharded scatter–gather router at that shard count, and mode 5
/// a replicated primary appending to an on-disk command log (the second
/// return is the log directory to clean up).  The fuzz property runs
/// against all of them — hostile bytes must not care which engine is
/// behind the socket, and the parity criterion is backend-independent.
fn start_fuzz_server(
    db: Database,
    keys: KeySet,
    mode: usize,
) -> (Server, Option<std::path::PathBuf>) {
    if mode == 0 {
        (start_server(RepairEngine::new(db, keys), |_| {}), None)
    } else if mode == 5 {
        let dir = temp_log_dir();
        let backend = ReplicatedBackend::primary(RepairEngine::new(db, keys), &dir)
            .expect("a fresh log directory always opens");
        let server = Server::start_replicated(backend, fuzz_config())
            .expect("binding an ephemeral loopback port");
        (server, Some(dir))
    } else {
        let server = Server::start_sharded(ShardedEngine::new(db, keys, mode), fuzz_config())
            .expect("binding an ephemeral loopback port");
        (server, None)
    }
}

/// Reads the rest of a multi-line `REPL` reply whose header announces
/// `n=`/`chunks=` continuation lines — or, for the binary forms, the
/// raw body whose byte count the header announces — so the connection
/// never desyncs.
fn drain_repl_reply(client: &mut Client, header: &str) {
    if let Some(rest) = header.strip_prefix("OK REPL BATCH ") {
        let len = rest
            .split_whitespace()
            .next()
            .and_then(|token| token.parse::<usize>().ok())
            .expect("BATCH headers announce their frame length");
        client.read_exact(len).expect("announced batch frame");
        return;
    }
    if header.starts_with("OK REPL SNAPSHOT BIN ") {
        let bytes = stat_field(header, "bytes=").expect("snapshot bytes");
        let chunks = stat_field(header, "chunks=").expect("snapshot chunks");
        client
            .read_exact(bytes as usize + 8 * chunks as usize)
            .expect("announced snapshot chunks");
        return;
    }
    let continuation = header
        .split_whitespace()
        .find_map(|token| {
            token
                .strip_prefix("n=")
                .or_else(|| token.strip_prefix("chunks="))
        })
        .and_then(|value| value.parse::<usize>().ok())
        .unwrap_or(0);
    for _ in 0..continuation {
        let line = client.read_line().expect("announced REPL line");
        assert!(
            line.starts_with("REPL RECORD ") || line.starts_with("REPL CHUNK "),
            "{line}"
        );
    }
}

fn base() -> (Database, KeySet) {
    sensor_readings(4, 3, 2)
}

/// Rebuilds the state a cold restart would load: exactly the live facts,
/// in id order (the `engine_mutation_parity` notion of the "final fact
/// set").
fn fresh_engine(live: &BTreeMap<usize, String>) -> RepairEngine {
    let (db, keys) = base();
    let mut facts: Vec<Fact> = Vec::new();
    for text in live.values() {
        facts.push(db.parse_fact(text).expect("tracked facts are valid"));
    }
    let mut rebuilt = Database::new(db.schema().clone());
    for fact in facts {
        rebuilt.insert(fact).expect("tracked facts are valid");
    }
    RepairEngine::new(rebuilt, keys)
}

/// The parity criterion: totals and exact counts of the served engine
/// (observed through the wire) equal a fresh engine on the live facts.
fn assert_served_parity(client: &mut Client, live: &BTreeMap<usize, String>) {
    let fresh = fresh_engine(live);
    let stats = client.send("STATS").expect("STATS");
    let expected = format!("OK STATS facts={} ids=", fresh.database().len());
    assert!(stats.starts_with(&expected), "{stats} vs {expected}");
    let total = format!(" total={} gen=", fresh.total_repairs());
    assert!(stats.contains(&total), "{stats} vs {total}");
    let recomputed = count_repairs(&BlockPartition::new(fresh.database(), fresh.keys()));
    assert_eq!(*fresh.total_repairs(), recomputed);
    for (sensor, tick) in [(0, 0), (1, 2), (3, 1)] {
        let query = format!("EXISTS v . Reading({sensor}, {tick}, v)");
        let reply = client.send(&format!("COUNT auto {query}")).expect("COUNT");
        let request = CountRequest::exact(parse_query(&query).unwrap());
        let count = fresh
            .run(&request)
            .unwrap()
            .answer
            .as_count()
            .unwrap()
            .clone();
        let expected = format!("OK COUNT {count} ");
        assert!(reply.starts_with(&expected), "{reply} vs {expected}");
    }
}

/// Wraps a raw payload in a fresh, *correct* checksum — for frame cases
/// where the payload itself carries the defect under test.
fn reframe(payload: &[u8]) -> Vec<u8> {
    let mut frame = crc32(payload).to_le_bytes().to_vec();
    frame.extend_from_slice(payload);
    frame
}

/// One xorshift step: the deterministic chaos source for a case.
fn next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property: any interleaving of valid mutations, valid queries and
    /// hostile garbage from two concurrent client connections leaves the
    /// server alive (every line answered, no worker panics) and the
    /// engine in parity with a fresh engine on the final fact set.
    #[test]
    fn arbitrary_lines_never_panic_the_server(
        seed in 0u64..300,
        steps in 20usize..48,
        mode in 0usize..6,
    ) {
        let (db, keys) = base();
        // Track live facts by id: the base assigned 0..n in insertion order.
        let mut live: BTreeMap<usize, String> = db
            .iter()
            .map(|(id, fact)| (id.index(), fact.display(db.schema()).to_string()))
            .collect();
        let mut next_id = live.len();
        // The schema view the bulk-frame arms encode against.
        let codec_db = db.clone();

        let (server, log_dir) = start_fuzz_server(db, keys, mode);
        let mut clients = [
            Client::connect(server.addr()).expect("connect"),
            Client::connect(server.addr()).expect("connect"),
        ];
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(11);
        for step in 0..steps {
            let who = (next(&mut state) >> 7) as usize % 2;
            let client = &mut clients[who];
            match next(&mut state) % 12 {
                // Fresh insert (values disjoint from the base generator).
                0 | 1 => {
                    let sensor = next(&mut state) % 4;
                    let tick = next(&mut state) % 3;
                    let value = 1000 + step;
                    let line = format!("INSERT Reading({sensor}, {tick}, {value})");
                    let reply = client.send(&line).expect("insert reply");
                    prop_assert!(reply.starts_with("OK INSERT id="), "{}", reply);
                    live.insert(next_id, format!("Reading({sensor}, {tick}, {value})"));
                    next_id += 1;
                }
                // Delete a live fact (or draw MISSING on an exhausted id).
                2 => {
                    let target = live
                        .keys()
                        .nth(next(&mut state) as usize % live.len().max(1))
                        .copied();
                    if let Some(id) = target {
                        let reply = client.send(&format!("DELETE {id}")).expect("delete reply");
                        prop_assert!(reply.starts_with("OK DELETE id="), "{}", reply);
                        live.remove(&id);
                    }
                }
                // Valid queries.
                3 => {
                    let sensor = next(&mut state) % 4;
                    let tick = next(&mut state) % 3;
                    let reply = client
                        .send(&format!("COUNT auto EXISTS v . Reading({sensor}, {tick}, v)"))
                        .expect("count reply");
                    prop_assert!(reply.starts_with("OK COUNT "), "{}", reply);
                }
                4 => {
                    let sensor = next(&mut state) % 4;
                    let reply = client
                        .send(&format!("CERTAIN EXISTS t, v . Reading({sensor}, t, v)"))
                        .expect("certain reply");
                    prop_assert!(reply.starts_with("OK CERTAIN "), "{}", reply);
                }
                // Garbage bytes (newline-free, then terminated): comments
                // and blank lines are silently skipped by design, anything
                // else draws one reply — either way the session survives,
                // which the `OK SLEPT 0` marker probe proves.
                5 => {
                    let len = 1 + next(&mut state) as usize % 40;
                    let junk: Vec<u8> = (0..len)
                        .map(|_| {
                            let b = (next(&mut state) % 255) as u8 + 1;
                            if b == b'\n' || b == b'\r' { b'?' } else { b }
                        })
                        .collect();
                    client.send_raw(&junk).expect("send junk");
                    client.send_raw(b"\nSLEEP 0\n").expect("terminate junk");
                    let mut lines = 0;
                    loop {
                        let reply = client.read_line().expect("session stays alive");
                        lines += 1;
                        prop_assert!(lines <= 2, "junk drew more than one reply");
                        if reply == "OK SLEPT 0" {
                            break;
                        }
                    }
                }
                // An overlong line: discarded, answered, session continues.
                6 => {
                    let line = format!("INSERT Reading(0, 0, {})", "9".repeat(600));
                    let reply = client.send(&line).expect("overlong reply");
                    prop_assert!(reply.starts_with("ERR LINE "), "{}", reply);
                }
                // A partial write split across flushes, completed later.
                7 => {
                    client.send_raw(b"STA").expect("partial write");
                    std::thread::sleep(Duration::from_millis(2));
                    client.send_raw(b"TS\n").expect("completion");
                    let reply = client.read_line().expect("reassembled line");
                    prop_assert!(reply.starts_with("OK STATS "), "{}", reply);
                }
                // Garbage / partial REPL frames: corrupt hex records, bad
                // cursors, truncated subcommands.  Non-replicated backends
                // refuse the verb, a replicated primary answers in
                // protocol — nobody panics, and multi-line replies are
                // drained so the session never desyncs.
                8 => {
                    let garbage = [
                        "REPL",
                        "REPL FETCH",
                        "REPL FETCH -1 nope",
                        "REPL FETCH 18446744073709551615 2",
                        "REPL RECORD deadbeef",
                        "REPL CHUNK zz!!",
                        "REPL NONSENSE 1 2 3",
                        "REPL HELLO",
                        "REPL FETCH 0 3",
                        "REPL FETCH 0 3 BIN",
                        "REPL FETCH 0 3 NOPE",
                        "REPL SNAPSHOT BIN",
                        "REPL SNAPSHOT NOPE",
                    ];
                    let line = garbage[next(&mut state) as usize % garbage.len()];
                    let reply = client.send(line).expect("repl reply");
                    prop_assert!(
                        reply.starts_with("OK REPL ") || reply.starts_with("ERR REPL "),
                        "{}",
                        reply
                    );
                    drain_repl_reply(client, &reply);
                }
                // A valid binary bulk frame: two fresh inserts, answered
                // with the same `OK INSERT id=…` lines the textual path
                // would have produced.
                9 => {
                    let lines: Vec<String> = (0..2usize)
                        .map(|k| {
                            let sensor = next(&mut state) % 4;
                            let tick = next(&mut state) % 3;
                            let value = 2000 + step * 2 + k;
                            format!("INSERT Reading({sensor}, {tick}, {value})")
                        })
                        .collect();
                    let ops: Vec<Mutation> = lines
                        .iter()
                        .map(|line| parse_mutation(line, &codec_db).expect("valid line"))
                        .collect();
                    let frame = encode_bulk(&codec_db, &ops);
                    let replies = client.send_bulk(&frame, ops.len()).expect("bulk replies");
                    prop_assert_eq!(replies.len(), lines.len());
                    for reply in &replies {
                        prop_assert!(reply.starts_with("OK INSERT id="), "{}", reply);
                    }
                    for line in &lines {
                        let fact = line.strip_prefix("INSERT ").unwrap().to_string();
                        live.insert(next_id, fact);
                        next_id += 1;
                    }
                }
                // A defective bulk frame: flipped payload byte, flipped
                // checksum byte, truncated structure, unknown version, or
                // an out-of-range symbol index.  Exactly one `ERR FRAME`
                // line, nothing executes, the session stays in line mode.
                10 => {
                    let ops =
                        vec![parse_mutation("INSERT Reading(0, 0, 9999)", &codec_db)
                            .expect("valid line")];
                    let frame = match next(&mut state) % 5 {
                        0 => {
                            let mut frame = encode_bulk(&codec_db, &ops);
                            let last = frame.len() - 1;
                            frame[last] ^= 0x20;
                            frame
                        }
                        1 => {
                            let mut frame = encode_bulk(&codec_db, &ops);
                            frame[2] ^= 0x01;
                            frame
                        }
                        2 => {
                            // Cut the payload short and re-checksum, so the
                            // truncated structure itself is at fault.
                            let whole = encode_bulk(&codec_db, &ops);
                            let keep = 5 + next(&mut state) as usize % (whole.len() - 6);
                            reframe(&whole[4..keep])
                        }
                        3 => {
                            // Version byte from the future, re-checksummed.
                            let whole = encode_bulk(&codec_db, &ops);
                            let mut payload = whole[4..].to_vec();
                            payload[0] = 99;
                            reframe(&payload)
                        }
                        _ => {
                            // Symbol index 7 against an empty dictionary,
                            // hand-assembled (every varint fits one byte).
                            reframe(&[1, 0, 1, 0, 0, 1, 7])
                        }
                    };
                    let replies = client.send_bulk(&frame, ops.len()).expect("frame reply");
                    prop_assert_eq!(replies.len(), 1);
                    prop_assert!(replies[0].starts_with("ERR FRAME "), "{}", replies[0]);
                    let probe = client.send("SLEEP 0").expect("session survives");
                    prop_assert_eq!(probe.as_str(), "OK SLEPT 0");
                }
                // An oversize length prefix: refused before any body byte
                // is read (none is ever sent), line mode resumes at once.
                _ => {
                    let reply = client.send("BULK 536870912").expect("oversize header reply");
                    prop_assert!(reply.starts_with("ERR FRAME "), "{}", reply);
                    let stats = client.send("STATS").expect("line mode resumed");
                    prop_assert!(stats.starts_with("OK STATS "), "{}", stats);
                }
            }
        }

        // An abrupt mid-line disconnect must not disturb the others.
        let mut rude = Client::connect(server.addr()).expect("connect");
        rude.send_raw(b"INSERT Reading(0, 0, 55").expect("half a line");
        drop(rude);
        // Nor a peer that promises a 64-byte frame, ships 10 and vanishes.
        let mut rude = Client::connect(server.addr()).expect("connect");
        rude.send_raw(b"BULK 64\n0123456789").expect("partial frame");
        drop(rude);

        assert_served_parity(&mut clients[0], &live);
        assert_served_parity(&mut clients[1], &live);

        // A replicated primary that survived the hostile stream must
        // still be tailable: boot a follower, wait for catch-up, and
        // demand gauge parity plus the read-only refusal.
        if mode == 5 {
            let upstream = server.addr().to_string();
            let follower_backend = ReplicatedBackend::follower(&upstream, None, |engine| engine)
                .expect("bootstrapping from a live primary");
            let follower =
                Server::start_replicated(follower_backend, fuzz_config()).expect("ephemeral port");
            let mut primary_client = Client::connect(server.addr()).expect("connect");
            let primary_stats = primary_client.send("STATS").expect("primary STATS");
            let target = stat_field(&primary_stats, "end=").expect("repl gauge");
            let mut follower_client = Client::connect(follower.addr()).expect("connect");
            let deadline = Instant::now() + Duration::from_secs(10);
            let follower_stats = loop {
                let reply = follower_client.send("STATS").expect("follower STATS");
                if stat_field(&reply, "end=").is_some_and(|end| end >= target) {
                    break reply;
                }
                prop_assert!(Instant::now() < deadline, "follower never caught up: {}", reply);
                std::thread::sleep(Duration::from_millis(10));
            };
            prop_assert_eq!(
                primary_stats.split(" | ").next(),
                follower_stats.split(" | ").next(),
                "gauge heads diverge"
            );
            let refused = follower_client
                .send("INSERT Reading(0, 0, 424242)")
                .expect("refusal reply");
            prop_assert!(refused.starts_with("ERR READONLY "), "{}", refused);
            follower.shutdown();
            prop_assert_eq!(follower.join().recovered_panics, 0, "follower never panicked");
        }

        server.shutdown();
        let stats = server.join();
        prop_assert_eq!(stats.recovered_panics, 0, "no worker ever panicked");
        if let Some(dir) = log_dir {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

/// `key=value` extraction from a `STATS` reply.
fn stat_field(line: &str, key: &str) -> Option<u64> {
    line.split_whitespace()
        .find_map(|token| token.strip_prefix(key))
        .and_then(|value| value.parse().ok())
}

/// Deterministic edge cases that deserve names of their own.
#[test]
fn overlong_line_then_valid_command() {
    let (db, keys) = base();
    let server = start_server(RepairEngine::new(db, keys), |_| {});
    let mut client = Client::connect(server.addr()).expect("connect");
    let mut junk = vec![b'x'; 2000];
    junk.push(b'\n');
    client.send_raw(&junk).expect("oversized line");
    let reply = client.read_line().expect("reply");
    assert!(reply.starts_with("ERR LINE "), "{reply}");
    let reply = client.send("STATS").expect("next command");
    assert!(reply.starts_with("OK STATS "), "{reply}");
    server.shutdown();
    assert_eq!(server.join().recovered_panics, 0);
}

#[test]
fn abrupt_disconnect_mid_batch_leaves_engine_untouched() {
    let (db, keys) = base();
    let total = RepairEngine::new(db.clone(), keys.clone())
        .total_repairs()
        .clone();
    let server = start_server(RepairEngine::new(db, keys), |_| {});
    let mut rude = Client::connect(server.addr()).expect("connect");
    rude.send_line("BATCH").expect("open a batch");
    rude.send_line("INSERT Reading(0, 0, 777)")
        .expect("queue a mutation");
    drop(rude); // vanish without END
    let mut client = Client::connect(server.addr()).expect("connect");
    let reply = client.send("STATS").expect("STATS");
    assert!(
        reply.contains(&format!(" total={total} gen=0 ")),
        "an unterminated batch applied nothing: {reply}"
    );
    server.shutdown();
    assert_eq!(server.join().recovered_panics, 0);
}

/// A scripted hostile upstream for the binary replication feed: it
/// handshakes like a binary-capable primary, then serves one defective
/// `REPL FETCH … BIN` reply per connection — a flipped payload byte, a
/// flipped checksum byte, a mid-frame disconnect after half the promised
/// bytes, an oversize `BATCH <len>` header, and a frame whose header
/// lies about the record count.  The tailer must degrade to
/// idle-and-retry on every one of them: one retry counted per defect,
/// zero records applied, no panic — and it recovers fully once
/// retargeted back at the real primary.
#[test]
fn a_hostile_binary_upstream_never_panics_the_tailer() {
    use repair_count::counting::replog::encode_record_batch;
    use std::io::{BufRead, BufReader, Write};

    let (db, keys) = base();
    let dir = temp_log_dir();
    let backend = ReplicatedBackend::primary(RepairEngine::new(db, keys), &dir).expect("primary");
    let primary = Server::start_replicated(backend, fuzz_config()).expect("bind primary");
    let mut client = Client::connect(primary.addr()).expect("connect primary");
    for value in 3000..3003 {
        let reply = client
            .send(&format!("INSERT Reading(0, 0, {value})"))
            .expect("insert");
        assert!(reply.starts_with("OK INSERT "), "{reply}");
    }
    let follower_backend = ReplicatedBackend::follower_with(
        &primary.addr().to_string(),
        None,
        FeedMode::Bin,
        64,
        |engine| engine,
    )
    .expect("bootstrap");

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind fake upstream");
    let fake_addr = listener.local_addr().expect("fake addr").to_string();
    const DEFECTS: u64 = 5;
    let hostile = std::thread::spawn(move || {
        for defect in 0..DEFECTS {
            let Ok((mut stream, _)) = listener.accept() else {
                return;
            };
            let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
            let mut line = String::new();
            loop {
                line.clear();
                if reader.read_line(&mut line).unwrap_or(0) == 0 {
                    break; // the tailer dropped the defective feed
                }
                if line.starts_with("REPL HELLO") {
                    stream
                        .write_all(
                            b"OK REPL HELLO epoch=0 base=0 end=9 snap=0 role=primary \
                              compact=off caps=bin\n",
                        )
                        .ok();
                } else if line.starts_with("REPL FETCH") {
                    let frame =
                        encode_record_batch(&[b"not-a-record".to_vec(), b"also-not".to_vec()]);
                    match defect {
                        0 => {
                            // Flipped payload byte: the checksum catches it.
                            let mut bad = frame.clone();
                            let last = bad.len() - 1;
                            bad[last] ^= 0x40;
                            let header = format!("OK REPL BATCH {} n=2 next=5 end=9\n", bad.len());
                            stream.write_all(header.as_bytes()).ok();
                            stream.write_all(&bad).ok();
                        }
                        1 => {
                            // Flipped checksum byte over an intact payload.
                            let mut bad = frame.clone();
                            bad[0] ^= 0x01;
                            let header = format!("OK REPL BATCH {} n=2 next=5 end=9\n", bad.len());
                            stream.write_all(header.as_bytes()).ok();
                            stream.write_all(&bad).ok();
                        }
                        2 => {
                            // Promise the frame, ship half of it, vanish.
                            let header =
                                format!("OK REPL BATCH {} n=2 next=5 end=9\n", frame.len());
                            stream.write_all(header.as_bytes()).ok();
                            stream.write_all(&frame[..frame.len() / 2]).ok();
                            break;
                        }
                        3 => {
                            // A 64 GiB length header: refused unread.
                            stream
                                .write_all(b"OK REPL BATCH 68719476736 n=1 next=5 end=9\n")
                                .ok();
                        }
                        _ => {
                            // The frame decodes but the header lies: n=3
                            // against a 2-record batch.
                            let header =
                                format!("OK REPL BATCH {} n=3 next=5 end=9\n", frame.len());
                            stream.write_all(header.as_bytes()).ok();
                            stream.write_all(&frame).ok();
                        }
                    }
                } else {
                    break;
                }
            }
        }
    });

    let mut config = fuzz_config();
    config.poll_interval = Duration::from_millis(10);
    let follower = Server::start_replicated(follower_backend, config).expect("bind follower");
    let mut reader = Client::connect(follower.addr()).expect("connect follower");
    // Let the tailer finish catching up over the real primary's warm
    // bootstrap connection before the feed turns hostile, so the
    // baseline below is the settled cursor.
    let settled = stat_field(&client.send("STATS").expect("STATS"), "end=").expect("end gauge");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = reader.send("STATS").expect("STATS");
        if stat_field(&stats, "end=").is_some_and(|end| end >= settled) {
            break;
        }
        assert!(Instant::now() < deadline, "never caught up: {stats}");
        std::thread::sleep(Duration::from_millis(10));
    }
    let baseline = settled;
    assert_eq!(
        reader
            .send(&format!("RETARGET {fake_addr}"))
            .expect("RETARGET"),
        format!("OK RETARGET {fake_addr}")
    );

    // Every defect costs exactly one retry and nothing else: the cursor
    // never moves, the role never flips, no worker panics.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let stats = reader.send("STATS").expect("STATS");
        if stat_field(&stats, "retries=").is_some_and(|retries| retries >= DEFECTS) {
            assert_eq!(
                stat_field(&stats, "end="),
                Some(baseline),
                "defective batches applied nothing: {stats}"
            );
            assert!(stats.contains("role=follower"), "{stats}");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "tailer never counted the defects: {stats}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    hostile.join().expect("hostile upstream thread exits");

    // Retargeted at the real primary, the degraded tailer recovers and
    // keeps tailing over the binary feed.
    let real_addr = primary.addr().to_string();
    assert_eq!(
        reader
            .send(&format!("RETARGET {real_addr}"))
            .expect("RETARGET"),
        format!("OK RETARGET {real_addr}")
    );
    let reply = client.send("INSERT Reading(1, 1, 3100)").expect("insert");
    assert!(reply.starts_with("OK INSERT "), "{reply}");
    let target = stat_field(&client.send("STATS").expect("STATS"), "end=").expect("end gauge");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = reader.send("STATS").expect("STATS");
        if stat_field(&stats, "end=").is_some_and(|end| end >= target) {
            assert!(stats.contains(" feed=bin bytes="), "{stats}");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "follower never recovered: {stats}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    follower.shutdown();
    assert_eq!(
        follower.join().recovered_panics,
        0,
        "the tailer never panicked"
    );
    primary.shutdown();
    assert_eq!(primary.join().recovered_panics, 0);
    let _ = std::fs::remove_dir_all(dir);
}

/// The same vanish-without-END session against the sharded router: the
/// queued mutation must never reach a shard, the router's commit log, or
/// the gathered view.
#[test]
fn abrupt_disconnect_mid_batch_leaves_sharded_engine_untouched() {
    let (db, keys) = base();
    let total = RepairEngine::new(db.clone(), keys.clone())
        .total_repairs()
        .clone();
    let (server, _) = start_fuzz_server(db, keys, 3);
    let mut rude = Client::connect(server.addr()).expect("connect");
    rude.send_line("BATCH").expect("open a batch");
    rude.send_line("INSERT Reading(0, 0, 777)")
        .expect("queue a mutation");
    drop(rude); // vanish without END
    let mut client = Client::connect(server.addr()).expect("connect");
    let reply = client.send("STATS").expect("STATS");
    assert!(
        reply.contains(&format!(" total={total} gen=0 ")),
        "an unterminated batch applied nothing: {reply}"
    );
    assert!(reply.contains(" | shards=3 "), "{reply}");
    server.shutdown();
    assert_eq!(server.join().recovered_panics, 0);
}
