//! Protocol robustness: arbitrary byte lines — garbage verbs, overlong
//! lines, partial writes, abrupt disconnects, interleaved mutations from
//! two clients — must never panic a server thread, and after any session
//! the served engine must be bit-for-bit equal to a fresh engine built on
//! the final fact set (the `engine_mutation_parity` harness's criterion,
//! checked here through the wire).  Each generated case also picks the
//! backend — the classic `RwLock<RepairEngine>` or the sharded
//! scatter–gather router at 1–4 shards — since hostile input must not
//! care what engine is behind the socket.

use std::collections::BTreeMap;
use std::time::Duration;

use proptest::prelude::*;
use repair_count::db::{count_repairs, BlockPartition};
use repair_count::prelude::*;
use repair_count::workloads::sensor_readings;

fn fuzz_config() -> ServerConfig {
    let mut config = ServerConfig::bind("127.0.0.1:0");
    config.poll_interval = Duration::from_millis(25);
    config.max_line_bytes = 512;
    config
}

fn start_server(engine: RepairEngine, chaos_free_config: impl FnOnce(&mut ServerConfig)) -> Server {
    let mut config = fuzz_config();
    chaos_free_config(&mut config);
    Server::start(engine, config).expect("binding an ephemeral loopback port")
}

/// `shards == 0` serves the classic `RwLock<RepairEngine>` backend;
/// otherwise the sharded scatter–gather router.  The fuzz property runs
/// against both — hostile bytes must not care which engine is behind the
/// socket, and the parity criterion is backend-independent.
fn start_fuzz_server(db: Database, keys: KeySet, shards: usize) -> Server {
    if shards == 0 {
        start_server(RepairEngine::new(db, keys), |_| {})
    } else {
        Server::start_sharded(ShardedEngine::new(db, keys, shards), fuzz_config())
            .expect("binding an ephemeral loopback port")
    }
}

fn base() -> (Database, KeySet) {
    sensor_readings(4, 3, 2)
}

/// Rebuilds the state a cold restart would load: exactly the live facts,
/// in id order (the `engine_mutation_parity` notion of the "final fact
/// set").
fn fresh_engine(live: &BTreeMap<usize, String>) -> RepairEngine {
    let (db, keys) = base();
    let mut facts: Vec<Fact> = Vec::new();
    for text in live.values() {
        facts.push(db.parse_fact(text).expect("tracked facts are valid"));
    }
    let mut rebuilt = Database::new(db.schema().clone());
    for fact in facts {
        rebuilt.insert(fact).expect("tracked facts are valid");
    }
    RepairEngine::new(rebuilt, keys)
}

/// The parity criterion: totals and exact counts of the served engine
/// (observed through the wire) equal a fresh engine on the live facts.
fn assert_served_parity(client: &mut Client, live: &BTreeMap<usize, String>) {
    let fresh = fresh_engine(live);
    let stats = client.send("STATS").expect("STATS");
    let expected = format!("OK STATS facts={} ids=", fresh.database().len());
    assert!(stats.starts_with(&expected), "{stats} vs {expected}");
    let total = format!(" total={} gen=", fresh.total_repairs());
    assert!(stats.contains(&total), "{stats} vs {total}");
    let recomputed = count_repairs(&BlockPartition::new(fresh.database(), fresh.keys()));
    assert_eq!(*fresh.total_repairs(), recomputed);
    for (sensor, tick) in [(0, 0), (1, 2), (3, 1)] {
        let query = format!("EXISTS v . Reading({sensor}, {tick}, v)");
        let reply = client.send(&format!("COUNT auto {query}")).expect("COUNT");
        let request = CountRequest::exact(parse_query(&query).unwrap());
        let count = fresh
            .run(&request)
            .unwrap()
            .answer
            .as_count()
            .unwrap()
            .clone();
        let expected = format!("OK COUNT {count} ");
        assert!(reply.starts_with(&expected), "{reply} vs {expected}");
    }
}

/// One xorshift step: the deterministic chaos source for a case.
fn next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property: any interleaving of valid mutations, valid queries and
    /// hostile garbage from two concurrent client connections leaves the
    /// server alive (every line answered, no worker panics) and the
    /// engine in parity with a fresh engine on the final fact set.
    #[test]
    fn arbitrary_lines_never_panic_the_server(
        seed in 0u64..300,
        steps in 20usize..48,
        shards in 0usize..5,
    ) {
        let (db, keys) = base();
        // Track live facts by id: the base assigned 0..n in insertion order.
        let mut live: BTreeMap<usize, String> = db
            .iter()
            .map(|(id, fact)| (id.index(), fact.display(db.schema()).to_string()))
            .collect();
        let mut next_id = live.len();

        let server = start_fuzz_server(db, keys, shards);
        let mut clients = [
            Client::connect(server.addr()).expect("connect"),
            Client::connect(server.addr()).expect("connect"),
        ];
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(11);
        for step in 0..steps {
            let who = (next(&mut state) >> 7) as usize % 2;
            let client = &mut clients[who];
            match next(&mut state) % 8 {
                // Fresh insert (values disjoint from the base generator).
                0 | 1 => {
                    let sensor = next(&mut state) % 4;
                    let tick = next(&mut state) % 3;
                    let value = 1000 + step;
                    let line = format!("INSERT Reading({sensor}, {tick}, {value})");
                    let reply = client.send(&line).expect("insert reply");
                    prop_assert!(reply.starts_with("OK INSERT id="), "{}", reply);
                    live.insert(next_id, format!("Reading({sensor}, {tick}, {value})"));
                    next_id += 1;
                }
                // Delete a live fact (or draw MISSING on an exhausted id).
                2 => {
                    let target = live
                        .keys()
                        .nth(next(&mut state) as usize % live.len().max(1))
                        .copied();
                    if let Some(id) = target {
                        let reply = client.send(&format!("DELETE {id}")).expect("delete reply");
                        prop_assert!(reply.starts_with("OK DELETE id="), "{}", reply);
                        live.remove(&id);
                    }
                }
                // Valid queries.
                3 => {
                    let sensor = next(&mut state) % 4;
                    let tick = next(&mut state) % 3;
                    let reply = client
                        .send(&format!("COUNT auto EXISTS v . Reading({sensor}, {tick}, v)"))
                        .expect("count reply");
                    prop_assert!(reply.starts_with("OK COUNT "), "{}", reply);
                }
                4 => {
                    let sensor = next(&mut state) % 4;
                    let reply = client
                        .send(&format!("CERTAIN EXISTS t, v . Reading({sensor}, t, v)"))
                        .expect("certain reply");
                    prop_assert!(reply.starts_with("OK CERTAIN "), "{}", reply);
                }
                // Garbage bytes (newline-free, then terminated): comments
                // and blank lines are silently skipped by design, anything
                // else draws one reply — either way the session survives,
                // which the `OK SLEPT 0` marker probe proves.
                5 => {
                    let len = 1 + next(&mut state) as usize % 40;
                    let junk: Vec<u8> = (0..len)
                        .map(|_| {
                            let b = (next(&mut state) % 255) as u8 + 1;
                            if b == b'\n' || b == b'\r' { b'?' } else { b }
                        })
                        .collect();
                    client.send_raw(&junk).expect("send junk");
                    client.send_raw(b"\nSLEEP 0\n").expect("terminate junk");
                    let mut lines = 0;
                    loop {
                        let reply = client.read_line().expect("session stays alive");
                        lines += 1;
                        prop_assert!(lines <= 2, "junk drew more than one reply");
                        if reply == "OK SLEPT 0" {
                            break;
                        }
                    }
                }
                // An overlong line: discarded, answered, session continues.
                6 => {
                    let line = format!("INSERT Reading(0, 0, {})", "9".repeat(600));
                    let reply = client.send(&line).expect("overlong reply");
                    prop_assert!(reply.starts_with("ERR LINE "), "{}", reply);
                }
                // A partial write split across flushes, completed later.
                _ => {
                    client.send_raw(b"STA").expect("partial write");
                    std::thread::sleep(Duration::from_millis(2));
                    client.send_raw(b"TS\n").expect("completion");
                    let reply = client.read_line().expect("reassembled line");
                    prop_assert!(reply.starts_with("OK STATS "), "{}", reply);
                }
            }
        }

        // An abrupt mid-line disconnect must not disturb the others.
        let mut rude = Client::connect(server.addr()).expect("connect");
        rude.send_raw(b"INSERT Reading(0, 0, 55").expect("half a line");
        drop(rude);

        assert_served_parity(&mut clients[0], &live);
        assert_served_parity(&mut clients[1], &live);

        server.shutdown();
        let stats = server.join();
        prop_assert_eq!(stats.recovered_panics, 0, "no worker ever panicked");
    }
}

/// Deterministic edge cases that deserve names of their own.
#[test]
fn overlong_line_then_valid_command() {
    let (db, keys) = base();
    let server = start_server(RepairEngine::new(db, keys), |_| {});
    let mut client = Client::connect(server.addr()).expect("connect");
    let mut junk = vec![b'x'; 2000];
    junk.push(b'\n');
    client.send_raw(&junk).expect("oversized line");
    let reply = client.read_line().expect("reply");
    assert!(reply.starts_with("ERR LINE "), "{reply}");
    let reply = client.send("STATS").expect("next command");
    assert!(reply.starts_with("OK STATS "), "{reply}");
    server.shutdown();
    assert_eq!(server.join().recovered_panics, 0);
}

#[test]
fn abrupt_disconnect_mid_batch_leaves_engine_untouched() {
    let (db, keys) = base();
    let total = RepairEngine::new(db.clone(), keys.clone())
        .total_repairs()
        .clone();
    let server = start_server(RepairEngine::new(db, keys), |_| {});
    let mut rude = Client::connect(server.addr()).expect("connect");
    rude.send_line("BATCH").expect("open a batch");
    rude.send_line("INSERT Reading(0, 0, 777)")
        .expect("queue a mutation");
    drop(rude); // vanish without END
    let mut client = Client::connect(server.addr()).expect("connect");
    let reply = client.send("STATS").expect("STATS");
    assert!(
        reply.contains(&format!(" total={total} gen=0 ")),
        "an unterminated batch applied nothing: {reply}"
    );
    server.shutdown();
    assert_eq!(server.join().recovered_panics, 0);
}

/// The same vanish-without-END session against the sharded router: the
/// queued mutation must never reach a shard, the router's commit log, or
/// the gathered view.
#[test]
fn abrupt_disconnect_mid_batch_leaves_sharded_engine_untouched() {
    let (db, keys) = base();
    let total = RepairEngine::new(db.clone(), keys.clone())
        .total_repairs()
        .clone();
    let server = start_fuzz_server(db, keys, 3);
    let mut rude = Client::connect(server.addr()).expect("connect");
    rude.send_line("BATCH").expect("open a batch");
    rude.send_line("INSERT Reading(0, 0, 777)")
        .expect("queue a mutation");
    drop(rude); // vanish without END
    let mut client = Client::connect(server.addr()).expect("connect");
    let reply = client.send("STATS").expect("STATS");
    assert!(
        reply.contains(&format!(" total={total} gen=0 ")),
        "an unterminated batch applied nothing: {reply}"
    );
    assert!(reply.contains(" | shards=3 "), "{reply}");
    server.shutdown();
    assert_eq!(server.join().recovered_panics, 0);
}
