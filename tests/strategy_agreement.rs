//! Cross-crate agreement tests: on randomly generated inconsistent
//! databases and queries, every counting route must report the same number
//! — enumeration (Theorem 3.3's machine), certificate boxes, the Λ[k]
//! compactor unfolding (Theorem 5.1 membership), and the Theorem 5.1
//! hardness reduction back into `#CQA` — all driven through the
//! [`RepairEngine`] request/report API.

use proptest::prelude::*;
use repair_count::counting::Strategy as EngineStrategy;
use repair_count::lambda::{reduce_compactor_to_cqa, unfold_count, CqaCompactor};
use repair_count::prelude::*;
use repair_count::query::rewrite_to_ucq;
use repair_count::workloads::{
    random_join_query, random_point_query_union, BlockSizeDistribution, InconsistentDbConfig,
    QueryGenConfig, RelationSpec,
};

fn small_db(seed: u64, blocks: usize, block_size: usize) -> (Database, KeySet) {
    InconsistentDbConfig {
        relations: vec![
            RelationSpec::keyed("R", blocks),
            RelationSpec::keyed("S", blocks),
        ],
        block_sizes: BlockSizeDistribution::Fixed(block_size),
        payload_domain: 4,
        seed,
    }
    .generate()
}

fn count_with(engine: &RepairEngine, q: &Query, strategy: EngineStrategy) -> BigNat {
    engine
        .run(&CountRequest::exact(q.clone()).with_strategy(strategy))
        .unwrap()
        .answer
        .as_count()
        .unwrap()
        .clone()
}

fn assert_all_routes_agree(engine: &RepairEngine, q: &Query) {
    let by_enumeration = count_with(engine, q, EngineStrategy::Enumeration);
    let by_boxes = count_with(engine, q, EngineStrategy::CertificateBoxes);
    assert_eq!(by_boxes, by_enumeration, "boxes vs enumeration for {q}");

    let ucq = rewrite_to_ucq(q).unwrap();
    let compactor = CqaCompactor::new(engine.database(), engine.keys(), &ucq).unwrap();
    let by_compactor = unfold_count(&compactor, 10_000_000).unwrap();
    assert_eq!(
        by_compactor, by_enumeration,
        "compactor vs enumeration for {q}"
    );

    let by_reduction = reduce_compactor_to_cqa(&compactor)
        .unwrap()
        .count(10_000_000)
        .unwrap();
    assert_eq!(
        by_reduction, by_enumeration,
        "reduction vs enumeration for {q}"
    );

    // Consistency of the derived quantities.
    let total = engine.total_repairs().clone();
    assert!(by_enumeration <= total);
    let frequency = engine
        .run(&CountRequest::frequency(q.clone()))
        .unwrap()
        .answer
        .as_frequency()
        .unwrap()
        .clone();
    let reconstructed = Ratio::new(by_enumeration.clone(), total);
    assert_eq!(frequency, reconstructed);
    let decision = engine
        .run(&CountRequest::decision(q.clone()))
        .unwrap()
        .answer
        .as_bool()
        .unwrap();
    assert_eq!(
        decision,
        !by_enumeration.is_zero(),
        "decision vs counting for {q}"
    );
}

#[test]
fn join_queries_agree_across_strategies() {
    for seed in 0..8u64 {
        let (db, keys) = small_db(seed, 5, 2);
        let engine = RepairEngine::new(db, keys);
        for size in 1..=3usize {
            let q = random_join_query(
                engine.database(),
                engine.keys(),
                &QueryGenConfig {
                    size,
                    seed: seed * 10 + size as u64,
                },
            );
            assert_all_routes_agree(&engine, &q);
        }
    }
}

#[test]
fn point_query_unions_agree_across_strategies() {
    for seed in 0..8u64 {
        let (db, keys) = small_db(seed + 100, 6, 2);
        let engine = RepairEngine::new(db, keys);
        for size in 1..=4usize {
            let q = random_point_query_union(
                engine.database(),
                &QueryGenConfig {
                    size,
                    seed: seed * 7 + size as u64,
                },
            );
            assert_all_routes_agree(&engine, &q);
        }
    }
}

#[test]
fn skewed_block_sizes_agree_across_strategies() {
    for seed in 0..4u64 {
        let (db, keys) = InconsistentDbConfig {
            relations: vec![RelationSpec::keyed("R", 7)],
            block_sizes: BlockSizeDistribution::Uniform { min: 1, max: 4 },
            payload_domain: 5,
            seed,
        }
        .generate();
        let engine = RepairEngine::new(db, keys);
        let q = random_point_query_union(engine.database(), &QueryGenConfig { size: 3, seed });
        assert_all_routes_agree(&engine, &q);
        let q = random_join_query(
            engine.database(),
            engine.keys(),
            &QueryGenConfig { size: 2, seed },
        );
        assert_all_routes_agree(&engine, &q);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: for every generated database and point-query union, the
    /// certificate/box count equals the brute-force enumeration count.
    #[test]
    fn prop_counting_strategies_agree(seed in 0u64..1000, blocks in 2usize..6, size in 1usize..4) {
        let (db, keys) = small_db(seed, blocks, 2);
        let q = random_point_query_union(&db, &QueryGenConfig { size, seed });
        let engine = RepairEngine::new(db, keys);
        let a = count_with(&engine, &q, EngineStrategy::Enumeration);
        let b = count_with(&engine, &q, EngineStrategy::CertificateBoxes);
        prop_assert_eq!(a, b);
    }

    /// Property: the count never exceeds the total, and the decision
    /// problem agrees with positivity of the count.
    #[test]
    fn prop_count_bounded_by_total(seed in 0u64..1000, blocks in 2usize..6) {
        let (db, keys) = small_db(seed, blocks, 3);
        let q = random_join_query(&db, &keys, &QueryGenConfig { size: 2, seed });
        let engine = RepairEngine::new(db, keys);
        let count = count_with(&engine, &q, EngineStrategy::Auto);
        prop_assert!(&count <= engine.total_repairs());
        let decision = engine
            .run(&CountRequest::decision(q))
            .unwrap()
            .answer
            .as_bool()
            .unwrap();
        prop_assert_eq!(decision, !count.is_zero());
    }
}
