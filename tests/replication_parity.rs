//! Property suite for the replicated command log: follower divergence is
//! impossible, and the snapshot codec reproduces the engine bit for bit.
//!
//! Wire replies carry no wall-clock or node-local provenance — they are
//! a pure function of engine state and command order.  That makes
//! replica equality a *byte* property, checked here three ways for the
//! same randomly driven primary:
//!
//! * the primary itself,
//! * a follower that bootstrapped from `REPL SNAPSHOT` and tailed the
//!   log (through mutations, rejected commands, batches and replicated
//!   compactions),
//! * a cold-restarted instance recovered from the snapshot plus the
//!   post-snapshot log suffix,
//!
//! all of which must answer the read battery identically — including
//! `gen=` generation stamps, `cached=` plan-cache provenance (each
//! battery line runs twice: a miss, then a hit) and seeded `APPROX`
//! estimates.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use proptest::prelude::*;
use repair_count::db::FactId;
use repair_count::prelude::*;
use repair_count::workloads::{churn_base, replication_battery};

/// Distinct per-case log directories under the system temp dir.
static LOG_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_log_dir() -> PathBuf {
    std::env::temp_dir().join(format!(
        "cdr-replication-parity-{}-{}",
        std::process::id(),
        LOG_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn test_config() -> ServerConfig {
    let mut config = ServerConfig::bind("127.0.0.1:0");
    config.poll_interval = Duration::from_millis(25);
    config
}

fn churn_engine() -> RepairEngine {
    let (db, keys) = churn_base();
    RepairEngine::new(db, keys)
}

fn stat_u64(line: &str, key: &str) -> u64 {
    line.split_whitespace()
        .find_map(|token| token.strip_prefix(key))
        .and_then(|value| value.parse().ok())
        .unwrap_or_else(|| panic!("no `{key}` field in `{line}`"))
}

fn stats_head(reply: &str) -> String {
    reply.split(" | ").next().unwrap_or(reply).to_string()
}

fn wait_for_offset(client: &mut Client, target: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let reply = client.send("STATS").expect("STATS");
        if stat_u64(&reply, "end=") >= target {
            return reply;
        }
        assert!(
            Instant::now() < deadline,
            "stuck short of offset {target}: {reply}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn battery_replies(client: &mut Client) -> Vec<String> {
    replication_battery()
        .iter()
        .map(|line| client.send(line).expect("battery line"))
        .collect()
}

const LCG_MUL: u64 = 6364136223846793005;
const LCG_ADD: u64 = 1442695040888963407;

/// One random wire step over the churn schema: either a single command
/// line or an atomic mutation batch.  Invalid steps (deletes of dead
/// ids) are part of the property: a rejected command is still logged,
/// and its rejection — which leaves the engine untouched — must
/// reproduce on every replica.
enum WireStep {
    Line(String),
    Batch(Vec<String>),
}

fn random_step(state: &mut u64, step: usize) -> WireStep {
    *state = state.wrapping_mul(LCG_MUL).wrapping_add(LCG_ADD);
    let roll = (*state >> 33) % 10;
    let key = (*state >> 8) % 16;
    match roll {
        0..=3 => WireStep::Line(format!("INSERT Event({key}, 'p{step}')")),
        4 | 5 => WireStep::Line(format!("DELETE {}", (*state >> 16) % 48)),
        6 => WireStep::Batch(vec![
            format!("INSERT Event({key}, 'b{step}')"),
            format!("INSERT Event({}, 'b{step}')", (key + 1) % 16),
        ]),
        7 => WireStep::Line("COMPACT".to_string()),
        _ => WireStep::Line(format!("COUNT auto EXISTS p . Event({key}, p)")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property: follower divergence is impossible.  After any random
    /// command stream — valid and invalid mutations, batches, manual and
    /// automatic compactions — the primary, a binary-fed tailing
    /// follower, a hex-fed tailing follower and a cold-restarted
    /// instance answer the read battery byte-identically, and their
    /// `STATS` gauge heads agree.
    #[test]
    fn prop_follower_divergence_is_impossible(
        seed in 0u64..10_000,
        ops in 15usize..40,
    ) {
        let dir = temp_log_dir();
        let backend = ReplicatedBackend::primary(churn_engine(), &dir).expect("fresh primary");
        let mut config = test_config();
        config.auto_compact = Some(16);
        let primary = Server::start_replicated(backend, config).expect("bind primary");
        let primary_addr = primary.addr().to_string();

        // Both followers tail live while the trace is still being
        // driven: one over the binary feed, one over the hex fallback
        // (with a small fetch batch so multi-round catch-up is part of
        // the property).
        let backend = ReplicatedBackend::follower_with(
            &primary_addr, Some(16), FeedMode::Bin, 32, |engine| engine,
        ).expect("bootstrap binary");
        let mut follower_config = test_config();
        follower_config.auto_compact = Some(16);
        let follower =
            Server::start_replicated(backend, follower_config).expect("bind follower");
        let backend = ReplicatedBackend::follower_with(
            &primary_addr, Some(16), FeedMode::Text, 5, |engine| engine,
        ).expect("bootstrap textual");
        let mut follower_config = test_config();
        follower_config.auto_compact = Some(16);
        let hex_follower =
            Server::start_replicated(backend, follower_config).expect("bind hex follower");

        let mut client = Client::connect(primary.addr()).expect("connect primary");
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        for step in 0..ops {
            match random_step(&mut state, step) {
                WireStep::Line(line) => {
                    client.send(&line).expect("trace line");
                }
                WireStep::Batch(lines) => {
                    let lines: Vec<&str> = lines.iter().map(String::as_str).collect();
                    client.send_batch(&lines).expect("trace batch");
                }
            }
        }
        let primary_stats = client.send("STATS").expect("STATS");
        let target = stat_u64(&primary_stats, "end=");
        let primary_battery = battery_replies(&mut client);

        // Both tailing followers converge to the same bytes — and each
        // surfaces the encoding it actually negotiated.
        let mut reader = Client::connect(follower.addr()).expect("connect follower");
        let follower_stats = wait_for_offset(&mut reader, target);
        prop_assert_eq!(stats_head(&primary_stats), stats_head(&follower_stats));
        prop_assert!(follower_stats.contains(" feed=bin bytes="), "{}", follower_stats);
        prop_assert_eq!(&primary_battery, &battery_replies(&mut reader));
        let mut hex_reader = Client::connect(hex_follower.addr()).expect("connect hex follower");
        let hex_stats = wait_for_offset(&mut hex_reader, target);
        prop_assert_eq!(stats_head(&primary_stats), stats_head(&hex_stats));
        prop_assert!(hex_stats.contains(" feed=text bytes="), "{}", hex_stats);
        prop_assert_eq!(&primary_battery, &battery_replies(&mut hex_reader));

        // The cold-restarted instance recovers to the same bytes,
        // replaying only the post-snapshot suffix.
        let hello = client.send("REPL HELLO").expect("HELLO");
        let snap = stat_u64(&hello, "snap=");
        prop_assert_eq!(client.send("SHUTDOWN").expect("SHUTDOWN"), "OK SHUTDOWN");
        primary.join();
        let backend = ReplicatedBackend::primary(churn_engine(), &dir).expect("recover");
        let restarted = Server::start_replicated(backend, test_config()).expect("bind");
        let mut client = Client::connect(restarted.addr()).expect("connect restarted");
        let restarted_stats = client.send("STATS").expect("STATS");
        prop_assert_eq!(stats_head(&primary_stats), stats_head(&restarted_stats));
        prop_assert_eq!(stat_u64(&restarted_stats, "end="), target);
        prop_assert_eq!(stat_u64(&restarted_stats, "replayed="), target - snap);
        prop_assert_eq!(&primary_battery, &battery_replies(&mut client));

        restarted.shutdown();
        prop_assert_eq!(restarted.join().recovered_panics, 0);
        follower.shutdown();
        prop_assert_eq!(follower.join().recovered_panics, 0);
        hex_follower.shutdown();
        prop_assert_eq!(hex_follower.join().recovered_panics, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property: `Snapshot` encode ∘ decode reproduces the engine bit
    /// for bit — database, key set, generation counters — so a restored
    /// replica replays every report identically, including seeded
    /// `APPROX` estimates and `gen=` provenance.
    #[test]
    fn prop_snapshot_codec_round_trips_the_engine(
        seed in 0u64..10_000,
        ops in 0usize..24,
        epoch in 0u64..5,
        offset in 0u64..1_000,
    ) {
        let mut engine = churn_engine();
        let mut state = seed.wrapping_mul(LCG_MUL).wrapping_add(LCG_ADD);
        for step in 0..ops {
            state = state.wrapping_mul(LCG_MUL).wrapping_add(LCG_ADD);
            let key = (state >> 8) % 16;
            let mutation = if state % 4 == 0 {
                Mutation::Delete(FactId::new(((state >> 16) % 40) as usize))
            } else {
                let fact = engine
                    .database()
                    .parse_fact(&format!("Event({key}, 's{step}')"))
                    .expect("well-formed fact");
                Mutation::Insert(fact)
            };
            engine.apply(mutation).ok();
        }
        // Snapshots are dense images: compact away any tombstones first,
        // exactly as the primary does before it writes one.
        engine.compact();

        let snapshot = Snapshot {
            epoch,
            offset,
            generation: engine.generation(),
            rel_generations: engine.rel_generations().to_vec(),
            db: engine.database().clone(),
            keys: engine.keys().clone(),
        };
        let bytes = snapshot.encode().expect("dense images encode");
        let decoded = Snapshot::decode(&bytes).expect("round-trip decode");
        prop_assert_eq!(decoded.epoch, epoch);
        prop_assert_eq!(decoded.offset, offset);
        prop_assert_eq!(decoded.generation, engine.generation());
        prop_assert_eq!(&decoded.rel_generations[..], engine.rel_generations());
        prop_assert_eq!(&decoded.db, engine.database());
        prop_assert_eq!(&decoded.keys, engine.keys());

        let restored = RepairEngine::restore(
            decoded.db,
            decoded.keys,
            decoded.generation,
            decoded.rel_generations,
        );
        prop_assert_eq!(restored.total_repairs(), engine.total_repairs());

        // Replay equality through the full serving surface: both oracles
        // answer the read battery (and STATS) byte-identically.
        let mut original = Oracle::new(engine);
        let mut recovered = Oracle::new(restored);
        let mut probe = replication_battery();
        probe.push("STATS".to_string());
        for line in &probe {
            prop_assert_eq!(
                original.feed(line),
                recovered.feed(line),
                "diverged on `{}`", line
            );
        }
    }
}
