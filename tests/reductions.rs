//! Parsimony of every reduction in the repository, on randomly generated
//! instances: `#DisjPoskDNF` and `#kForbColoring` into `#CQA` (Theorems 7.1
//! and 7.2), arbitrary k-compactors into `#CQA(Q_k, Σ_k)` (Theorem 5.1),
//! and `#3SAT` into `#CQA(FO)` (Theorems 3.2/3.3).

use repair_count::lambda::{
    compactor_karp_luby, reduce_compactor_to_cqa, unfold_count, CompactOutput, ExplicitCompactor,
};
use repair_count::prelude::*;
use repair_count::workloads::{
    random_cnf3, random_disj_pos_dnf, random_forbidden_coloring, Cnf3Config, DnfConfig,
    HypergraphConfig,
};

#[test]
fn disj_pos_kdnf_reductions_are_parsimonious() {
    for seed in 0..6u64 {
        for width in 1..=3usize {
            let f = random_disj_pos_dnf(&DnfConfig {
                classes: 5,
                class_size: 3,
                clauses: 6,
                clause_width: width,
                seed,
            });
            let brute = f.count_satisfying_brute_force();
            assert_eq!(f.count_satisfying(10_000_000).unwrap(), brute);
            assert_eq!(
                f.count_via_cqa(10_000_000).unwrap(),
                brute,
                "natural reduction"
            );
            assert_eq!(
                unfold_count(&f, 10_000_000).unwrap(),
                brute,
                "compactor view"
            );
            let instance = reduce_compactor_to_cqa(&f).unwrap();
            assert_eq!(
                instance.count(10_000_000).unwrap(),
                brute,
                "Theorem 5.1 reduction"
            );
        }
    }
}

#[test]
fn forbidden_coloring_reductions_are_parsimonious() {
    for seed in 0..6u64 {
        for edge_size in 1..=3usize {
            let f = random_forbidden_coloring(&HypergraphConfig {
                vertices: 6,
                colors_per_vertex: 3,
                edges: 4,
                edge_size,
                forbidden_per_edge: 2,
                seed,
            });
            let brute = f.count_forbidden_brute_force();
            assert_eq!(f.count_forbidden(10_000_000).unwrap(), brute);
            assert_eq!(
                f.count_via_cqa(10_000_000).unwrap(),
                brute,
                "natural reduction"
            );
            assert_eq!(
                unfold_count(&f, 10_000_000).unwrap(),
                brute,
                "compactor view"
            );
            let instance = reduce_compactor_to_cqa(&f).unwrap();
            assert_eq!(
                instance.count(10_000_000).unwrap(),
                brute,
                "Theorem 5.1 reduction"
            );
        }
    }
}

#[test]
fn three_sat_reduction_is_parsimonious() {
    for seed in 0..5u64 {
        let f = random_cnf3(&Cnf3Config {
            variables: 6,
            clauses: 7,
            seed,
        });
        let brute = f.count_models_brute_force();
        assert_eq!(
            f.count_models_via_cqa(10_000_000).unwrap(),
            brute,
            "seed {seed}"
        );
        assert_eq!(f.satisfiable_via_cqa().unwrap(), !brute.is_zero());
    }
}

#[test]
fn synthetic_compactors_reduce_parsimoniously_at_every_level() {
    // Λ[k] for k = 0..4: random explicit compactors with k pins per box.
    for k in 0..=4usize {
        for variant in 0..4u64 {
            let domains = vec![3usize; 6];
            let mut outputs = Vec::new();
            for c in 0..5u64 {
                if (c + variant) % 4 == 0 {
                    outputs.push(CompactOutput::Empty);
                } else {
                    let pins: Vec<(usize, usize)> = (0..k)
                        .map(|i| {
                            let domain = ((c as usize) + i * 2 + variant as usize) % domains.len();
                            let element = ((c as usize) + i + variant as usize) % 3;
                            (domain, element)
                        })
                        .collect();
                    // Duplicate domains in `pins` collapse via the map; that
                    // keeps the pin count ≤ k as required.
                    outputs.push(CompactOutput::pins(pins));
                }
            }
            let compactor = ExplicitCompactor::new(domains, outputs, Some(k));
            let expected = unfold_count(&compactor, 10_000_000).unwrap();
            let instance = reduce_compactor_to_cqa(&compactor).unwrap();
            assert_eq!(
                instance.count(10_000_000).unwrap(),
                expected,
                "k = {k}, variant = {variant}"
            );
            // The reduced instance's query has keywidth exactly k.
            assert_eq!(
                repair_count::query::keywidth(
                    &instance.query,
                    instance.db.schema(),
                    &instance.keys
                ),
                k
            );
        }
    }
}

#[test]
fn unbounded_compactors_are_still_countable_and_approximable() {
    // A SpanLL-style instance: clause width grows with the instance.
    let f = random_disj_pos_dnf(&DnfConfig {
        classes: 8,
        class_size: 2,
        clauses: 5,
        clause_width: 6,
        seed: 3,
    });
    let brute = f.count_satisfying_brute_force();
    assert_eq!(f.count_satisfying(10_000_000).unwrap(), brute);
    // Theorem 7.4: the Karp–Luby-style estimator handles the unbounded case.
    let config = ApproxConfig {
        epsilon: 0.1,
        delta: 0.05,
        ..ApproxConfig::default()
    };
    let approx = compactor_karp_luby(&f, &config).unwrap();
    assert!(approx.relative_error(&brute) <= 0.1 || brute.is_zero());
}
