//! Delete-heavy churn and compaction parity.
//!
//! The compaction subsystem claims that reclaiming id space is purely a
//! *renaming*: after `COMPACT`, the engine is indistinguishable — state
//! and replies — from a fresh engine built directly over the live fact
//! set.  This suite drives a long churn session (where pre-compaction
//! tombstone/slot growth would be unbounded) through the [`Oracle`] under
//! the serving layer's auto-compaction policy, then checks:
//!
//! * the compacted database and partition **equal** (`PartialEq`) a fresh
//!   build over the live facts — slots dense, ids a dense prefix;
//! * a query battery answered by the churned-then-compacted oracle is
//!   **byte-for-byte** the fresh oracle's output, once the one intentional
//!   difference — the `gen=<n>` provenance token, which counts the whole
//!   session's history — is masked;
//! * (proptest) compacting at *random points* of a random mutation stream
//!   never changes any answer: exact counts, totals and **seeded**
//!   estimates all match a fresh engine bit for bit.

use proptest::prelude::*;
use repair_count::prelude::*;
use repair_count::workloads::churn_session;

const CHURN_OPS: usize = 400;
const CHURN_THRESHOLD: u64 = 16;

/// Replaces every `gen=<digits>` token with `gen=_`: the generation
/// counter records session history (how many mutations ever ran), which
/// is the one provenance field a fresh engine cannot share.
fn mask_generation(reply: &str) -> String {
    reply
        .split(' ')
        .map(|field| {
            if field.starts_with("gen=") && field[4..].bytes().all(|b| b.is_ascii_digit()) {
                "gen=_"
            } else {
                field
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// The query battery the two oracles must answer identically.
fn battery() -> Vec<String> {
    let mut lines = Vec::new();
    for key in [0i64, 1, 2, 1_005, 1_111] {
        lines.push(format!("COUNT auto EXISTS p . Event({key}, p)"));
        lines.push(format!("CERTAIN EXISTS p . Event({key}, p)"));
        lines.push(format!("FREQ EXISTS p . Event({key}, p)"));
        lines.push(format!("APPROX 0.2 0.1 42 EXISTS p . Event({key}, p)"));
    }
    lines.push("DECIDE EXISTS k . Event(k, 'dup')".to_string());
    lines
}

#[test]
fn churned_then_compacted_session_is_a_fresh_engine_in_disguise() {
    let (db, keys, trace) = churn_session(CHURN_OPS, Some(CHURN_THRESHOLD));
    let mut oracle =
        Oracle::new(RepairEngine::new(db, keys.clone())).with_auto_compact(CHURN_THRESHOLD);
    // The whole delete-heavy session replays without a single error even
    // though cumulative inserts far outgrow what an uncompacted slot
    // table would hold bounded.
    for line in &trace {
        for reply in oracle.feed(line) {
            assert!(reply.starts_with("OK "), "line `{line}` drew `{reply}`");
        }
    }
    oracle.with_engine(|engine| {
        assert!(
            engine.waste() <= CHURN_THRESHOLD + 2,
            "the policy keeps reclaimable waste bounded: {}",
            engine.waste()
        );
    });

    // Close the session with an explicit COMPACT so ids are dense *now*.
    let replies = oracle.feed("COMPACT");
    assert!(replies[0].starts_with("OK COMPACTED "), "{}", replies[0]);

    // A fresh engine over the live facts, in id order, is *equal* — same
    // databases (dense id prefix), same partitions (dense ≺-ordered
    // slots), same totals.
    let (compacted_db, total) =
        oracle.with_engine(|engine| (engine.database().clone(), engine.total_repairs().clone()));
    let mut fresh_db = Database::new(compacted_db.schema().clone());
    for fact in compacted_db.facts() {
        fresh_db.insert(fact.clone()).expect("live facts re-insert");
    }
    assert_eq!(compacted_db, fresh_db);
    let fresh = RepairEngine::new(fresh_db, keys.clone());
    assert_eq!(&total, fresh.total_repairs());
    oracle.with_engine(|engine| assert_eq!(engine.blocks(), fresh.blocks()));

    // Byte-for-byte replies: only the generation token may differ.
    let mut fresh_oracle = Oracle::new(fresh);
    for line in battery() {
        let churned: Vec<String> = oracle
            .feed(&line)
            .into_iter()
            .map(|r| mask_generation(&r))
            .collect();
        let pristine: Vec<String> = fresh_oracle
            .feed(&line)
            .into_iter()
            .map(|r| mask_generation(&r))
            .collect();
        assert_eq!(churned, pristine, "diverging replies for `{line}`");
    }
}

#[test]
fn unbounded_churn_dies_exhausted_but_auto_compact_survives_it() {
    let (db, keys, trace) = churn_session(CHURN_OPS, None);
    let inserts = trace.iter().filter(|l| l.starts_with("INSERT")).count() as u32;
    let cap = db.fact_ids_assigned() + inserts / 2;
    // Without the policy, the same capped session hits the wall…
    let mut doomed = Oracle::new(RepairEngine::new(
        db.clone().with_fact_id_capacity(cap),
        keys.clone(),
    ));
    let exhausted = trace.iter().any(|line| {
        doomed
            .feed(line)
            .iter()
            .any(|reply| reply.starts_with("ERR EXHAUSTED "))
    });
    assert!(
        exhausted,
        "the cap must bite for this test to mean anything"
    );

    // …while the auto-compacting session (whose trace accounts for the
    // id remapping) never sees an error at all.
    let (db, keys, trace) = churn_session(CHURN_OPS, Some(CHURN_THRESHOLD));
    let mut survivor = Oracle::new(RepairEngine::new(db.with_fact_id_capacity(cap), keys))
        .with_auto_compact(CHURN_THRESHOLD);
    for line in &trace {
        for reply in survivor.feed(line) {
            assert!(reply.starts_with("OK "), "line `{line}` drew `{reply}`");
        }
    }
}

/// One step of the proptest mutation stream (derived from a SplitMix64
/// walk: the vendored proptest generates scalars, not collections).
fn next_op(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Compaction at random points of a random insert/delete stream is
    /// invisible to every answer: exact counts, totals and seeded
    /// estimates match a fresh engine over the same live facts bit for
    /// bit.
    #[test]
    fn compaction_at_random_points_is_answer_invisible(seed in 0u64..1_000_000, steps in 8usize..60) {
        let mut schema = Schema::new();
        schema.add_relation("R", 2).unwrap();
        let keys = KeySet::builder(&schema).key("R", 1).unwrap().build();
        let mut engine = RepairEngine::new(Database::new(schema), keys.clone());
        let mut state = seed;
        let mut compactions = 0usize;
        for _ in 0..steps {
            let draw = next_op(&mut state);
            match draw % 8 {
                // Half the steps insert (possibly a duplicate no-op).
                0..=3 => {
                    let key = (draw >> 8) % 12;
                    let payload = (draw >> 16) % 4;
                    let fact = engine
                        .database()
                        .parse_fact(&format!("R({key}, 'p{payload}')"))
                        .unwrap();
                    engine.apply(Mutation::Insert(fact)).unwrap();
                }
                // Three in eight delete a pseudo-random live fact.
                4..=6 => {
                    let live = engine.database().len();
                    if live > 0 {
                        let nth = (draw >> 24) as usize % live;
                        let (id, _) = engine.database().iter().nth(nth).unwrap();
                        engine.apply(Mutation::Delete(id)).unwrap();
                    }
                }
                // One in eight compacts right here.
                _ => {
                    let outcome = engine.compact();
                    prop_assert!(outcome.total_cross_checked);
                    compactions += 1;
                }
            }
        }
        // Interleave one more compaction so the final state is compacted
        // for at least one case in every run.
        if compactions == 0 {
            engine.compact();
        }
        let fresh = RepairEngine::new(engine.database().clone(), keys);
        prop_assert_eq!(engine.total_repairs(), fresh.total_repairs());
        let q = repair_count::query::parse_query("EXISTS p . R(3, p)").unwrap();
        let union = repair_count::query::parse_query(
            "(EXISTS p . R(1, p)) OR R(5, 'p2') OR (EXISTS k . R(k, 'p0'))",
        )
        .unwrap();
        for q in [&q, &union] {
            for request in [
                CountRequest::exact(q.clone()),
                CountRequest::frequency(q.clone()),
                CountRequest::certain_answer(q.clone()),
                CountRequest::approximate(q.clone(), 0.3, 0.1).with_seed(7),
            ] {
                let ours = engine.run(&request).unwrap();
                let theirs = fresh.run(&request).unwrap();
                match (&ours.answer, &theirs.answer) {
                    (Answer::Count(a), Answer::Count(b)) => prop_assert_eq!(a, b),
                    (Answer::Frequency(a), Answer::Frequency(b)) => {
                        prop_assert_eq!(a.to_string(), b.to_string())
                    }
                    (Answer::Decision(a), Answer::Decision(b)) => prop_assert_eq!(a, b),
                    (Answer::Estimate(a), Answer::Estimate(b)) => {
                        prop_assert_eq!(&a.estimate, &b.estimate);
                        prop_assert_eq!(a.positive_samples, b.positive_samples);
                        prop_assert_eq!(a.samples_used, b.samples_used);
                    }
                    (a, b) => prop_assert!(false, "answer kinds diverged: {a:?} vs {b:?}"),
                }
            }
        }
    }
}
