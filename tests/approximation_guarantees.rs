//! Empirical validation of the FPRAS guarantees (Theorem 6.2 and
//! Corollary 6.4): across workloads, seeds and ε values, the estimators
//! stay within the promised relative error of the exact count far more
//! often than the δ failure probability allows. All runs go through the
//! [`RepairEngine`], so repeated estimates reuse the cached certificates.

use repair_count::counting::{ApproxCount, FprasEstimator, Strategy as EngineStrategy};
use repair_count::prelude::*;
use repair_count::query::rewrite_to_ucq;
use repair_count::workloads::{
    random_point_query_union, sensor_readings, two_source_customers, BlockSizeDistribution,
    InconsistentDbConfig, QueryGenConfig, RelationSpec,
};

fn exact_count(engine: &RepairEngine, q: &Query) -> BigNat {
    engine
        .run(&CountRequest::exact(q.clone()))
        .unwrap()
        .answer
        .as_count()
        .unwrap()
        .clone()
}

fn estimate(engine: &RepairEngine, request: &CountRequest) -> ApproxCount {
    engine
        .run(request)
        .unwrap()
        .answer
        .as_estimate()
        .unwrap()
        .clone()
}

#[test]
fn fpras_respects_epsilon_on_generated_workloads() {
    let (db, keys) = InconsistentDbConfig {
        relations: vec![RelationSpec::keyed("R", 10)],
        block_sizes: BlockSizeDistribution::Fixed(3),
        payload_domain: 6,
        seed: 17,
    }
    .generate();
    let engine = RepairEngine::new(db, keys);
    let mut failures = 0usize;
    let mut trials = 0usize;
    for qseed in 0..4u64 {
        let q = random_point_query_union(
            engine.database(),
            &QueryGenConfig {
                size: 3,
                seed: qseed,
            },
        );
        let exact = exact_count(&engine, &q);
        if exact.is_zero() {
            continue;
        }
        for seed in 0..5u64 {
            let approx = estimate(
                &engine,
                &CountRequest::approximate(q.clone(), 0.15, 0.05).with_seed(seed),
            );
            trials += 1;
            if approx.relative_error(&exact) > 0.15 {
                failures += 1;
            }
        }
    }
    assert!(trials >= 10, "expected several non-trivial queries");
    // δ = 0.05 per trial: with ~20 trials, more than 3 failures would be
    // wildly improbable if the guarantee held.
    assert!(
        failures <= 2,
        "{failures} of {trials} trials exceeded epsilon"
    );
}

#[test]
fn karp_luby_and_fpras_agree_on_integration_scenario() {
    let (db, keys) = two_source_customers(18, 3);
    let engine = RepairEngine::new(db, keys);
    let queries = [
        "Customer(0, c, 'dormant')",
        "EXISTS id, c . Customer(id, c, 'dormant') AND Order(1000, 0, 10)",
        "Customer(0, c, 'dormant') OR Customer(3, d, 'dormant') OR Customer(6, e, 'dormant')",
    ];
    for text in queries {
        let q = parse_query(text).unwrap();
        let exact = exact_count(&engine, &q);
        let fpras = estimate(&engine, &CountRequest::approximate(q.clone(), 0.1, 0.05));
        let kl = estimate(
            &engine,
            &CountRequest::approximate(q.clone(), 0.1, 0.05)
                .with_strategy(EngineStrategy::KarpLuby),
        );
        if exact.is_zero() {
            assert!(fpras.estimate.is_zero());
            assert!(kl.estimate.is_zero());
        } else {
            assert!(fpras.relative_error(&exact) <= 0.1, "FPRAS off for {text}");
            assert!(kl.relative_error(&exact) <= 0.1, "Karp-Luby off for {text}");
        }
    }
}

#[test]
fn estimators_work_when_exact_enumeration_is_impossible() {
    // ~3^133 repairs: enumeration is unthinkable, the estimators and the
    // box counter still agree with each other.
    let (db, keys) = sensor_readings(100, 10, 4);
    let engine = RepairEngine::new(db, keys);
    // Each of these three (sensor, tick) blocks has readings {0, 5, 10};
    // the query fixes one choice per block, so exactly 1/27 of the repairs
    // restricted to those blocks entail it.
    let q = parse_query("Reading(0, 0, 5) AND Reading(3, 1, 10) AND Reading(6, 2, 0)").unwrap();
    let exact = exact_count(&engine, &q);
    let fpras_request = CountRequest::approximate(q.clone(), 0.1, 0.05).with_sample_cap(400_000);
    let fpras_report = engine.run(&fpras_request).unwrap();
    let fpras = fpras_report.answer.as_estimate().unwrap();
    let kl = estimate(
        &engine,
        &fpras_request
            .clone()
            .with_strategy(EngineStrategy::KarpLuby),
    );
    assert!(
        fpras.relative_error(&exact) <= 0.25,
        "FPRAS (capped samples)"
    );
    assert!(kl.relative_error(&exact) <= 0.1, "Karp-Luby");
    // The sample-space sizes are reported faithfully.
    assert_eq!(&fpras.sample_space_size, engine.total_repairs());
}

#[test]
fn sample_sizes_follow_the_paper_formula() {
    let (db, keys) = two_source_customers(12, 2);
    let q =
        parse_query("EXISTS c . Customer(0, c, 'dormant') AND Customer(2, c, 'dormant')").unwrap();
    let ucq = rewrite_to_ucq(&q).unwrap();
    let estimator = FprasEstimator::new(&db, &keys, &ucq).unwrap();
    let engine = RepairEngine::new(db, keys);
    // m = 2 (largest block), k = 2 (two keyed atoms in the only disjunct).
    for (eps, delta) in [(0.5f64, 0.1f64), (0.2, 0.05), (0.1, 0.01)] {
        let expected = ((2.0 + eps) * 4.0 / (eps * eps) * (2.0f64 / delta).ln()).ceil() as u64;
        let got = estimator
            .required_samples(&ApproxConfig {
                epsilon: eps,
                delta,
                ..ApproxConfig::default()
            })
            .unwrap();
        assert_eq!(got, expected, "eps={eps}, delta={delta}");
        // The engine reports the same requested sample size, unless the
        // estimator short-circuited to an exact value (no sampling).
        let report = engine
            .run(&CountRequest::approximate(q.clone(), eps, delta))
            .unwrap();
        let short_circuited = report.answer.as_estimate().unwrap().exact;
        assert!(
            short_circuited || report.samples_requested == expected,
            "eps={eps}, delta={delta}: requested {}",
            report.samples_requested
        );
    }
}

#[test]
fn invalid_parameters_are_rejected_through_the_engine() {
    let (db, keys) = two_source_customers(4, 2);
    let engine = RepairEngine::new(db, keys);
    let q = parse_query("EXISTS c . Customer(0, c, 'dormant')").unwrap();
    for request in [
        CountRequest::approximate(q.clone(), 0.0, 0.05),
        CountRequest::approximate(q.clone(), 0.1, 0.0),
        CountRequest::approximate(q.clone(), 0.1, 1.0),
        CountRequest::approximate(q.clone(), 0.1, 0.05).with_sample_cap(0),
    ] {
        assert!(engine.run(&request).is_err());
        assert!(engine
            .run(&request.clone().with_strategy(EngineStrategy::KarpLuby))
            .is_err());
    }
}
