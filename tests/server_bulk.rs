//! End-to-end tests for the binary bulk-ingest path (`BULK` frames)
//! against live servers.
//!
//! The hard invariant of the bulk-ingest PR: a frame carrying a run of
//! mutations draws replies **byte-identical** to the textual
//! `INSERT`/`DELETE` lines it replaces — ids, `applied=`, `gen=` and
//! `total=` provenance included — and leaves the engine in the same
//! state, measured through `STATS`.  The invariant must hold for every
//! backend (single engine, sharded router, replicated primary), a
//! follower must refuse bulk mutations per op with `ERR READONLY`, and
//! the readiness-driven server must keep serving other connections
//! while one peer dribbles a frame in byte by byte.

use std::thread;
use std::time::{Duration, Instant};

use repair_count::prelude::*;
use repair_count::workloads::{employee_example, sensor_readings};

fn start_server(engine: RepairEngine, configure: impl FnOnce(&mut ServerConfig)) -> Server {
    let mut config = ServerConfig::bind("127.0.0.1:0");
    config.poll_interval = Duration::from_millis(25);
    configure(&mut config);
    Server::start(engine, config).expect("binding an ephemeral loopback port")
}

fn employee_engine() -> RepairEngine {
    let (db, keys) = employee_example();
    RepairEngine::new(db, keys)
}

/// The mutation script both ingest paths run: inserts across two
/// departments, a delete of a fresh id, and a reinsert.
fn script() -> Vec<String> {
    let mut lines: Vec<String> = (0..12)
        .map(|i| {
            format!(
                "INSERT Employee({}, 'Bulk_{i}', '{}')",
                5 + i,
                if i % 2 == 0 { "IT" } else { "HR" }
            )
        })
        .collect();
    lines.push("DELETE 7".to_string());
    lines.push("INSERT Employee(5, 'Bulk_0', 'IT')".to_string());
    lines
}

/// Encodes the script as one frame against the served schema.
fn script_frame(db: &Database) -> (Vec<u8>, usize) {
    let ops: Vec<Mutation> = script()
        .iter()
        .map(|line| parse_mutation(line, db).expect("valid line"))
        .collect();
    (encode_bulk(db, &ops), ops.len())
}

/// Runs the script textually on one server and as a single bulk frame
/// on an identically-seeded second server, and demands byte-identical
/// replies plus byte-identical final `STATS`.
fn assert_bulk_textual_parity(mut start: impl FnMut() -> Server) {
    let textual_server = start();
    let bulk_server = start();
    let mut textual = Client::connect(textual_server.addr()).expect("connect");
    let mut bulk = Client::connect(bulk_server.addr()).expect("connect");

    let (db, keys) = employee_example();
    let _ = keys;
    let (frame, ops) = script_frame(&db);

    let textual_replies: Vec<String> = script()
        .iter()
        .map(|line| textual.send(line).expect("textual reply"))
        .collect();
    let bulk_replies = bulk.send_bulk(&frame, ops).expect("bulk replies");
    assert_eq!(bulk_replies, textual_replies, "replies diverged");
    assert!(
        bulk_replies[0].starts_with("OK INSERT id=") && bulk_replies[0].contains(" gen="),
        "provenance fields present: {}",
        bulk_replies[0]
    );

    // Same engine state afterwards, including the repair-count gauges.
    let textual_stats = textual.send("STATS").expect("STATS");
    let bulk_stats = bulk.send("STATS").expect("STATS");
    assert_eq!(bulk_stats, textual_stats, "final STATS diverged");
    let query = "COUNT auto EXISTS n . Employee(2, n, 'IT')";
    assert_eq!(
        bulk.send(query).expect("COUNT"),
        textual.send(query).expect("COUNT"),
        "post-ingest query provenance diverged"
    );

    for server in [textual_server, bulk_server] {
        server.shutdown();
        assert_eq!(server.join().recovered_panics, 0);
    }
}

#[test]
fn bulk_matches_textual_on_the_single_engine() {
    assert_bulk_textual_parity(|| start_server(employee_engine(), |_| {}));
}

#[test]
fn bulk_matches_textual_on_the_sharded_router() {
    assert_bulk_textual_parity(|| {
        let (db, keys) = employee_example();
        let mut config = ServerConfig::bind("127.0.0.1:0");
        config.poll_interval = Duration::from_millis(25);
        Server::start_sharded(ShardedEngine::new(db, keys, 3), config).expect("bind")
    });
}

#[test]
fn bulk_matches_textual_on_a_replicated_primary() {
    let dir_for = |tag: &str| {
        let dir =
            std::env::temp_dir().join(format!("cdr-bulk-replog-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    };
    let textual_dir = dir_for("textual");
    let bulk_dir = dir_for("bulk");
    {
        let dirs = [textual_dir.clone(), bulk_dir.clone()];
        let mut dirs = dirs.into_iter();
        assert_bulk_textual_parity(move || {
            let dir = dirs.next().expect("two servers per parity check");
            let backend = ReplicatedBackend::primary(employee_engine(), &dir)
                .expect("a fresh log directory always opens");
            let mut config = ServerConfig::bind("127.0.0.1:0");
            config.poll_interval = Duration::from_millis(25);
            Server::start_replicated(backend, config).expect("bind")
        });
    }
    let _ = std::fs::remove_dir_all(textual_dir);
    let _ = std::fs::remove_dir_all(bulk_dir);
}

/// A follower refuses bulk mutations the same way it refuses textual
/// ones: one `ERR READONLY …` reply per op, connection intact.
#[test]
fn a_follower_refuses_bulk_frames_per_op() {
    let dir = std::env::temp_dir().join(format!("cdr-bulk-follower-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let backend = ReplicatedBackend::primary(employee_engine(), &dir).expect("fresh log directory");
    let mut config = ServerConfig::bind("127.0.0.1:0");
    config.poll_interval = Duration::from_millis(25);
    let primary = Server::start_replicated(backend, config).expect("bind");

    let upstream = primary.addr().to_string();
    let follower_backend =
        ReplicatedBackend::follower(&upstream, None, |engine| engine).expect("bootstrap");
    let mut config = ServerConfig::bind("127.0.0.1:0");
    config.poll_interval = Duration::from_millis(25);
    let follower = Server::start_replicated(follower_backend, config).expect("bind");

    let (db, _) = employee_example();
    let (frame, ops) = script_frame(&db);
    let mut client = Client::connect(follower.addr()).expect("connect");
    let replies = client.send_bulk(&frame, ops).expect("refusals");
    assert_eq!(replies.len(), ops, "one refusal per op");
    for reply in &replies {
        assert!(reply.starts_with("ERR READONLY "), "{reply}");
    }
    // The refused frame changed nothing and the session is in line mode.
    let stats = client.send("STATS").expect("STATS");
    assert!(stats.starts_with("OK STATS facts=4 "), "{stats}");

    follower.shutdown();
    assert_eq!(follower.join().recovered_panics, 0);
    primary.shutdown();
    assert_eq!(primary.join().recovered_panics, 0);
    let _ = std::fs::remove_dir_all(dir);
}

/// An oversize `BULK` length prefix is refused before any body byte is
/// read or any buffer is sized to it, and the line protocol resumes.
#[test]
fn an_oversize_frame_header_is_refused_up_front() {
    let server = start_server(employee_engine(), |config| {
        config.max_frame_bytes = 1024;
    });
    let mut client = Client::connect(server.addr()).expect("connect");
    let reply = client.send("BULK 1025").expect("refusal");
    assert!(reply.starts_with("ERR FRAME "), "{reply}");
    // No body was ever expected: the next line is a command again.
    let stats = client.send("STATS").expect("STATS");
    assert!(stats.starts_with("OK STATS facts=4 "), "{stats}");
    // A frame at exactly the cap is accepted.
    let (db, _) = employee_example();
    let ops = vec![parse_mutation("INSERT Employee(9, 'Cap', 'IT')", &db).expect("valid")];
    let frame = encode_bulk(&db, &ops);
    assert!(frame.len() <= 1024, "test frame fits the cap");
    let replies = client.send_bulk(&frame, ops.len()).expect("bulk");
    assert!(replies[0].starts_with("OK INSERT id="), "{}", replies[0]);
    server.shutdown();
    assert_eq!(server.join().recovered_panics, 0);
}

/// The readiness-driven core: a peer that dribbles a large frame in
/// byte by byte must not stall anyone — even with a single worker, a
/// concurrent connection's `STATS` round-trips while the slow frame is
/// still arriving, because an incomplete frame never occupies a worker.
#[test]
fn a_mid_frame_slow_writer_does_not_stall_other_connections() {
    let (db, keys) = sensor_readings(4, 3, 2);
    let server = start_server(RepairEngine::new(db.clone(), keys), |config| {
        config.workers = 1;
    });
    let addr = server.addr();

    let ops: Vec<Mutation> = (0..64)
        .map(|i| {
            parse_mutation(
                &format!("INSERT Reading({}, {}, {})", i % 4, i % 3, 5000 + i),
                &db,
            )
            .expect("valid line")
        })
        .collect();
    let frame = encode_bulk(&db, &ops);
    let header = format!("BULK {}\n", frame.len());

    let mut slow = Client::connect(addr).expect("connect");
    slow.send_raw(header.as_bytes()).expect("header");

    // Dribble the first half of the frame one byte at a time while a
    // second connection keeps querying.  The slow frame is incomplete
    // the whole time, so the single worker stays free for the probe.
    let half = frame.len() / 2;
    let dribbler = thread::spawn(move || {
        for byte in &frame[..half] {
            slow.send_raw(std::slice::from_ref(byte)).expect("dribble");
            thread::sleep(Duration::from_millis(1));
        }
        (slow, frame)
    });

    let mut probe = Client::connect(addr).expect("connect");
    let mut slowest = Duration::ZERO;
    for _ in 0..10 {
        let started = Instant::now();
        let reply = probe.send("STATS").expect("probe STATS");
        slowest = slowest.max(started.elapsed());
        assert!(reply.starts_with("OK STATS "), "{reply}");
        thread::sleep(Duration::from_millis(3));
    }
    assert!(
        slowest < Duration::from_secs(5),
        "probe STATS stalled behind a half-received frame: {slowest:?}"
    );

    // The dribbled frame completes and executes normally afterwards.
    let (mut slow, frame) = dribbler.join().expect("dribbler panicked");
    slow.send_raw(&frame[half..]).expect("rest of the frame");
    for _ in 0..ops.len() {
        let reply = slow.read_line().expect("op reply");
        assert!(reply.starts_with("OK INSERT id="), "{reply}");
    }

    server.shutdown();
    assert_eq!(server.join().recovered_panics, 0);
}
