//! Parity suite for the [`RepairEngine`]: every report the engine produces
//! must agree with the direct, cache-free algorithm entry points
//! (`count_by_enumeration`, `FprasEstimator`), and every public method of
//! the legacy [`RepairCounter`] facade must be expressible as exactly one
//! [`CountRequest`]. Checked on the named scenarios and, property-style,
//! on random `db_gen`/`query_gen` instances.

use proptest::prelude::*;
use repair_count::counting::{count_by_enumeration, FprasEstimator, Strategy as EngineStrategy};
use repair_count::prelude::*;
use repair_count::query::rewrite_to_ucq;
use repair_count::workloads::{
    employee_example, random_join_query, random_point_query_union, two_source_customers,
    BlockSizeDistribution, InconsistentDbConfig, QueryGenConfig, RelationSpec,
};

/// Asserts that every engine semantics agrees with the direct algorithms
/// and with the legacy facade on one (database, keys, query) instance.
fn assert_engine_parity(db: &Database, keys: &KeySet, q: &Query) {
    let engine = RepairEngine::new(db.clone(), keys.clone());
    let counter = RepairCounter::new(db, keys);

    // Exact count vs the direct enumeration machine.
    let direct = count_by_enumeration(db, keys, q, u64::MAX).unwrap();
    let engine_count = engine
        .run(&CountRequest::exact(q.clone()))
        .unwrap()
        .answer
        .as_count()
        .unwrap()
        .clone();
    assert_eq!(engine_count, direct, "engine vs enumeration for {q}");

    // RepairCounter::count == CountRequest::exact.
    assert_eq!(
        counter.count(q).unwrap().count,
        engine_count,
        "facade count for {q}"
    );

    // RepairCounter::count_with == CountRequest::exact + with_strategy.
    for (facade, engine_strategy) in [
        (ExactStrategy::Enumeration, EngineStrategy::Enumeration),
        (
            ExactStrategy::CertificateBoxes,
            EngineStrategy::CertificateBoxes,
        ),
    ] {
        let via_facade = counter.count_with(q, facade).unwrap().count;
        let via_engine = engine
            .run(&CountRequest::exact(q.clone()).with_strategy(engine_strategy))
            .unwrap()
            .answer
            .as_count()
            .unwrap()
            .clone();
        assert_eq!(via_facade, via_engine, "strategy {facade:?} for {q}");
    }

    // RepairCounter::total_repairs == the engine's precomputed total.
    assert_eq!(counter.total_repairs(), *engine.total_repairs());

    // RepairCounter::frequency == CountRequest::frequency.
    let engine_freq = engine
        .run(&CountRequest::frequency(q.clone()))
        .unwrap()
        .answer
        .as_frequency()
        .unwrap()
        .clone();
    assert_eq!(
        counter.frequency(q).unwrap(),
        engine_freq,
        "frequency for {q}"
    );
    assert_eq!(
        engine_freq,
        Ratio::new(direct.clone(), engine.total_repairs().clone())
    );

    // RepairCounter::holds_in_some_repair == CountRequest::decision.
    let engine_some = engine
        .run(&CountRequest::decision(q.clone()))
        .unwrap()
        .answer
        .as_bool()
        .unwrap();
    assert_eq!(counter.holds_in_some_repair(q).unwrap(), engine_some);
    assert_eq!(engine_some, !direct.is_zero(), "decision vs count for {q}");

    // RepairCounter::holds_in_every_repair == CountRequest::certain_answer.
    let engine_every = engine
        .run(&CountRequest::certain_answer(q.clone()))
        .unwrap()
        .answer
        .as_bool()
        .unwrap();
    assert_eq!(counter.holds_in_every_repair(q).unwrap(), engine_every);
    assert_eq!(
        engine_every,
        direct == *engine.total_repairs(),
        "certain answer vs count for {q}"
    );

    // RepairCounter::keywidth / disjunct_keywidth == the engine's.
    assert_eq!(counter.keywidth(q), engine.keywidth(q));
    assert_eq!(
        counter.disjunct_keywidth(q).unwrap(),
        engine.disjunct_keywidth(q).unwrap()
    );

    // RepairCounter::approximate == CountRequest::approximate; both must
    // match a directly-constructed FprasEstimator with the same seed.
    let config = ApproxConfig {
        epsilon: 0.2,
        delta: 0.05,
        seed: 1234,
        ..ApproxConfig::default()
    };
    let ucq = rewrite_to_ucq(q).unwrap();
    let direct_estimate = FprasEstimator::new(db, keys, &ucq)
        .unwrap()
        .estimate(&config)
        .unwrap();
    let engine_estimate = engine
        .run(
            &CountRequest::approximate(q.clone(), config.epsilon, config.delta)
                .with_seed(config.seed),
        )
        .unwrap()
        .answer
        .as_estimate()
        .unwrap()
        .clone();
    let facade_estimate = counter.approximate(q, &config).unwrap();
    assert_eq!(
        engine_estimate.estimate, direct_estimate.estimate,
        "engine vs direct FPRAS for {q}"
    );
    assert_eq!(
        facade_estimate.estimate, direct_estimate.estimate,
        "facade vs direct FPRAS for {q}"
    );
    assert_eq!(engine_estimate.samples_used, direct_estimate.samples_used);
}

#[test]
fn employee_scenario_parity() {
    let (db, keys) = employee_example();
    for text in [
        "EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)",
        "EXISTS n . Employee(2, n, 'IT')",
        "Employee(1, 'Bob', 'HR')",
        "Employee(1, 'Bob', 'HR') OR Employee(2, 'Tim', 'IT')",
        "EXISTS n, d . Employee(3, n, d)",
        "TRUE",
        "FALSE",
    ] {
        let q = parse_query(text).unwrap();
        assert_engine_parity(&db, &keys, &q);
    }
}

#[test]
fn two_source_customers_scenario_parity() {
    let (db, keys) = two_source_customers(8, 2);
    for text in [
        "Customer(0, c, 'dormant')",
        "EXISTS c, d . Customer(0, c, 'dormant') AND Customer(2, d, 'dormant')",
        "Customer(0, c, 'dormant') OR Customer(4, d, 'active')",
        "EXISTS id, c . Customer(id, c, 'dormant') AND Order(1000, 0, 10)",
    ] {
        let q = parse_query(text).unwrap();
        assert_engine_parity(&db, &keys, &q);
    }
}

#[test]
fn cache_hits_skip_replanning_but_preserve_answers() {
    let (db, keys) = two_source_customers(10, 2);
    let engine = RepairEngine::new(db, keys);
    let q = parse_query("Customer(0, c, 'dormant') OR Customer(2, d, 'dormant')").unwrap();
    let cold = engine.run(&CountRequest::exact(q.clone())).unwrap();
    assert!(!cold.plan_cached);
    for _ in 0..5 {
        let warm = engine.run(&CountRequest::exact(q.clone())).unwrap();
        assert!(warm.plan_cached);
        assert_eq!(
            warm.answer.as_count().unwrap(),
            cold.answer.as_count().unwrap()
        );
    }
    let stats = engine.cache_stats();
    assert_eq!(stats.misses, 1, "exactly one planning pass");
    assert_eq!(stats.hits, 5);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property: engine reports agree with the direct algorithms and the
    /// legacy facade on random databases and point-query unions.
    #[test]
    fn prop_engine_parity_on_point_unions(seed in 0u64..1000, blocks in 2usize..5, size in 1usize..4) {
        let (db, keys) = InconsistentDbConfig {
            relations: vec![RelationSpec::keyed("R", blocks), RelationSpec::keyed("S", blocks)],
            block_sizes: BlockSizeDistribution::Fixed(2),
            payload_domain: 4,
            seed,
        }
        .generate();
        let q = random_point_query_union(&db, &QueryGenConfig { size, seed });
        assert_engine_parity(&db, &keys, &q);
    }

    /// Property: same parity on random join queries over skewed blocks.
    #[test]
    fn prop_engine_parity_on_joins(seed in 0u64..1000, blocks in 2usize..5) {
        let (db, keys) = InconsistentDbConfig {
            relations: vec![RelationSpec::keyed("R", blocks)],
            block_sizes: BlockSizeDistribution::Uniform { min: 1, max: 3 },
            payload_domain: 5,
            seed,
        }
        .generate();
        let q = random_join_query(&db, &keys, &QueryGenConfig { size: 2, seed });
        assert_engine_parity(&db, &keys, &q);
    }
}
