//! Semantic invariants of consistent query answering, checked across the
//! whole stack: repairs are maximal consistent subsets, counting respects
//! complementation for first-order queries, certain answers coincide with
//! "count equals total", and the decision problem matches Lemma 3.5.

use proptest::prelude::*;
use repair_count::counting::Strategy as EngineStrategy;
use repair_count::db::{BlockPartition, RepairIter};
use repair_count::prelude::*;
use repair_count::query::FoFormula;
use repair_count::workloads::{
    employee_example, BlockSizeDistribution, InconsistentDbConfig, RelationSpec,
};

fn negate(q: &Query) -> Query {
    Query::boolean(FoFormula::Not(Box::new(q.formula().clone())))
}

fn exact_count(engine: &RepairEngine, q: &Query) -> BigNat {
    engine
        .run(&CountRequest::exact(q.clone()))
        .unwrap()
        .answer
        .as_count()
        .unwrap()
        .clone()
}

#[test]
fn counts_of_a_query_and_its_negation_partition_the_repairs() {
    let (db, keys) = employee_example();
    let engine = RepairEngine::new(db, keys);
    let total = engine.total_repairs().clone();
    for text in [
        "EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)",
        "Employee(1, 'Bob', 'HR')",
        "EXISTS n . Employee(2, n, 'IT')",
        "EXISTS n, d . Employee(3, n, d)",
    ] {
        let q = parse_query(text).unwrap();
        let count = exact_count(&engine, &q);
        let negated = engine
            .run(&CountRequest::exact(negate(&q)).with_strategy(EngineStrategy::Enumeration))
            .unwrap()
            .answer
            .as_count()
            .unwrap()
            .clone();
        assert_eq!(&count + &negated, total, "complementation fails for {text}");
    }
}

#[test]
fn every_repair_is_a_maximal_consistent_subset() {
    let (db, keys) = InconsistentDbConfig {
        relations: vec![RelationSpec::keyed("R", 4), RelationSpec::keyed("S", 3)],
        block_sizes: BlockSizeDistribution::Uniform { min: 1, max: 3 },
        payload_domain: 5,
        seed: 23,
    }
    .generate();
    let blocks = BlockPartition::new(&db, &keys);
    let mut seen = std::collections::BTreeSet::new();
    for repair in RepairIter::new(&blocks) {
        let repaired = repair.to_database(&db);
        // Consistent.
        assert!(repaired.is_consistent(&keys));
        // Maximal: adding any fact of D \ repair breaks consistency or is
        // already present.
        for (id, fact) in db.iter() {
            if repaired.contains(fact) {
                continue;
            }
            let mut extended: Vec<_> = repaired.facts().cloned().collect();
            extended.push(fact.clone());
            assert!(
                !keys.satisfied_by(extended.iter()),
                "repair is not maximal: fact {id:?} could be added"
            );
        }
        // Distinct from every other repair.
        assert!(seen.insert(repair.facts().to_vec()));
    }
    assert_eq!(
        BigNat::from(seen.len()),
        *RepairEngine::new(db, keys).total_repairs()
    );
}

#[test]
fn certain_answers_coincide_with_full_counts() {
    let (db, keys) = employee_example();
    let engine = RepairEngine::new(db, keys);
    let total = engine.total_repairs().clone();
    for text in [
        "EXISTS n . Employee(2, n, 'IT')",
        "EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)",
        "EXISTS n, d . Employee(1, n, d)",
        "Employee(2, 'Alice', 'IT')",
    ] {
        let q = parse_query(text).unwrap();
        let count = exact_count(&engine, &q);
        let certain = engine
            .run(&CountRequest::certain_answer(q.clone()))
            .unwrap()
            .answer
            .as_bool()
            .unwrap();
        assert_eq!(
            certain,
            count == total,
            "certain-answer mismatch for {text}"
        );
        let possible = engine
            .run(&CountRequest::decision(q))
            .unwrap()
            .answer
            .as_bool()
            .unwrap();
        assert_eq!(
            possible,
            !count.is_zero(),
            "possible-answer mismatch for {text}"
        );
    }
}

#[test]
fn binding_answer_tuples_reduces_to_boolean_counting() {
    // The non-Boolean query Q(x) = "customer x is dormant" evaluated at a
    // tuple equals the Boolean specialisation, as in the problem statement
    // of #CQA (the tuple t̄ is part of the input).
    let (db, keys) = repair_count::workloads::two_source_customers(6, 2);
    let engine = RepairEngine::new(db, keys);
    let open = repair_count::query::parse_query_with_answers(
        "EXISTS c . Customer(id, c, 'dormant')",
        &["id"],
    )
    .unwrap();
    for id in 0..6i64 {
        let bound = repair_count::query::bind_answers(&open, &[Value::int(id)]).unwrap();
        let direct = parse_query(&format!("EXISTS c . Customer({id}, c, 'dormant')")).unwrap();
        assert_eq!(
            exact_count(&engine, &bound),
            exact_count(&engine, &direct),
            "binding mismatch for id {id}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The total repair count always equals the product of the block sizes,
    /// and materialising every repair (when small) finds exactly that many
    /// distinct consistent databases.
    #[test]
    fn prop_total_repairs_is_block_product(seed in 0u64..500, blocks in 1usize..5) {
        let (db, keys) = InconsistentDbConfig {
            relations: vec![RelationSpec::keyed("R", blocks)],
            block_sizes: BlockSizeDistribution::Uniform { min: 1, max: 3 },
            payload_domain: 6,
            seed,
        }
        .generate();
        let partition = BlockPartition::new(&db, &keys);
        let product: u64 = partition.sizes().iter().map(|&s| s as u64).product();
        let engine = RepairEngine::new(db, keys);
        prop_assert_eq!(engine.total_repairs().to_u64(), Some(product));
        let distinct: std::collections::BTreeSet<_> =
            RepairIter::new(&partition).map(|r| r.facts().to_vec()).collect();
        prop_assert_eq!(distinct.len() as u64, product);
    }
}
