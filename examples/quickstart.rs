//! Quickstart: the paper's Example 1.1.
//!
//! Builds the inconsistent `Employee` database, asks whether employees 1
//! and 2 work in the same department, and reports every quantity the paper
//! discusses for it: the blocks, the total number of repairs, the number of
//! repairs entailing the query, the relative frequency, and the
//! certain/possible answer status.
//!
//! Run with: `cargo run --example quickstart`

use repair_count::db::BlockPartition;
use repair_count::prelude::*;
use repair_count::query::keywidth;

fn main() {
    // Schema: Employee(id, name, dept) with key(Employee) = {1}.
    let mut schema = Schema::new();
    schema.add_relation("Employee", 3).expect("fresh schema");
    let keys = KeySet::builder(&schema)
        .key("Employee", 1)
        .expect("valid key")
        .build();

    let mut db = Database::new(schema);
    for fact in [
        "Employee(1, 'Bob',   'HR')",
        "Employee(1, 'Bob',   'IT')",
        "Employee(2, 'Alice', 'IT')",
        "Employee(2, 'Tim',   'IT')",
    ] {
        db.insert_parsed(fact).expect("valid fact");
    }
    println!("Database D:\n{db}\n");
    println!("Primary keys:\n{}\n", keys.display(db.schema()));
    println!("D is consistent w.r.t. the keys: {}\n", db.is_consistent(&keys));

    // The block decomposition B1, ..., Bn.
    let blocks = BlockPartition::new(&db, &keys);
    println!("Blocks ({} total, {} conflicting):", blocks.len(), blocks.conflicting_block_count());
    for (id, block) in blocks.iter() {
        let facts: Vec<String> = block
            .facts()
            .iter()
            .map(|&f| db.fact(f).display(db.schema()).to_string())
            .collect();
        println!("  B{} = {{ {} }}", id.index() + 1, facts.join(", "));
    }
    println!();

    // The query of Example 1.1: do employees 1 and 2 share a department?
    let q = parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)")
        .expect("valid query");
    println!("Query Q: {q}");
    println!("keywidth kw(Q, Sigma) = {}\n", keywidth(&q, db.schema(), &keys));

    let counter = RepairCounter::new(&db, &keys);
    let total = counter.total_repairs();
    let outcome = counter.count(&q).expect("counting succeeds");
    let frequency = counter.frequency(&q).expect("counting succeeds");

    println!("|rep(D, Sigma)|                  = {total}");
    println!("repairs entailing Q              = {}", outcome.count);
    println!("relative frequency of Q          = {frequency}");
    println!(
        "Q holds in some repair (possible) = {}",
        counter.holds_in_some_repair(&q).expect("decision succeeds")
    );
    println!(
        "Q holds in every repair (certain) = {}",
        counter.holds_in_every_repair(&q).expect("decision succeeds")
    );

    // The same number through the paper's FPRAS (Corollary 6.4).
    let approx = counter
        .approximate(&q, &ApproxConfig { epsilon: 0.1, ..ApproxConfig::default() })
        .expect("approximation succeeds");
    println!(
        "\nFPRAS estimate (epsilon = 0.1)    = {} ({} samples, {} positive)",
        approx.estimate, approx.samples_used, approx.positive_samples
    );
}
