//! Quickstart: the paper's Example 1.1 through the [`RepairEngine`].
//!
//! Builds the inconsistent `Employee` database, constructs an engine, and
//! answers every question the paper asks about the instance with one
//! [`CountRequest`] each: the exact count, the relative frequency, the
//! possible/certain answers, and the FPRAS estimate. The engine plans the
//! query once and serves every subsequent request from its cache, then the
//! example turns into a mutable session: [`EngineCommand`]s insert and
//! delete facts, rebuilding only the touched block and updating the total
//! repair count incrementally.
//!
//! Run with: `cargo run --example quickstart`

use repair_count::db::BlockPartition;
use repair_count::prelude::*;

fn main() {
    // Schema: Employee(id, name, dept) with key(Employee) = {1}.
    let mut schema = Schema::new();
    schema.add_relation("Employee", 3).expect("fresh schema");
    let keys = KeySet::builder(&schema)
        .key("Employee", 1)
        .expect("valid key")
        .build();

    let mut db = Database::new(schema);
    for fact in [
        "Employee(1, 'Bob',   'HR')",
        "Employee(1, 'Bob',   'IT')",
        "Employee(2, 'Alice', 'IT')",
        "Employee(2, 'Tim',   'IT')",
    ] {
        db.insert_parsed(fact).expect("valid fact");
    }
    println!("Database D:\n{db}\n");
    println!("Primary keys:\n{}\n", keys.display(db.schema()));
    println!(
        "D is consistent w.r.t. the keys: {}\n",
        db.is_consistent(&keys)
    );

    // The block decomposition B1, ..., Bn.
    let blocks = BlockPartition::new(&db, &keys);
    println!(
        "Blocks ({} total, {} conflicting):",
        blocks.len(),
        blocks.conflicting_block_count()
    );
    for (id, block) in blocks.iter() {
        let facts: Vec<String> = block
            .facts()
            .iter()
            .map(|&f| db.fact(f).display(db.schema()).to_string())
            .collect();
        println!("  B{} = {{ {} }}", id.index() + 1, facts.join(", "));
    }
    println!();

    // The engine owns the database and computes the partition once;
    // `mut` because the session below edits the database through it.
    let mut engine = RepairEngine::new(db, keys);

    // The query of Example 1.1: do employees 1 and 2 share a department?
    let q = parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)")
        .expect("valid query");
    println!("Query Q: {q}");
    println!("keywidth kw(Q, Sigma) = {}\n", engine.keywidth(&q));

    let exact = engine
        .run(&CountRequest::exact(q.clone()))
        .expect("counting succeeds");
    let frequency = engine
        .run(&CountRequest::frequency(q.clone()))
        .expect("counting succeeds");
    let possible = engine
        .run(&CountRequest::decision(q.clone()))
        .expect("decision succeeds");
    let certain = engine
        .run(&CountRequest::certain_answer(q.clone()))
        .expect("decision succeeds");

    println!(
        "|rep(D, Sigma)|                  = {}",
        engine.total_repairs()
    );
    println!(
        "repairs entailing Q              = {}",
        exact.answer.as_count().expect("count")
    );
    println!(
        "relative frequency of Q          = {}",
        frequency.answer.as_frequency().expect("frequency")
    );
    println!(
        "Q holds in some repair (possible) = {}",
        possible.answer.as_bool().expect("boolean")
    );
    println!(
        "Q holds in every repair (certain) = {}",
        certain.answer.as_bool().expect("boolean")
    );

    // The same number through the paper's FPRAS (Corollary 6.4).
    let approx = engine
        .run(&CountRequest::approximate(q, 0.1, 0.05))
        .expect("approximation succeeds");
    let estimate = approx.answer.as_estimate().expect("estimate");
    println!(
        "\nFPRAS estimate (epsilon = 0.1)    = {} ({} samples, {} positive)",
        estimate.estimate, approx.samples_used, estimate.positive_samples
    );

    // Every request after the first reused the cached plan.
    println!("\n{}", engine.cache_stats());
    assert_eq!(engine.cache_stats().misses, 1);

    // --- A mutable session: insert → query → delete → query. -------------
    println!("\n== streaming updates ==");
    let q = parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)")
        .expect("valid query");
    let eve = engine
        .database()
        .parse_fact("Employee(2, 'Eve', 'Finance')")
        .expect("valid fact");

    // Insert: the employee-2 block grows from 2 to 3 facts, and the total
    // repair count is updated by dividing out 2 and multiplying in 3.
    let response = engine
        .execute(EngineCommand::Mutate(Mutation::Insert(eve.clone())))
        .expect("mutation applies");
    let applied = response.as_applied().expect("mutation report");
    println!(
        "insert Employee(2, 'Eve', 'Finance'): generation {}, block delta {} -> {}",
        applied.generation, applied.deltas[0].old_len, applied.deltas[0].new_len
    );
    println!(
        "|rep(D, Sigma)| is now           = {}",
        engine.total_repairs()
    );
    let frequency = engine
        .run(&CountRequest::frequency(q.clone()))
        .expect("counting succeeds");
    println!(
        "relative frequency of Q          = {}",
        frequency.answer.as_frequency().expect("frequency")
    );

    // Delete: the engine is back to the original four repairs.
    let id = engine.database().fact_id(&eve).expect("eve is live");
    engine
        .execute(EngineCommand::Mutate(Mutation::Delete(id)))
        .expect("mutation applies");
    let frequency = engine
        .run(&CountRequest::frequency(q))
        .expect("counting succeeds");
    println!(
        "after delete, frequency of Q     = {} over {} repairs",
        frequency.answer.as_frequency().expect("frequency"),
        engine.total_repairs()
    );
    println!("{}", engine.cache_stats());
}
