//! A complete serving session over a real socket: boot the TCP server on
//! an ephemeral loopback port, drive it with the line protocol, and watch
//! mutations, cached plans and backpressure at work.
//!
//! ```text
//! cargo run --example serving_session
//! ```

use repair_count::prelude::*;
use repair_count::workloads::employee_example;

fn main() -> std::io::Result<()> {
    // The paper's Example 1.1, served: Employee(id, name, dept) with
    // key(Employee) = {1}, two conflicting blocks, four repairs.
    let (db, keys) = employee_example();
    let engine = RepairEngine::new(db, keys).with_parallelism(2);
    let server = Server::start(engine, ServerConfig::bind("127.0.0.1:0"))?;
    println!("serving on {}", server.addr());

    let mut client = Client::connect(server.addr())?;
    let transcript = [
        "STATS",
        "COUNT auto EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)",
        "FREQ EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)",
        // Grow the employee-2 block: the total repair count is maintained
        // incrementally (4 -> 6) and only that block's plans re-derive.
        "INSERT Employee(2, 'Eve', 'Finance')",
        "FREQ EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)",
        "CERTAIN EXISTS n . Employee(2, n, 'IT')",
        "APPROX 0.25 0.1 42 EXISTS n . Employee(2, n, 'IT')",
        // Errors are replies, not dropped connections.
        "DELETE 99",
        "COUNT warp TRUE",
        "STATS",
    ];
    let mut replies = Vec::new();
    for line in transcript {
        println!("> {line}");
        let reply = client.send(line)?;
        println!("< {reply}");
        replies.push(reply);
    }

    // A query batch fans out across the engine's worker threads and
    // streams one reply per item after the header.
    println!("> BATCH (3 queries) END");
    for reply in client.send_batch(&[
        "COUNT auto EXISTS n . Employee(2, n, 'IT')",
        "DECIDE EXISTS n . Employee(3, n, 'IT')",
        "FREQ Employee(1, 'Bob', 'HR')",
    ])? {
        println!("< {reply}");
    }

    // A mutation batch is atomic: validated up front, applied as one
    // barrier, answered with one aggregated report.
    println!("> BATCH (2 mutations) END");
    for reply in client.send_batch(&[
        "INSERT Employee(3, 'Ann', 'IT')",
        "INSERT Employee(3, 'Kim', 'HR')",
    ])? {
        println!("< {reply}");
    }

    println!("> QUIT");
    println!("< {}", client.send("QUIT")?);

    server.shutdown();
    let stats = server.join();
    println!(
        "served {} commands over {} connections ({} busy rejections, {} recovered panics)",
        stats.commands, stats.connections, stats.busy_rejections, stats.recovered_panics
    );

    // The same session against a 4-shard scatter–gather engine
    // (`cdr-serve --shards 4`): mutations route to one shard each,
    // queries gather across all of them, and every reply — including the
    // seeded APPROX estimate — is byte-identical to the unsharded run.
    // Only STATS differs, by growing per-shard gauges after the head.
    let (db, keys) = employee_example();
    let sharded = Server::start_sharded(
        ShardedEngine::new(db, keys, 4),
        ServerConfig::bind("127.0.0.1:0"),
    )?;
    println!("\nreplaying against {} with --shards 4", sharded.addr());
    let mut mirror = Client::connect(sharded.addr())?;
    for (line, unsharded_reply) in transcript.iter().zip(&replies) {
        let reply = mirror.send(line)?;
        if line.starts_with("STATS") {
            assert!(reply.starts_with(&format!("{unsharded_reply} | shards=4 ")));
            println!("< {reply}");
        } else {
            assert_eq!(&reply, unsharded_reply, "sharded reply diverged");
            println!("< {reply}  (byte-identical)");
        }
    }
    sharded.shutdown();
    sharded.join();
    Ok(())
}
