//! Data integration: ranking answers by how often they survive repairing.
//!
//! Two customer databases were merged and disagree on the city and status
//! of some customers.  Instead of the all-or-nothing certain answers, this
//! example ranks Boolean questions by their *relative frequency* over the
//! repairs (Section 1.1 of the paper), and cross-checks the exact counts
//! with the FPRAS.
//!
//! Run with: `cargo run --example data_integration`

use repair_count::prelude::*;
use repair_count::workloads::two_source_customers;

fn main() {
    // 24 customers, every 3rd one has conflicting records from the two
    // sources; orders are consistent.
    let (db, keys) = two_source_customers(24, 3);
    let counter = RepairCounter::new(&db, &keys);
    println!(
        "Integrated database: {} facts, {} repairs\n",
        db.len(),
        counter.total_repairs()
    );

    // Questions an analyst might ask about the merged data.
    let questions: Vec<(&str, &str)> = vec![
        (
            "customer 0 is still active",
            "Customer(0, c, 'active')",
        ),
        (
            "customer 0 is dormant",
            "Customer(0, c, 'dormant')",
        ),
        (
            "customer 3 lives in Paris",
            "Customer(3, 'Paris', s)",
        ),
        (
            "some active customer lives in Rome",
            "EXISTS id, s . Customer(id, 'Rome', 'active')",
        ),
        (
            "customer 6 placed an order worth at least one unit and is active",
            "EXISTS a, c . Order(1006, 6, a) AND Customer(6, c, 'active')",
        ),
        (
            "customers 0 and 6 are both dormant",
            "EXISTS c, d . Customer(0, c, 'dormant') AND Customer(6, d, 'dormant')",
        ),
    ];

    println!(
        "{:<66} {:>12} {:>10} {:>9}",
        "question", "count", "frequency", "certain?"
    );
    let config = ApproxConfig {
        epsilon: 0.1,
        delta: 0.05,
        ..ApproxConfig::default()
    };
    for (label, text) in &questions {
        let q = parse_query(text).expect("valid query");
        let outcome = counter.count(&q).expect("exact counting succeeds");
        let freq = counter.frequency(&q).expect("frequency succeeds");
        let certain = counter.holds_in_every_repair(&q).expect("decision succeeds");
        println!(
            "{label:<66} {:>12} {:>10.4} {:>9}",
            outcome.count.to_string(),
            freq.to_f64(),
            if certain { "yes" } else { "no" }
        );

        // Cross-check with the paper's FPRAS: the estimate must be within
        // epsilon of the exact count (with probability 1 - delta).
        let approx = counter.approximate(&q, &config).expect("FPRAS succeeds");
        let error = approx.relative_error(&outcome.count);
        assert!(
            outcome.count.is_zero() || error <= 3.0 * config.epsilon,
            "FPRAS estimate drifted unexpectedly far: {error}"
        );
    }

    println!("\nAll FPRAS estimates agreed with the exact counts within tolerance.");
}
