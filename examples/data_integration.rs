//! Data integration: ranking answers by how often they survive repairing.
//!
//! Two customer databases were merged and disagree on the city and status
//! of some customers.  Instead of the all-or-nothing certain answers, this
//! example ranks Boolean questions by their *relative frequency* over the
//! repairs (Section 1.1 of the paper), submitting the whole question list
//! to a [`RepairEngine`] as one batch and cross-checking the exact counts
//! with the FPRAS.
//!
//! Run with: `cargo run --example data_integration`

use repair_count::prelude::*;
use repair_count::workloads::two_source_customers;

fn main() {
    // 24 customers, every 3rd one has conflicting records from the two
    // sources; orders are consistent.
    let (db, keys) = two_source_customers(24, 3);
    let engine = RepairEngine::new(db, keys);
    println!(
        "Integrated database: {} facts, {} repairs\n",
        engine.database().len(),
        engine.total_repairs()
    );

    // Questions an analyst might ask about the merged data.
    let questions: Vec<(&str, &str)> = vec![
        ("customer 0 is still active", "Customer(0, c, 'active')"),
        ("customer 0 is dormant", "Customer(0, c, 'dormant')"),
        ("customer 3 lives in Paris", "Customer(3, 'Paris', s)"),
        (
            "some active customer lives in Rome",
            "EXISTS id, s . Customer(id, 'Rome', 'active')",
        ),
        (
            "customer 6 placed an order worth at least one unit and is active",
            "EXISTS a, c . Order(1006, 6, a) AND Customer(6, c, 'active')",
        ),
        (
            "customers 0 and 6 are both dormant",
            "EXISTS c, d . Customer(0, c, 'dormant') AND Customer(6, d, 'dormant')",
        ),
    ];

    // One batch per semantics: the engine plans each query once and the
    // frequency/certain/approximate passes reuse the cached plans.
    let queries: Vec<Query> = questions
        .iter()
        .map(|(_, text)| parse_query(text).expect("valid query"))
        .collect();
    let counts = engine.run_batch(
        &queries
            .iter()
            .map(|q| CountRequest::exact(q.clone()))
            .collect::<Vec<_>>(),
    );
    let frequencies = engine.run_batch(
        &queries
            .iter()
            .map(|q| CountRequest::frequency(q.clone()))
            .collect::<Vec<_>>(),
    );
    let certains = engine.run_batch(
        &queries
            .iter()
            .map(|q| CountRequest::certain_answer(q.clone()))
            .collect::<Vec<_>>(),
    );

    println!(
        "{:<66} {:>12} {:>10} {:>9}",
        "question", "count", "frequency", "certain?"
    );
    for (i, (label, _)) in questions.iter().enumerate() {
        let count = counts[i].as_ref().expect("exact counting succeeds");
        let freq = frequencies[i].as_ref().expect("frequency succeeds");
        let certain = certains[i].as_ref().expect("decision succeeds");
        println!(
            "{label:<66} {:>12} {:>10.4} {:>9}",
            count.answer.as_count().expect("count").to_string(),
            freq.answer.as_frequency().expect("frequency").to_f64(),
            if certain.answer.as_bool().expect("boolean") {
                "yes"
            } else {
                "no"
            }
        );

        // Cross-check with the paper's FPRAS: the estimate must be within
        // epsilon of the exact count (with probability 1 - delta).
        let approx = engine
            .run(&CountRequest::approximate(queries[i].clone(), 0.1, 0.05))
            .expect("FPRAS succeeds");
        let exact_count = count.answer.as_count().expect("count");
        let error = approx
            .answer
            .as_estimate()
            .expect("estimate")
            .relative_error(exact_count);
        assert!(
            exact_count.is_zero() || error <= 3.0 * 0.1,
            "FPRAS estimate drifted unexpectedly far: {error}"
        );
    }

    let stats = engine.cache_stats();
    println!("\nAll FPRAS estimates agreed with the exact counts within tolerance.");
    println!(
        "plan cache: {} misses, {} hits across {} requests",
        stats.misses,
        stats.hits,
        stats.misses + stats.hits
    );
}
