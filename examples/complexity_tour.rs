//! A tour of the Λ-hierarchy machinery (Sections 4, 5 and 7 of the paper).
//!
//! The example builds a `#DisjPoskDNF` formula and a `#kForbColoring`
//! instance, views both as k-compactors, counts their solutions four
//! different ways (directly, through the compactor unfolding, through the
//! natural reduction to `#CQA`, and through the Theorem 5.1 reduction to
//! the fixed query `Q_k`), and finally runs the generic Λ[k] FPRAS on them.
//!
//! Run with: `cargo run --example complexity_tour`

use repair_count::lambda::{
    compactor_fpras, reduce_compactor_to_cqa, unfold_count, DisjPosDnf, ForbiddenColoring,
    Hypergraph,
};
use repair_count::prelude::*;
use repair_count::query::keywidth;

fn main() {
    println!("=== #DisjPos2DNF (Theorem 7.1, k = 2) ===\n");
    // Variables x0..x8 partitioned into three classes of three; a positive
    // 2DNF over them.
    let dnf = DisjPosDnf::new(
        9,
        vec![vec![0, 1, 2], vec![3, 4, 5], vec![6, 7, 8]],
        vec![vec![0, 3], vec![1, 7], vec![4, 8], vec![2]],
        Some(2),
    )
    .expect("well-formed formula");
    println!("classes: {:?}\nclauses: {:?}", dnf.classes(), dnf.clauses());
    println!("total P-assignments = {}", dnf.total_assignments());

    let direct = dnf.count_satisfying(1_000_000).expect("counting succeeds");
    let via_compactor = unfold_count(&dnf, 1_000_000).expect("counting succeeds");
    let via_cqa = dnf.count_via_cqa(1_000_000).expect("counting succeeds");
    let theorem_5_1 = reduce_compactor_to_cqa(&dnf)
        .expect("bounded compactor")
        .count(1_000_000)
        .expect("counting succeeds");
    println!("satisfying P-assignments, four ways:");
    println!("  direct union-of-boxes          = {direct}");
    println!("  compactor unfolding (Λ[2])     = {via_compactor}");
    println!("  natural reduction to #CQA      = {via_cqa}");
    println!("  Theorem 5.1 reduction to Q_2   = {theorem_5_1}");
    assert!(direct == via_compactor && direct == via_cqa && direct == theorem_5_1);

    let config = ApproxConfig {
        epsilon: 0.1,
        delta: 0.05,
        ..ApproxConfig::default()
    };
    let approx = compactor_fpras(&dnf, &config).expect("FPRAS succeeds");
    println!(
        "  Λ[2] FPRAS estimate            = {} (error {:.4})\n",
        approx.estimate,
        approx.relative_error(&direct)
    );

    println!("=== #2ForbColoring (Theorem 7.2, k = 2) ===\n");
    // A 5-cycle with 3 colors per vertex; monochromatic edges in color 0 or
    // color 1 are forbidden.
    let cycle_edges: Vec<Vec<usize>> = (0..5).map(|v| vec![v, (v + 1) % 5]).collect();
    let graph = Hypergraph::new(vec![3; 5], cycle_edges, Some(2)).expect("well-formed hypergraph");
    let coloring = ForbiddenColoring::new(graph, vec![vec![vec![0, 0], vec![1, 1]]; 5])
        .expect("well-formed instance");
    println!("5-cycle, 3 colors per vertex, forbidden: monochromatic 0 or 1 edges");
    println!("total colorings = {}", coloring.graph().total_colorings());

    let direct = coloring
        .count_forbidden(1_000_000)
        .expect("counting succeeds");
    let via_compactor = unfold_count(&coloring, 1_000_000).expect("counting succeeds");
    let via_cqa = coloring
        .count_via_cqa(1_000_000)
        .expect("counting succeeds");
    let instance = reduce_compactor_to_cqa(&coloring).expect("bounded compactor");
    let theorem_5_1 = instance.count(1_000_000).expect("counting succeeds");
    println!("forbidden colorings, four ways:");
    println!("  direct union-of-boxes          = {direct}");
    println!("  compactor unfolding (Λ[2])     = {via_compactor}");
    println!("  natural reduction to #CQA      = {via_cqa}");
    println!("  Theorem 5.1 reduction to Q_2   = {theorem_5_1}");
    assert!(direct == via_compactor && direct == via_cqa && direct == theorem_5_1);

    println!(
        "\nThe Theorem 5.1 instance uses the fixed query Q_2 = {}",
        instance.query
    );
    println!(
        "with kw(Q_2, Sigma_2) = {} over a database of {} facts.",
        keywidth(&instance.query, instance.db.schema(), &instance.keys),
        instance.db.len()
    );

    // The reduced instance is an ordinary #CQA instance, so the serving
    // engine answers it too — a fifth route to the same number.
    let engine = RepairEngine::new(instance.db.clone(), instance.keys.clone());
    let via_engine = engine
        .run(&CountRequest::exact(instance.query.clone()))
        .expect("engine counts the reduced instance")
        .answer
        .as_count()
        .expect("exact semantics report a count")
        .clone();
    println!("  RepairEngine on the instance   = {via_engine}");
    assert_eq!(via_engine, direct);

    let approx = compactor_fpras(&coloring, &config).expect("FPRAS succeeds");
    println!(
        "Λ[2] FPRAS estimate              = {} (error {:.4})",
        approx.estimate,
        approx.relative_error(&direct)
    );
}
