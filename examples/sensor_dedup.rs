//! Sensor deduplication at a scale where exact counting is hopeless.
//!
//! A fleet of sensors reports one reading per tick, but the ingestion
//! pipeline occasionally stored several conflicting readings for the same
//! (sensor, tick) key.  The number of repairs is astronomically large, so
//! exact counting by enumeration is impossible — yet the paper's FPRAS
//! (Theorem 6.2) answers "how often does this pattern hold across repairs"
//! in seconds, and the certificate/box exact counter still works because
//! only the touched blocks matter.
//!
//! Run with: `cargo run --release --example sensor_dedup`

use repair_count::prelude::*;
use repair_count::workloads::sensor_readings;
use std::time::Instant;

fn main() {
    // 120 sensors x 20 ticks; every third sensor has duplicate readings on
    // its first 10 ticks -> 400 conflicted blocks of size 3.
    let (db, keys) = sensor_readings(120, 20, 10);
    let counter = RepairCounter::new(&db, &keys);
    let total = counter.total_repairs();
    println!("Sensor database: {} facts", db.len());
    println!("Total repairs |rep(D, Sigma)| = {total}");
    println!("(about 10^{} repairs)\n", total.to_string().len() - 1);

    // "Sensor 0 reported value 0 at tick 0 and sensor 3 reported value 93
    //  at tick 0" — a pattern over two conflicted blocks.
    let q = parse_query("Reading(0, 0, 0) AND Reading(3, 0, 93)").expect("valid query");

    // Exact counting via certificates/boxes touches only the two relevant
    // blocks, so it is instantaneous even though enumeration would need to
    // visit ~10^190 repairs.
    let started = Instant::now();
    let exact = counter.count(&q).expect("exact counting succeeds");
    println!(
        "exact count via certificate boxes = {} ({} certificates, {:?})",
        exact.count,
        exact.certificates.unwrap_or(0),
        started.elapsed()
    );
    let frequency = counter.frequency(&q).expect("frequency succeeds");
    println!("relative frequency                = {frequency} = {:.6}", frequency.to_f64());

    // The FPRAS reproduces the frequency by sampling repairs uniformly.
    let config = ApproxConfig {
        epsilon: 0.1,
        delta: 0.05,
        max_samples: 200_000,
        ..ApproxConfig::default()
    };
    let started = Instant::now();
    let fpras = counter.approximate(&q, &config).expect("FPRAS succeeds");
    println!(
        "\nFPRAS      : estimate {} (covered fraction {:.6}), {} samples in {:?}",
        fpras.estimate, fpras.covered_fraction, fpras.samples_used, started.elapsed()
    );

    // The Karp-Luby baseline samples (certificate, completion) pairs — the
    // "complex" sample space the paper contrasts its scheme with.
    let started = Instant::now();
    let kl = counter
        .approximate_karp_luby(&q, &config)
        .expect("Karp-Luby succeeds");
    println!(
        "Karp-Luby  : estimate {} (covered fraction {:.6}), {} samples in {:?}",
        kl.estimate, kl.covered_fraction, kl.samples_used, started.elapsed()
    );

    let fpras_err = fpras.relative_error(&exact.count);
    let kl_err = kl.relative_error(&exact.count);
    println!("\nrelative error vs exact: FPRAS {fpras_err:.4}, Karp-Luby {kl_err:.4}");
    assert!(fpras_err <= 3.0 * config.epsilon);
    assert!(kl_err <= 3.0 * config.epsilon);

    // Enumeration would be infeasible: demonstrate that the budget guard
    // refuses politely rather than running forever.
    let err = counter
        .count_with(&q, repair_count::counting::ExactStrategy::Enumeration)
        .unwrap_err();
    println!("\nenumeration strategy refused as expected: {err}");
}
