//! Sensor deduplication at a scale where exact counting is hopeless.
//!
//! A fleet of sensors reports one reading per tick, but the ingestion
//! pipeline occasionally stored several conflicting readings for the same
//! (sensor, tick) key.  The number of repairs is astronomically large, so
//! exact counting by enumeration is impossible — yet the paper's FPRAS
//! (Theorem 6.2) answers "how often does this pattern hold across repairs"
//! in seconds, and the certificate/box exact counter still works because
//! only the touched blocks matter.  The [`RepairEngine`] plans the query
//! once; the second estimator run reuses the cached certificates.
//!
//! Run with: `cargo run --release --example sensor_dedup`

use repair_count::prelude::*;
use repair_count::workloads::sensor_readings;
use std::time::Instant;

fn main() {
    // 120 sensors x 20 ticks; every third sensor has duplicate readings on
    // its first 10 ticks -> 400 conflicted blocks of size 3.
    let (db, keys) = sensor_readings(120, 20, 10);
    let engine = RepairEngine::new(db, keys);
    let total = engine.total_repairs();
    println!("Sensor database: {} facts", engine.database().len());
    println!("Total repairs |rep(D, Sigma)| = {total}");
    println!("(about 10^{} repairs)\n", total.to_string().len() - 1);

    // "Sensor 0 reported value 0 at tick 0 and sensor 3 reported value 93
    //  at tick 0" — a pattern over two conflicted blocks.
    let q = parse_query("Reading(0, 0, 0) AND Reading(3, 0, 93)").expect("valid query");

    // Exact counting via certificates/boxes touches only the two relevant
    // blocks, so it is instantaneous even though enumeration would need to
    // visit ~10^190 repairs.
    let exact = engine
        .run(&CountRequest::exact(q.clone()))
        .expect("exact counting succeeds");
    println!(
        "exact count via certificate boxes = {} ({} certificates, {:?})",
        exact.answer.as_count().expect("count"),
        exact.certificates.unwrap_or(0),
        exact.duration
    );
    let frequency = engine
        .run(&CountRequest::frequency(q.clone()))
        .expect("frequency succeeds");
    let freq = frequency.answer.as_frequency().expect("frequency");
    println!(
        "relative frequency                = {freq} = {:.6}",
        freq.to_f64()
    );

    // The FPRAS reproduces the frequency by sampling repairs uniformly.
    let fpras_request = CountRequest::approximate(q.clone(), 0.1, 0.05).with_sample_cap(200_000);
    let fpras = engine.run(&fpras_request).expect("FPRAS succeeds");
    let fpras_estimate = fpras.answer.as_estimate().expect("estimate");
    println!(
        "\nFPRAS      : estimate {} (covered fraction {:.6}), {} samples in {:?}",
        fpras_estimate.estimate,
        fpras_estimate.covered_fraction,
        fpras.samples_used,
        fpras.duration
    );

    // The Karp-Luby baseline samples (certificate, completion) pairs — the
    // "complex" sample space the paper contrasts its scheme with.  The
    // engine serves it from the same cached plan (note the duration).
    let kl_request = fpras_request.with_strategy(Strategy::KarpLuby);
    let kl = engine.run(&kl_request).expect("Karp-Luby succeeds");
    let kl_estimate = kl.answer.as_estimate().expect("estimate");
    println!(
        "Karp-Luby  : estimate {} (covered fraction {:.6}), {} samples in {:?}",
        kl_estimate.estimate, kl_estimate.covered_fraction, kl.samples_used, kl.duration
    );
    assert!(kl.plan_cached, "second run must reuse the cached plan");

    let exact_count = exact.answer.as_count().expect("count");
    let fpras_err = fpras_estimate.relative_error(exact_count);
    let kl_err = kl_estimate.relative_error(exact_count);
    println!("\nrelative error vs exact: FPRAS {fpras_err:.4}, Karp-Luby {kl_err:.4}");
    assert!(fpras_err <= 3.0 * 0.1);
    assert!(kl_err <= 3.0 * 0.1);

    // Enumeration would be infeasible: demonstrate that the budget guard
    // refuses politely rather than running forever.
    let started = Instant::now();
    let err = engine
        .run(&CountRequest::exact(q).with_strategy(Strategy::Enumeration))
        .unwrap_err();
    println!(
        "\nenumeration strategy refused as expected ({:?}): {err}",
        started.elapsed()
    );
}
