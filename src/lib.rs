//! # repair-count
//!
//! A library for **counting database repairs under primary keys**,
//! reproducing the PODS 2019 paper *"Counting Database Repairs under
//! Primary Keys Revisited"* by Calautti, Console and Pieris.
//!
//! The facade crate re-exports the public API of the workspace crates:
//!
//! * [`num`] — arbitrary-precision counts, log-domain numbers, exact ratios.
//! * [`db`] — facts, schemas, primary keys, blocks and repairs.
//! * [`query`] — FO / ∃FO⁺ / UCQ / CQ queries, parsing, evaluation, keywidth.
//! * [`counting`] — the [`RepairEngine`](prelude::RepairEngine), exact
//!   counters, decision procedures, the Λ\[k\] FPRAS and the Karp–Luby
//!   baseline, relative-frequency CQA.
//! * [`lambda`] — the Λ-hierarchy machinery, companion problems and
//!   hardness reductions.
//! * [`workloads`] — seeded workload generators used by the examples,
//!   integration tests and benchmarks.
//! * [`server`] — the serving front end: a line-protocol TCP server over
//!   [`EngineCommand`](prelude::EngineCommand)s (read/write scheduler,
//!   bounded worker pool, batch backpressure), its test client, the
//!   single-threaded [`Oracle`](prelude::Oracle) replay, and the
//!   replicated command log (snapshots, follower reads, failover
//!   recovery) behind
//!   [`ReplicatedBackend`](prelude::ReplicatedBackend).
//!
//! ## Quickstart
//!
//! The paper's Example 1.1 (the `Employee` relation) through a mutable
//! [`RepairEngine`](prelude::RepairEngine) session: build the engine once,
//! then drive it with [`EngineCommand`](prelude::EngineCommand)s — queries
//! are served from the generation-stamped plan cache, and mutations rebuild
//! only the block they touch.
//!
//! ```
//! use repair_count::prelude::*;
//!
//! let mut schema = Schema::new();
//! schema.add_relation("Employee", 3).unwrap();
//! let keys = KeySet::builder(&schema).key("Employee", 1).unwrap().build();
//!
//! let mut db = Database::new(schema.clone());
//! db.insert_parsed("Employee(1, 'Bob',   'HR')").unwrap();
//! db.insert_parsed("Employee(1, 'Bob',   'IT')").unwrap();
//! db.insert_parsed("Employee(2, 'Alice', 'IT')").unwrap();
//! db.insert_parsed("Employee(2, 'Tim',   'IT')").unwrap();
//!
//! let q = parse_query(
//!     "EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap();
//!
//! let mut engine = RepairEngine::new(db, keys);
//! let report = engine.run(&CountRequest::frequency(q.clone())).unwrap();
//! assert_eq!(report.answer.as_frequency().unwrap().to_string(), "1/2");
//!
//! // Insert a conflicting record: the touched block is rebuilt in place
//! // and the total repair count is updated incrementally (4 → 6).
//! let eve = engine.database().parse_fact("Employee(2, 'Eve', 'Finance')").unwrap();
//! engine
//!     .execute(EngineCommand::Mutate(Mutation::Insert(eve)))
//!     .unwrap();
//! assert_eq!(engine.total_repairs().to_u64(), Some(6));
//! let report = engine.run(&CountRequest::frequency(q)).unwrap();
//! assert_eq!(report.answer.as_frequency().unwrap().to_string(), "1/3");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cdr_core as counting;
pub use cdr_lambda as lambda;
pub use cdr_num as num;
pub use cdr_query as query;
pub use cdr_repairdb as db;
pub use cdr_server as server;
pub use cdr_workloads as workloads;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use cdr_core::replog::{apply_record, LogOp, LogRecord, LogWriter, ReplogError};
    pub use cdr_core::wire::{
        parse_count_request, parse_engine_command, parse_mutation, WireError,
    };
    pub use cdr_core::{
        decode_bulk, encode_bulk, Answer, ApproxConfig, CacheStats, CompactionOutcome,
        CountOutcome, CountReport, CountRequest, EngineCommand, EngineResponse, ExactStrategy,
        FprasEstimator, FrameError, KarpLubyEstimator, MutationReport, RepairCounter, RepairEngine,
        Semantics, ShardGauges, ShardedApplied, ShardedEngine, Strategy,
    };
    pub use cdr_num::{BigNat, LogNum, Ratio};
    pub use cdr_query::{parse_query, Query, UcqQuery};
    pub use cdr_repairdb::{
        BlockDelta, CompactionReport, Database, Fact, KeySet, Mutation, Schema, Snapshot,
        SnapshotError, Symbol, SymbolTable, Value,
    };
    pub use cdr_server::{
        client::Client, client::RetryPolicy, Backend, FeedMode, Oracle, ReplReply,
        ReplicatedBackend, Role, Server, ServerConfig, ServerStats, Supervisor, SupervisorConfig,
        SupervisorState, SupervisorStatus,
    };
}
