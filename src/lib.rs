//! # repair-count
//!
//! A library for **counting database repairs under primary keys**,
//! reproducing the PODS 2019 paper *"Counting Database Repairs under
//! Primary Keys Revisited"* by Calautti, Console and Pieris.
//!
//! The facade crate re-exports the public API of the workspace crates:
//!
//! * [`num`] — arbitrary-precision counts, log-domain numbers, exact ratios.
//! * [`db`] — facts, schemas, primary keys, blocks and repairs.
//! * [`query`] — FO / ∃FO⁺ / UCQ / CQ queries, parsing, evaluation, keywidth.
//! * [`counting`] — the [`RepairEngine`](prelude::RepairEngine), exact
//!   counters, decision procedures, the Λ[k] FPRAS and the Karp–Luby
//!   baseline, relative-frequency CQA.
//! * [`lambda`] — the Λ-hierarchy machinery, companion problems and
//!   hardness reductions.
//! * [`workloads`] — seeded workload generators used by the examples,
//!   integration tests and benchmarks.
//!
//! ## Quickstart
//!
//! The paper's Example 1.1 (the `Employee` relation) through the
//! [`RepairEngine`](prelude::RepairEngine): build the engine once, then
//! answer any number of [`CountRequest`](prelude::CountRequest)s — repeat
//! queries are served from the engine's plan cache.
//!
//! ```
//! use repair_count::prelude::*;
//!
//! let mut schema = Schema::new();
//! schema.add_relation("Employee", 3).unwrap();
//! let keys = KeySet::builder(&schema).key("Employee", 1).unwrap().build();
//!
//! let mut db = Database::new(schema.clone());
//! db.insert_parsed("Employee(1, 'Bob',   'HR')").unwrap();
//! db.insert_parsed("Employee(1, 'Bob',   'IT')").unwrap();
//! db.insert_parsed("Employee(2, 'Alice', 'IT')").unwrap();
//! db.insert_parsed("Employee(2, 'Tim',   'IT')").unwrap();
//!
//! let q = parse_query(
//!     "EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap();
//!
//! let engine = RepairEngine::new(db, keys);
//! let report = engine.run(&CountRequest::frequency(q)).unwrap();
//! assert_eq!(report.answer.as_frequency().unwrap().to_string(), "1/2");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cdr_core as counting;
pub use cdr_lambda as lambda;
pub use cdr_num as num;
pub use cdr_query as query;
pub use cdr_repairdb as db;
pub use cdr_workloads as workloads;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use cdr_core::{
        Answer, ApproxConfig, CacheStats, CountOutcome, CountReport, CountRequest, ExactStrategy,
        FprasEstimator, KarpLubyEstimator, RepairCounter, RepairEngine, Semantics, Strategy,
    };
    pub use cdr_num::{BigNat, LogNum, Ratio};
    pub use cdr_query::{parse_query, Query, UcqQuery};
    pub use cdr_repairdb::{Database, Fact, KeySet, Schema, Value};
}
