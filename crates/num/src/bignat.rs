//! Arbitrary-precision unsigned integers.
//!
//! [`BigNat`] stores a little-endian vector of 32-bit limbs and implements
//! the school-book algorithms.  The type is deliberately small: repair
//! counting needs exact addition, subtraction (counts never go negative in
//! valid uses, so subtraction is checked), multiplication, exponentiation,
//! division by machine-word divisors, ordering, decimal formatting and
//! parsing, and a lossy conversion to `f64` for reporting.

use std::cmp::Ordering;
use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Mul, MulAssign, Sub, SubAssign};
use std::str::FromStr;

const LIMB_BITS: u32 = 32;
const LIMB_BASE: u64 = 1 << LIMB_BITS;

/// An arbitrary-precision unsigned integer (a natural number).
///
/// The internal representation is a little-endian vector of `u32` limbs
/// with no trailing zero limbs; zero is represented by an empty vector.
///
/// ```
/// use cdr_num::BigNat;
///
/// let blocks = [3u64, 2, 2, 5, 4];
/// let total: BigNat = blocks.iter().map(|&b| BigNat::from(b)).product();
/// assert_eq!(total.to_string(), "240");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigNat {
    /// Little-endian limbs; invariant: no trailing zeros.
    limbs: Vec<u32>,
}

impl BigNat {
    /// The number zero.
    pub fn zero() -> Self {
        BigNat { limbs: Vec::new() }
    }

    /// The number one.
    pub fn one() -> Self {
        BigNat { limbs: vec![1] }
    }

    /// Returns `true` iff this number is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` iff this number is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Number of significant bits (zero has zero bits).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => {
                (self.limbs.len() - 1) * LIMB_BITS as usize
                    + (LIMB_BITS - top.leading_zeros()) as usize
            }
        }
    }

    /// Builds a value from a `u64`.
    pub fn from_u64(mut v: u64) -> Self {
        let mut limbs = Vec::with_capacity(2);
        while v != 0 {
            limbs.push((v & (LIMB_BASE - 1)) as u32);
            v >>= LIMB_BITS;
        }
        BigNat { limbs }
    }

    /// Builds a value from a `u128`.
    pub fn from_u128(mut v: u128) -> Self {
        let mut limbs = Vec::with_capacity(4);
        while v != 0 {
            limbs.push((v & (LIMB_BASE as u128 - 1)) as u32);
            v >>= LIMB_BITS;
        }
        BigNat { limbs }
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        if self.limbs.len() > 2 {
            return None;
        }
        let mut v: u64 = 0;
        for (i, &limb) in self.limbs.iter().enumerate() {
            v |= (limb as u64) << (i as u32 * LIMB_BITS);
        }
        Some(v)
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        if self.limbs.len() > 4 {
            return None;
        }
        let mut v: u128 = 0;
        for (i, &limb) in self.limbs.iter().enumerate() {
            v |= (limb as u128) << (i as u32 * LIMB_BITS);
        }
        Some(v)
    }

    /// Lossy conversion to `f64`.
    ///
    /// Values above ~`1.8e308` convert to `f64::INFINITY`.
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0f64;
        for &limb in self.limbs.iter().rev() {
            acc = acc * LIMB_BASE as f64 + limb as f64;
            if acc.is_infinite() {
                return f64::INFINITY;
            }
        }
        acc
    }

    /// Natural logarithm of the value; `-inf` for zero.
    ///
    /// Accurate even for values whose `f64` conversion overflows, by
    /// scaling out whole limbs.
    pub fn ln(&self) -> f64 {
        if self.is_zero() {
            return f64::NEG_INFINITY;
        }
        // Take the top (up to) three limbs as the mantissa and account for
        // the rest as an exponent of 2^32.
        let n = self.limbs.len();
        let take = n.min(3);
        let mut mant = 0.0f64;
        for i in 0..take {
            mant = mant * LIMB_BASE as f64 + self.limbs[n - 1 - i] as f64;
        }
        let shifted_limbs = (n - take) as f64;
        mant.ln() + shifted_limbs * (LIMB_BASE as f64).ln()
    }

    /// Checked subtraction: `self - other`, or `None` if `other > self`.
    pub fn checked_sub(&self, other: &BigNat) -> Option<BigNat> {
        if self < other {
            return None;
        }
        let mut limbs = Vec::with_capacity(self.limbs.len());
        let mut borrow: i64 = 0;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i] as i64;
            let b = *other.limbs.get(i).unwrap_or(&0) as i64;
            let mut d = a - b - borrow;
            if d < 0 {
                d += LIMB_BASE as i64;
                borrow = 1;
            } else {
                borrow = 0;
            }
            limbs.push(d as u32);
        }
        debug_assert_eq!(borrow, 0, "borrow out of checked subtraction");
        let mut out = BigNat { limbs };
        out.normalize();
        Some(out)
    }

    /// Saturating subtraction: `max(self - other, 0)`.
    pub fn saturating_sub(&self, other: &BigNat) -> BigNat {
        self.checked_sub(other).unwrap_or_else(BigNat::zero)
    }

    /// Multiplies by a machine word in place.
    pub fn mul_assign_u64(&mut self, rhs: u64) {
        if rhs == 0 || self.is_zero() {
            self.limbs.clear();
            return;
        }
        if rhs == 1 {
            return;
        }
        let lo = rhs & (LIMB_BASE - 1);
        let hi = rhs >> LIMB_BITS;
        if hi == 0 {
            let mut carry: u64 = 0;
            for limb in self.limbs.iter_mut() {
                let prod = *limb as u64 * lo + carry;
                *limb = (prod & (LIMB_BASE - 1)) as u32;
                carry = prod >> LIMB_BITS;
            }
            while carry != 0 {
                self.limbs.push((carry & (LIMB_BASE - 1)) as u32);
                carry >>= LIMB_BITS;
            }
        } else {
            let rhs_big = BigNat::from_u64(rhs);
            *self = &*self * &rhs_big;
        }
    }

    /// Division by a machine word, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem_u32(&self, divisor: u32) -> (BigNat, u32) {
        assert!(divisor != 0, "division by zero");
        let d = divisor as u64;
        let mut quotient = vec![0u32; self.limbs.len()];
        let mut rem: u64 = 0;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << LIMB_BITS) | self.limbs[i] as u64;
            quotient[i] = (cur / d) as u32;
            rem = cur % d;
        }
        let mut q = BigNat { limbs: quotient };
        q.normalize();
        (q, rem as u32)
    }

    /// Division by a 64-bit machine word, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem_u64(&self, divisor: u64) -> (BigNat, u64) {
        assert!(divisor != 0, "division by zero");
        let d = divisor as u128;
        let mut quotient = vec![0u32; self.limbs.len()];
        let mut rem: u128 = 0;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << LIMB_BITS) | self.limbs[i] as u128;
            quotient[i] = (cur / d) as u32;
            rem = cur % d;
        }
        let mut q = BigNat { limbs: quotient };
        q.normalize();
        (q, rem as u64)
    }

    /// Raises the value to the power `exp`.
    pub fn pow(&self, mut exp: u32) -> BigNat {
        let mut base = self.clone();
        let mut acc = BigNat::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Parses a decimal string (ASCII digits only, optional leading zeros).
    pub fn parse_decimal(s: &str) -> Option<BigNat> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        let mut acc = BigNat::zero();
        for b in s.bytes() {
            acc.mul_assign_u64(10);
            acc += BigNat::from_u64((b - b'0') as u64);
        }
        Some(acc)
    }

    /// Rounds an `f64` to the nearest natural number; negative values and
    /// NaN map to zero, infinite values are rejected.
    pub fn from_f64_rounded(v: f64) -> Option<BigNat> {
        if v.is_nan() || v < 0.5 {
            return Some(BigNat::zero());
        }
        if v.is_infinite() {
            return None;
        }
        let mut v = v.round();
        let mut out = BigNat::zero();
        let mut scale = BigNat::one();
        // Peel off 32 bits at a time.
        while v >= 1.0 {
            let rem = v % LIMB_BASE as f64;
            let mut part = BigNat::from_u64(rem as u64);
            part = &part * &scale;
            out += part;
            v = (v - rem) / LIMB_BASE as f64;
            scale.mul_assign_u64(LIMB_BASE);
        }
        Some(out)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }
}

impl From<u64> for BigNat {
    fn from(v: u64) -> Self {
        BigNat::from_u64(v)
    }
}

impl From<u32> for BigNat {
    fn from(v: u32) -> Self {
        BigNat::from_u64(v as u64)
    }
}

impl From<usize> for BigNat {
    fn from(v: usize) -> Self {
        BigNat::from_u64(v as u64)
    }
}

impl From<u128> for BigNat {
    fn from(v: u128) -> Self {
        BigNat::from_u128(v)
    }
}

impl PartialOrd for BigNat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigNat {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl Add<&BigNat> for &BigNat {
    type Output = BigNat;

    fn add(self, rhs: &BigNat) -> BigNat {
        let (long, short) = if self.limbs.len() >= rhs.limbs.len() {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let mut limbs = Vec::with_capacity(long.limbs.len() + 1);
        let mut carry: u64 = 0;
        for i in 0..long.limbs.len() {
            let sum = long.limbs[i] as u64 + *short.limbs.get(i).unwrap_or(&0) as u64 + carry;
            limbs.push((sum & (LIMB_BASE - 1)) as u32);
            carry = sum >> LIMB_BITS;
        }
        if carry != 0 {
            limbs.push(carry as u32);
        }
        BigNat { limbs }
    }
}

impl Add for BigNat {
    type Output = BigNat;

    fn add(self, rhs: BigNat) -> BigNat {
        &self + &rhs
    }
}

impl AddAssign<BigNat> for BigNat {
    fn add_assign(&mut self, rhs: BigNat) {
        *self = &*self + &rhs;
    }
}

impl AddAssign<&BigNat> for BigNat {
    fn add_assign(&mut self, rhs: &BigNat) {
        *self = &*self + rhs;
    }
}

impl Sub<&BigNat> for &BigNat {
    type Output = BigNat;

    /// # Panics
    ///
    /// Panics if the result would be negative.
    fn sub(self, rhs: &BigNat) -> BigNat {
        self.checked_sub(rhs).expect("BigNat subtraction underflow")
    }
}

impl Sub for BigNat {
    type Output = BigNat;

    fn sub(self, rhs: BigNat) -> BigNat {
        &self - &rhs
    }
}

impl SubAssign<&BigNat> for BigNat {
    fn sub_assign(&mut self, rhs: &BigNat) {
        *self = &*self - rhs;
    }
}

impl Mul<&BigNat> for &BigNat {
    type Output = BigNat;

    fn mul(self, rhs: &BigNat) -> BigNat {
        if self.is_zero() || rhs.is_zero() {
            return BigNat::zero();
        }
        let mut limbs = vec![0u32; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry: u64 = 0;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let cur = limbs[i + j] as u64 + a as u64 * b as u64 + carry;
                limbs[i + j] = (cur & (LIMB_BASE - 1)) as u32;
                carry = cur >> LIMB_BITS;
            }
            let mut k = i + rhs.limbs.len();
            while carry != 0 {
                let cur = limbs[k] as u64 + carry;
                limbs[k] = (cur & (LIMB_BASE - 1)) as u32;
                carry = cur >> LIMB_BITS;
                k += 1;
            }
        }
        let mut out = BigNat { limbs };
        out.normalize();
        out
    }
}

impl Mul for BigNat {
    type Output = BigNat;

    fn mul(self, rhs: BigNat) -> BigNat {
        &self * &rhs
    }
}

impl MulAssign<&BigNat> for BigNat {
    fn mul_assign(&mut self, rhs: &BigNat) {
        *self = &*self * rhs;
    }
}

impl MulAssign<BigNat> for BigNat {
    fn mul_assign(&mut self, rhs: BigNat) {
        *self = &*self * &rhs;
    }
}

impl Sum for BigNat {
    fn sum<I: Iterator<Item = BigNat>>(iter: I) -> Self {
        iter.fold(BigNat::zero(), |acc, x| acc + x)
    }
}

impl Product for BigNat {
    fn product<I: Iterator<Item = BigNat>>(iter: I) -> Self {
        iter.fold(BigNat::one(), |acc, x| acc * x)
    }
}

impl fmt::Display for BigNat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Repeated division by 10^9 to extract decimal chunks.
        let mut digits = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u32(1_000_000_000);
            digits.push(r);
            cur = q;
        }
        let mut s = String::new();
        for (i, chunk) in digits.iter().rev().enumerate() {
            if i == 0 {
                s.push_str(&chunk.to_string());
            } else {
                s.push_str(&format!("{chunk:09}"));
            }
        }
        write!(f, "{s}")
    }
}

impl fmt::Debug for BigNat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigNat({self})")
    }
}

impl FromStr for BigNat {
    type Err = ParseBigNatError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BigNat::parse_decimal(s).ok_or(ParseBigNatError)
    }
}

/// Error returned when parsing a [`BigNat`] from a non-decimal string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseBigNatError;

impl fmt::Display for ParseBigNatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid decimal natural number")
    }
}

impl std::error::Error for ParseBigNatError {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_and_one() {
        assert!(BigNat::zero().is_zero());
        assert!(BigNat::one().is_one());
        assert_eq!(BigNat::zero().to_string(), "0");
        assert_eq!(BigNat::one().to_string(), "1");
        assert_eq!(BigNat::zero().bits(), 0);
        assert_eq!(BigNat::one().bits(), 1);
    }

    #[test]
    fn u64_round_trip() {
        for v in [0u64, 1, 2, 9, 10, 4294967295, 4294967296, u64::MAX] {
            assert_eq!(BigNat::from_u64(v).to_u64(), Some(v));
            assert_eq!(BigNat::from_u64(v).to_string(), v.to_string());
        }
    }

    #[test]
    fn u128_round_trip() {
        for v in [0u128, u64::MAX as u128 + 1, u128::MAX] {
            assert_eq!(BigNat::from_u128(v).to_u128(), Some(v));
            assert_eq!(BigNat::from_u128(v).to_string(), v.to_string());
        }
        assert_eq!(BigNat::from_u128(u128::MAX).to_u64(), None);
    }

    #[test]
    fn addition_matches_u128() {
        let a = BigNat::from_u64(u64::MAX);
        let b = BigNat::from_u64(u64::MAX);
        assert_eq!((&a + &b).to_u128(), Some(u64::MAX as u128 * 2));
    }

    #[test]
    fn multiplication_matches_u128() {
        let a = BigNat::from_u64(u64::MAX);
        let b = BigNat::from_u64(12345);
        assert_eq!((&a * &b).to_u128(), Some(u64::MAX as u128 * 12345));
    }

    #[test]
    fn subtraction_checked() {
        let a = BigNat::from_u64(100);
        let b = BigNat::from_u64(58);
        assert_eq!((&a - &b).to_u64(), Some(42));
        assert_eq!(b.checked_sub(&a), None);
        assert_eq!(b.saturating_sub(&a), BigNat::zero());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = &BigNat::from_u64(1) - &BigNat::from_u64(2);
    }

    #[test]
    fn pow_small() {
        assert_eq!(BigNat::from_u64(2).pow(10).to_u64(), Some(1024));
        assert_eq!(BigNat::from_u64(3).pow(0).to_u64(), Some(1));
        assert_eq!(BigNat::from_u64(0).pow(0).to_u64(), Some(1));
        assert_eq!(BigNat::from_u64(0).pow(5).to_u64(), Some(0));
        assert_eq!(
            BigNat::from_u64(2).pow(200).to_string(),
            "1606938044258990275541962092341162602522202993782792835301376"
        );
    }

    #[test]
    fn div_rem_small() {
        let v = BigNat::parse_decimal("123456789012345678901234567890").unwrap();
        let (q, r) = v.div_rem_u32(7);
        assert_eq!(q.to_string(), "17636684144620811271604938270");
        assert_eq!(r, 0);
        let (q2, r2) = v.div_rem_u32(9999);
        assert_eq!(q2.to_string(), "12346913592593827272850741");
        assert_eq!(r2, 8631);
    }

    #[test]
    fn display_and_parse_round_trip() {
        let s = "340282366920938463463374607431768211456000000001";
        let v = BigNat::parse_decimal(s).unwrap();
        assert_eq!(v.to_string(), s);
        assert_eq!(s.parse::<BigNat>().unwrap(), v);
        assert!("".parse::<BigNat>().is_err());
        assert!("12a".parse::<BigNat>().is_err());
    }

    #[test]
    fn to_f64_and_ln() {
        assert_eq!(BigNat::from_u64(1000).to_f64(), 1000.0);
        let big = BigNat::from_u64(2).pow(100);
        let lf = big.ln();
        assert!((lf - 100.0 * 2f64.ln()).abs() < 1e-9);
        let huge = BigNat::from_u64(2).pow(5000);
        assert!(huge.to_f64().is_infinite());
        assert!((huge.ln() - 5000.0 * 2f64.ln()).abs() < 1e-6);
        assert_eq!(BigNat::zero().ln(), f64::NEG_INFINITY);
    }

    #[test]
    fn from_f64_rounded_cases() {
        assert_eq!(BigNat::from_f64_rounded(0.2), Some(BigNat::zero()));
        assert_eq!(BigNat::from_f64_rounded(-5.0), Some(BigNat::zero()));
        assert_eq!(BigNat::from_f64_rounded(f64::NAN), Some(BigNat::zero()));
        assert_eq!(BigNat::from_f64_rounded(f64::INFINITY), None);
        assert_eq!(
            BigNat::from_f64_rounded(123456.6).unwrap().to_u64(),
            Some(123457)
        );
        let v = BigNat::from_f64_rounded(1e30).unwrap();
        // 1e30 is not exactly representable; check we are within f64 accuracy.
        let back = v.to_f64();
        assert!((back - 1e30).abs() / 1e30 < 1e-12);
    }

    #[test]
    fn ordering() {
        let a = BigNat::from_u64(u64::MAX);
        let b = &a * &BigNat::from_u64(2);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
        assert!(BigNat::zero() < BigNat::one());
    }

    #[test]
    fn sum_and_product_iterators() {
        let vals = [1u64, 2, 3, 4, 5];
        let s: BigNat = vals.iter().map(|&v| BigNat::from(v)).sum();
        let p: BigNat = vals.iter().map(|&v| BigNat::from(v)).product();
        assert_eq!(s.to_u64(), Some(15));
        assert_eq!(p.to_u64(), Some(120));
    }

    #[test]
    fn mul_assign_u64_large_multiplier() {
        let mut v = BigNat::from_u64(10);
        v.mul_assign_u64(u64::MAX);
        assert_eq!(v.to_u128(), Some(10u128 * u64::MAX as u128));
        let mut z = BigNat::from_u64(7);
        z.mul_assign_u64(0);
        assert!(z.is_zero());
        let mut o = BigNat::from_u64(7);
        o.mul_assign_u64(1);
        assert_eq!(o.to_u64(), Some(7));
    }

    proptest! {
        #[test]
        fn prop_add_matches_u128(a in 0u64.., b in 0u64..) {
            let big = &BigNat::from(a) + &BigNat::from(b);
            prop_assert_eq!(big.to_u128(), Some(a as u128 + b as u128));
        }

        #[test]
        fn prop_mul_matches_u128(a in 0u64.., b in 0u64..) {
            let big = &BigNat::from(a) * &BigNat::from(b);
            prop_assert_eq!(big.to_u128(), Some(a as u128 * b as u128));
        }

        #[test]
        fn prop_sub_matches_u128(a in 0u64.., b in 0u64..) {
            let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
            let big = &BigNat::from(hi) - &BigNat::from(lo);
            prop_assert_eq!(big.to_u64(), Some(hi - lo));
        }

        #[test]
        fn prop_display_parse_round_trip(a in 0u128..) {
            let big = BigNat::from(a);
            let parsed: BigNat = big.to_string().parse().unwrap();
            prop_assert_eq!(parsed, big);
        }

        #[test]
        fn prop_div_rem_reconstructs(a in 0u128.., d in 1u32..) {
            let big = BigNat::from(a);
            let (q, r) = big.div_rem_u32(d);
            prop_assert!((r as u64) < d as u64);
            let mut back = q;
            back.mul_assign_u64(d as u64);
            back += BigNat::from(r as u64);
            prop_assert_eq!(back, BigNat::from(a));
        }

        #[test]
        fn prop_div_rem_u64_reconstructs(a in 0u128.., d in 1u64..) {
            let big = BigNat::from(a);
            let (q, r) = big.div_rem_u64(d);
            prop_assert!(r < d);
            prop_assert_eq!(q.to_u128().unwrap(), a / d as u128);
            prop_assert_eq!(r as u128, a % d as u128);
        }

        #[test]
        fn prop_add_commutes(a in 0u128.., b in 0u128..) {
            prop_assert_eq!(
                &BigNat::from(a) + &BigNat::from(b),
                &BigNat::from(b) + &BigNat::from(a)
            );
        }

        #[test]
        fn prop_mul_distributes(a in 0u64.., b in 0u64.., c in 0u64..) {
            let (a, b, c) = (BigNat::from(a), BigNat::from(b), BigNat::from(c));
            prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        }

        #[test]
        fn prop_ordering_consistent_with_u128(a in 0u128.., b in 0u128..) {
            prop_assert_eq!(BigNat::from(a).cmp(&BigNat::from(b)), a.cmp(&b));
        }
    }
}
