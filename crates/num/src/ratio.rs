//! Exact non-negative rationals.
//!
//! The paper motivates counting repairs via *relative frequency*: the number
//! of repairs entailing a tuple divided by the total number of repairs
//! (Section 1.1).  [`Ratio`] represents that quantity exactly as a pair of
//! [`BigNat`]s kept in lowest terms.

use std::cmp::Ordering;
use std::fmt;

use crate::BigNat;

/// An exact non-negative rational number `numerator / denominator`.
///
/// The denominator is always non-zero and the fraction is kept in lowest
/// terms (via binary GCD).
///
/// ```
/// use cdr_num::{BigNat, Ratio};
///
/// let half = Ratio::new(BigNat::from(2u64), BigNat::from(4u64));
/// assert_eq!(half.to_string(), "1/2");
/// assert_eq!(half.to_f64(), 0.5);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: BigNat,
    den: BigNat,
}

impl Ratio {
    /// Creates a ratio, reducing it to lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn new(num: BigNat, den: BigNat) -> Self {
        assert!(!den.is_zero(), "Ratio denominator must be non-zero");
        if num.is_zero() {
            return Ratio {
                num: BigNat::zero(),
                den: BigNat::one(),
            };
        }
        let g = gcd(num.clone(), den.clone());
        let num = divide_exact(&num, &g);
        let den = divide_exact(&den, &g);
        Ratio { num, den }
    }

    /// The ratio 0/1.
    pub fn zero() -> Self {
        Ratio {
            num: BigNat::zero(),
            den: BigNat::one(),
        }
    }

    /// The ratio 1/1.
    pub fn one() -> Self {
        Ratio {
            num: BigNat::one(),
            den: BigNat::one(),
        }
    }

    /// The numerator in lowest terms.
    pub fn numerator(&self) -> &BigNat {
        &self.num
    }

    /// The denominator in lowest terms.
    pub fn denominator(&self) -> &BigNat {
        &self.den
    }

    /// Returns `true` iff the ratio is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` iff the ratio is exactly one.
    pub fn is_one(&self) -> bool {
        self.num == self.den
    }

    /// Lossy conversion to `f64`, stable even for huge numerator/denominator.
    pub fn to_f64(&self) -> f64 {
        if self.num.is_zero() {
            return 0.0;
        }
        (self.num.ln() - self.den.ln()).exp()
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d  <=>  a*d vs c*b  (all values non-negative).
        let left = &self.num * &other.den;
        let right = &other.num * &self.den;
        left.cmp(&right)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ratio({self})")
    }
}

/// Binary-free GCD via the Euclidean algorithm with repeated subtraction of
/// shifted values is overkill here; we use the simple remainder-based
/// Euclidean algorithm implemented with long division by repeated
/// subtraction of scaled divisors.
fn gcd(mut a: BigNat, mut b: BigNat) -> BigNat {
    while !b.is_zero() {
        let r = remainder(&a, &b);
        a = b;
        b = r;
    }
    a
}

/// Computes `a mod b` for arbitrary precision values (`b` non-zero) using
/// shift-and-subtract long division.
fn remainder(a: &BigNat, b: &BigNat) -> BigNat {
    let (_, r) = div_rem(a, b);
    r
}

/// Computes `a / b` assuming the division is exact.
fn divide_exact(a: &BigNat, b: &BigNat) -> BigNat {
    let (q, r) = div_rem(a, b);
    debug_assert!(r.is_zero(), "divide_exact called with a non-divisor");
    q
}

/// School-book binary long division on naturals: returns
/// `(quotient, remainder)`.
fn div_rem(a: &BigNat, b: &BigNat) -> (BigNat, BigNat) {
    assert!(!b.is_zero(), "division by zero");
    if a < b {
        return (BigNat::zero(), a.clone());
    }
    if let (Some(x), Some(y)) = (a.to_u128(), b.to_u128()) {
        return (BigNat::from(x / y), BigNat::from(x % y));
    }
    // Build the ladder b, 2b, 4b, ... up to the largest multiple <= a, then
    // walk it back down subtracting greedily.  O(bits(a)) BigNat operations,
    // plenty fast for the count sizes seen in this workspace.
    let two = BigNat::from(2u64);
    let mut ladder = vec![b.clone()];
    loop {
        let next = ladder.last().unwrap() * &two;
        if next > *a {
            break;
        }
        ladder.push(next);
    }
    let mut quotient = BigNat::zero();
    let mut rem = a.clone();
    for shifted in ladder.iter().rev() {
        quotient = &quotient * &two;
        if rem >= *shifted {
            rem = &rem - shifted;
            quotient += BigNat::one();
        }
    }
    (quotient, rem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reduces_to_lowest_terms() {
        let r = Ratio::new(BigNat::from(6u64), BigNat::from(8u64));
        assert_eq!(r.numerator().to_u64(), Some(3));
        assert_eq!(r.denominator().to_u64(), Some(4));
        assert_eq!(r.to_string(), "3/4");
    }

    #[test]
    fn zero_and_one() {
        assert!(Ratio::zero().is_zero());
        assert!(Ratio::one().is_one());
        assert_eq!(
            Ratio::new(BigNat::zero(), BigNat::from(7u64)),
            Ratio::zero()
        );
        assert_eq!(
            Ratio::new(BigNat::from(5u64), BigNat::from(5u64)),
            Ratio::one()
        );
        assert_eq!(Ratio::one().to_string(), "1");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(BigNat::one(), BigNat::zero());
    }

    #[test]
    fn ordering_and_f64() {
        let a = Ratio::new(BigNat::from(1u64), BigNat::from(3u64));
        let b = Ratio::new(BigNat::from(1u64), BigNat::from(2u64));
        assert!(a < b);
        assert!((a.to_f64() - 1.0 / 3.0).abs() < 1e-12);
        assert!((b.to_f64() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn huge_values_stay_exact() {
        let num = BigNat::from(2u64).pow(500);
        let den = BigNat::from(2u64).pow(501);
        let r = Ratio::new(num, den);
        assert_eq!(r.to_string(), "1/2");
        assert!((r.to_f64() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn div_rem_large_divisor() {
        let a = BigNat::from(2u64).pow(200);
        let b = &BigNat::from(2u64).pow(100) + &BigNat::one();
        let (q, r) = div_rem(&a, &b);
        let mut recon = &q * &b;
        recon += &r;
        assert_eq!(recon, a);
        assert!(r < b);
    }

    proptest! {
        #[test]
        fn prop_reduction_preserves_value(n in 0u64..1_000_000, d in 1u64..1_000_000) {
            let r = Ratio::new(BigNat::from(n), BigNat::from(d));
            let expected = n as f64 / d as f64;
            prop_assert!((r.to_f64() - expected).abs() < 1e-9);
        }

        #[test]
        fn prop_cmp_matches_f64(n1 in 0u64..10_000, d1 in 1u64..10_000,
                                n2 in 0u64..10_000, d2 in 1u64..10_000) {
            let a = Ratio::new(BigNat::from(n1), BigNat::from(d1));
            let b = Ratio::new(BigNat::from(n2), BigNat::from(d2));
            let lhs = (n1 as u128) * (d2 as u128);
            let rhs = (n2 as u128) * (d1 as u128);
            prop_assert_eq!(a.cmp(&b), lhs.cmp(&rhs));
        }

        #[test]
        fn prop_div_rem_reconstructs(a in 0u128.., b in 1u128..) {
            let (q, r) = div_rem(&BigNat::from(a), &BigNat::from(b));
            prop_assert_eq!(q.to_u128().unwrap() , a / b);
            prop_assert_eq!(r.to_u128().unwrap(), a % b);
        }
    }
}
