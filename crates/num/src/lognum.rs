//! Non-negative reals kept in the log domain.
//!
//! The FPRAS of Theorem 6.2 multiplies the (possibly astronomically large)
//! size of the solution space `|U| = ∏ |S_i|` by an empirical mean in
//! `[0, 1]`.  Carrying `|U|` as an `f64` overflows; carrying it as a
//! [`crate::BigNat`] and converting at the end loses the ability to do the
//! final scaling cheaply.  [`LogNum`] stores `ln(x)` and supports the small
//! set of operations the estimators need.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Product;
use std::ops::{Div, Mul, MulAssign};

use crate::BigNat;

/// A non-negative real number stored as its natural logarithm.
///
/// Zero is represented by `ln = -inf`.  Multiplication and division are
/// exact up to floating-point error in the log domain; addition uses the
/// standard log-sum-exp trick.
#[derive(Clone, Copy, PartialEq)]
pub struct LogNum {
    ln: f64,
}

impl LogNum {
    /// The number zero.
    pub fn zero() -> Self {
        LogNum {
            ln: f64::NEG_INFINITY,
        }
    }

    /// The number one.
    pub fn one() -> Self {
        LogNum { ln: 0.0 }
    }

    /// Builds a value from a non-negative `f64`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is negative or NaN.
    pub fn from_f64(v: f64) -> Self {
        assert!(
            v >= 0.0 && !v.is_nan(),
            "LogNum requires a non-negative value"
        );
        LogNum { ln: v.ln() }
    }

    /// Builds a value directly from its natural logarithm.
    pub fn from_ln(ln: f64) -> Self {
        assert!(!ln.is_nan(), "LogNum requires a non-NaN logarithm");
        LogNum { ln }
    }

    /// Builds a value from an exact natural number.
    pub fn from_bignat(v: &BigNat) -> Self {
        LogNum { ln: v.ln() }
    }

    /// The natural logarithm of the value.
    pub fn ln(&self) -> f64 {
        self.ln
    }

    /// The value as an `f64` (may be `inf` for very large values).
    pub fn to_f64(&self) -> f64 {
        self.ln.exp()
    }

    /// Returns `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.ln == f64::NEG_INFINITY
    }

    /// Adds two log-domain numbers using log-sum-exp.
    pub fn add(&self, other: &LogNum) -> LogNum {
        if self.is_zero() {
            return *other;
        }
        if other.is_zero() {
            return *self;
        }
        let (hi, lo) = if self.ln >= other.ln {
            (self.ln, other.ln)
        } else {
            (other.ln, self.ln)
        };
        LogNum {
            ln: hi + (lo - hi).exp().ln_1p(),
        }
    }

    /// The relative error `|self - other| / other`, computed in the linear
    /// domain but stably.  Returns `f64::INFINITY` when `other` is zero and
    /// `self` is not.
    pub fn relative_error(&self, other: &LogNum) -> f64 {
        if other.is_zero() {
            return if self.is_zero() { 0.0 } else { f64::INFINITY };
        }
        // |a/b - 1| computed via exp of log-ratio.
        (self.ln - other.ln).exp_m1().abs()
    }
}

impl Mul for LogNum {
    type Output = LogNum;

    fn mul(self, rhs: LogNum) -> LogNum {
        if self.is_zero() || rhs.is_zero() {
            return LogNum::zero();
        }
        LogNum {
            ln: self.ln + rhs.ln,
        }
    }
}

impl MulAssign for LogNum {
    fn mul_assign(&mut self, rhs: LogNum) {
        *self = *self * rhs;
    }
}

impl Div for LogNum {
    type Output = LogNum;

    /// # Panics
    ///
    /// Panics when dividing by zero.
    fn div(self, rhs: LogNum) -> LogNum {
        assert!(!rhs.is_zero(), "LogNum division by zero");
        if self.is_zero() {
            return LogNum::zero();
        }
        LogNum {
            ln: self.ln - rhs.ln,
        }
    }
}

impl Product for LogNum {
    fn product<I: Iterator<Item = LogNum>>(iter: I) -> Self {
        iter.fold(LogNum::one(), |acc, x| acc * x)
    }
}

impl PartialOrd for LogNum {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.ln.partial_cmp(&other.ln)
    }
}

impl fmt::Debug for LogNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LogNum(e^{})", self.ln)
    }
}

impl fmt::Display for LogNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            write!(f, "0")
        } else if self.ln.abs() < 300.0 {
            write!(f, "{}", self.to_f64())
        } else {
            // Print as a power of ten for readability.
            let log10 = self.ln / std::f64::consts::LN_10;
            let exp = log10.floor();
            let mant = 10f64.powf(log10 - exp);
            write!(f, "{mant:.4}e{exp}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
    }

    #[test]
    fn basic_arithmetic() {
        let a = LogNum::from_f64(6.0);
        let b = LogNum::from_f64(7.0);
        assert!(close((a * b).to_f64(), 42.0));
        assert!(close((a / b).to_f64(), 6.0 / 7.0));
        assert!(close(a.add(&b).to_f64(), 13.0));
    }

    #[test]
    fn zero_behaviour() {
        let z = LogNum::zero();
        let a = LogNum::from_f64(3.0);
        assert!(z.is_zero());
        assert!((z * a).is_zero());
        assert!(close(z.add(&a).to_f64(), 3.0));
        assert!((z / a).is_zero());
        assert_eq!(z.to_string(), "0");
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = LogNum::one() / LogNum::zero();
    }

    #[test]
    fn from_bignat_is_consistent() {
        let big = BigNat::from(2u64).pow(300);
        let ln = LogNum::from_bignat(&big);
        assert!(close(ln.ln(), 300.0 * 2f64.ln()));
    }

    #[test]
    fn relative_error_cases() {
        let a = LogNum::from_f64(110.0);
        let b = LogNum::from_f64(100.0);
        assert!(close(a.relative_error(&b), 0.1));
        assert!(close(b.relative_error(&b), 0.0));
        assert_eq!(
            LogNum::from_f64(1.0).relative_error(&LogNum::zero()),
            f64::INFINITY
        );
        assert_eq!(LogNum::zero().relative_error(&LogNum::zero()), 0.0);
    }

    #[test]
    fn huge_values_display() {
        let huge = LogNum::from_ln(10_000.0);
        let s = huge.to_string();
        assert!(s.contains('e'), "expected scientific notation, got {s}");
    }

    #[test]
    fn ordering() {
        assert!(LogNum::from_f64(2.0) < LogNum::from_f64(3.0));
        assert!(LogNum::zero() < LogNum::one());
    }

    proptest! {
        #[test]
        fn prop_mul_matches_f64(a in 0.0f64..1e100, b in 0.0f64..1e100) {
            let l = LogNum::from_f64(a) * LogNum::from_f64(b);
            if a > 0.0 && b > 0.0 {
                prop_assert!(close(l.ln(), a.ln() + b.ln()));
            } else {
                prop_assert!(l.is_zero());
            }
        }

        #[test]
        fn prop_add_matches_f64(a in 0.0f64..1e12, b in 0.0f64..1e12) {
            let l = LogNum::from_f64(a).add(&LogNum::from_f64(b));
            prop_assert!(close(l.to_f64(), a + b));
        }
    }
}
