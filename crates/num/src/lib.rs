//! Numeric substrate for repair counting.
//!
//! Counting database repairs routinely produces numbers of the form
//! `∏ |B_i|` where the product ranges over the blocks of an inconsistent
//! database.  Even modest databases overflow `u128`, so the counting
//! algorithms in the rest of the workspace work with:
//!
//! * [`BigNat`] — an arbitrary-precision unsigned integer with exactly the
//!   operations counting needs (addition, subtraction, multiplication,
//!   small division, comparison, decimal I/O, conversion to `f64`).
//! * [`LogNum`] — a non-negative real kept in the log domain, used by the
//!   approximation schemes when only relative magnitudes matter.
//! * [`Ratio`] — an exact non-negative rational `BigNat / BigNat`, used for
//!   relative frequencies (the paper's "how often is a tuple an answer").
//!
//! The crate is dependency-free by design: it is the bottom of the
//! workspace dependency DAG.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bignat;
mod lognum;
mod ratio;

pub use bignat::BigNat;
pub use lognum::LogNum;
pub use ratio::Ratio;
