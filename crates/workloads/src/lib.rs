//! Seeded workload generators for the repair-counting experiments.
//!
//! The paper has no empirical section — its experiments are explicitly left
//! to future work (Section 8).  This crate provides the workloads that the
//! examples, the integration tests and the benchmark harness use to
//! exercise every algorithm of the other crates:
//!
//! * [`scenarios`] — small, fully-specified scenarios: the paper's
//!   Example 1.1 (`Employee`), a two-source data-integration scenario, and
//!   a large sensor-deduplication scenario.
//! * [`db_gen`] — random inconsistent databases with controlled block
//!   counts and block-size distributions.
//! * [`query_gen`] — random conjunctive queries / UCQs with a target
//!   keywidth, grounded in a generated database so that certificates exist.
//! * [`dnf_gen`], [`hypergraph_gen`], [`cnf_gen`] — random instances of the
//!   companion problems `#DisjPoskDNF`, `#kForbColoring` and `#3SAT`.
//!
//! All generators are deterministic given a seed (`rand_chacha`), which
//! keeps every experiment in EXPERIMENTS.md reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cnf_gen;
pub mod db_gen;
pub mod dnf_gen;
pub mod hypergraph_gen;
pub mod query_gen;
pub mod scenarios;

pub use cnf_gen::{random_cnf3, Cnf3Config};
pub use db_gen::{BlockSizeDistribution, InconsistentDbConfig, RelationSpec};
pub use dnf_gen::{random_disj_pos_dnf, DnfConfig};
pub use hypergraph_gen::{random_forbidden_coloring, HypergraphConfig};
pub use query_gen::{random_join_query, random_point_query_union, QueryGenConfig};
pub use scenarios::{
    churn_base, churn_session, conflicting_blocks, employee_example, replication_battery,
    sensor_readings, serving_session, streaming_sensor_updates, two_source_customers,
};
