//! Random 3CNF formulas for the `#3SAT` lower-bound experiments.

use cdr_lambda::{Cnf3, Literal3};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Configuration of the random 3CNF generator.
#[derive(Clone, Debug)]
pub struct Cnf3Config {
    /// Number of variables.
    pub variables: usize,
    /// Number of clauses.
    pub clauses: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Cnf3Config {
    fn default() -> Self {
        Cnf3Config {
            variables: 6,
            clauses: 8,
            seed: 1,
        }
    }
}

/// Generates a random 3CNF with distinct variables inside every clause
/// (when enough variables exist).
pub fn random_cnf3(config: &Cnf3Config) -> Cnf3 {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let n = config.variables.max(1);
    let mut clauses = Vec::with_capacity(config.clauses);
    for _ in 0..config.clauses {
        let mut vars = [0usize; 3];
        if n >= 3 {
            // Sample three distinct variables.
            vars[0] = rng.gen_range(0..n);
            loop {
                vars[1] = rng.gen_range(0..n);
                if vars[1] != vars[0] {
                    break;
                }
            }
            loop {
                vars[2] = rng.gen_range(0..n);
                if vars[2] != vars[0] && vars[2] != vars[1] {
                    break;
                }
            }
        } else {
            for v in &mut vars {
                *v = rng.gen_range(0..n);
            }
        }
        let clause = [
            Literal3::new(vars[0], rng.gen_bool(0.5)),
            Literal3::new(vars[1], rng.gen_bool(0.5)),
            Literal3::new(vars[2], rng.gen_bool(0.5)),
        ];
        clauses.push(clause);
    }
    Cnf3::new(n, clauses).expect("generated formulas are well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_formulas_reduce_parsimoniously() {
        for seed in 0..4u64 {
            let f = random_cnf3(&Cnf3Config {
                variables: 5,
                clauses: 6,
                seed,
            });
            assert_eq!(f.num_vars(), 5);
            assert_eq!(f.clauses().len(), 6);
            assert_eq!(
                f.count_models_via_cqa(1_000_000).unwrap(),
                f.count_models_brute_force(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn tiny_variable_counts_are_handled() {
        let f = random_cnf3(&Cnf3Config {
            variables: 1,
            clauses: 2,
            seed: 3,
        });
        assert_eq!(f.num_vars(), 1);
        assert_eq!(f.clauses().len(), 2);
    }

    #[test]
    fn generation_is_deterministic() {
        let config = Cnf3Config::default();
        assert_eq!(random_cnf3(&config), random_cnf3(&config));
    }
}
