//! Random `#kForbColoring` instances.

use cdr_lambda::{ForbiddenColoring, Hypergraph};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Configuration of the random k-uniform hypergraph generator.
#[derive(Clone, Debug)]
pub struct HypergraphConfig {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of colors per vertex.
    pub colors_per_vertex: usize,
    /// Number of hyperedges.
    pub edges: usize,
    /// Vertices per hyperedge (the uniformity `k`).
    pub edge_size: usize,
    /// Forbidden assignments per hyperedge.
    pub forbidden_per_edge: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HypergraphConfig {
    fn default() -> Self {
        HypergraphConfig {
            vertices: 8,
            colors_per_vertex: 3,
            edges: 5,
            edge_size: 2,
            forbidden_per_edge: 2,
            seed: 1,
        }
    }
}

/// Generates a random k-uniform hypergraph with forbidden assignments.
pub fn random_forbidden_coloring(config: &HypergraphConfig) -> ForbiddenColoring {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let vertices = config.vertices.max(1);
    let colors = config.colors_per_vertex.max(1);
    let edge_size = config.edge_size.max(1).min(vertices);
    let mut edges = Vec::with_capacity(config.edges);
    let mut forbidden = Vec::with_capacity(config.edges);
    for _ in 0..config.edges {
        // Pick `edge_size` distinct vertices.
        let mut pool: Vec<usize> = (0..vertices).collect();
        for i in 0..edge_size {
            let j = rng.gen_range(i..vertices);
            pool.swap(i, j);
        }
        let mut edge: Vec<usize> = pool[..edge_size].to_vec();
        edge.sort_unstable();
        let sets: Vec<Vec<usize>> = (0..config.forbidden_per_edge)
            .map(|_| (0..edge_size).map(|_| rng.gen_range(0..colors)).collect())
            .collect();
        edges.push(edge);
        forbidden.push(sets);
    }
    let graph = Hypergraph::new(vec![colors; vertices], edges, Some(edge_size))
        .expect("generated hypergraphs are well-formed");
    ForbiddenColoring::new(graph, forbidden).expect("generated assignments are well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_instances_are_well_formed_and_countable() {
        for seed in 0..5u64 {
            let config = HypergraphConfig {
                vertices: 7,
                colors_per_vertex: 3,
                edges: 4,
                edge_size: 2,
                forbidden_per_edge: 2,
                seed,
            };
            let f = random_forbidden_coloring(&config);
            assert_eq!(f.graph().num_vertices(), 7);
            assert_eq!(f.graph().edges().len(), 4);
            assert_eq!(
                f.count_forbidden(1_000_000).unwrap(),
                f.count_forbidden_brute_force()
            );
        }
    }

    #[test]
    fn edge_size_is_clamped_and_deterministic() {
        let config = HypergraphConfig {
            vertices: 3,
            edge_size: 9,
            ..HypergraphConfig::default()
        };
        let f = random_forbidden_coloring(&config);
        assert!(f.graph().edges().iter().all(|e| e.len() == 3));
        assert_eq!(
            random_forbidden_coloring(&config),
            random_forbidden_coloring(&config)
        );
    }
}
