//! Random `#DisjPoskDNF` instances.

use cdr_lambda::DisjPosDnf;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Configuration of the random partitioned positive DNF generator.
#[derive(Clone, Debug)]
pub struct DnfConfig {
    /// Number of partition classes.
    pub classes: usize,
    /// Number of variables per class.
    pub class_size: usize,
    /// Number of clauses.
    pub clauses: usize,
    /// Number of variables per clause (the `k` of the kDNF).
    pub clause_width: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DnfConfig {
    fn default() -> Self {
        DnfConfig {
            classes: 6,
            class_size: 3,
            clauses: 5,
            clause_width: 2,
            seed: 1,
        }
    }
}

/// Generates a random partitioned positive kDNF.
///
/// Clauses draw their variables from distinct classes, so every clause is
/// satisfiable by some P-assignment.
pub fn random_disj_pos_dnf(config: &DnfConfig) -> DisjPosDnf {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let classes_count = config.classes.max(1);
    let class_size = config.class_size.max(1);
    let num_vars = classes_count * class_size;
    let classes: Vec<Vec<usize>> = (0..classes_count)
        .map(|c| (0..class_size).map(|i| c * class_size + i).collect())
        .collect();
    let width = config.clause_width.max(1).min(classes_count);
    let mut clauses = Vec::with_capacity(config.clauses);
    for _ in 0..config.clauses {
        // Pick `width` distinct classes, then one variable from each.
        let mut chosen_classes: Vec<usize> = (0..classes_count).collect();
        for i in 0..width {
            let j = rng.gen_range(i..classes_count);
            chosen_classes.swap(i, j);
        }
        let clause: Vec<usize> = chosen_classes[..width]
            .iter()
            .map(|&c| classes[c][rng.gen_range(0..class_size)])
            .collect();
        clauses.push(clause);
    }
    DisjPosDnf::new(num_vars, classes, clauses, Some(width))
        .expect("generated formulas are well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_formulas_are_well_formed_and_countable() {
        for seed in 0..5u64 {
            let config = DnfConfig {
                classes: 5,
                class_size: 3,
                clauses: 6,
                clause_width: 2,
                seed,
            };
            let f = random_disj_pos_dnf(&config);
            assert_eq!(f.num_vars(), 15);
            assert_eq!(f.classes().len(), 5);
            assert_eq!(f.clauses().len(), 6);
            assert!(f.clauses().iter().all(|c| c.len() <= 2));
            assert_eq!(
                f.count_satisfying(1_000_000).unwrap(),
                f.count_satisfying_brute_force()
            );
        }
    }

    #[test]
    fn clause_width_is_clamped_to_the_class_count() {
        let f = random_disj_pos_dnf(&DnfConfig {
            classes: 2,
            class_size: 2,
            clauses: 3,
            clause_width: 10,
            seed: 1,
        });
        assert!(f.clauses().iter().all(|c| c.len() <= 2));
        assert_eq!(f.width_bound(), Some(2));
    }

    #[test]
    fn generation_is_deterministic() {
        let config = DnfConfig::default();
        assert_eq!(random_disj_pos_dnf(&config), random_disj_pos_dnf(&config));
        let other = DnfConfig {
            seed: 2,
            ..DnfConfig::default()
        };
        assert_ne!(random_disj_pos_dnf(&config), random_disj_pos_dnf(&other));
    }
}
