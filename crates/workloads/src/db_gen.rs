//! Random inconsistent databases.

use cdr_repairdb::{Database, KeySet, Schema, Value};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// How block sizes are drawn.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BlockSizeDistribution {
    /// Every block has exactly this many facts.
    Fixed(usize),
    /// Block sizes are drawn uniformly from `min..=max`.
    Uniform {
        /// Smallest block size (at least 1).
        min: usize,
        /// Largest block size.
        max: usize,
    },
    /// Most blocks are singletons; a `fraction` (in percent) of blocks are
    /// conflicted with the given size.  Models a mostly-clean database with
    /// a few integration conflicts.
    MostlyClean {
        /// Percentage (0–100) of blocks that are conflicted.
        conflict_percent: u8,
        /// Size of a conflicted block.
        conflict_size: usize,
    },
}

impl BlockSizeDistribution {
    fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        match *self {
            BlockSizeDistribution::Fixed(n) => n.max(1),
            BlockSizeDistribution::Uniform { min, max } => {
                let lo = min.max(1);
                let hi = max.max(lo);
                rng.gen_range(lo..=hi)
            }
            BlockSizeDistribution::MostlyClean {
                conflict_percent,
                conflict_size,
            } => {
                if rng.gen_range(0..100u8) < conflict_percent.min(100) {
                    conflict_size.max(1)
                } else {
                    1
                }
            }
        }
    }
}

/// One relation of a generated schema.
#[derive(Clone, Debug, PartialEq)]
pub struct RelationSpec {
    /// Relation name.
    pub name: String,
    /// Number of non-key payload columns (the key is a single leading
    /// column, so the arity is `1 + payload_columns`).
    pub payload_columns: usize,
    /// Number of blocks (distinct key values) to generate.
    pub blocks: usize,
    /// Whether the relation has a primary key on its first column.  An
    /// unkeyed relation never conflicts, so its facts are singleton blocks.
    pub keyed: bool,
}

impl RelationSpec {
    /// A keyed relation with the given name, one payload column and the
    /// given number of blocks.
    pub fn keyed(name: &str, blocks: usize) -> Self {
        RelationSpec {
            name: name.to_string(),
            payload_columns: 1,
            blocks,
            keyed: true,
        }
    }
}

/// Configuration of a random inconsistent database.
#[derive(Clone, Debug)]
pub struct InconsistentDbConfig {
    /// The relations to generate.
    pub relations: Vec<RelationSpec>,
    /// Block size distribution for keyed relations.
    pub block_sizes: BlockSizeDistribution,
    /// Size of the payload-value pool (small pools make joins likely).
    pub payload_domain: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for InconsistentDbConfig {
    fn default() -> Self {
        InconsistentDbConfig {
            relations: vec![RelationSpec::keyed("R", 8)],
            block_sizes: BlockSizeDistribution::Fixed(3),
            payload_domain: 8,
            seed: 1,
        }
    }
}

impl InconsistentDbConfig {
    /// Generates the database and its primary keys.
    pub fn generate(&self) -> (Database, KeySet) {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut schema = Schema::new();
        for rel in &self.relations {
            schema
                .add_relation(&rel.name, 1 + rel.payload_columns)
                .expect("relation names in a config must be distinct");
        }
        let mut builder = KeySet::builder(&schema);
        for rel in &self.relations {
            if rel.keyed {
                builder = builder
                    .key(&rel.name, 1)
                    .expect("keys in a config must be valid");
            }
        }
        let keys = builder.build();
        let mut db = Database::new(schema);
        for rel in &self.relations {
            for key in 0..rel.blocks {
                let block_size = if rel.keyed {
                    self.block_sizes.sample(&mut rng)
                } else {
                    1
                };
                let mut produced = 0usize;
                let mut attempts = 0usize;
                while produced < block_size && attempts < block_size * 10 {
                    attempts += 1;
                    let mut args = Vec::with_capacity(1 + rel.payload_columns);
                    args.push(Value::int(key as i64));
                    for _ in 0..rel.payload_columns {
                        args.push(Value::text(format!(
                            "p{}",
                            rng.gen_range(0..self.payload_domain.max(1))
                        )));
                    }
                    let before = db.len();
                    db.insert_values(&rel.name, args)
                        .expect("generated facts match the schema");
                    if db.len() > before {
                        produced += 1;
                    }
                }
            }
        }
        (db, keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdr_repairdb::BlockPartition;

    #[test]
    fn fixed_block_sizes_are_respected() {
        let config = InconsistentDbConfig {
            relations: vec![RelationSpec::keyed("R", 10)],
            block_sizes: BlockSizeDistribution::Fixed(3),
            payload_domain: 50,
            seed: 7,
        };
        let (db, keys) = config.generate();
        let blocks = BlockPartition::new(&db, &keys);
        assert_eq!(blocks.len(), 10);
        // With a payload pool of 50 values, collisions are unlikely but
        // possible; sizes are between 1 and 3 and mostly 3.
        assert!(blocks.sizes().iter().all(|&s| (1..=3).contains(&s)));
        assert!(blocks.sizes().iter().filter(|&&s| s == 3).count() >= 7);
    }

    #[test]
    fn uniform_and_mostly_clean_distributions() {
        let config = InconsistentDbConfig {
            relations: vec![RelationSpec::keyed("R", 30)],
            block_sizes: BlockSizeDistribution::Uniform { min: 1, max: 4 },
            payload_domain: 100,
            seed: 3,
        };
        let (db, keys) = config.generate();
        let blocks = BlockPartition::new(&db, &keys);
        assert_eq!(blocks.len(), 30);
        assert!(blocks.max_block_size() <= 4);

        let config = InconsistentDbConfig {
            relations: vec![RelationSpec::keyed("R", 100)],
            block_sizes: BlockSizeDistribution::MostlyClean {
                conflict_percent: 20,
                conflict_size: 3,
            },
            payload_domain: 100,
            seed: 3,
        };
        let (db, keys) = config.generate();
        let blocks = BlockPartition::new(&db, &keys);
        let conflicted = blocks.conflicting_block_count();
        assert!(conflicted > 5 && conflicted < 40, "got {conflicted}");
    }

    #[test]
    fn unkeyed_relations_stay_consistent() {
        let config = InconsistentDbConfig {
            relations: vec![
                RelationSpec::keyed("R", 5),
                RelationSpec {
                    name: "Log".into(),
                    payload_columns: 2,
                    blocks: 7,
                    keyed: false,
                },
            ],
            block_sizes: BlockSizeDistribution::Fixed(2),
            payload_domain: 10,
            seed: 11,
        };
        let (db, keys) = config.generate();
        let log = db.schema().relation_id("Log").unwrap();
        assert!(!keys.has_key(log));
        assert_eq!(db.facts_of(log).len(), 7);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = InconsistentDbConfig::default();
        let (a, _) = config.generate();
        let (b, _) = config.generate();
        assert_eq!(a, b);
        let other = InconsistentDbConfig {
            seed: 999,
            ..InconsistentDbConfig::default()
        };
        let (c, _) = other.generate();
        assert_ne!(a, c, "different seeds should give different databases");
    }
}
