//! Random queries grounded in a generated database.

use cdr_query::{parse_query, Query};
use cdr_repairdb::{Database, KeySet};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Configuration of the random query generators.
#[derive(Clone, Debug)]
pub struct QueryGenConfig {
    /// Number of atoms in a join query / disjuncts in a union query.
    pub size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QueryGenConfig {
    fn default() -> Self {
        QueryGenConfig { size: 2, seed: 1 }
    }
}

/// Builds a Boolean join query over the keyed relations of `db`: `size`
/// atoms, each fixing a key constant drawn from the database and joining
/// the payload columns through a shared variable.
///
/// The generated query has keywidth `size` (one keyed atom per key
/// constant) and is guaranteed to mention keys that actually occur in the
/// database, so certificates are likely (not guaranteed) to exist.
pub fn random_join_query(db: &Database, keys: &KeySet, config: &QueryGenConfig) -> Query {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let keyed: Vec<_> = db
        .schema()
        .iter()
        .filter(|(id, _)| keys.has_key(*id))
        .map(|(id, info)| (id, info.clone()))
        .collect();
    if keyed.is_empty() || db.is_empty() {
        return parse_query("TRUE").expect("constant query");
    }
    let mut atoms = Vec::new();
    for i in 0..config.size.max(1) {
        let (rel_id, info) = &keyed[rng.gen_range(0..keyed.len())];
        let facts = db.facts_of(*rel_id);
        if facts.is_empty() {
            continue;
        }
        let fact = db.fact(facts[rng.gen_range(0..facts.len())]);
        // Key columns become the fact's constants; payload columns become a
        // shared variable `v` (for joins) or fresh variables.
        let width = keys.key_width(*rel_id).unwrap_or(info.arity());
        let mut terms = Vec::new();
        for (col, value) in fact.args().iter().enumerate() {
            if col < width {
                terms.push(value.to_string());
            } else if col == width && config.size > 1 {
                terms.push("shared".to_string());
            } else {
                terms.push(format!("w{i}_{col}"));
            }
        }
        atoms.push(format!("{}({})", info.name(), terms.join(", ")));
    }
    if atoms.is_empty() {
        return parse_query("TRUE").expect("constant query");
    }
    let text = atoms.join(" AND ");
    parse_query(&text).expect("generated query is syntactically valid")
}

/// Builds a union of `size` point queries, each asking for one concrete
/// fact drawn from the database.  The result is a UCQ whose disjuncts have
/// keywidth 1 (or 0 for unkeyed relations).
pub fn random_point_query_union(db: &Database, config: &QueryGenConfig) -> Query {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    if db.is_empty() {
        return parse_query("FALSE").expect("constant query");
    }
    let all: Vec<_> = db.iter().collect();
    let mut disjuncts = Vec::new();
    for _ in 0..config.size.max(1) {
        let (_, fact) = all[rng.gen_range(0..all.len())];
        let name = db.schema().name(fact.relation());
        let terms: Vec<String> = fact.args().iter().map(|v| v.to_string()).collect();
        disjuncts.push(format!("{name}({})", terms.join(", ")));
    }
    let text = disjuncts.join(" OR ");
    parse_query(&text).expect("generated query is syntactically valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db_gen::{BlockSizeDistribution, InconsistentDbConfig, RelationSpec};
    use cdr_core::{ExactStrategy, RepairCounter};
    use cdr_query::keywidth;

    fn generated() -> (Database, KeySet) {
        InconsistentDbConfig {
            relations: vec![RelationSpec::keyed("R", 6), RelationSpec::keyed("S", 6)],
            block_sizes: BlockSizeDistribution::Fixed(2),
            payload_domain: 4,
            seed: 5,
        }
        .generate()
    }

    #[test]
    fn join_queries_are_positive_and_have_the_requested_keywidth() {
        let (db, keys) = generated();
        for size in 1..=3 {
            let q = random_join_query(&db, &keys, &QueryGenConfig { size, seed: 42 });
            assert!(q.is_positive_existential());
            assert!(keywidth(&q, db.schema(), &keys) <= size);
            assert!(!q.atoms().is_empty());
        }
    }

    #[test]
    fn point_query_unions_are_countable_and_consistent_across_strategies() {
        let (db, keys) = generated();
        let counter = RepairCounter::new(&db, &keys);
        for seed in 0..5u64 {
            let q = random_point_query_union(&db, &QueryGenConfig { size: 3, seed });
            let by_boxes = counter
                .count_with(&q, ExactStrategy::CertificateBoxes)
                .unwrap()
                .count;
            let by_enum = counter
                .count_with(&q, ExactStrategy::Enumeration)
                .unwrap()
                .count;
            assert_eq!(by_boxes, by_enum, "seed {seed}");
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let (db, keys) = generated();
        let config = QueryGenConfig { size: 2, seed: 9 };
        assert_eq!(
            random_join_query(&db, &keys, &config).to_string(),
            random_join_query(&db, &keys, &config).to_string()
        );
        assert_eq!(
            random_point_query_union(&db, &config).to_string(),
            random_point_query_union(&db, &config).to_string()
        );
    }

    #[test]
    fn empty_databases_yield_constant_queries() {
        let (db, keys) = InconsistentDbConfig {
            relations: vec![RelationSpec::keyed("R", 0)],
            block_sizes: BlockSizeDistribution::Fixed(1),
            payload_domain: 1,
            seed: 1,
        }
        .generate();
        let q = random_join_query(&db, &keys, &QueryGenConfig::default());
        assert_eq!(q.to_string(), "TRUE");
        let q = random_point_query_union(&db, &QueryGenConfig::default());
        assert_eq!(q.to_string(), "FALSE");
    }
}
