//! Fully specified scenarios used by the examples and experiments.

use std::collections::HashSet;

use cdr_core::RepairEngine;
use cdr_repairdb::{Database, KeySet, Mutation, Schema, Value};

/// The paper's Example 1.1: the `Employee` relation with two conflicting
/// blocks.  Returns the database and the primary key `key(Employee) = {1}`.
pub fn employee_example() -> (Database, KeySet) {
    let mut schema = Schema::new();
    schema.add_relation("Employee", 3).expect("fresh schema");
    let keys = KeySet::builder(&schema)
        .key("Employee", 1)
        .expect("valid key")
        .build();
    let mut db = Database::new(schema);
    for fact in [
        "Employee(1, 'Bob', 'HR')",
        "Employee(1, 'Bob', 'IT')",
        "Employee(2, 'Alice', 'IT')",
        "Employee(2, 'Tim', 'IT')",
    ] {
        db.insert_parsed(fact).expect("example facts are valid");
    }
    (db, keys)
}

/// `blocks` conflicting `R(key, value)` blocks of `width` facts each,
/// keyed on the first column: `R(k, 'v0'), …, R(k, 'v{width-1}')` for
/// every `k < blocks`, so the total repair count is `width^blocks`.
///
/// This is the block-count-heavy shape the sharded engine is measured
/// on (`engine_shards` bench): every block is a conflict, and each
/// apply's incremental block-product update runs over a number of limbs
/// proportional to the block count its engine holds — so more blocks
/// means a bigger per-shard saving when the partition splits them.
pub fn conflicting_blocks(blocks: usize, width: usize) -> (Database, KeySet) {
    let mut schema = Schema::new();
    schema.add_relation("R", 2).expect("fresh schema");
    let keys = KeySet::builder(&schema)
        .key("R", 1)
        .expect("valid key")
        .build();
    let mut db = Database::new(schema);
    for k in 0..blocks {
        for v in 0..width {
            db.insert_parsed(&format!("R({k}, 'v{v}')"))
                .expect("generated facts are valid");
        }
    }
    (db, keys)
}

/// A two-source data-integration scenario: `customers` customer records
/// merged from two systems that disagree on city and status for a fraction
/// of the customers, plus a consistent `Order` relation.
///
/// * `Customer(id, city, status)` with `key(Customer) = {1}`;
/// * `Order(order_id, customer_id, amount)` with `key(Order) = {1}`.
///
/// Customer ids divisible by `conflict_every` receive two conflicting
/// records (one per source); the rest get a single record.  Orders
/// reference customer `order_id % customers` and are never conflicting.
pub fn two_source_customers(customers: usize, conflict_every: usize) -> (Database, KeySet) {
    let conflict_every = conflict_every.max(1);
    let mut schema = Schema::new();
    schema.add_relation("Customer", 3).expect("fresh schema");
    schema.add_relation("Order", 3).expect("fresh schema");
    let keys = KeySet::builder(&schema)
        .key("Customer", 1)
        .expect("valid key")
        .key("Order", 1)
        .expect("valid key")
        .build();
    let mut db = Database::new(schema);
    let cities = ["Edinburgh", "Amsterdam", "Rome", "Paris"];
    for id in 0..customers {
        let city = cities[id % cities.len()];
        db.insert_values(
            "Customer",
            vec![
                Value::int(id as i64),
                Value::text(city),
                Value::text("active"),
            ],
        )
        .expect("generated facts are valid");
        if id % conflict_every == 0 {
            // The second source disagrees on the city and the status.
            let other_city = cities[(id + 1) % cities.len()];
            db.insert_values(
                "Customer",
                vec![
                    Value::int(id as i64),
                    Value::text(other_city),
                    Value::text("dormant"),
                ],
            )
            .expect("generated facts are valid");
        }
        // One order per customer, consistent.
        db.insert_values(
            "Order",
            vec![
                Value::int(1000 + id as i64),
                Value::int(id as i64),
                Value::int((id as i64 % 7 + 1) * 10),
            ],
        )
        .expect("generated facts are valid");
    }
    (db, keys)
}

/// A sensor-deduplication scenario: `sensors` sensors each report one
/// reading per tick, but for `duplicates_per_sensor` of the sensors the
/// ingestion pipeline recorded several conflicting readings for the same
/// tick.
///
/// * `Reading(sensor, tick, value)` with `key(Reading) = {1, 2}`
///   (sensor and tick jointly identify a reading).
pub fn sensor_readings(
    sensors: usize,
    ticks: usize,
    duplicates_per_sensor: usize,
) -> (Database, KeySet) {
    let mut schema = Schema::new();
    schema.add_relation("Reading", 3).expect("fresh schema");
    let keys = KeySet::builder(&schema)
        .key("Reading", 2)
        .expect("valid key")
        .build();
    let mut db = Database::new(schema);
    for s in 0..sensors {
        for t in 0..ticks {
            let base = (s * 31 + t * 7) % 100;
            db.insert_values(
                "Reading",
                vec![
                    Value::int(s as i64),
                    Value::int(t as i64),
                    Value::int(base as i64),
                ],
            )
            .expect("generated facts are valid");
            // Every third sensor has conflicting duplicates at tick 0..duplicates.
            if s % 3 == 0 && t < duplicates_per_sensor {
                for d in 1..=2usize {
                    db.insert_values(
                        "Reading",
                        vec![
                            Value::int(s as i64),
                            Value::int(t as i64),
                            Value::int((base + d * 5) as i64),
                        ],
                    )
                    .expect("generated facts are valid");
                }
            }
        }
    }
    (db, keys)
}

/// The retractable facts of a sensor base, discovered from the built
/// database: every fact of a conflicting block *except its first*, so a
/// scenario deleting only these stays delete-bearing (and valid) no matter
/// how [`sensor_readings`] shapes its values.
fn retractable_duplicates(db: &Database, keys: &KeySet) -> Vec<cdr_repairdb::FactId> {
    cdr_repairdb::BlockPartition::new(db, keys)
        .iter()
        .filter(|(_, block)| !block.is_singleton())
        .flat_map(|(_, block)| block.facts()[1..].iter().copied())
        .collect()
}

/// One step of the scenarios' deterministic LCG (Knuth's MMIX constants).
fn lcg_step(state: &mut u64) {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
}

/// A mutation-heavy streaming scenario on top of [`sensor_readings`]: the
/// base database plus a deterministic stream of `updates` mutations — late
/// arriving conflicting readings ([`Mutation::Insert`], occasionally a
/// duplicate of an earlier arrival, i.e. a visible no-op) interleaved with
/// retractions of duplicates recorded at ingestion time
/// ([`Mutation::Delete`], roughly one mutation in three).
///
/// The stream is constructed so that applying it in order never errors:
/// every delete names a base fact that is still live when it is reached.
/// The same parameters always produce the same stream, so benchmarks and
/// tests are reproducible.
pub fn streaming_sensor_updates(
    sensors: usize,
    ticks: usize,
    updates: usize,
) -> (Database, KeySet, Vec<Mutation>) {
    let duplicates_per_sensor = ticks.min(2);
    let (db, keys) = sensor_readings(sensors, ticks, duplicates_per_sensor);
    let retractable = retractable_duplicates(&db, &keys);
    let mut stream = Vec::with_capacity(updates);
    let mut retracted = HashSet::new();
    let mut state: u64 = 0x5EED_CAFE_F00D_D00D;
    for step in 0..updates {
        lcg_step(&mut state);
        let sensor = (state >> 8) as usize % sensors.max(1);
        let tick = (state >> 24) as usize % ticks.max(1);
        if step % 3 == 2 && !retractable.is_empty() {
            // Retract one of the duplicates recorded at ingestion time.
            let id = retractable[(state >> 40) as usize % retractable.len()];
            if retracted.insert(id) {
                stream.push(Mutation::Delete(id));
                continue;
            }
        }
        // A late-arriving reading that conflicts with the recorded one.
        let value = 100 + (state >> 48) as usize % 23;
        let fact = db
            .parse_fact(&format!("Reading({sensor}, {tick}, {value})"))
            .expect("generated readings are well-formed");
        stream.push(Mutation::Insert(fact));
    }
    (db, keys, stream)
}

/// A serving-session trace over the [`sensor_readings`] base: the database
/// and keys a server should boot with, plus a deterministic sequence of
/// *wire lines* (the `cdr_core::wire` grammar) mixing inserts, deletes,
/// exact counts, certain-answer and frequency probes, and `STATS` checks —
/// the trace a line-protocol client replays over a real socket.
///
/// The trace is valid by construction when replayed against a server booted
/// on exactly the returned database:
///
/// * the base facts receive ids `0..n` in insertion order, and every fact
///   the trace inserts is fresh (its value range is disjoint from the
///   base), so ids assigned during the session are predictable;
/// * every `DELETE` names an id that is live when the line is reached —
///   either a duplicate recorded at ingestion time (never the first fact
///   of its block) or a fact the trace itself inserted earlier.
///
/// The same parameters always produce the same trace, so socket tests and
/// the CI smoke job are reproducible.
pub fn serving_session(
    sensors: usize,
    ticks: usize,
    ops: usize,
) -> (Database, KeySet, Vec<String>) {
    let duplicates_per_sensor = ticks.min(2);
    let (db, keys) = sensor_readings(sensors, ticks, duplicates_per_sensor);
    let retractable = retractable_duplicates(&db, &keys);
    let mut next_id = db.fact_ids_assigned() as usize;
    let mut session_ids: Vec<usize> = Vec::new();
    let mut retracted = HashSet::new();
    let mut trace = Vec::with_capacity(ops);
    let mut state: u64 = 0xC0FF_EE00_5E55_1011;
    for step in 0..ops {
        lcg_step(&mut state);
        let sensor = (state >> 8) as usize % sensors.max(1);
        let tick = (state >> 24) as usize % ticks.max(1);
        match step % 7 {
            // Queries keep the plan cache warm and cross mutation barriers.
            1 => trace.push(format!(
                "COUNT auto EXISTS v . Reading({sensor}, {tick}, v)"
            )),
            3 => trace.push(format!("CERTAIN EXISTS v . Reading({sensor}, {tick}, v)")),
            5 => trace.push(format!(
                "FREQ EXISTS s, v . Reading(s, {tick}, v) AND Reading(s, {t2}, v)",
                t2 = (tick + 1) % ticks.max(1)
            )),
            6 if step % 2 == 0 => trace.push("STATS".to_string()),
            // Roughly one mutation in three is a retraction.
            2 => {
                let deleted = if step % 6 == 2 && !retractable.is_empty() {
                    let id = retractable[(state >> 40) as usize % retractable.len()];
                    retracted.insert(id.index()).then(|| id.index())
                } else {
                    session_ids.pop()
                };
                match deleted {
                    Some(id) => trace.push(format!("DELETE {id}")),
                    None => trace.push(format!("DECIDE EXISTS v . Reading({sensor}, {tick}, v)")),
                }
            }
            // Fresh late-arriving conflicting readings: values start at
            // 1000 + step, far above anything the base generator emits, so
            // every insert allocates a new id.
            _ => {
                let value = 1000 + step;
                trace.push(format!("INSERT Reading({sensor}, {tick}, {value})"));
                session_ids.push(next_id);
                next_id += 1;
            }
        }
    }
    trace.push("STATS".to_string());
    (db, keys, trace)
}

/// The base database of [`churn_session`]: a small `Event(key, payload)`
/// relation with `key(Event) = {1}` — four singleton blocks plus two
/// conflicting duplicates, so queries are non-trivial from the first line.
pub fn churn_base() -> (Database, KeySet) {
    let mut schema = Schema::new();
    schema.add_relation("Event", 2).expect("fresh schema");
    let keys = KeySet::builder(&schema)
        .key("Event", 1)
        .expect("valid key")
        .build();
    let mut db = Database::new(schema);
    for k in 0..4i64 {
        db.insert_values("Event", vec![Value::int(k), Value::text("base")])
            .expect("generated facts are valid");
    }
    for k in 0..2i64 {
        db.insert_values("Event", vec![Value::int(k), Value::text("dup")])
            .expect("generated facts are valid");
    }
    (db, keys)
}

/// A delete-heavy long-session wire trace over [`churn_base`]: a
/// deterministic stream of `ops` lines dominated by inserts of
/// *never-repeated* keys and deletes of random live facts, interleaved
/// with query probes and `STATS` checks.  Left unchecked, this churn
/// grows without bound — every fresh key allocates a block slot that is
/// never revived, and every delete leaves a tombstoned fact id.
///
/// The trace is generated by *simulating* the session against a real
/// engine running the same auto-compaction policy the serving layer
/// applies ([`cdr_core::RepairEngine::maybe_compact`] before each
/// mutating command, with the given `auto_compact` threshold; `None`
/// disables the policy).  Every `DELETE` therefore names a fact id that
/// is live at that point *of a server replaying the trace under the same
/// policy* — compactions remap ids mid-session, and the simulation
/// tracks the remapping exactly.  Replaying the trace against
/// `cdr-serve --scenario churn --auto-compact <same threshold>` draws
/// only `OK` replies, no matter how long the session runs.
pub fn churn_session(ops: usize, auto_compact: Option<u64>) -> (Database, KeySet, Vec<String>) {
    let (db, keys) = churn_base();
    let mut engine = RepairEngine::new(db.clone(), keys.clone());
    let mut trace = Vec::with_capacity(ops + 1);
    let mut state: u64 = 0xD1CE_B0A7_CAFE_5EED;
    for step in 0..ops {
        lcg_step(&mut state);
        let probe_key = (state >> 8) % 16;
        // Mirror the serving layer exactly: before each emitted mutation
        // line the policy runs under the write guard — and it must run
        // *before* the delete victim is chosen, because a compaction
        // here remaps every id and the `DELETE` line must carry the
        // post-compaction one (the id the fact has when the server,
        // having just run the same policy, applies the line).
        let run_policy = |engine: &mut RepairEngine| {
            if let Some(threshold) = auto_compact {
                engine.maybe_compact(threshold);
            }
        };
        match step % 5 {
            // Probes cross the mutation (and compaction) barriers.
            1 => trace.push(format!("COUNT auto EXISTS p . Event({probe_key}, p)")),
            4 if step % 2 == 0 => trace.push("STATS".to_string()),
            4 => trace.push(format!("CERTAIN EXISTS p . Event({probe_key}, p)")),
            // Deletes: retract a pseudo-random live fact (keeping a small
            // floor so the probes stay non-trivial).
            2 | 3 if engine.database().len() > 3 => {
                run_policy(&mut engine);
                let nth = (state >> 16) as usize % engine.database().len();
                let id = engine
                    .database()
                    .iter()
                    .nth(nth)
                    .map(|(id, _)| id)
                    .expect("nth is in range");
                engine
                    .apply(Mutation::Delete(id))
                    .expect("the victim was chosen live, after the policy ran");
                trace.push(format!("DELETE {}", id.index()));
            }
            2 | 3 => trace.push(format!("FREQ EXISTS p . Event({probe_key}, p)")),
            // Inserts: a fresh key per step (`1000 + step` never repeats),
            // so every insert consumes a new id *and* a new block slot.
            _ => {
                run_policy(&mut engine);
                let key = 1_000 + step as i64;
                let payload = (state >> 24) % 7;
                let fact = engine
                    .database()
                    .parse_fact(&format!("Event({key}, 'p{payload}')"))
                    .expect("generated events are well-formed");
                engine
                    .apply(Mutation::Insert(fact))
                    .expect("fresh-key inserts always apply");
                trace.push(format!("INSERT Event({key}, 'p{payload}')"));
            }
        }
    }
    trace.push("STATS".to_string());
    (db, keys, trace)
}

/// The follower-read verification battery for the churn schema: a fixed
/// list of read-only lines sent to both ends of a replication pair and
/// compared byte-for-byte.
///
/// Two properties matter.  First, the lines are *textually disjoint*
/// from every query [`churn_session`] emits (probe keys stay below 16;
/// the battery stays at 100+), so neither node has a warmer plan cache
/// for them than the other.  Second, each distinct line appears twice in
/// a row, so on every node the first send is a plan-cache miss and the
/// second a hit — making the `cached=` provenance in the replies part of
/// what byte-equality verifies.  Seeded `APPROX` lines extend that to
/// the sampling estimators.
pub fn replication_battery() -> Vec<String> {
    let queries = [
        "COUNT auto TRUE".to_string(),
        "COUNT auto EXISTS p . Event(100, p)".to_string(),
        "COUNT auto EXISTS k . Event(k, 'base')".to_string(),
        "CERTAIN EXISTS p . Event(101, p)".to_string(),
        "DECIDE EXISTS p . Event(102, p)".to_string(),
        "FREQ EXISTS k . Event(k, 'dup')".to_string(),
        "APPROX 0.25 0.1 42 EXISTS p . Event(103, p)".to_string(),
        "APPROX 0.5 0.2 7 EXISTS k . Event(k, 'base')".to_string(),
    ];
    let mut lines = Vec::with_capacity(queries.len() * 2);
    for query in queries {
        lines.push(query.clone());
        lines.push(query);
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdr_core::RepairCounter;
    use cdr_query::parse_query;
    use cdr_repairdb::BlockPartition;

    #[test]
    fn employee_example_matches_the_paper() {
        let (db, keys) = employee_example();
        assert_eq!(db.len(), 4);
        let counter = RepairCounter::new(&db, &keys);
        assert_eq!(counter.total_repairs().to_u64(), Some(4));
        let q = parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap();
        assert_eq!(counter.frequency(&q).unwrap().to_string(), "1/2");
    }

    #[test]
    fn two_source_scenario_has_the_expected_conflicts() {
        let (db, keys) = two_source_customers(20, 4);
        let blocks = BlockPartition::new(&db, &keys);
        // 20 customer blocks + 20 order blocks.
        assert_eq!(blocks.len(), 40);
        // Customers 0, 4, 8, 12, 16 are conflicted: 5 blocks of size 2.
        assert_eq!(blocks.conflicting_block_count(), 5);
        let counter = RepairCounter::new(&db, &keys);
        assert_eq!(counter.total_repairs().to_u64(), Some(32));
    }

    #[test]
    fn sensor_scenario_keys_on_sensor_and_tick() {
        let (db, keys) = sensor_readings(6, 4, 2);
        let blocks = BlockPartition::new(&db, &keys);
        assert_eq!(blocks.len(), 24, "one block per (sensor, tick) pair");
        // Sensors 0 and 3 have duplicates at ticks 0 and 1: 4 conflicted
        // blocks of size 3.
        assert_eq!(blocks.conflicting_block_count(), 4);
        assert_eq!(blocks.max_block_size(), 3);
        let counter = RepairCounter::new(&db, &keys);
        assert_eq!(counter.total_repairs().to_u64(), Some(81));
    }

    #[test]
    fn streaming_updates_apply_cleanly_and_deterministically() {
        let (db, keys, stream) = streaming_sensor_updates(6, 4, 60);
        let (_, _, again) = streaming_sensor_updates(6, 4, 60);
        assert_eq!(stream, again, "same parameters, same stream");
        assert_eq!(stream.len(), 60);
        let deletes = stream
            .iter()
            .filter(|m| matches!(m, Mutation::Delete(_)))
            .count();
        assert!(deletes > 0, "the stream retracts some duplicates");
        assert!(deletes < stream.len(), "the stream also inserts");
        // Applying the stream in order never errors, and the incremental
        // partition tracks a fresh recomputation.
        let mut mutated = db.clone();
        let mut blocks = BlockPartition::new(&mutated, &keys);
        for mutation in stream {
            let applied = mutated.apply(mutation).expect("stream applies cleanly");
            blocks.apply(&keys, &applied);
        }
        let fresh = BlockPartition::new(&mutated, &keys);
        assert_eq!(blocks.sizes(), fresh.sizes());
        assert!(blocks.conflicting_block_count() > 0);
    }

    #[test]
    fn serving_session_trace_replays_cleanly() {
        let (db, keys, trace) = serving_session(5, 3, 56);
        let (_, _, again) = serving_session(5, 3, 56);
        assert_eq!(trace, again, "same parameters, same trace");
        assert_eq!(trace.len(), 57, "ops lines plus the final STATS");
        let mut engine = cdr_core::RepairEngine::new(db, keys);
        let mut mutations = 0usize;
        let mut queries = 0usize;
        let mut stats = 0usize;
        for line in &trace {
            if line == "STATS" {
                stats += 1;
                continue;
            }
            let command = cdr_core::parse_engine_command(line, engine.database())
                .unwrap_or_else(|e| panic!("trace line `{line}` must parse: {e}"));
            match &command {
                cdr_core::EngineCommand::Query(_) => queries += 1,
                _ => mutations += 1,
            }
            engine
                .execute(command)
                .unwrap_or_else(|e| panic!("trace line `{line}` must apply: {e}"));
        }
        assert!(mutations > 0, "the trace mutates");
        assert!(queries > 0, "the trace queries");
        assert!(stats > 0, "the trace checks STATS");
        let deletes = trace.iter().filter(|l| l.starts_with("DELETE")).count();
        assert!(deletes > 0, "the trace retracts some facts");
    }

    #[test]
    fn churn_session_is_deterministic_and_delete_heavy() {
        let (db, _, trace) = churn_session(200, Some(16));
        let (_, _, again) = churn_session(200, Some(16));
        assert_eq!(trace, again, "same parameters, same trace");
        assert_eq!(db.len(), 6, "the base is small and fixed");
        let inserts = trace.iter().filter(|l| l.starts_with("INSERT")).count();
        let deletes = trace.iter().filter(|l| l.starts_with("DELETE")).count();
        assert!(inserts >= 40, "{inserts} inserts");
        assert!(deletes > 35, "{deletes} deletes");
        assert!(
            deletes > inserts,
            "delete-heavy: the live set hovers near its floor"
        );
        assert!(trace.iter().any(|l| l == "STATS"));
        assert!(trace.iter().any(|l| l.starts_with("COUNT")));
        // The threshold changes compaction points, hence the delete ids.
        let (_, _, other) = churn_session(200, None);
        assert_ne!(trace, other);
    }

    #[test]
    fn churn_growth_is_unbounded_without_compaction_and_bounded_with_it() {
        let ops = 300;
        // Replay both traces through engines running the matching policy.
        let waste_after = |threshold: Option<u64>| {
            let (db, keys, trace) = churn_session(ops, threshold);
            let mut engine = cdr_core::RepairEngine::new(db, keys);
            for line in &trace {
                match cdr_core::parse_engine_command(line, engine.database()) {
                    Ok(command) => {
                        if !matches!(command, cdr_core::EngineCommand::Query(_)) {
                            if let Some(t) = threshold {
                                engine.maybe_compact(t);
                            }
                        }
                        engine
                            .execute(command)
                            .unwrap_or_else(|e| panic!("churn line `{line}` must apply: {e}"));
                    }
                    Err(_) => assert_eq!(line, "STATS"),
                }
            }
            (engine.waste(), engine.blocks().slot_count())
        };
        let (unbounded_waste, unbounded_slots) = waste_after(None);
        let (bounded_waste, bounded_slots) = waste_after(Some(16));
        assert!(
            unbounded_waste > 100,
            "pre-compaction churn accumulates waste without bound ({unbounded_waste})"
        );
        assert!(
            bounded_waste < 16 + 2,
            "the policy bounds waste ({bounded_waste})"
        );
        assert!(
            bounded_slots < unbounded_slots / 2,
            "{bounded_slots} vs {unbounded_slots}"
        );
    }

    /// Regression: aggressive thresholds make compactions fire on
    /// *delete* steps too, where the victim id must be chosen only after
    /// the policy has remapped ids — picking it first generated `DELETE`
    /// lines naming pre-compaction ids and panicked the generator.
    #[test]
    fn churn_session_survives_aggressive_compaction_thresholds() {
        for threshold in [1u64, 5, 9] {
            let (db, keys, trace) = churn_session(600, Some(threshold));
            let mut engine = cdr_core::RepairEngine::new(db, keys);
            for line in &trace {
                match cdr_core::parse_engine_command(line, engine.database()) {
                    Ok(command) => {
                        if !matches!(command, cdr_core::EngineCommand::Query(_)) {
                            engine.maybe_compact(threshold);
                        }
                        engine.execute(command).unwrap_or_else(|e| {
                            panic!("threshold {threshold}: line `{line}` must apply: {e}")
                        });
                    }
                    Err(_) => assert_eq!(line, "STATS"),
                }
            }
        }
    }

    #[test]
    fn degenerate_parameters_are_tolerated() {
        let (db, keys) = two_source_customers(0, 0);
        assert!(db.is_empty());
        let blocks = BlockPartition::new(&db, &keys);
        assert!(blocks.is_empty());
        let (db, _) = sensor_readings(0, 0, 0);
        assert!(db.is_empty());
    }
}
