//! The sharded scatter–gather engine: hash-partitioned shards with
//! per-shard locks, caches and samplers.
//!
//! The paper's repair-counting structure is embarrassingly shardable: two
//! facts interact only when they share a key value (they conflict inside
//! one block), the total repair count is the product `∏ |Bᵢ|`, and a key's
//! block lives wholly wherever the key lives.  A hash partition of key
//! values therefore induces a partition of *blocks* with no cross-shard
//! coupling: `INSERT`/`DELETE` route to exactly one shard and unrelated
//! writers stop contending on one global engine lock.
//!
//! # Scatter and gather
//!
//! [`ShardedEngine`] keeps N shards, each an independent [`RepairEngine`]
//! over its own `Database` slice (local fact ids), `BlockPartition`, plan
//! cache and sampler, behind its own `RwLock` write guard.  Mutations
//! *scatter*: the key value's stable
//! [`route_hash`](cdr_repairdb::KeyValue::route_hash) picks the one shard
//! whose lock is taken, and a global router assigns
//! the public fact id, maintains the merged total `∏ |Bᵢ|` incrementally
//! (dividing out the old block size and multiplying in the new one, the
//! same arithmetic as the unsharded engine), and appends the mutation to
//! a commit log.
//!
//! Queries *gather*: certificates for a join query pin blocks on several
//! shards at once, so answering from per-shard slices alone cannot stay
//! exact.  Instead the engine follows the per-partition-delta /
//! merge-at-the-read idiom: a **gathered view** — a full `RepairEngine`
//! over the merged database — is maintained lazily by replaying the
//! router's commit log before a read.  Writes never touch the gathered
//! view (they contend only on their own shard plus a short router
//! critical section); the first read after a write burst pays the merge.
//!
//! # The determinism contract
//!
//! The hard invariant is bit-for-bit answer parity with the unsharded
//! engine, *including seeded KL/FPRAS estimates*.  Estimator draws consume
//! randomness in the global block order `≺_{D,Σ}` (the lexicographic order
//! on key values), so the sharded sampler must reproduce the **global
//! ≺-ordered draw sequence** — a deterministic merge of the per-shard
//! flattened block arrays in global `≺` order, never N per-shard RNG
//! streams.  Because key values hash to exactly one shard, the N sorted
//! per-shard block sequences merge uniquely;
//! [`merged_block_view`](ShardedEngine::merged_block_view) materialises
//! that merge and
//! [`check_merge_invariant`](ShardedEngine::check_merge_invariant)
//! verifies it equals the gathered view's block sequence, which is what
//! the samplers actually walk.  The replayed gathered view also preserves
//! generation stamps and plan-cache behaviour, so the `gen=`/`cached=`
//! provenance on the wire stays reply-identical too.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

use cdr_num::BigNat;
use cdr_repairdb::{BlockDelta, Database, DbError, Fact, FactId, KeySet, KeyValue, Mutation};

use crate::engine::{CompactionOutcome, CountReport, CountRequest, MutationReport, RepairEngine};
use crate::CountError;

fn mlock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn rlock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn wlock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One shard: an independent engine over a keyed sub-database.
///
/// The slice database numbers its facts with *local* ids `0..n` in local
/// insertion order; `to_global[local.index()]` maps each live local id
/// back to the public (global) fact id the router handed out.
struct Shard {
    engine: RepairEngine,
    to_global: Vec<FactId>,
}

/// Retired block slots inside a shard slice (reclaimable by compaction).
fn slice_retired(engine: &RepairEngine) -> u64 {
    (engine.blocks().slot_count() - engine.blocks().len()) as u64
}

/// The global routing state: public fact ids, the merged total, the
/// commit log the gathered view replays, and the waste gauges.
struct Router {
    /// `route[id.index()]` locates global fact `id`: `Some((shard, local))`
    /// for a live fact, `None` for a tombstoned id.  `route.len()` is the
    /// number of global ids assigned so far; ids are never reused.
    route: Vec<Option<(u32, FactId)>>,
    /// Live facts across all shards.
    live: u64,
    /// How many global ids may ever be assigned.
    capacity: u32,
    /// The merged total `∏ |Bᵢ|`, maintained incrementally in commit
    /// order.  Held in an `Arc` so the per-mutation snapshot in
    /// [`ShardedApplied`] is a refcount bump, not a multi-limb copy: the
    /// next commit clones behind `Arc::make_mut` only if a snapshot is
    /// still alive, keeping the router's critical section short.
    total: Arc<BigNat>,
    /// Committed mutations (with global delete ids) the gathered view has
    /// not replayed yet, in commit order.
    log: Vec<Mutation>,
    /// The global generation: bumped once per applied mutation and once
    /// per compaction, never for no-ops — the same discipline as
    /// [`RepairEngine::generation`], so reply provenance matches.
    generation: u64,
    /// Retired block slots per shard, refreshed at each commit on that
    /// shard.  Summed into [`Router::waste`].
    retired_by_shard: Vec<u64>,
}

impl Router {
    fn entry(&self, id: FactId) -> Option<(u32, FactId)> {
        self.route.get(id.index()).copied().flatten()
    }

    fn exhausted(&self) -> bool {
        self.route.len() as u64 >= u64::from(self.capacity)
    }

    /// Reclaimable waste: tombstoned global ids plus retired block slots —
    /// the same gauge as [`RepairEngine::waste`] on the merged state.
    fn waste(&self) -> u64 {
        let tombstones = self.route.len() as u64 - self.live;
        tombstones + self.retired_by_shard.iter().sum::<u64>()
    }

    /// The unsharded engine's total update, verbatim: divide out the old
    /// block size, multiply in the new one.
    fn apply_total(&mut self, delta: &BlockDelta) {
        let total = Arc::make_mut(&mut self.total);
        if delta.old_len > 0 {
            let (quotient, remainder) = total.div_rem_u64(delta.old_len as u64);
            debug_assert_eq!(remainder, 0, "block sizes divide the total exactly");
            *total = quotient;
        }
        if delta.new_len > 0 {
            total.mul_assign_u64(delta.new_len as u64);
        }
    }

    /// Commits one applied mutation: route bookkeeping, total, generation,
    /// waste gauge and the replay log.
    fn commit(&mut self, shard: usize, retired: u64, delta: &BlockDelta, logged: Mutation) {
        self.apply_total(delta);
        self.generation += 1;
        self.retired_by_shard[shard] = retired;
        self.log.push(logged);
    }
}

/// What a routed mutation did: the global fact id it touched plus the
/// aggregated [`MutationReport`] (global generation; the block deltas are
/// the touched shard's, with slice-local slot ids).
#[derive(Clone, Debug)]
pub struct ShardedApplied {
    /// The global id of the fact inserted or deleted (for a duplicate
    /// insert: the id of the already-present fact).
    pub id: FactId,
    /// Whether the mutation changed the database (`false` for a duplicate
    /// insert, the engine's only visible no-op).
    pub applied: bool,
    /// The report, with the *global* generation stamp.
    pub report: MutationReport,
    /// The total `∏ |Bᵢ|` as of this mutation's commit — snapshotted
    /// inside the commit critical section, so a reply rendered from it is
    /// exact even while other writers race ahead.  The snapshot is
    /// copy-on-write: taking it is a refcount bump, and a later commit
    /// pays for a copy only while the snapshot is still held.
    pub total: Arc<BigNat>,
}

/// Per-shard gauges for operational visibility (`STATS` tails).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardGauges {
    /// Live facts in the shard slice.
    pub facts: usize,
    /// Live blocks in the shard slice.
    pub blocks: usize,
    /// Block slots (live + retired) in the shard slice.
    pub slots: usize,
    /// Tombstoned local fact ids in the shard slice.
    pub tombstones: u32,
}

/// A hash-partitioned, scatter–gather [`RepairEngine`]: mutations route to
/// one of N independently locked shards; queries run on a lazily merged
/// gathered view that is bit-for-bit identical to an unsharded engine fed
/// the same mutation sequence.  See the [module docs](self) for the
/// architecture and the determinism contract.
pub struct ShardedEngine {
    keys: Arc<KeySet>,
    /// An empty database over the schema: lets callers parse facts and
    /// commands without taking any engine lock.
    parse_db: Arc<Database>,
    /// Lock order: shard locks in ascending index order, then `gathered`,
    /// then `router`.  Every acquisition site follows it.
    shards: Vec<RwLock<Shard>>,
    gathered: RwLock<RepairEngine>,
    router: Mutex<Router>,
}

fn route_shard(fact: &Fact, keys: &KeySet, shard_count: usize) -> usize {
    (KeyValue::of(fact, keys).route_hash() % shard_count as u64) as usize
}

impl ShardedEngine {
    /// Builds a sharded engine over a database, partitioning the existing
    /// facts across `shard_count` shards (clamped to at least 1).
    pub fn new(db: Database, keys: KeySet, shard_count: usize) -> Self {
        Self::from_engine(RepairEngine::new(db, keys), shard_count)
    }

    /// Wraps an existing engine — carrying its database, budget, plan
    /// cache and parallelism settings into the gathered view — and seeds
    /// `shard_count` slices from its live facts.
    pub fn from_engine(engine: RepairEngine, shard_count: usize) -> Self {
        let shard_count = shard_count.max(1);
        let keys = engine.keys_arc();
        let db = engine.database_arc();
        let parse_db = Arc::new(Database::new(db.schema().clone()));
        let mut shards: Vec<Shard> = (0..shard_count)
            .map(|_| Shard {
                engine: RepairEngine::from_arcs(Arc::new(db.empty_like()), Arc::clone(&keys)),
                to_global: Vec::new(),
            })
            .collect();
        let mut route = Vec::with_capacity(db.fact_ids_assigned() as usize);
        for index in 0..db.fact_ids_assigned() as usize {
            let id = FactId::new(index);
            if !db.is_live(id) {
                route.push(None);
                continue;
            }
            let fact = db.fact(id).clone();
            let target = route_shard(&fact, &keys, shard_count);
            let shard = &mut shards[target];
            let local = FactId::new(shard.to_global.len());
            shard
                .engine
                .apply(Mutation::Insert(fact))
                .expect("seeding a shard slice from live facts");
            debug_assert!(shard.engine.database().is_live(local));
            shard.to_global.push(id);
            route.push(Some((target as u32, local)));
        }
        let router = Router {
            live: db.len() as u64,
            capacity: db.fact_id_capacity(),
            total: Arc::new(engine.total_repairs().clone()),
            log: Vec::new(),
            generation: engine.generation(),
            retired_by_shard: vec![0; shard_count],
            route,
        };
        ShardedEngine {
            keys,
            parse_db,
            shards: shards.into_iter().map(RwLock::new).collect(),
            gathered: RwLock::new(engine),
            router: Mutex::new(router),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// An empty database over the engine's schema, for lock-free parsing
    /// of facts and wire commands.
    pub fn parse_database(&self) -> Arc<Database> {
        Arc::clone(&self.parse_db)
    }

    /// The shared key set.
    pub fn keys(&self) -> Arc<KeySet> {
        Arc::clone(&self.keys)
    }

    /// The merged total repair count `∏ |Bᵢ|`.
    pub fn total_repairs(&self) -> BigNat {
        mlock(&self.router).total.as_ref().clone()
    }

    /// The global generation: bumped once per applied mutation and once
    /// per compaction, never for no-ops — the same discipline as
    /// [`RepairEngine::generation`], so reply provenance matches.
    pub fn generation(&self) -> u64 {
        mlock(&self.router).generation
    }

    /// Reclaimable waste a [`ShardedEngine::compact`] would recover.
    pub fn waste(&self) -> u64 {
        mlock(&self.router).waste()
    }

    /// Global fact ids assigned so far (live facts plus tombstones).
    pub fn fact_ids_assigned(&self) -> u32 {
        mlock(&self.router).route.len() as u32
    }

    /// How many global fact ids may ever be assigned.
    pub fn fact_id_capacity(&self) -> u32 {
        mlock(&self.router).capacity
    }

    /// Live facts across all shards.
    pub fn live_facts(&self) -> usize {
        mlock(&self.router).live as usize
    }

    /// The shard a fact's key value routes to.
    pub fn shard_of(&self, fact: &Fact) -> usize {
        route_shard(fact, &self.keys, self.shards.len())
    }

    /// Per-shard gauges, in shard order.
    pub fn shard_gauges(&self) -> Vec<ShardGauges> {
        self.shards
            .iter()
            .map(|slot| {
                let shard = rlock(slot);
                ShardGauges {
                    facts: shard.engine.database().len(),
                    blocks: shard.engine.blocks().len(),
                    slots: shard.engine.blocks().slot_count(),
                    tombstones: shard.engine.database().tombstone_count(),
                }
            })
            .collect()
    }

    /// Replays the commit log into the gathered view (the merge-at-the-
    /// read step).  Cheap when there is nothing to replay.
    fn drain(&self) {
        if mlock(&self.router).log.is_empty() {
            return;
        }
        let mut gathered = wlock(&self.gathered);
        Self::drain_into(&mut gathered, &self.router);
    }

    fn drain_into(gathered: &mut RepairEngine, router: &Mutex<Router>) {
        // Taking the log *under* the gathered write guard keeps replay
        // order equal to commit order even with concurrent drains.
        let log = std::mem::take(&mut mlock(router).log);
        for mutation in log {
            gathered
                .apply(mutation)
                .expect("a committed mutation replays cleanly on the gathered view");
        }
    }

    /// Runs a closure over the gathered view after draining the commit
    /// log: the engine seen is bit-for-bit the unsharded engine fed the
    /// same mutation sequence.
    pub fn read<R>(&self, f: impl FnOnce(&RepairEngine) -> R) -> R {
        self.drain();
        f(&rlock(&self.gathered))
    }

    /// Answers one counting request on the gathered view.
    pub fn run(&self, request: &CountRequest) -> Result<CountReport, CountError> {
        self.read(|engine| engine.run(request))
    }

    /// Answers a batch of requests on the gathered view, reusing the
    /// engine's thread-scoped fan-out.
    pub fn run_batch(&self, requests: &[CountRequest]) -> Vec<Result<CountReport, CountError>> {
        self.read(|engine| engine.run_batch(requests))
    }

    /// Applies one mutation, routed to the single shard that owns its key.
    pub fn apply(&self, mutation: Mutation) -> Result<ShardedApplied, CountError> {
        match mutation {
            Mutation::Insert(fact) => self.apply_insert(fact),
            Mutation::Delete(id) => self.apply_delete(id),
        }
    }

    fn apply_insert(&self, fact: Fact) -> Result<ShardedApplied, CountError> {
        let started = Instant::now();
        let target = self.shard_of(&fact);
        let mut shard = wlock(&self.shards[target]);
        if let Some(local) = shard.engine.database().fact_id(&fact) {
            // Duplicate insert: a visible no-op, not logged, generation
            // unchanged — exactly the unsharded engine's behaviour.
            let id = shard.to_global[local.index()];
            let (generation, total) = {
                let router = mlock(&self.router);
                (router.generation, Arc::clone(&router.total))
            };
            return Ok(ShardedApplied {
                id,
                applied: false,
                report: MutationReport {
                    applied: 0,
                    noops: 1,
                    generation,
                    deltas: Vec::new(),
                    duration: started.elapsed(),
                },
                total,
            });
        }
        shard.engine.database().validate(&fact)?;
        // Apply on the slice *outside* the router lock so disjoint-key
        // writers only serialise on the short id-assignment commit below.
        // Exhaustion is checked only at the commit (losing that race
        // reverts the slice insert): a pre-flight check would cost a
        // second contended router acquisition on every insert to optimise
        // a case that occurs once per id-space lifetime.
        let slice_report = shard
            .engine
            .apply(Mutation::Insert(fact.clone()))
            .expect("a validated, absent insert applies on its shard slice");
        let local = shard
            .engine
            .database()
            .fact_id(&fact)
            .expect("the fact was just inserted");
        let retired = slice_retired(&shard.engine);
        let mut router = mlock(&self.router);
        if router.exhausted() {
            // Lost the race for the last ids: undo the slice insert and
            // report exhaustion.  The revert may leave an uncounted
            // retired slot behind, so the waste gauge can only over-count
            // afterwards — at worst auto-compaction fires early.
            let capacity = router.capacity;
            drop(router);
            shard
                .engine
                .apply(Mutation::Delete(local))
                .expect("reverting the just-applied insert");
            return Err(DbError::FactIdsExhausted { capacity }.into());
        }
        let id = FactId::new(router.route.len());
        router.route.push(Some((target as u32, local)));
        debug_assert_eq!(shard.to_global.len(), local.index());
        shard.to_global.push(id);
        router.live += 1;
        router.commit(
            target,
            retired,
            &slice_report.deltas[0],
            Mutation::Insert(fact),
        );
        let generation = router.generation;
        let total = Arc::clone(&router.total);
        drop(router);
        Ok(ShardedApplied {
            id,
            applied: true,
            report: MutationReport {
                applied: 1,
                noops: 0,
                generation,
                deltas: slice_report.deltas,
                duration: started.elapsed(),
            },
            total,
        })
    }

    fn apply_delete(&self, id: FactId) -> Result<ShardedApplied, CountError> {
        let started = Instant::now();
        let Some((mut target, mut local)) = mlock(&self.router).entry(id) else {
            return Err(DbError::MissingFact(id.index()).into());
        };
        loop {
            let mut shard = wlock(&self.shards[target as usize]);
            // The routing read above was speculative: a compaction (which
            // holds every shard lock) may have re-routed the id in the
            // gap.  Once this shard's lock is held its routing state is
            // frozen, and `to_global` is the routing truth — if the slot
            // still maps to `id`, deleting it deletes global fact `id`,
            // with no second router round-trip on the hot path.
            if shard.to_global.get(local.index()) != Some(&id) {
                match mlock(&self.router).entry(id) {
                    None => return Err(DbError::MissingFact(id.index()).into()),
                    Some((owner, slot)) => {
                        target = owner;
                        local = slot;
                        continue;
                    }
                }
            }
            // `to_global` keeps tombstoned slots between compactions, so
            // the slot may map to `id` with the slice fact already
            // retired: a concurrent delete won the race, and the slice's
            // rejection of the double delete is this delete's missing-fact
            // error.
            let Ok(slice_report) = shard.engine.apply(Mutation::Delete(local)) else {
                return Err(DbError::MissingFact(id.index()).into());
            };
            let retired = slice_retired(&shard.engine);
            let mut router = mlock(&self.router);
            router.route[id.index()] = None;
            router.live -= 1;
            router.commit(
                target as usize,
                retired,
                &slice_report.deltas[0],
                Mutation::Delete(id),
            );
            let generation = router.generation;
            let total = Arc::clone(&router.total);
            drop(router);
            return Ok(ShardedApplied {
                id,
                applied: true,
                report: MutationReport {
                    applied: 1,
                    noops: 0,
                    generation,
                    deltas: slice_report.deltas,
                    duration: started.elapsed(),
                },
                total,
            });
        }
    }

    /// Applies a batch of mutations atomically across shards, with the
    /// unsharded engine's exact validation semantics: a rejected batch
    /// (unknown relation, wrong arity, a delete naming a fact not live
    /// before the batch or named twice, or fact-id exhaustion) leaves
    /// every shard — and the generation — completely unchanged.
    ///
    /// A batch is a global barrier (it takes every shard lock, in
    /// ascending order); routed single mutations are the scalable path.
    /// Returns the aggregated report plus the post-batch total, both
    /// snapshotted inside the batch's critical section.
    pub fn apply_batch(
        &self,
        mutations: impl IntoIterator<Item = Mutation>,
    ) -> Result<(MutationReport, BigNat), CountError> {
        let started = Instant::now();
        let mutations: Vec<Mutation> = mutations.into_iter().collect();
        let mut guards: Vec<RwLockWriteGuard<'_, Shard>> = self.shards.iter().map(wlock).collect();
        let mut router = mlock(&self.router);
        {
            // The unsharded engine's presence overlay, verbatim (modulo
            // owned facts): counts exactly how many fresh global ids the
            // batch will consume so an exhausting batch is rejected
            // before any of it is applied.
            let mut pending_deletes = HashSet::new();
            let mut overlay: HashMap<Fact, bool> = HashMap::new();
            let mut fresh_ids: u64 = 0;
            for mutation in &mutations {
                match mutation {
                    Mutation::Insert(fact) => {
                        self.parse_db.validate(fact)?;
                        let present = overlay.get(fact).copied().unwrap_or_else(|| {
                            guards[self.shard_of(fact)].engine.database().contains(fact)
                        });
                        if !present {
                            fresh_ids += 1;
                            overlay.insert(fact.clone(), true);
                        }
                    }
                    Mutation::Delete(id) => {
                        let entry = router.entry(*id);
                        if entry.is_none() || !pending_deletes.insert(*id) {
                            return Err(DbError::MissingFact(id.index()).into());
                        }
                        let (owner, local) = entry.expect("checked live above");
                        let fact = guards[owner as usize].engine.database().fact(local).clone();
                        overlay.insert(fact, false);
                    }
                }
            }
            if router.route.len() as u64 + fresh_ids > u64::from(router.capacity) {
                return Err(DbError::FactIdsExhausted {
                    capacity: router.capacity,
                }
                .into());
            }
        }
        let mut report = MutationReport {
            applied: 0,
            noops: 0,
            generation: router.generation,
            deltas: Vec::new(),
            duration: Duration::ZERO,
        };
        for mutation in mutations {
            match mutation {
                Mutation::Insert(fact) => {
                    let target = self.shard_of(&fact);
                    let shard = &mut *guards[target];
                    if shard.engine.database().contains(&fact) {
                        report.noops += 1;
                        continue;
                    }
                    let slice_report = shard
                        .engine
                        .apply(Mutation::Insert(fact.clone()))
                        .expect("the whole batch was validated before applying");
                    let local = shard
                        .engine
                        .database()
                        .fact_id(&fact)
                        .expect("the fact was just inserted");
                    let id = FactId::new(router.route.len());
                    router.route.push(Some((target as u32, local)));
                    shard.to_global.push(id);
                    router.live += 1;
                    let retired = slice_retired(&shard.engine);
                    router.commit(
                        target,
                        retired,
                        &slice_report.deltas[0],
                        Mutation::Insert(fact),
                    );
                    report.applied += 1;
                    report.deltas.extend(slice_report.deltas);
                }
                Mutation::Delete(id) => {
                    let (owner, local) = router
                        .entry(id)
                        .expect("the whole batch was validated before applying");
                    let target = owner as usize;
                    let shard = &mut *guards[target];
                    let slice_report = shard
                        .engine
                        .apply(Mutation::Delete(local))
                        .expect("the whole batch was validated before applying");
                    router.route[id.index()] = None;
                    router.live -= 1;
                    let retired = slice_retired(&shard.engine);
                    router.commit(
                        target,
                        retired,
                        &slice_report.deltas[0],
                        Mutation::Delete(id),
                    );
                    report.applied += 1;
                    report.deltas.extend(slice_report.deltas);
                }
            }
        }
        report.generation = router.generation;
        report.duration = started.elapsed();
        Ok((report, router.total.as_ref().clone()))
    }

    /// Compacts every shard and the gathered view, returning the merged
    /// [`CompactionOutcome`] — the gathered view's, whose id-translation
    /// table is in the public (global) id namespace and whose stats are
    /// reply-identical to the unsharded engine's.
    pub fn compact(&self) -> CompactionOutcome {
        self.compact_with_total().0
    }

    /// [`ShardedEngine::compact`], also returning the post-compaction
    /// total snapshotted under the compaction's locks.
    pub fn compact_with_total(&self) -> (CompactionOutcome, BigNat) {
        let mut guards: Vec<RwLockWriteGuard<'_, Shard>> = self.shards.iter().map(wlock).collect();
        let mut gathered = wlock(&self.gathered);
        Self::drain_into(&mut gathered, &self.router);
        let outcome = gathered.compact();
        let shard_reports: Vec<cdr_repairdb::CompactionReport> = guards
            .iter_mut()
            .map(|shard| shard.engine.compact().report)
            .collect();
        let mut router = mlock(&self.router);
        // Rebuild the route by composing the global and per-shard
        // translations.  Both compactions preserve insertion order, so the
        // new ids come out dense and ascending on both sides.
        let old_route = std::mem::take(&mut router.route);
        let mut new_route = Vec::with_capacity(router.live as usize);
        let mut new_to_global: Vec<Vec<FactId>> = guards.iter().map(|_| Vec::new()).collect();
        for (old_index, entry) in old_route.iter().enumerate() {
            let Some((shard_index, old_local)) = entry else {
                continue;
            };
            let target = *shard_index as usize;
            let new_local = shard_reports[target]
                .translate(*old_local)
                .expect("live facts survive shard compaction");
            let new_global = outcome
                .report
                .translate(FactId::new(old_index))
                .expect("live facts survive compaction");
            debug_assert_eq!(new_global.index(), new_route.len());
            debug_assert_eq!(new_local.index(), new_to_global[target].len());
            new_route.push(Some((*shard_index, new_local)));
            new_to_global[target].push(new_global);
        }
        router.route = new_route;
        for (shard, map) in guards.iter_mut().zip(new_to_global) {
            shard.to_global = map;
        }
        for retired in &mut router.retired_by_shard {
            *retired = 0;
        }
        router.generation += 1;
        router.total = Arc::new(gathered.total_repairs().clone());
        debug_assert_eq!(router.generation, gathered.generation());
        debug_assert_eq!(router.route.len() as u64, router.live);
        let total = router.total.as_ref().clone();
        (outcome, total)
    }

    /// The serving layer's auto-compaction policy, on the merged gauges:
    /// compacts iff there is any reclaimable waste **and** either the
    /// waste has reached `threshold` or the global id space is fully
    /// consumed — the unsharded [`RepairEngine::maybe_compact`] condition.
    pub fn maybe_compact(&self, threshold: u64) -> Option<CompactionOutcome> {
        let (waste, exhausted) = {
            let router = mlock(&self.router);
            (router.waste(), router.exhausted())
        };
        if waste > 0 && (waste >= threshold || exhausted) {
            Some(self.compact())
        } else {
            None
        }
    }

    /// The determinism-contract witness: the N per-shard flattened block
    /// sequences merged in global `≺_{D,Σ}` order, with local fact ids
    /// mapped back to global ids.  Each key value routes to exactly one
    /// shard, so the merge of the N sorted sequences is unique; the
    /// samplers draw in exactly this order.  Diagnostic — call it on a
    /// quiescent engine.
    pub fn merged_block_view(&self) -> Vec<(KeyValue, Vec<FactId>)> {
        let guards: Vec<RwLockReadGuard<'_, Shard>> = self.shards.iter().map(rlock).collect();
        let mut per_shard: Vec<std::vec::IntoIter<(KeyValue, Vec<FactId>)>> = guards
            .iter()
            .map(|shard| {
                shard
                    .engine
                    .blocks()
                    .iter()
                    .map(|(_, block)| {
                        let facts = block
                            .facts()
                            .iter()
                            .map(|local| shard.to_global[local.index()])
                            .collect();
                        (block.key().clone(), facts)
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
            })
            .collect();
        let mut heads: Vec<Option<(KeyValue, Vec<FactId>)>> =
            per_shard.iter_mut().map(Iterator::next).collect();
        let mut merged = Vec::new();
        loop {
            let mut best: Option<usize> = None;
            for (index, head) in heads.iter().enumerate() {
                let Some((key, _)) = head else { continue };
                best = match best {
                    Some(current)
                        if heads[current].as_ref().expect("chosen head is live").0 < *key =>
                    {
                        Some(current)
                    }
                    _ => Some(index),
                };
            }
            let Some(winner) = best else { break };
            let next = per_shard[winner].next();
            let item = std::mem::replace(&mut heads[winner], next).expect("winner head is live");
            merged.push(item);
        }
        merged
    }

    /// Verifies the determinism contract on a quiescent engine: the
    /// global-`≺` merge of the per-shard block arrays must equal — key for
    /// key, fact for fact — the gathered view's block sequence, which is
    /// what the seeded samplers walk.
    pub fn check_merge_invariant(&self) -> bool {
        self.drain();
        let merged = self.merged_block_view();
        let gathered = rlock(&self.gathered);
        let blocks = gathered.blocks();
        blocks.len() == merged.len()
            && blocks
                .iter()
                .zip(&merged)
                .all(|((_, block), (key, facts))| {
                    block.key() == key && block.facts() == facts.as_slice()
                })
    }

    /// Poisons the gathered lock by panicking while holding its write
    /// guard — the sharded analogue of the chaos `PANIC` verb.  Every
    /// guard helper recovers from poisoning, so this tests that path.
    #[doc(hidden)]
    pub fn chaos_panic(&self) {
        let _guard = wlock(&self.gathered);
        panic!("chaos: poisoning the gathered engine lock");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Strategy;
    use cdr_query::parse_query;
    use cdr_repairdb::Schema;

    fn employee_db() -> (Database, KeySet) {
        let mut schema = Schema::new();
        schema.add_relation("Employee", 3).unwrap();
        let keys = KeySet::builder(&schema).key("Employee", 1).unwrap().build();
        let mut db = Database::new(schema);
        db.insert_parsed("Employee(1, 'Bob', 'HR')").unwrap();
        db.insert_parsed("Employee(1, 'Bob', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Alice', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Tim', 'IT')").unwrap();
        (db, keys)
    }

    fn parse(engine: &ShardedEngine, text: &str) -> Fact {
        engine.parse_database().parse_fact(text).unwrap()
    }

    fn insert(engine: &ShardedEngine, text: &str) -> ShardedApplied {
        let fact = parse(engine, text);
        engine.apply(Mutation::Insert(fact)).unwrap()
    }

    #[test]
    fn sharded_engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardedEngine>();
    }

    #[test]
    fn answers_match_the_unsharded_engine_for_every_shard_count() {
        let query =
            parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap();
        let (db, keys) = employee_db();
        let reference = RepairEngine::new(db.clone(), keys.clone());
        let expected = reference.run(&CountRequest::exact(query.clone())).unwrap();
        for shard_count in [1, 2, 3, 7] {
            let sharded = ShardedEngine::new(db.clone(), keys.clone(), shard_count);
            let report = sharded.run(&CountRequest::exact(query.clone())).unwrap();
            assert_eq!(
                format!("{:?}", report.answer),
                format!("{:?}", expected.answer),
                "shards={shard_count}"
            );
            assert_eq!(report.generation, expected.generation);
            assert_eq!(sharded.total_repairs(), reference.total_repairs().clone());
            assert!(sharded.check_merge_invariant(), "shards={shard_count}");
        }
    }

    #[test]
    fn mutations_route_and_report_like_the_unsharded_engine() {
        let (db, keys) = employee_db();
        let mut reference = RepairEngine::new(db.clone(), keys.clone());
        let sharded = ShardedEngine::new(db, keys, 4);

        let fact = parse(&sharded, "Employee(3, 'Eve', 'Ops')");
        let expected = reference.apply(Mutation::Insert(fact.clone())).unwrap();
        let applied = sharded.apply(Mutation::Insert(fact.clone())).unwrap();
        assert!(applied.applied);
        assert_eq!(applied.id.index(), 4);
        assert_eq!(applied.report.generation, expected.generation);
        assert_eq!(sharded.total_repairs(), reference.total_repairs().clone());

        // Duplicate insert: no-op, same id, generation unchanged.
        let noop = sharded.apply(Mutation::Insert(fact)).unwrap();
        assert!(!noop.applied);
        assert_eq!(noop.id.index(), 4);
        assert_eq!(noop.report.noops, 1);
        assert_eq!(noop.report.generation, expected.generation);

        // Delete by global id mirrors the reference engine.
        let expected = reference.apply(Mutation::Delete(FactId::new(0))).unwrap();
        let deleted = sharded.apply(Mutation::Delete(FactId::new(0))).unwrap();
        assert_eq!(deleted.report.generation, expected.generation);
        assert_eq!(sharded.total_repairs(), reference.total_repairs().clone());
        assert_eq!(sharded.waste(), reference.waste());

        // Deleting it again is the same error.
        let err = sharded.apply(Mutation::Delete(FactId::new(0))).unwrap_err();
        assert!(matches!(
            err,
            CountError::Db(DbError::MissingFact(index)) if index == 0
        ));
        assert!(sharded.check_merge_invariant());
    }

    #[test]
    fn batches_are_atomic_across_shards() {
        let (db, keys) = employee_db();
        let mut reference = RepairEngine::new(db.clone(), keys.clone());
        let sharded = ShardedEngine::new(db, keys, 3);

        let batch = vec![
            Mutation::Insert(parse(&sharded, "Employee(5, 'Ada', 'Sec')")),
            Mutation::Insert(parse(&sharded, "Employee(1, 'Bob', 'HR')")), // duplicate
            Mutation::Delete(FactId::new(2)),
            Mutation::Insert(parse(&sharded, "Employee(9, 'Joe', 'Ops')")),
        ];
        let expected = reference.apply_batch(batch.clone()).unwrap();
        let (report, total) = sharded.apply_batch(batch).unwrap();
        assert_eq!(report.applied, expected.applied);
        assert_eq!(report.noops, expected.noops);
        assert_eq!(report.generation, expected.generation);
        assert_eq!(total, reference.total_repairs().clone());
        assert_eq!(sharded.total_repairs(), reference.total_repairs().clone());

        // A bad delete rejects the whole batch, leaving state untouched.
        let generation = sharded.generation();
        let bad = vec![
            Mutation::Insert(parse(&sharded, "Employee(6, 'Zoe', 'HR')")),
            Mutation::Delete(FactId::new(2)), // already deleted
        ];
        assert!(sharded.apply_batch(bad).is_err());
        assert_eq!(sharded.generation(), generation);
        assert!(!sharded.read(|engine| engine
            .database()
            .contains(&parse(&sharded, "Employee(6, 'Zoe', 'HR')"))));
        assert!(sharded.check_merge_invariant());
    }

    #[test]
    fn compaction_matches_the_unsharded_outcome_and_remaps_routes() {
        let (db, keys) = employee_db();
        let mut reference = RepairEngine::new(db.clone(), keys.clone());
        let sharded = ShardedEngine::new(db, keys, 4);

        reference.apply(Mutation::Delete(FactId::new(1))).unwrap();
        sharded.apply(Mutation::Delete(FactId::new(1))).unwrap();
        insert(&sharded, "Employee(3, 'Eve', 'Ops')");
        let fact = parse(&sharded, "Employee(3, 'Eve', 'Ops')");
        reference.apply(Mutation::Insert(fact)).unwrap();

        assert_eq!(sharded.waste(), reference.waste());
        let expected = reference.compact();
        let outcome = sharded.compact();
        assert_eq!(outcome.report.live_facts, expected.report.live_facts);
        assert_eq!(
            outcome.report.ids_reclaimed(),
            expected.report.ids_reclaimed()
        );
        assert_eq!(outcome.slots_after, expected.slots_after);
        assert_eq!(outcome.generation, expected.generation);
        assert_eq!(sharded.generation(), reference.generation());
        assert_eq!(sharded.total_repairs(), reference.total_repairs().clone());
        assert_eq!(sharded.waste(), 0);
        assert!(sharded.check_merge_invariant());

        // Post-compaction ids are the dense prefix; deleting through a
        // remapped route still works.
        let applied = sharded.apply(Mutation::Delete(FactId::new(0))).unwrap();
        assert!(applied.applied);
        reference.apply(Mutation::Delete(FactId::new(0))).unwrap();
        assert_eq!(sharded.total_repairs(), reference.total_repairs().clone());
    }

    #[test]
    fn maybe_compact_follows_the_unsharded_policy() {
        let (db, keys) = employee_db();
        let sharded = ShardedEngine::new(db, keys, 2);
        assert!(
            sharded.maybe_compact(1).is_none(),
            "no waste, no compaction"
        );
        sharded.apply(Mutation::Delete(FactId::new(3))).unwrap();
        assert!(sharded.maybe_compact(100).is_none(), "below threshold");
        assert!(sharded.maybe_compact(1).is_some(), "at threshold");
        assert_eq!(sharded.waste(), 0);
    }

    #[test]
    fn capacity_is_enforced_on_the_global_id_space() {
        let mut schema = Schema::new();
        schema.add_relation("R", 2).unwrap();
        let keys = KeySet::builder(&schema).key("R", 1).unwrap().build();
        let db = Database::new(schema).with_fact_id_capacity(2);
        let sharded = ShardedEngine::new(db, keys, 3);
        insert(&sharded, "R(1, 'a')");
        insert(&sharded, "R(2, 'b')");
        let fact = parse(&sharded, "R(3, 'c')");
        let err = sharded.apply(Mutation::Insert(fact)).unwrap_err();
        assert!(matches!(
            err,
            CountError::Db(DbError::FactIdsExhausted { capacity: 2 })
        ));
        // Reclaim headroom by delete + compact, then insert again.
        sharded.apply(Mutation::Delete(FactId::new(0))).unwrap();
        assert!(
            sharded.maybe_compact(u64::MAX).is_some(),
            "exhausted forces compaction"
        );
        let applied = insert(&sharded, "R(3, 'c')");
        assert_eq!(applied.id.index(), 1);
    }

    #[test]
    fn seeded_estimates_are_bit_for_bit_identical() {
        let (db, keys) = employee_db();
        let reference = RepairEngine::new(db.clone(), keys.clone());
        let query = parse_query("EXISTS n . Employee(2, n, 'IT')").unwrap();
        let request = CountRequest::approximate(query, 0.3, 0.1)
            .with_seed(42)
            .with_sample_cap(200)
            .with_strategy(Strategy::KarpLuby);
        let expected = reference.run(&request).unwrap();
        for shard_count in [2, 5] {
            let sharded = ShardedEngine::new(db.clone(), keys.clone(), shard_count);
            let report = sharded.run(&request).unwrap();
            assert_eq!(
                format!("{:?}", report.answer),
                format!("{:?}", expected.answer),
                "shards={shard_count}"
            );
            assert_eq!(report.samples_used, expected.samples_used);
        }
    }

    #[test]
    fn chaos_panic_poisons_and_recovers() {
        let (db, keys) = employee_db();
        let sharded = ShardedEngine::new(db, keys, 2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sharded.chaos_panic();
        }));
        assert!(caught.is_err());
        // Poison is recovered by every guard helper: reads still work.
        assert_eq!(sharded.read(|engine| engine.database().len()), 4);
        insert(&sharded, "Employee(8, 'Kim', 'HR')");
        assert_eq!(sharded.live_facts(), 5);
    }

    #[test]
    fn route_hash_is_content_stable_and_spreads() {
        let (db, keys) = employee_db();
        let sharded = ShardedEngine::new(db, keys, 2);
        let a = parse(&sharded, "Employee(1, 'x', 'y')");
        let b = parse(&sharded, "Employee(1, 'other', 'args')");
        // Same key value, same shard — blocks never straddle shards.
        assert_eq!(sharded.shard_of(&a), sharded.shard_of(&b));
        let gauges = sharded.shard_gauges();
        assert_eq!(gauges.iter().map(|g| g.facts).sum::<usize>(), 4);
    }
}
