//! Counting database repairs under primary keys.
//!
//! This crate implements the computational core of the paper: given a
//! database `D`, a set of primary keys `Σ`, and a Boolean query `Q`, compute
//! (exactly or approximately) the number of repairs of `D` w.r.t. `Σ` that
//! entail `Q` — the problem `#CQA(Q, Σ)` of Section 2.1.
//!
//! The main entry point is [`RepairEngine`]: an owned, `Send + Sync`,
//! caching engine that answers [`CountRequest`]s with [`CountReport`]s and
//! unifies every operation the paper studies behind one request/report
//! surface:
//!
//! * the **decision** problem `#CQA>0` (Theorems 3.2 and 3.4) —
//!   [`Semantics::Decision`];
//! * the **exact counters** — brute-force repair enumeration (the
//!   `acceptM` machine of Theorem 3.3 made concrete) and the
//!   certificate/box algorithm that mirrors the paper's "solutions via
//!   certificate expansion" structure (Section 4.1);
//! * the **total repair count** `∏ |Bᵢ|` and the **relative frequency** of
//!   Section 1.1;
//! * the **FPRAS** of Theorem 6.2 ([`FprasEstimator`]) and the
//!   Karp–Luby-style baseline over the "complex" sample space used by the
//!   probabilistic-database FPRAS of Dalvi–Suciu ([`KarpLubyEstimator`]).
//!
//! Lower-level building blocks — certificates, selectors and boxes — are
//! exposed because the Λ-hierarchy machinery in `cdr-lambda` reuses them.
//!
//! The legacy [`RepairCounter`] facade remains as a thin wrapper over the
//! engine for backwards compatibility.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod certificates;
mod counter;
mod decision;
mod error;
mod frequency;

/// The owned, cached request/report engine.
pub mod engine;

/// Approximate counting: the Λ\[k\] FPRAS and the Karp–Luby baseline.
pub mod approx;
/// Exact counting algorithms.
pub mod exact;
/// The replicated command log: framed records, snapshot files, replay.
pub mod replog;
/// The sharded scatter–gather engine.
pub mod sharded;
/// The text wire format serving front ends parse into [`EngineCommand`]s.
pub mod wire;

pub use approx::{ApproxConfig, ApproxCount, FprasEstimator, KarpLubyEstimator};
pub use certificates::{distinct_boxes, enumerate_certificates, Certificate, SelectorBox};
pub use counter::{CountOutcome, ExactStrategy, RepairCounter};
pub use decision::{
    holds_in_some_repair, holds_in_some_repair_fo, holds_in_some_repair_fo_bounded,
    holds_in_some_repair_ucq,
};
pub use engine::{
    Answer, CacheStats, CompactionOutcome, CountReport, CountRequest, EngineCommand,
    EngineResponse, MutationReport, RepairEngine, Semantics, Strategy, DEFAULT_PLAN_CACHE_CAPACITY,
};
pub use error::CountError;
pub use exact::{
    count_by_boxes, count_by_enumeration, count_union_generic, count_union_of_boxes,
    count_union_of_boxes_with_total, GenericBox,
};
pub use frequency::{relative_frequency, relative_frequency_with};
pub use replog::{LogOp, LogRecord, LogWriter, ReplogError};
pub use sharded::{ShardGauges, ShardedApplied, ShardedEngine};
pub use wire::frame::{decode_bulk, encode_bulk, FrameError, BULK_VERSION};
pub use wire::{parse_count_request, parse_engine_command, parse_mutation, WireError};
