//! The replicated command log: framed, checksummed, append-only records
//! of every state-changing verb a primary applies.
//!
//! The wire trace is already a deterministic, replayable log — replies
//! are pure functions of engine state and command order — so replication
//! reduces to shipping the *mutating* suffix of that trace: a
//! [`LogRecord`] per `INSERT`/`DELETE`, one per atomic `BATCH`, and one
//! per compaction (with its id-translation table, so a replica can prove
//! it remapped fact ids identically).  Each record carries the
//! replication epoch and its logical offset; on disk each record payload
//! travels in a `[len ‖ crc32 ‖ payload]` frame so a torn tail from a
//! killed process is detected and discarded, never replayed.
//!
//! Replay (the server's `apply_record`) swallows per-record engine errors: a failed
//! delete or duplicate insert left the primary's engine untouched, so
//! reproducing the same error leaves the replica bit-for-bit identical
//! too.  Compaction replay cross-checks the translation table and fails
//! with [`ReplogError::Diverged`] if the replica's remap differs — the
//! invariant the follower-divergence tests lean on.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

use cdr_repairdb::snapshot::{
    crc32, decode_fact, encode_fact, write_u32, ByteReader, Snapshot, SnapshotError,
};
use cdr_repairdb::{FactId, Mutation, Schema};

use crate::engine::RepairEngine;
use crate::wire::frame::{read_varint, write_varint, FrameError};

/// File name of the snapshot inside a `--log-dir`.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";

/// File name of the command log inside a `--log-dir`.
pub const LOG_FILE: &str = "log.bin";

/// A replication failure.
#[derive(Debug)]
pub enum ReplogError {
    /// Bytes that should decode did not.
    Codec(SnapshotError),
    /// The log directory could not be read or written.
    Io(io::Error),
    /// A replica's replay produced different state than the record
    /// promises — the invariant violation replication exists to rule out.
    Diverged(String),
}

impl fmt::Display for ReplogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplogError::Codec(e) => write!(f, "log codec failure: {e}"),
            ReplogError::Io(e) => write!(f, "log i/o failure: {e}"),
            ReplogError::Diverged(why) => write!(f, "replica diverged: {why}"),
        }
    }
}

impl std::error::Error for ReplogError {}

impl From<SnapshotError> for ReplogError {
    fn from(e: SnapshotError) -> Self {
        ReplogError::Codec(e)
    }
}

impl From<io::Error> for ReplogError {
    fn from(e: io::Error) -> Self {
        ReplogError::Io(e)
    }
}

/// The state-changing operation a [`LogRecord`] carries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogOp {
    /// One `INSERT` or `DELETE`.
    Mutation(Mutation),
    /// One atomic `BATCH` of mutations (all-or-nothing on replay, exactly
    /// as [`RepairEngine::apply_batch`] applied it).
    Batch(Vec<Mutation>),
    /// One compaction, with enough of the id-translation table to prove a
    /// replica remapped identically: the size of the pre-compaction id
    /// space and the surviving old ids in new-id order.
    Compact {
        /// Fact ids assigned before the compaction ran.
        fact_ids_before: u32,
        /// Old ids of the surviving facts, in their (dense) new-id order.
        survivors: Vec<u32>,
    },
}

/// One replicated command: an epoch/offset header plus the operation.
///
/// Offsets are logical sequence numbers — record `k` is the `k`-th
/// state-changing command since the empty log — not byte positions, so
/// snapshot truncation does not renumber anything.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogRecord {
    /// The replication epoch the record was written in (bumped by
    /// `PROMOTE`).
    pub epoch: u64,
    /// The record's logical sequence number.
    pub offset: u64,
    /// The operation.
    pub op: LogOp,
}

const KIND_INSERT: u8 = 0;
const KIND_DELETE: u8 = 1;
const KIND_BATCH: u8 = 2;
const KIND_COMPACT: u8 = 3;

/// The record codec's varint reads, in the snapshot module's error
/// domain.
fn varint(reader: &mut ByteReader<'_>) -> Result<u64, SnapshotError> {
    reader.varint()
}

fn encode_mutation(out: &mut Vec<u8>, mutation: &Mutation) {
    match mutation {
        Mutation::Insert(fact) => {
            out.push(KIND_INSERT);
            encode_fact(out, fact);
        }
        Mutation::Delete(id) => {
            out.push(KIND_DELETE);
            write_varint(out, id.index() as u64);
        }
    }
}

fn decode_mutation(
    reader: &mut ByteReader<'_>,
    schema: &Schema,
) -> Result<Mutation, SnapshotError> {
    match reader.u8()? {
        KIND_INSERT => Ok(Mutation::Insert(decode_fact(reader, schema)?)),
        KIND_DELETE => Ok(Mutation::Delete(FactId::new(varint(reader)? as usize))),
        kind => Err(SnapshotError::Corrupt(format!(
            "unknown mutation kind {kind}"
        ))),
    }
}

impl LogRecord {
    /// Encodes the record payload (varint epoch and offset, kind byte,
    /// body).  The header varints matter: epoch and offset are tiny in
    /// practice, and a fixed-width header would double the wire size of
    /// a delete record.  Framing — length prefix and checksum — is
    /// layered on by [`frame`].
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        write_varint(&mut out, self.epoch);
        write_varint(&mut out, self.offset);
        match &self.op {
            LogOp::Mutation(m) => encode_mutation(&mut out, m),
            LogOp::Batch(mutations) => {
                out.push(KIND_BATCH);
                write_varint(&mut out, mutations.len() as u64);
                for m in mutations {
                    encode_mutation(&mut out, m);
                }
            }
            LogOp::Compact {
                fact_ids_before,
                survivors,
            } => {
                out.push(KIND_COMPACT);
                write_varint(&mut out, u64::from(*fact_ids_before));
                write_varint(&mut out, survivors.len() as u64);
                for &old in survivors {
                    write_varint(&mut out, u64::from(old));
                }
            }
        }
        out
    }

    /// Decodes a record payload against the served schema.
    pub fn decode(bytes: &[u8], schema: &Schema) -> Result<LogRecord, SnapshotError> {
        let mut reader = ByteReader::new(bytes);
        let epoch = varint(&mut reader)?;
        let offset = varint(&mut reader)?;
        let u32_varint = |reader: &mut ByteReader<'_>| {
            u32::try_from(varint(reader)?)
                .map_err(|_| SnapshotError::Corrupt("varint overflows 32 bits".to_string()))
        };
        let op = match reader.u8()? {
            KIND_INSERT => LogOp::Mutation(Mutation::Insert(decode_fact(&mut reader, schema)?)),
            KIND_DELETE => {
                LogOp::Mutation(Mutation::Delete(FactId::new(varint(&mut reader)? as usize)))
            }
            KIND_BATCH => {
                let count = varint(&mut reader)? as usize;
                let mut mutations = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    mutations.push(decode_mutation(&mut reader, schema)?);
                }
                LogOp::Batch(mutations)
            }
            KIND_COMPACT => {
                let fact_ids_before = u32_varint(&mut reader)?;
                let count = varint(&mut reader)? as usize;
                let mut survivors = Vec::with_capacity(count.min(65536));
                for _ in 0..count {
                    survivors.push(u32_varint(&mut reader)?);
                }
                LogOp::Compact {
                    fact_ids_before,
                    survivors,
                }
            }
            kind => {
                return Err(SnapshotError::Corrupt(format!(
                    "unknown record kind {kind}"
                )));
            }
        };
        if !reader.is_empty() {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after record",
                reader.remaining()
            )));
        }
        Ok(LogRecord { epoch, offset, op })
    }
}

/// Wraps a record payload in its on-disk/wire frame:
/// `[len: u32][crc32(payload): u32][payload]`.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    write_u32(&mut out, payload.len() as u32);
    write_u32(&mut out, crc32(payload));
    out.extend_from_slice(payload);
    out
}

/// Splits a byte stream into frame payloads, stopping at the first
/// truncated or checksum-failing frame (the torn tail a `SIGKILL` mid
/// write leaves behind).  Returns the payloads and the byte length of the
/// valid prefix.
pub fn split_frames(bytes: &[u8]) -> (Vec<Vec<u8>>, usize) {
    let mut payloads = Vec::new();
    let mut pos = 0;
    loop {
        if bytes.len() - pos < 8 {
            return (payloads, pos);
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if bytes.len() - pos - 8 < len {
            return (payloads, pos);
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            return (payloads, pos);
        }
        payloads.push(payload.to_vec());
        pos += 8 + len;
    }
}

/// Verifies and strips one framed payload (the hex-decoded body of a
/// `REPL RECORD` line): `[crc32 ‖ payload]`, without the length prefix —
/// the line protocol already delimits it.
pub fn unwrap_checksummed(bytes: &[u8]) -> Result<&[u8], SnapshotError> {
    if bytes.len() < 4 {
        return Err(SnapshotError::Truncated);
    }
    let crc = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes"));
    let payload = &bytes[4..];
    if crc32(payload) != crc {
        return Err(SnapshotError::Corrupt(
            "record checksum mismatch".to_string(),
        ));
    }
    Ok(payload)
}

/// Prepends the crc to a payload — the wire-framing dual of
/// [`unwrap_checksummed`].
pub fn wrap_checksummed(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    write_u32(&mut out, crc32(payload));
    out.extend_from_slice(payload);
    out
}

/// Codec version byte every binary record batch opens with.
pub const BATCH_VERSION: u8 = 1;

/// Encodes a run of record payloads as one binary batch frame:
/// `[crc32(payload) ‖ payload]` where the payload is
///
/// ```text
/// version  u8                         — BATCH_VERSION (1)
/// count    varint
/// records  count × (len varint ‖ record payload bytes)
/// ```
///
/// The frame's byte length travels in the `OK REPL BATCH <len> …` header
/// line (exactly like `BULK <len>`), so no outer length prefix is needed.
/// One checksum covers the whole batch — the per-record CRC of the hex
/// feed (`wrap_checksummed`) is what this codec amortises away.
pub fn encode_record_batch(payloads: &[Vec<u8>]) -> Vec<u8> {
    let total: usize = payloads.iter().map(|p| p.len() + 2).sum();
    let mut payload = Vec::with_capacity(8 + total);
    payload.push(BATCH_VERSION);
    write_varint(&mut payload, payloads.len() as u64);
    for record in payloads {
        write_varint(&mut payload, record.len() as u64);
        payload.extend_from_slice(record);
    }
    let mut frame = Vec::with_capacity(4 + payload.len());
    write_u32(&mut frame, crc32(&payload));
    frame.extend_from_slice(&payload);
    frame
}

/// Decodes one binary batch frame back into record payloads.
///
/// Strict all-or-nothing, mirroring `BULK` semantics: a checksum
/// mismatch, an unknown version, a truncated record, a count or length
/// lie, or trailing bytes reject the *whole* batch — the tailer applies
/// zero records and reports one `ERR REPL FRAME <reason>`.  Capacity
/// reservations are bounded by the bytes actually present, so a hostile
/// `count` cannot reserve memory it never sent.
pub fn decode_record_batch(frame: &[u8]) -> Result<Vec<Vec<u8>>, FrameError> {
    if frame.len() < 4 {
        return Err(FrameError::Truncated);
    }
    let expected = u32::from_le_bytes(frame[..4].try_into().expect("4 bytes"));
    let payload = &frame[4..];
    let actual = crc32(payload);
    if actual != expected {
        return Err(FrameError::Checksum { expected, actual });
    }
    let mut reader = ByteReader::new(payload);
    let version = reader.u8()?;
    if version != BATCH_VERSION {
        return Err(FrameError::Corrupt(format!(
            "unknown batch version {version} (this build speaks {BATCH_VERSION})"
        )));
    }
    let count = read_varint(&mut reader)? as usize;
    // Each record costs at least its length byte.
    let mut records: Vec<Vec<u8>> = Vec::with_capacity(count.min(reader.remaining() + 1));
    for _ in 0..count {
        let len = read_varint(&mut reader)? as usize;
        records.push(reader.bytes(len)?.to_vec());
    }
    if !reader.is_empty() {
        return Err(FrameError::Corrupt(format!(
            "{} trailing bytes after the last record",
            reader.remaining()
        )));
    }
    Ok(records)
}

/// Parses the 8-byte binary snapshot-chunk header
/// `[len: u32le ‖ crc32: u32le]` — the same frame layout as the on-disk
/// log ([`frame`]), streamed raw instead of hex-lined.
pub fn chunk_header(bytes: &[u8]) -> Result<(usize, u32), FrameError> {
    if bytes.len() < 8 {
        return Err(FrameError::Truncated);
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    Ok((len, crc))
}

/// Verifies a binary snapshot-chunk body against the CRC its header
/// promised.
pub fn verify_chunk(crc: u32, payload: &[u8]) -> Result<(), FrameError> {
    let actual = crc32(payload);
    if actual != crc {
        return Err(FrameError::Checksum {
            expected: crc,
            actual,
        });
    }
    Ok(())
}

/// Lower-case hex encoding — how binary snapshot chunks and log records
/// travel inside the text line protocol.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
        out.push(char::from_digit((b & 0xF) as u32, 16).expect("nibble"));
    }
    out
}

/// Decodes lower- or upper-case hex (the inverse of [`to_hex`]).
pub fn from_hex(text: &str) -> Result<Vec<u8>, SnapshotError> {
    let text = text.trim();
    if !text.len().is_multiple_of(2) {
        return Err(SnapshotError::Corrupt("odd-length hex".to_string()));
    }
    let nibble = |c: char| {
        c.to_digit(16)
            .ok_or_else(|| SnapshotError::Corrupt(format!("`{c}` is not a hex digit")))
    };
    let mut out = Vec::with_capacity(text.len() / 2);
    let mut chars = text.chars();
    while let (Some(hi), Some(lo)) = (chars.next(), chars.next()) {
        out.push(((nibble(hi)? as u8) << 4) | nibble(lo)? as u8);
    }
    Ok(out)
}

/// An append handle on the on-disk command log.
///
/// Writes are flushed per record but not fsynced — the durability story
/// is the replica, not the disk; the frame checksums make a torn tail
/// detectable, which is all recovery needs.
pub struct LogWriter {
    file: File,
}

impl LogWriter {
    /// Opens (creating if absent) the log file in append mode.
    pub fn open(path: &Path) -> io::Result<LogWriter> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(LogWriter { file })
    }

    /// Appends one framed record payload and flushes.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        self.file.write_all(&frame(payload))?;
        self.file.flush()
    }

    /// Empties the log — the truncation step after a snapshot is written.
    pub fn truncate(&mut self) -> io::Result<()> {
        // The handle is O_APPEND, so every later write lands at the (new)
        // end regardless of any cursor — `set_len(0)` alone is complete.
        self.file.set_len(0)
    }
}

/// Reads every valid framed payload from a log file; an absent file is an
/// empty log, and a torn tail is silently discarded.
pub fn read_log_payloads(path: &Path) -> io::Result<Vec<Vec<u8>>> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut file) => {
            file.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    }
    Ok(split_frames(&bytes).0)
}

/// Opens the log for appending after recovery: reads every valid frame,
/// truncates the file back to the valid prefix (so a torn tail is never
/// appended after), and returns the writer plus the recovered payloads.
pub fn open_log(path: &Path) -> io::Result<(LogWriter, Vec<Vec<u8>>)> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut file) => {
            file.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    let (payloads, valid) = split_frames(&bytes);
    if valid < bytes.len() {
        OpenOptions::new()
            .write(true)
            .open(path)?
            .set_len(valid as u64)?;
    }
    Ok((LogWriter::open(path)?, payloads))
}

/// Writes the snapshot file atomically (temp file + rename), so a crash
/// mid-write can never leave a half-snapshot where recovery looks.
pub fn write_snapshot_file(dir: &Path, snapshot: &Snapshot) -> Result<(), ReplogError> {
    let bytes = snapshot.encode()?;
    let tmp = dir.join("snapshot.tmp");
    let mut file = File::create(&tmp)?;
    file.write_all(&bytes)?;
    file.flush()?;
    drop(file);
    std::fs::rename(&tmp, dir.join(SNAPSHOT_FILE))?;
    Ok(())
}

/// Loads the snapshot from a log directory, or `None` when no snapshot
/// has been written yet.  A present-but-corrupt snapshot is an error —
/// recovery must not silently boot empty.
pub fn read_snapshot_file(dir: &Path) -> Result<Option<Snapshot>, ReplogError> {
    let mut bytes = Vec::new();
    match File::open(dir.join(SNAPSHOT_FILE)) {
        Ok(mut file) => {
            file.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    Ok(Some(Snapshot::decode(&bytes)?))
}

/// The survivor list a compaction report proves: old ids of the live
/// facts, in their new-id order.
pub fn survivors_of(report: &cdr_repairdb::CompactionReport) -> Vec<u32> {
    report
        .iter()
        .map(|(old, _new)| old.index() as u32)
        .collect()
}

/// The `key=value` token of a `REPL HELLO` announcement carrying an
/// auto-compaction threshold (`compact=16`) or its absence
/// (`compact=off`).  Both sides of the handshake render the token through
/// this one function so the mismatch check compares like with like.
pub fn compact_token(threshold: Option<u64>) -> String {
    match threshold {
        Some(t) => format!("compact={t}"),
        None => "compact=off".to_string(),
    }
}

/// Parses a `compact=` token back into a threshold.  Returns `None` for a
/// malformed value (distinct from `Some(None)`, which is `compact=off`).
pub fn parse_compact_token(value: &str) -> Option<Option<u64>> {
    if value == "off" {
        return Some(None);
    }
    value.parse::<u64>().ok().map(Some)
}

/// Renders the announcing `REPL HELLO` a follower (or supervisor) sends:
/// its replication epoch, and — when `announce_compact` — the
/// auto-compaction threshold it would apply if promoted, so a mismatch
/// with the upstream is rejected at connect time instead of surfacing as
/// post-promotion divergence.
pub fn hello_request(epoch: u64, compact: Option<Option<u64>>) -> String {
    match compact {
        Some(threshold) => format!("REPL HELLO epoch={epoch} {}", compact_token(threshold)),
        None => format!("REPL HELLO epoch={epoch}"),
    }
}

/// Extracts a `key=value` field from a reply or announcement line
/// (`field(line, "epoch=")`); the shared parser for the HELLO handshake
/// and the `STATS` replication tail.
pub fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    line.split_whitespace()
        .find_map(|token| token.strip_prefix(key))
}

/// [`field`], parsed as a `u64`.
pub fn field_u64(line: &str, key: &str) -> Option<u64> {
    field(line, key).and_then(|value| value.parse().ok())
}

/// Replays one record into an engine.
///
/// Mutation errors are swallowed: the primary's engine was left untouched
/// by the failing command, so reproducing the failure reproduces the
/// state.  A compaction record is cross-checked against the replica's own
/// translation table; any mismatch is [`ReplogError::Diverged`].
pub fn apply_record(engine: &mut RepairEngine, record: &LogRecord) -> Result<(), ReplogError> {
    match &record.op {
        LogOp::Mutation(m) => {
            let _ = engine.apply(m.clone());
            Ok(())
        }
        LogOp::Batch(mutations) => {
            let _ = engine.apply_batch(mutations.iter().cloned());
            Ok(())
        }
        LogOp::Compact {
            fact_ids_before,
            survivors,
        } => {
            let before = engine.database().fact_ids_assigned();
            if before != *fact_ids_before {
                return Err(ReplogError::Diverged(format!(
                    "compact at offset {} expected {} assigned ids, replica has {}",
                    record.offset, fact_ids_before, before
                )));
            }
            let outcome = engine.compact();
            let ours = survivors_of(&outcome.report);
            if &ours != survivors {
                return Err(ReplogError::Diverged(format!(
                    "compact at offset {} remapped {} survivors differently",
                    record.offset,
                    ours.len()
                )));
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdr_repairdb::{Database, KeySet};

    fn schema() -> Schema {
        let mut schema = Schema::new();
        schema.add_relation("Event", 2).unwrap();
        schema
    }

    fn records() -> Vec<LogRecord> {
        let schema = schema();
        let db = Database::new(schema.clone());
        let fact = |text: &str| db.parse_fact(text).unwrap();
        vec![
            LogRecord {
                epoch: 0,
                offset: 0,
                op: LogOp::Mutation(Mutation::Insert(fact("Event(1, 'a')"))),
            },
            LogRecord {
                epoch: 0,
                offset: 1,
                op: LogOp::Mutation(Mutation::Delete(FactId::new(7))),
            },
            LogRecord {
                epoch: 1,
                offset: 2,
                op: LogOp::Batch(vec![
                    Mutation::Insert(fact("Event(2, 'b')")),
                    Mutation::Delete(FactId::new(0)),
                ]),
            },
            LogRecord {
                epoch: 1,
                offset: 3,
                op: LogOp::Compact {
                    fact_ids_before: 9,
                    survivors: vec![1, 3, 8],
                },
            },
        ]
    }

    #[test]
    fn records_round_trip_through_the_codec() {
        let schema = schema();
        for record in records() {
            let bytes = record.encode();
            assert_eq!(LogRecord::decode(&bytes, &schema).unwrap(), record);
        }
    }

    #[test]
    fn framing_survives_a_torn_tail_and_rejects_corruption() {
        let records = records();
        let mut stream = Vec::new();
        let mut payloads = Vec::new();
        for record in &records {
            let payload = record.encode();
            stream.extend_from_slice(&frame(&payload));
            payloads.push(payload);
        }
        let full_len = stream.len();
        // Clean split.
        let (split, valid) = split_frames(&stream);
        assert_eq!(split, payloads);
        assert_eq!(valid, full_len);
        // Torn tail: drop the last 3 bytes — final frame is discarded.
        let torn = &stream[..stream.len() - 3];
        let (split, valid) = split_frames(torn);
        assert_eq!(split, payloads[..payloads.len() - 1]);
        assert!(valid <= torn.len());
        // A flipped byte in a payload stops the scan at that frame.
        let mut corrupt = stream.clone();
        corrupt[10] ^= 0xFF;
        let (split, _) = split_frames(&corrupt);
        assert!(split.len() < payloads.len());
    }

    #[test]
    fn wire_checksumming_round_trips_and_detects_flips() {
        let payload = records()[0].encode();
        let wrapped = wrap_checksummed(&payload);
        assert_eq!(unwrap_checksummed(&wrapped).unwrap(), &payload[..]);
        let mut bad = wrapped.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert!(unwrap_checksummed(&bad).is_err());
        assert!(unwrap_checksummed(&wrapped[..3]).is_err());
    }

    #[test]
    fn record_batches_round_trip_and_reject_defects() {
        let payloads: Vec<Vec<u8>> = records().iter().map(LogRecord::encode).collect();
        let frame = encode_record_batch(&payloads);
        assert_eq!(decode_record_batch(&frame).unwrap(), payloads);
        // The empty batch is valid (an idle FETCH answers n=0).
        assert_eq!(
            decode_record_batch(&encode_record_batch(&[])).unwrap(),
            Vec::<Vec<u8>>::new()
        );
        // A flipped payload byte fails the checksum …
        let mut bad = frame.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(matches!(
            decode_record_batch(&bad),
            Err(FrameError::Checksum { .. })
        ));
        // … as does a flipped checksum byte.
        let mut bad = frame.clone();
        bad[0] ^= 0x01;
        assert!(matches!(
            decode_record_batch(&bad),
            Err(FrameError::Checksum { .. })
        ));
        // A truncated frame is refused outright.
        assert_eq!(decode_record_batch(&frame[..2]), Err(FrameError::Truncated));
        // An unknown version is corrupt, not silently reinterpreted.
        let mut payload = vec![BATCH_VERSION + 1];
        write_varint(&mut payload, 0);
        let mut reframed = Vec::new();
        write_u32(&mut reframed, crc32(&payload));
        reframed.extend_from_slice(&payload);
        assert!(matches!(
            decode_record_batch(&reframed),
            Err(FrameError::Corrupt(_))
        ));
        // Trailing bytes after the last record are corrupt.
        let mut payload = frame[4..].to_vec();
        payload.push(0xAB);
        let mut reframed = Vec::new();
        write_u32(&mut reframed, crc32(&payload));
        reframed.extend_from_slice(&payload);
        match decode_record_batch(&reframed) {
            Err(FrameError::Corrupt(why)) => assert!(why.contains("trailing"), "{why}"),
            other => panic!("expected a trailing-bytes error, got {other:?}"),
        }
    }

    #[test]
    fn batch_count_lies_never_allocate_for_promised_records() {
        // A batch promising 2^31 records over no bytes at all must fail
        // with Truncated, without reserving for the lie.
        let mut payload = vec![BATCH_VERSION];
        write_varint(&mut payload, 0x8000_0000);
        let mut frame = Vec::new();
        write_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        assert_eq!(decode_record_batch(&frame), Err(FrameError::Truncated));
        // Same for a record-length lie inside an honest count.
        let mut payload = vec![BATCH_VERSION];
        write_varint(&mut payload, 1);
        write_varint(&mut payload, 0x8000_0000);
        let mut frame = Vec::new();
        write_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        assert_eq!(decode_record_batch(&frame), Err(FrameError::Truncated));
    }

    #[test]
    fn chunk_headers_parse_and_verify() {
        let payload = b"snapshot chunk bytes";
        let framed = frame(payload);
        let (len, crc) = chunk_header(&framed).unwrap();
        assert_eq!(len, payload.len());
        verify_chunk(crc, payload).unwrap();
        assert!(matches!(
            verify_chunk(crc, b"different bytes"),
            Err(FrameError::Checksum { .. })
        ));
        assert_eq!(chunk_header(&framed[..7]), Err(FrameError::Truncated));
    }

    #[test]
    fn the_binary_batch_is_at_least_three_times_smaller_than_hex_lines() {
        // The wire-bytes half of the repl_feed acceptance target, pinned
        // as a unit test: the textual feed ships one
        // `REPL RECORD <hex(crc ‖ payload)>\n` line per record (2× hex
        // blowup + 4-byte CRC each), the binary feed one shared frame.
        // The suffix mirrors the replication-parity churn trace: three
        // short-string inserts to one delete.
        let schema = schema();
        let db = Database::new(schema);
        let fact = |i: u64| {
            db.parse_fact(&format!("Event({}, 'p{i}')", i % 16))
                .unwrap()
        };
        let payloads: Vec<Vec<u8>> = (0..4096)
            .map(|i| {
                let op = if i % 4 == 3 {
                    LogOp::Mutation(Mutation::Delete(FactId::new((i % 48) as usize)))
                } else {
                    LogOp::Mutation(Mutation::Insert(fact(i)))
                };
                LogRecord {
                    epoch: 1,
                    offset: i,
                    op,
                }
                .encode()
            })
            .collect();
        let textual: usize = payloads
            .iter()
            .map(|p| "REPL RECORD \n".len() + to_hex(&wrap_checksummed(p)).len())
            .sum();
        let binary = encode_record_batch(&payloads).len();
        assert!(
            textual >= 3 * binary,
            "textual feed is {textual} bytes, binary batch {binary} — ratio {:.2}× < 3×",
            textual as f64 / binary as f64
        );
    }

    #[test]
    fn hex_round_trips_and_rejects_malformed_text() {
        let bytes: Vec<u8> = (0u8..=255).collect();
        let hex = to_hex(&bytes);
        assert_eq!(from_hex(&hex).unwrap(), bytes);
        assert_eq!(from_hex(&hex.to_uppercase()).unwrap(), bytes);
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
        assert!(from_hex("abc").is_err());
        assert!(from_hex("zz").is_err());
    }

    #[test]
    fn open_log_trims_a_torn_tail_before_appending() {
        let dir = std::env::temp_dir().join(format!("cdr-replog-trim-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(LOG_FILE);
        let _ = std::fs::remove_file(&path);
        let payloads: Vec<Vec<u8>> = records().iter().map(LogRecord::encode).collect();
        {
            let mut writer = LogWriter::open(&path).unwrap();
            for p in &payloads {
                writer.append(p).unwrap();
            }
        }
        // Simulate a SIGKILL mid-append: half a frame at the tail.
        let mut bytes = std::fs::read(&path).unwrap();
        let torn: Vec<u8> = frame(&payloads[0])[..5].to_vec();
        bytes.extend_from_slice(&torn);
        std::fs::write(&path, &bytes).unwrap();
        let (mut writer, recovered) = open_log(&path).unwrap();
        assert_eq!(recovered, payloads);
        // Appending after recovery lands on a clean frame boundary.
        writer.append(&payloads[1]).unwrap();
        let mut expected = payloads.clone();
        expected.push(payloads[1].clone());
        assert_eq!(read_log_payloads(&path).unwrap(), expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn log_writer_appends_truncates_and_tolerates_absence() {
        let dir = std::env::temp_dir().join(format!("cdr-replog-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(LOG_FILE);
        let _ = std::fs::remove_file(&path);
        assert_eq!(read_log_payloads(&path).unwrap(), Vec::<Vec<u8>>::new());
        let mut writer = LogWriter::open(&path).unwrap();
        let payloads: Vec<Vec<u8>> = records().iter().map(LogRecord::encode).collect();
        for p in &payloads {
            writer.append(p).unwrap();
        }
        assert_eq!(read_log_payloads(&path).unwrap(), payloads);
        writer.truncate().unwrap();
        assert_eq!(read_log_payloads(&path).unwrap(), Vec::<Vec<u8>>::new());
        writer.append(&payloads[0]).unwrap();
        assert_eq!(read_log_payloads(&path).unwrap(), payloads[..1]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_reproduces_mutations_errors_and_compaction() {
        let schema = schema();
        let keys = KeySet::builder(&schema).key("Event", 1).unwrap().build();
        let mut db = Database::new(schema);
        db.insert_parsed("Event(1, 'a')").unwrap();
        db.insert_parsed("Event(1, 'b')").unwrap();
        db.insert_parsed("Event(2, 'c')").unwrap();
        let mut primary = RepairEngine::new(db.clone(), keys.clone());
        let mut replica = RepairEngine::new(db, keys);

        // Drive the primary; log exactly what a replicated backend would.
        let mut log: Vec<LogRecord> = Vec::new();
        let push = |op: LogOp, offset: u64| LogRecord {
            epoch: 0,
            offset,
            op,
        };
        let fact = primary.database().parse_fact("Event(3, 'd')").unwrap();
        log.push(push(LogOp::Mutation(Mutation::Insert(fact.clone())), 0));
        primary.apply(Mutation::Insert(fact)).unwrap();
        // A failing delete: logged, applied, error swallowed identically.
        log.push(push(LogOp::Mutation(Mutation::Delete(FactId::new(40))), 1));
        assert!(primary.apply(Mutation::Delete(FactId::new(40))).is_err());
        log.push(push(LogOp::Mutation(Mutation::Delete(FactId::new(1))), 2));
        primary.apply(Mutation::Delete(FactId::new(1))).unwrap();
        let outcome = primary.compact();
        log.push(push(
            LogOp::Compact {
                fact_ids_before: 4,
                survivors: survivors_of(&outcome.report),
            },
            3,
        ));

        for record in &log {
            apply_record(&mut replica, record).unwrap();
        }
        assert_eq!(replica.database(), primary.database());
        assert_eq!(replica.generation(), primary.generation());
        assert_eq!(replica.total_repairs(), primary.total_repairs());
        assert_eq!(replica.rel_generations(), primary.rel_generations());

        // A compact record that promises different survivors must be
        // refused, not silently absorbed.
        let bogus = LogRecord {
            epoch: 0,
            offset: 4,
            op: LogOp::Compact {
                fact_ids_before: replica.database().fact_ids_assigned(),
                survivors: vec![999],
            },
        };
        assert!(matches!(
            apply_record(&mut replica, &bogus),
            Err(ReplogError::Diverged(_))
        ));
    }

    #[test]
    fn hello_codec_round_trips_epoch_and_compact_announcements() {
        assert_eq!(
            hello_request(3, Some(Some(16))),
            "REPL HELLO epoch=3 compact=16"
        );
        assert_eq!(
            hello_request(0, Some(None)),
            "REPL HELLO epoch=0 compact=off"
        );
        assert_eq!(hello_request(7, None), "REPL HELLO epoch=7");

        let line = hello_request(5, Some(Some(32)));
        assert_eq!(field_u64(&line, "epoch="), Some(5));
        assert_eq!(field(&line, "compact="), Some("32"));
        assert_eq!(parse_compact_token("32"), Some(Some(32)));
        assert_eq!(parse_compact_token("off"), Some(None));
        assert_eq!(parse_compact_token("soon"), None);
        assert_eq!(compact_token(None), "compact=off");
        assert_eq!(compact_token(Some(8)), "compact=8");
        assert_eq!(field_u64("OK REPL HELLO epoch=2 end=9", "end="), Some(9));
        assert_eq!(field_u64("OK REPL HELLO", "epoch="), None);
    }
}
