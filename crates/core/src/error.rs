//! Errors produced by the counting layer.

use std::fmt;

use cdr_query::QueryError;
use cdr_repairdb::DbError;

/// Errors produced while counting repairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CountError {
    /// The query could not be parsed, resolved or evaluated.
    Query(QueryError),
    /// The database or key set was malformed.
    Db(DbError),
    /// An exact counter was asked to enumerate more repairs (or box
    /// combinations) than its configured budget allows.
    ExactBudgetExceeded {
        /// A human-readable description of what blew the budget.
        what: String,
        /// The configured budget.
        budget: u64,
    },
    /// An approximation parameter was invalid (e.g. `ε ≤ 0` or `δ ∉ (0,1)`).
    InvalidApproxParameter(String),
    /// A [`crate::Strategy`] was requested for a [`crate::Semantics`] it
    /// cannot serve (e.g. Karp–Luby for an exact count).
    UnsupportedStrategy {
        /// The semantics the request asked for.
        semantics: &'static str,
        /// The strategy that cannot serve it.
        strategy: &'static str,
    },
}

impl fmt::Display for CountError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CountError::Query(e) => write!(f, "{e}"),
            CountError::Db(e) => write!(f, "{e}"),
            CountError::ExactBudgetExceeded { what, budget } => {
                write!(f, "exact counting budget of {budget} exceeded by {what}")
            }
            CountError::InvalidApproxParameter(msg) => {
                write!(f, "invalid approximation parameter: {msg}")
            }
            CountError::UnsupportedStrategy {
                semantics,
                strategy,
            } => {
                write!(f, "the {strategy} strategy cannot serve {semantics}")
            }
        }
    }
}

impl std::error::Error for CountError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CountError::Query(e) => Some(e),
            CountError::Db(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueryError> for CountError {
    fn from(e: QueryError) -> Self {
        CountError::Query(e)
    }
}

impl From<DbError> for CountError {
    fn from(e: DbError) -> Self {
        CountError::Db(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let q: CountError = QueryError::UnknownRelation("R".into()).into();
        assert!(q.to_string().contains("R"));
        let d: CountError = DbError::DuplicateRelation("S".into()).into();
        assert!(d.to_string().contains("S"));
        let b = CountError::ExactBudgetExceeded {
            what: "10^9 repairs".into(),
            budget: 1000,
        };
        assert!(b.to_string().contains("1000"));
        let p = CountError::InvalidApproxParameter("epsilon must be positive".into());
        assert!(p.to_string().contains("epsilon"));
        use std::error::Error;
        assert!(q.source().is_some());
        assert!(b.source().is_none());
    }
}
