//! The [`RepairEngine`]: an owned, thread-safe, caching, *mutable* entry
//! point for every operation the paper studies.
//!
//! The engine owns its database and key set (behind [`Arc`](std::sync::Arc)s so clones are
//! cheap to share across threads), computes the block partition `B₁, …, Bₙ`
//! and the total repair count **once** at construction, and then keeps both
//! up to date **incrementally** as [`Mutation`](cdr_repairdb::Mutation)s arrive: an insert or
//! delete rebuilds only the touched key-block
//! ([`cdr_repairdb::BlockPartition::apply`]) and the total repair count is
//! updated by dividing out the old block's contribution and multiplying in
//! the new one — never by a full reproduct.
//!
//! All operations go through one command/response pair: an
//! [`EngineCommand`] is either a [`CountRequest`] (a query, a
//! [`Semantics`], a [`Strategy`], a budget and a sample cap) or a
//! [`Mutation`](cdr_repairdb::Mutation) / batch of mutations; an [`EngineResponse`] is the matching
//! [`CountReport`] or [`MutationReport`].  Queries remain `&self` (and
//! [`RepairEngine::run_batch`] fans them out across
//! [`std::thread::scope`] threads when a [`RepairEngine::with_parallelism`]
//! knob allows); mutations take `&mut self`, which makes every mutation a
//! natural barrier between parallel batches.
//!
//! Per-query planning artifacts — the UCQ rewrite, the query class, the
//! keywidth and disjunct keywidth, the certificate boxes, and the prepared
//! estimators — live in a bounded, generation-stamped LRU plan cache.  The
//! engine maintains a monotonically increasing *generation* counter plus a
//! per-relation last-mutation generation; a cached plan whose certificate
//! boxes pin a block of a mutated relation is lazily re-derived on its next
//! use, while plans over untouched relations survive the mutation (their
//! boxes pin *stable* block slots, which mutations to other relations never
//! renumber).  The [`RepairEngine::cache_stats`] counters — hits, misses,
//! evictions, invalidations — make all of this observable.
//!
//! The legacy [`crate::RepairCounter`] facade is a thin wrapper over this
//! engine and is kept only for backwards compatibility.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Weak};
use std::time::{Duration, Instant};

use cdr_num::{BigNat, Ratio};
use cdr_query::{
    evaluate, keywidth, max_disjunct_keywidth, rewrite_to_ucq, Query, QueryClass, UcqQuery,
};
use cdr_repairdb::{
    count_repairs, AppliedMutation, BlockDelta, BlockPartition, CompactionReport, Database, FactId,
    KeySet, Mutation, RepairIter,
};

use crate::approx::LiveBlockSampler;
use crate::approx::{ApproxConfig, ApproxCount, FprasEstimator, KarpLubyEstimator};
use crate::exact::{count_by_enumeration, count_union_of_boxes_with_total, DEFAULT_EXACT_BUDGET};
use crate::{distinct_boxes, enumerate_certificates, CountError, SelectorBox};

/// Default capacity of the engine's LRU plan cache.
///
/// One plan is cached per distinct query text; the bound keeps an engine
/// exposed to an untrusted query stream from growing without limit.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 1024;

/// What question a [`CountRequest`] asks about its query.
#[derive(Clone, Debug, PartialEq)]
pub enum Semantics {
    /// The exact number of repairs entailing the query (`#CQA`).
    Exact,
    /// An (ε, δ)-approximation of the exact count (Theorem 6.2).
    Approximate {
        /// Relative error bound `ε > 0`.
        epsilon: f64,
        /// Failure probability `δ ∈ (0, 1)`.
        delta: f64,
        /// Seed for the pseudo-random generator, for reproducible runs.
        seed: u64,
    },
    /// The decision problem `#CQA>0`: does *some* repair entail the query?
    Decision,
    /// Certain-answer semantics: does *every* repair entail the query?
    CertainAnswer,
    /// The relative frequency of the query over the repairs (Section 1.1).
    Frequency,
}

/// How the engine should compute the answer.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Strategy {
    /// Choose automatically from the query class and the semantics: the
    /// certificate/box machinery for existential positive queries, repair
    /// enumeration for arbitrary first-order queries, and the paper's
    /// FPRAS for approximations.
    #[default]
    Auto,
    /// Enumerate every repair (any first-order query; exponential).
    Enumeration,
    /// The certificate/box algorithm (existential positive queries only).
    CertificateBoxes,
    /// The Karp–Luby baseline estimator (approximate semantics only).
    KarpLuby,
}

impl Strategy {
    fn name(self) -> &'static str {
        match self {
            Strategy::Auto => "Auto",
            Strategy::Enumeration => "Enumeration",
            Strategy::CertificateBoxes => "CertificateBoxes",
            Strategy::KarpLuby => "KarpLuby",
        }
    }
}

/// A single question for a [`RepairEngine`]: a query, the [`Semantics`] to
/// apply, and the tuning knobs ([`Strategy`], budget, sample cap, seed).
///
/// ```
/// use cdr_core::{CountRequest, Semantics, Strategy};
/// use cdr_query::parse_query;
///
/// let q = parse_query("EXISTS n . Employee(2, n, 'IT')").unwrap();
/// let request = CountRequest::exact(q.clone())
///     .with_strategy(Strategy::CertificateBoxes)
///     .with_budget(1_000_000);
/// assert_eq!(request.semantics(), &Semantics::Exact);
/// assert_eq!(request.strategy(), Strategy::CertificateBoxes);
/// assert_eq!(request.budget(), Some(1_000_000));
///
/// let approx = CountRequest::approximate(q, 0.1, 0.05).with_seed(42);
/// assert!(matches!(
///     approx.semantics(),
///     Semantics::Approximate { seed: 42, .. }
/// ));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CountRequest {
    query: Query,
    semantics: Semantics,
    strategy: Strategy,
    budget: Option<u64>,
    sample_cap: u64,
}

impl CountRequest {
    /// A request with explicit semantics and default knobs.
    pub fn new(query: Query, semantics: Semantics) -> Self {
        CountRequest {
            query,
            semantics,
            strategy: Strategy::Auto,
            budget: None,
            sample_cap: ApproxConfig::default().max_samples,
        }
    }

    /// Asks for the exact repair count of the query.
    pub fn exact(query: Query) -> Self {
        CountRequest::new(query, Semantics::Exact)
    }

    /// Asks for an (ε, δ)-approximate count with the default seed.
    pub fn approximate(query: Query, epsilon: f64, delta: f64) -> Self {
        CountRequest::new(
            query,
            Semantics::Approximate {
                epsilon,
                delta,
                seed: ApproxConfig::default().seed,
            },
        )
    }

    /// Asks whether some repair entails the query (`#CQA>0`).
    pub fn decision(query: Query) -> Self {
        CountRequest::new(query, Semantics::Decision)
    }

    /// Asks whether every repair entails the query (certain answers).
    pub fn certain_answer(query: Query) -> Self {
        CountRequest::new(query, Semantics::CertainAnswer)
    }

    /// Asks for the relative frequency of the query over the repairs.
    pub fn frequency(query: Query) -> Self {
        CountRequest::new(query, Semantics::Frequency)
    }

    /// Forces a particular [`Strategy`] instead of `Auto`.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Caps the number of repairs (or per-component assignments) exact
    /// algorithms may enumerate; defaults to the engine's budget.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Caps the number of samples an approximation may draw.
    pub fn with_sample_cap(mut self, sample_cap: u64) -> Self {
        self.sample_cap = sample_cap;
        self
    }

    /// Sets the random seed (only meaningful for approximate semantics).
    pub fn with_seed(mut self, seed: u64) -> Self {
        if let Semantics::Approximate { seed: s, .. } = &mut self.semantics {
            *s = seed;
        }
        self
    }

    /// The query being asked about.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The semantics requested.
    pub fn semantics(&self) -> &Semantics {
        &self.semantics
    }

    /// The strategy requested (before `Auto` resolution).
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The explicit budget, if one was set.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// The sample cap for approximate semantics.
    pub fn sample_cap(&self) -> u64 {
        self.sample_cap
    }
}

/// One instruction for a [`RepairEngine`] session: ask a question or edit
/// the database.
///
/// Commands are the uniform surface a serving loop speaks: parse the wire
/// format into an `EngineCommand`, call [`RepairEngine::execute`], ship the
/// [`EngineResponse`] back.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineCommand {
    /// Answer one counting request.
    Query(CountRequest),
    /// Apply one database mutation.
    Mutate(Mutation),
    /// Apply a sequence of mutations as one atomic command: validated up
    /// front, applied in order, one aggregated report — a rejected batch
    /// changes nothing (see [`RepairEngine::apply_batch`]).
    MutateBatch(Vec<Mutation>),
    /// Compact the engine: drop tombstones and retired block slots,
    /// remap the surviving fact ids onto a dense prefix, and reclaim id
    /// headroom (see [`RepairEngine::compact`]).
    Compact,
}

/// The uniform result of [`RepairEngine::execute`].
#[derive(Clone, Debug)]
pub enum EngineResponse {
    /// The answer to a [`EngineCommand::Query`].
    Report(CountReport),
    /// The effect of a [`EngineCommand::Mutate`] / `MutateBatch`.
    Applied(MutationReport),
    /// The effect of an [`EngineCommand::Compact`].
    Compacted(CompactionOutcome),
}

impl EngineResponse {
    /// The count report, if this response is one.
    pub fn as_report(&self) -> Option<&CountReport> {
        match self {
            EngineResponse::Report(r) => Some(r),
            _ => None,
        }
    }

    /// The mutation report, if this response is one.
    pub fn as_applied(&self) -> Option<&MutationReport> {
        match self {
            EngineResponse::Applied(r) => Some(r),
            _ => None,
        }
    }

    /// The compaction outcome, if this response is one.
    pub fn as_compacted(&self) -> Option<&CompactionOutcome> {
        match self {
            EngineResponse::Compacted(r) => Some(r),
            _ => None,
        }
    }
}

/// What a mutation command did to the engine.
#[derive(Clone, Debug)]
pub struct MutationReport {
    /// Number of mutations that actually changed the database.
    pub applied: usize,
    /// Number of mutations that were visible no-ops (duplicate inserts).
    pub noops: usize,
    /// The engine generation after the command (bumped once per applied
    /// mutation, never for no-ops).
    pub generation: u64,
    /// The per-mutation block deltas, in application order (no entry for
    /// no-ops).
    pub deltas: Vec<BlockDelta>,
    /// Wall-clock time spent applying the command.
    pub duration: Duration,
}

/// What an [`EngineCommand::Compact`] did to the engine.
#[derive(Clone, Debug)]
pub struct CompactionOutcome {
    /// The database-level report: the id-translation table plus fact-id
    /// reclamation stats.
    pub report: CompactionReport,
    /// Block slots (live + retired) before the compaction.
    pub slots_before: usize,
    /// Block slots after: equals the live block count, since compaction
    /// drops every retired slot and renumbers the rest densely.
    pub slots_after: usize,
    /// Cached query plans dropped by the compaction (their certificate
    /// boxes pinned pre-compaction slot and fact ids).
    pub plans_dropped: u64,
    /// Whether the freshly recomputed `∏ |Bᵢ|` agreed with the
    /// incrementally-maintained total (it always should; the recomputed
    /// value is authoritative either way).
    pub total_cross_checked: bool,
    /// The engine generation after the compaction.
    pub generation: u64,
    /// Wall-clock time the compaction took.
    pub duration: Duration,
}

impl CompactionOutcome {
    /// Retired block slots the compaction dropped.
    pub fn slots_dropped(&self) -> usize {
        self.slots_before - self.slots_after
    }
}

/// The tagged payload of a [`CountReport`].
#[derive(Clone, Debug)]
pub enum Answer {
    /// An exact repair count.
    Count(BigNat),
    /// An approximate count with its sampling diagnostics.
    Estimate(ApproxCount),
    /// An exact relative frequency.
    Frequency(Ratio),
    /// A yes/no answer (decision or certain-answer semantics).
    Decision(bool),
}

impl Answer {
    /// The exact count, if this answer is one.
    pub fn as_count(&self) -> Option<&BigNat> {
        match self {
            Answer::Count(c) => Some(c),
            _ => None,
        }
    }

    /// The estimate, if this answer is one.
    pub fn as_estimate(&self) -> Option<&ApproxCount> {
        match self {
            Answer::Estimate(e) => Some(e),
            _ => None,
        }
    }

    /// The frequency, if this answer is one.
    pub fn as_frequency(&self) -> Option<&Ratio> {
        match self {
            Answer::Frequency(f) => Some(f),
            _ => None,
        }
    }

    /// The boolean, if this answer is a decision.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Answer::Decision(b) => Some(*b),
            _ => None,
        }
    }
}

/// The uniform result of [`RepairEngine::run`]: the [`Answer`] plus the
/// provenance of how it was computed.
#[derive(Clone, Debug)]
pub struct CountReport {
    /// The answer, tagged by kind.
    pub answer: Answer,
    /// The strategy that actually produced the answer (`Auto` resolved).
    pub strategy: Strategy,
    /// Number of certificates found, when the certificate machinery ran.
    pub certificates: Option<usize>,
    /// The sample size the approximation theory asked for (0 for exact
    /// semantics).
    pub samples_requested: u64,
    /// The number of samples actually drawn (0 for exact semantics).
    pub samples_used: u64,
    /// Wall-clock time spent answering the request.
    pub duration: Duration,
    /// Whether the query plan came from the engine's cache.
    pub plan_cached: bool,
    /// The engine generation the answer is valid for (the database state
    /// this report describes).
    pub generation: u64,
}

/// Counters describing the engine's generation-stamped LRU plan cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests answered with an already-planned query.
    pub hits: u64,
    /// Requests that had to plan the query from scratch.
    pub misses: u64,
    /// Number of plans currently cached.
    pub entries: u64,
    /// Maximum number of resident plans before LRU eviction kicks in.
    pub capacity: u64,
    /// Number of plans evicted to keep the cache within capacity.
    pub evictions: u64,
    /// Number of times a cached plan's certificate boxes were re-derived
    /// because a mutation had touched one of the query's relations.
    pub invalidations: u64,
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "plan cache: {}/{} entries, {} hits, {} misses, {} evictions, {} invalidations",
            self.entries, self.capacity, self.hits, self.misses, self.evictions, self.invalidations
        )
    }
}

/// Locks a mutex, recovering from poisoning (the engine's caches hold no
/// invariants a panicking thread could break mid-update that the rebuild
/// paths cannot repair).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Everything the engine ever needs to know about one query.  The
/// database-independent parts (rewrite, class, keywidths) are computed once
/// per plan; the database-dependent parts (certificate boxes, prepared
/// estimators) are generation-stamped and lazily re-derived after a
/// mutation invalidates them.
struct QueryPlan {
    query: Query,
    class: QueryClass,
    keywidth: usize,
    /// The relation names the query mentions (sorted, deduplicated) — the
    /// invalidation footprint: only mutations to these relations can change
    /// the query's certificate set.
    relations: Vec<String>,
    /// The UCQ rewrite, or the rewrite error for genuinely first-order
    /// queries (kept so forced box strategies report the right error).
    ucq: Result<UcqQuery, CountError>,
    /// `max_disjunct_keywidth` of the rewrite (None for FO queries).
    disjunct_keywidth: Option<usize>,
    certs: Mutex<Option<CertState>>,
    estimators: Mutex<Option<EstState>>,
}

/// A generation-stamped certificate summary.
struct CertState {
    /// The maximum last-mutation generation over the plan's relations at
    /// the time the summary was derived.
    rel_generation: u64,
    summary: Result<CertSummary, CountError>,
}

/// Generation-stamped prepared estimators.  Estimators embed the whole
/// block partition and the total repair count, so *any* mutation makes them
/// stale — but rebuilding them from a live certificate summary is cheap.
struct EstState {
    generation: u64,
    estimators: Result<Arc<Estimators>, CountError>,
}

/// The certificate boxes of a query over the engine's current database.
#[derive(Clone)]
struct CertSummary {
    /// Total number of certificates (before box deduplication).
    count: usize,
    /// The distinct selector boxes, shared with the prepared estimators.
    boxes: Arc<Vec<SelectorBox>>,
    /// Whether some box pins nothing (covers every repair).
    has_unconstrained: bool,
}

/// Both prepared estimators for a query, sharing the cached boxes.
struct Estimators {
    fpras: FprasEstimator,
    karp_luby: KarpLubyEstimator,
}

impl QueryPlan {
    fn build(query: &Query, db: &Database, keys: &KeySet) -> Self {
        let class = query.classify();
        let ucq = rewrite_to_ucq(query).map_err(CountError::from);
        let disjunct_keywidth = ucq
            .as_ref()
            .ok()
            .map(|u| max_disjunct_keywidth(u, db.schema(), keys));
        let mut relations: Vec<String> = query
            .atoms()
            .iter()
            .map(|atom| atom.relation().to_string())
            .collect();
        relations.sort();
        relations.dedup();
        QueryPlan {
            query: query.clone(),
            class,
            keywidth: keywidth(query, db.schema(), keys),
            relations,
            ucq,
            disjunct_keywidth,
            certs: Mutex::new(None),
            estimators: Mutex::new(None),
        }
    }

    /// The certificate summary for the engine's *current* database,
    /// re-deriving it iff a mutation has touched one of the query's
    /// relations since it was last computed.
    fn cert_summary(&self, engine: &RepairEngine) -> Result<CertSummary, CountError> {
        let needed = engine.relations_generation(&self.relations);
        let mut guard = lock(&self.certs);
        if let Some(state) = guard.as_ref() {
            if state.rel_generation == needed {
                return state.summary.clone();
            }
            engine.invalidations.fetch_add(1, Ordering::Relaxed);
        }
        let summary = (|| {
            let ucq = self.ucq.as_ref().map_err(Clone::clone)?;
            let certs = enumerate_certificates(&engine.db, &engine.keys, &engine.blocks, ucq)?;
            let boxes = distinct_boxes(&certs);
            Ok(CertSummary {
                count: certs.len(),
                has_unconstrained: boxes.iter().any(SelectorBox::is_unconstrained),
                boxes: Arc::new(boxes),
            })
        })();
        *guard = Some(CertState {
            rel_generation: needed,
            summary: summary.clone(),
        });
        summary
    }

    /// The prepared estimators for the engine's *current* generation,
    /// rebuilt from the (possibly surviving) certificate summary whenever
    /// any mutation has happened since they were prepared.
    ///
    /// The boolean is `true` when the estimators were (re)built by this
    /// call — the caller must then register the plan with
    /// [`RepairEngine::note_estimator_holder`] so the next mutation can
    /// drop exactly the estimator states that exist.  The generation stamp
    /// is the semantic staleness guard; the registered sweep exists so the
    /// partition `Arc` is uniquely held again when a mutation wants to
    /// update it in place.
    fn estimators(&self, engine: &RepairEngine) -> Result<(Arc<Estimators>, bool), CountError> {
        let generation = engine.generation;
        let mut guard = lock(&self.estimators);
        if let Some(state) = guard.as_ref() {
            if state.generation == generation {
                return state.estimators.clone().map(|e| (e, false));
            }
        }
        let built = self.cert_summary(engine).map(|certs| {
            let disjunct_keywidth = self
                .disjunct_keywidth
                .expect("cert_summary succeeded, so the query rewrote to a UCQ");
            // One flattened live-block sampler per partition generation,
            // shared across every plan's estimators — its fact arrays are
            // O(database), so per-plan copies would multiply that by the
            // plan-cache size.
            let sampler = engine.live_block_sampler();
            Arc::new(Estimators {
                fpras: FprasEstimator::from_parts(
                    Arc::clone(&engine.blocks),
                    Arc::clone(&certs.boxes),
                    Arc::clone(&sampler),
                    disjunct_keywidth,
                    engine.total_repairs.clone(),
                ),
                karp_luby: KarpLubyEstimator::from_parts(
                    Arc::clone(&engine.blocks),
                    Arc::clone(&certs.boxes),
                    sampler,
                    engine.total_repairs.clone(),
                ),
            })
        });
        *guard = Some(EstState {
            generation,
            estimators: built.clone(),
        });
        built.map(|e| (e, true))
    }
}

/// The engine's bounded plan cache: least-recently-used eviction over an
/// access-ordered index.
struct PlanCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<String, CacheEntry>,
    by_recency: BTreeMap<u64, String>,
}

struct CacheEntry {
    plan: Arc<QueryPlan>,
    tick: u64,
}

impl PlanCache {
    fn new(capacity: usize) -> Self {
        PlanCache {
            capacity: capacity.max(1),
            tick: 0,
            entries: HashMap::new(),
            by_recency: BTreeMap::new(),
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    /// Fetches a plan, marking it most-recently-used.
    fn get(&mut self, key: &str) -> Option<Arc<QueryPlan>> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.entries.get_mut(key)?;
        // Move the owned key from the old recency entry to the new one so
        // the warm path never re-allocates the query text.
        let owned = self
            .by_recency
            .remove(&entry.tick)
            .unwrap_or_else(|| key.to_string());
        entry.tick = tick;
        self.by_recency.insert(tick, owned);
        Some(Arc::clone(&entry.plan))
    }

    /// Inserts a plan unless the key is already occupied, evicting the
    /// least-recently-used plans to stay within capacity.  Returns the
    /// number of evictions.
    fn insert(&mut self, key: String, plan: Arc<QueryPlan>) -> u64 {
        if self.entries.contains_key(&key) {
            return 0;
        }
        let mut evicted = 0;
        while self.entries.len() >= self.capacity {
            let Some((_, victim)) = self.by_recency.pop_first() else {
                break;
            };
            self.entries.remove(&victim);
            evicted += 1;
        }
        self.tick += 1;
        self.by_recency.insert(self.tick, key.clone());
        self.entries.insert(
            key,
            CacheEntry {
                plan,
                tick: self.tick,
            },
        );
        evicted
    }

    /// Drops every resident plan, returning how many were dropped.
    fn clear(&mut self) -> u64 {
        let dropped = self.entries.len() as u64;
        self.entries.clear();
        self.by_recency.clear();
        dropped
    }
}

/// An owned, `Send + Sync`, caching engine answering repair-counting
/// requests over a database it keeps up to date under inserts and deletes.
///
/// ```
/// use cdr_core::{CountRequest, EngineCommand, RepairEngine};
/// use cdr_query::parse_query;
/// use cdr_repairdb::{Database, KeySet, Mutation, Schema};
///
/// let mut schema = Schema::new();
/// schema.add_relation("Employee", 3).unwrap();
/// let keys = KeySet::builder(&schema).key("Employee", 1).unwrap().build();
/// let mut db = Database::new(schema);
/// db.insert_parsed("Employee(1, 'Bob', 'HR')").unwrap();
/// db.insert_parsed("Employee(1, 'Bob', 'IT')").unwrap();
/// db.insert_parsed("Employee(2, 'Alice', 'IT')").unwrap();
/// db.insert_parsed("Employee(2, 'Tim', 'IT')").unwrap();
///
/// let mut engine = RepairEngine::new(db, keys);
/// let q = parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap();
///
/// assert_eq!(engine.total_repairs().to_u64(), Some(4));
/// let exact = engine.run(&CountRequest::exact(q.clone())).unwrap();
/// assert_eq!(exact.answer.as_count().unwrap().to_u64(), Some(2));
/// let freq = engine.run(&CountRequest::frequency(q.clone())).unwrap();
/// assert_eq!(freq.answer.as_frequency().unwrap().to_string(), "1/2");
///
/// // The second run reused the cached plan.
/// assert!(freq.plan_cached);
/// assert_eq!(engine.cache_stats().misses, 1);
///
/// // Mutations go through the same engine: only the touched block is
/// // rebuilt, and the total is updated incrementally.
/// let eve = engine.database().parse_fact("Employee(3, 'Eve', 'IT')").unwrap();
/// let response = engine
///     .execute(EngineCommand::Mutate(Mutation::Insert(eve)))
///     .unwrap();
/// assert_eq!(response.as_applied().unwrap().applied, 1);
/// assert_eq!(engine.total_repairs().to_u64(), Some(4));
/// let freq = engine.run(&CountRequest::frequency(q)).unwrap();
/// assert_eq!(freq.answer.as_frequency().unwrap().to_string(), "1/2");
/// ```
pub struct RepairEngine {
    db: Arc<Database>,
    keys: Arc<KeySet>,
    blocks: Arc<BlockPartition>,
    /// `∏ |Bᵢ|`, maintained incrementally under mutations.
    total_repairs: BigNat,
    /// Bumped once per applied mutation; stamps reports and cached plans.
    generation: u64,
    /// Last generation at which each relation (by [`cdr_repairdb::RelationId`]
    /// index) was mutated.
    rel_generations: Vec<u64>,
    default_budget: u64,
    /// Number of worker threads [`RepairEngine::run_batch`] may fan out to.
    parallelism: usize,
    plans: Mutex<PlanCache>,
    /// Plans that currently hold prepared estimators (and therefore a
    /// clone of the partition `Arc`); the next mutation drains exactly
    /// these instead of sweeping the whole plan cache.
    estimator_holders: Mutex<Vec<Weak<QueryPlan>>>,
    /// The flattened live-block sampler shared by every plan's prepared
    /// estimators, rebuilt lazily after each mutation (its fact arrays
    /// are a full copy of the live database).
    repair_sampler: Mutex<Option<Arc<LiveBlockSampler>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl RepairEngine {
    /// Builds an engine that owns the database and key set.
    ///
    /// The block partition and the total repair count are computed here,
    /// once; subsequent mutations maintain both incrementally.
    pub fn new(db: Database, keys: KeySet) -> Self {
        RepairEngine::from_arcs(Arc::new(db), Arc::new(keys))
    }

    /// Builds an engine over shared handles, avoiding a copy when the
    /// caller already holds the database in an [`Arc`].
    ///
    /// The handles are snapshots: once the engine applies a mutation it
    /// copies-on-write, so the caller's handles keep describing the
    /// pre-mutation state.
    pub fn from_arcs(db: Arc<Database>, keys: Arc<KeySet>) -> Self {
        let blocks = Arc::new(BlockPartition::new(&db, &keys));
        let total_repairs = count_repairs(&blocks);
        let rel_generations = vec![0; db.schema().len()];
        RepairEngine {
            db,
            keys,
            blocks,
            total_repairs,
            generation: 0,
            rel_generations,
            default_budget: DEFAULT_EXACT_BUDGET,
            parallelism: 1,
            plans: Mutex::new(PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY)),
            estimator_holders: Mutex::new(Vec::new()),
            repair_sampler: Mutex::new(None),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Rebuilds an engine from a snapshot image: the database and keys it
    /// captured, plus the provenance counters (`generation`,
    /// per-relation generations) recorded at the image point.
    ///
    /// This is the recovery path of the replicated command log: a
    /// restored engine followed by a replay of the log suffix is
    /// bit-for-bit equal to the engine that wrote the log — including the
    /// `gen=` stamps every report carries, which is why the counters are
    /// restored rather than recomputed.
    ///
    /// # Panics
    ///
    /// Panics if `rel_generations` does not have one entry per schema
    /// relation — a snapshot/schema mismatch is a corrupt image, not a
    /// recoverable state.
    pub fn restore(db: Database, keys: KeySet, generation: u64, rel_generations: Vec<u64>) -> Self {
        assert_eq!(
            rel_generations.len(),
            db.schema().len(),
            "one relation generation per schema relation"
        );
        let mut engine = RepairEngine::new(db, keys);
        engine.generation = generation;
        engine.rel_generations = rel_generations;
        engine
    }

    /// Sets the budget used when a request does not carry its own.
    pub fn with_default_budget(mut self, budget: u64) -> Self {
        self.default_budget = budget;
        self
    }

    /// Sets how many threads [`RepairEngine::run_batch`] may fan out to
    /// (clamped to at least 1; the default of 1 keeps batches sequential).
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers.max(1);
        self
    }

    /// Bounds the LRU plan cache (clamped to at least 1 entry; the default
    /// is [`DEFAULT_PLAN_CACHE_CAPACITY`]).  Resident plans beyond the new
    /// capacity are evicted lazily on the next insertion.
    pub fn with_plan_cache_capacity(self, capacity: usize) -> Self {
        lock(&self.plans).capacity = capacity.max(1);
        self
    }

    /// The database being counted over (the current, post-mutation state).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// A shareable snapshot handle to the current database state.
    pub fn database_arc(&self) -> Arc<Database> {
        Arc::clone(&self.db)
    }

    /// The primary keys in force.
    pub fn keys(&self) -> &KeySet {
        &self.keys
    }

    /// A shareable handle to the key set.
    pub fn keys_arc(&self) -> Arc<KeySet> {
        Arc::clone(&self.keys)
    }

    /// The block partition `B₁, …, Bₙ`, maintained incrementally.
    pub fn blocks(&self) -> &BlockPartition {
        &self.blocks
    }

    /// The total number of repairs `∏ |Bᵢ|`, maintained incrementally.
    pub fn total_repairs(&self) -> &BigNat {
        &self.total_repairs
    }

    /// The engine's generation: how many mutations have been applied.
    /// Reports carry the generation they were computed at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Per-relation mutation generations, indexed by
    /// [`cdr_repairdb::RelationId`] index — the counters a snapshot
    /// records so [`RepairEngine::restore`] can reproduce report
    /// provenance exactly.
    pub fn rel_generations(&self) -> &[u64] {
        &self.rel_generations
    }

    /// The engine's default exact budget.
    pub fn default_budget(&self) -> u64 {
        self.default_budget
    }

    /// The batch fan-out width.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Plan-cache counters: hits, misses, resident entries, capacity,
    /// evictions and invalidations.
    pub fn cache_stats(&self) -> CacheStats {
        let (entries, capacity) = {
            let cache = lock(&self.plans);
            (cache.len() as u64, cache.capacity as u64)
        };
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            capacity,
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }

    /// The keywidth `kw(Q, Σ)` of a query (cached with the query's plan).
    pub fn keywidth(&self, query: &Query) -> usize {
        self.plan(query).0.keywidth
    }

    /// The disjunct keywidth of a query — the exponent in the FPRAS
    /// sample-size bound. Errors for genuinely first-order queries.
    pub fn disjunct_keywidth(&self, query: &Query) -> Result<usize, CountError> {
        let (plan, _) = self.plan(query);
        plan.ucq.as_ref().map_err(Clone::clone)?;
        Ok(plan
            .disjunct_keywidth
            .expect("rewrite succeeded, so the disjunct keywidth was computed"))
    }

    /// Executes one [`EngineCommand`], the uniform session entry point.
    pub fn execute(&mut self, command: EngineCommand) -> Result<EngineResponse, CountError> {
        match command {
            EngineCommand::Query(request) => Ok(EngineResponse::Report(self.run(&request)?)),
            EngineCommand::Mutate(mutation) => Ok(EngineResponse::Applied(self.apply(mutation)?)),
            EngineCommand::MutateBatch(mutations) => {
                Ok(EngineResponse::Applied(self.apply_batch(mutations)?))
            }
            EngineCommand::Compact => Ok(EngineResponse::Compacted(self.compact())),
        }
    }

    /// The engine's reclaimable waste: tombstoned fact slots plus retired
    /// block slots.  Both accumulate under delete-bearing churn until
    /// [`RepairEngine::compact`] drops them, so this is the gauge an
    /// auto-compaction policy (and the serving layer's `STATS` reply)
    /// watches.
    pub fn waste(&self) -> u64 {
        u64::from(self.db.tombstone_count()) + (self.blocks.slot_count() - self.blocks.len()) as u64
    }

    /// Compacts the engine: the database drops its tombstones and remaps
    /// the surviving fact ids onto a dense prefix
    /// ([`Database::compact`]), the block partition drops retired slots
    /// and renumbers the rest in `≺_{D,Σ}` order
    /// ([`BlockPartition::rebuild_compacted`]), the plan cache and the
    /// prepared-estimator registry are cleared **once** (cached
    /// certificate boxes pin pre-compaction slot and fact ids), the
    /// total repair count is recomputed from the rebuilt partition as a
    /// cross-check against the incrementally-maintained value, and the
    /// generation is bumped (every relation counts as mutated: all fact
    /// ids moved).
    ///
    /// Answers are unaffected: the live facts, the `≺` block sequence
    /// and the in-block fact order are all preserved, so exact counts
    /// and seeded estimates after a compaction are bit-for-bit what they
    /// were before it (`tests/hotpath_parity.rs` pins this).  What
    /// changes is the *name space*: fact ids handed out earlier must be
    /// re-resolved through [`CompactionReport::translate`], and the
    /// reclaimed id headroom lets a capacity-capped session keep
    /// inserting indefinitely.
    pub fn compact(&mut self) -> CompactionOutcome {
        let started = Instant::now();
        let slots_before = self.blocks.slot_count();
        // Prepared estimators embed the pre-compaction partition and the
        // flattened sampler; drop them first so they cannot be served
        // stale and the partition Arc is uniquely held again.
        self.drop_prepared_estimators();
        let report = Arc::make_mut(&mut self.db).compact();
        Arc::make_mut(&mut self.blocks).rebuild_compacted(&report);
        let recomputed = count_repairs(&self.blocks);
        let total_cross_checked = recomputed == self.total_repairs;
        debug_assert!(
            total_cross_checked,
            "the incrementally-maintained total diverged from ∏ |Bᵢ|: {} vs {}",
            self.total_repairs, recomputed
        );
        self.total_repairs = recomputed;
        self.generation += 1;
        for generation in &mut self.rel_generations {
            *generation = self.generation;
        }
        let plans_dropped = lock(&self.plans).clear();
        CompactionOutcome {
            report,
            slots_before,
            slots_after: self.blocks.slot_count(),
            plans_dropped,
            total_cross_checked,
            generation: self.generation,
            duration: started.elapsed(),
        }
    }

    /// The serving layer's auto-compaction policy: compacts iff there is
    /// any reclaimable waste **and** either the waste has reached
    /// `threshold` or the fact-id space is fully consumed (in which case
    /// waiting any longer would only serve `ERR EXHAUSTED`).  Returns
    /// what the compaction did, or `None` when it did not run.
    ///
    /// This lives on the engine — rather than in `cdr-server` — so the
    /// serving scheduler, the single-threaded oracle replay and the
    /// workload generators all share one deterministic policy.
    pub fn maybe_compact(&mut self, threshold: u64) -> Option<CompactionOutcome> {
        let waste = self.waste();
        let exhausted = self.db.fact_ids_assigned() >= self.db.fact_id_capacity();
        if waste > 0 && (waste >= threshold || exhausted) {
            Some(self.compact())
        } else {
            None
        }
    }

    /// Applies one mutation: the database gains/loses the fact, the touched
    /// key-block is rebuilt in place, the total repair count is updated by
    /// dividing out the old block size and multiplying in the new one, and
    /// plans over the mutated relation are marked for lazy re-derivation.
    ///
    /// A duplicate insert is a visible no-op; deleting a missing fact is an
    /// error that leaves the engine unchanged.
    pub fn apply(&mut self, mutation: Mutation) -> Result<MutationReport, CountError> {
        let started = Instant::now();
        let (applied, delta) = self.apply_one(mutation)?;
        Ok(MutationReport {
            applied: usize::from(applied.changed()),
            noops: usize::from(!applied.changed()),
            generation: self.generation,
            deltas: delta.into_iter().collect(),
            duration: started.elapsed(),
        })
    }

    /// Applies a sequence of mutations in order, aggregating one report.
    ///
    /// The batch is atomic: every mutation is validated up front, so a
    /// rejected batch (unknown relation, wrong arity, or a delete naming a
    /// fact that is not live before the batch or named by two deletes) is
    /// an error that leaves the engine — and its generation — completely
    /// unchanged, and no partially-applied report can be lost.  Deletes
    /// must name facts that are live when the batch starts; a fact
    /// inserted by the batch cannot be deleted by the same batch (its id
    /// is only known once the report comes back).
    pub fn apply_batch(
        &mut self,
        mutations: impl IntoIterator<Item = Mutation>,
    ) -> Result<MutationReport, CountError> {
        let started = Instant::now();
        let mutations: Vec<Mutation> = mutations.into_iter().collect();
        let mut pending_deletes = std::collections::HashSet::new();
        {
            // Presence overlay simulating the batch: counts exactly how
            // many fresh fact ids the batch will consume (a delete + re-
            // insert of the same content consumes a new id), so a batch
            // that would exhaust the id space is rejected before any of it
            // is applied.
            let mut overlay: HashMap<&cdr_repairdb::Fact, bool> = HashMap::new();
            let mut fresh_ids: u64 = 0;
            for mutation in &mutations {
                match mutation {
                    Mutation::Insert(fact) => {
                        self.db.validate(fact)?;
                        let present = overlay
                            .get(fact)
                            .copied()
                            .unwrap_or_else(|| self.db.contains(fact));
                        if !present {
                            fresh_ids += 1;
                            overlay.insert(fact, true);
                        }
                    }
                    Mutation::Delete(id) => {
                        if !self.db.is_live(*id) || !pending_deletes.insert(*id) {
                            return Err(cdr_repairdb::DbError::MissingFact(id.index()).into());
                        }
                        overlay.insert(self.db.fact(*id), false);
                    }
                }
            }
            let capacity = self.db.fact_id_capacity();
            if u64::from(self.db.fact_ids_assigned()) + fresh_ids > u64::from(capacity) {
                return Err(cdr_repairdb::DbError::FactIdsExhausted { capacity }.into());
            }
        }
        let mut report = MutationReport {
            applied: 0,
            noops: 0,
            generation: self.generation,
            deltas: Vec::new(),
            duration: Duration::ZERO,
        };
        for mutation in mutations {
            let (applied, delta) = self
                .apply_one(mutation)
                .expect("the whole batch was validated before applying");
            if applied.changed() {
                report.applied += 1;
            } else {
                report.noops += 1;
            }
            report.deltas.extend(delta);
        }
        report.generation = self.generation;
        report.duration = started.elapsed();
        Ok(report)
    }

    fn apply_one(
        &mut self,
        mutation: Mutation,
    ) -> Result<(AppliedMutation, Option<BlockDelta>), CountError> {
        // Settle no-ops and the common error before `Arc::make_mut`: when
        // a caller holds a `database_arc` snapshot, copy-on-write must
        // only pay for mutations that actually change something.  (An
        // insert that fails schema validation still clones first — rare
        // enough that the hot path keeps a single validation, in
        // `Database::apply`.)
        match &mutation {
            Mutation::Insert(fact) => {
                if let Some(id) = self.db.fact_id(fact) {
                    return Ok((AppliedMutation::AlreadyPresent { id }, None));
                }
            }
            Mutation::Delete(id) => {
                if !self.db.is_live(*id) {
                    return Err(cdr_repairdb::DbError::MissingFact(id.index()).into());
                }
            }
        }
        let applied = Arc::make_mut(&mut self.db).apply(mutation)?;
        debug_assert!(applied.changed(), "no-ops were settled above");
        // Prepared estimators embed the pre-mutation partition and total;
        // drop them now so (a) they cannot be served stale and (b) the
        // partition Arc is uniquely held again and mutates in place.
        self.drop_prepared_estimators();
        let delta = Arc::make_mut(&mut self.blocks).apply(&self.keys, &applied);
        if delta.old_len > 0 {
            let (quotient, remainder) = self.total_repairs.div_rem_u64(delta.old_len as u64);
            debug_assert_eq!(remainder, 0, "block sizes divide the total exactly");
            self.total_repairs = quotient;
        }
        if delta.new_len > 0 {
            self.total_repairs.mul_assign_u64(delta.new_len as u64);
        }
        self.generation += 1;
        let relation = match &applied {
            AppliedMutation::Inserted { fact, .. } | AppliedMutation::Deleted { fact, .. } => {
                fact.relation()
            }
            AppliedMutation::AlreadyPresent { .. } => {
                unreachable!("no-ops returned early above")
            }
        };
        if let Some(generation) = self.rel_generations.get_mut(relation.index()) {
            *generation = self.generation;
        }
        Ok((applied, Some(delta)))
    }

    fn drop_prepared_estimators(&mut self) {
        let holders = std::mem::take(
            self.estimator_holders
                .get_mut()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        );
        for plan in holders {
            if let Some(plan) = plan.upgrade() {
                *lock(&plan.estimators) = None;
            }
        }
        // The shared sampler snapshots the pre-mutation blocks; the next
        // approximate query rebuilds it from the mutated partition.
        *self
            .repair_sampler
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = None;
    }

    /// The flattened live-block sampler for the current partition state,
    /// built on first use after a mutation and shared (one copy of the
    /// live fact table) by every plan's prepared estimators.
    fn live_block_sampler(&self) -> Arc<LiveBlockSampler> {
        let mut guard = lock(&self.repair_sampler);
        match guard.as_ref() {
            Some(sampler) => Arc::clone(sampler),
            None => {
                let sampler = Arc::new(LiveBlockSampler::new(&self.blocks));
                *guard = Some(Arc::clone(&sampler));
                sampler
            }
        }
    }

    /// Records that a plan just built estimators (pairing with
    /// [`RepairEngine::drop_prepared_estimators`]); called at most once
    /// per plan per mutation epoch, because only a fresh build registers.
    fn note_estimator_holder(&self, plan: &Arc<QueryPlan>) {
        lock(&self.estimator_holders).push(Arc::downgrade(plan));
    }

    /// The maximum last-mutation generation over a set of relation names
    /// (0 for relations never mutated or unknown to the schema).
    fn relations_generation(&self, relations: &[String]) -> u64 {
        relations
            .iter()
            .filter_map(|name| {
                self.db
                    .schema()
                    .relation_id(name)
                    .and_then(|rel| self.rel_generations.get(rel.index()).copied())
            })
            .max()
            .unwrap_or(0)
    }

    /// Answers one request.
    pub fn run(&self, request: &CountRequest) -> Result<CountReport, CountError> {
        let started = Instant::now();
        let (plan, plan_cached) = self.plan(&request.query);
        let budget = request.budget.unwrap_or(self.default_budget);
        let mut report = CountReport {
            answer: Answer::Decision(false),
            strategy: request.strategy,
            certificates: None,
            samples_requested: 0,
            samples_used: 0,
            duration: Duration::ZERO,
            plan_cached,
            generation: self.generation,
        };
        match &request.semantics {
            Semantics::Exact => {
                let (count, strategy) = self.exact_count(
                    &plan,
                    request.strategy,
                    budget,
                    "exact counting",
                    &mut report,
                )?;
                report.strategy = strategy;
                report.answer = Answer::Count(count);
            }
            Semantics::Frequency => {
                let (count, strategy) = self.exact_count(
                    &plan,
                    request.strategy,
                    budget,
                    "relative frequency",
                    &mut report,
                )?;
                report.strategy = strategy;
                report.answer = Answer::Frequency(Ratio::new(count, self.total_repairs.clone()));
            }
            Semantics::Decision => {
                let (holds, strategy) =
                    self.decide_some(&plan, request.strategy, budget, &mut report)?;
                report.strategy = strategy;
                report.answer = Answer::Decision(holds);
            }
            Semantics::CertainAnswer => {
                let (holds, strategy) =
                    self.decide_every(&plan, request.strategy, budget, &mut report)?;
                report.strategy = strategy;
                report.answer = Answer::Decision(holds);
            }
            Semantics::Approximate {
                epsilon,
                delta,
                seed,
            } => {
                let config = ApproxConfig {
                    epsilon: *epsilon,
                    delta: *delta,
                    max_samples: request.sample_cap,
                    seed: *seed,
                };
                let (estimate, strategy) =
                    self.approximate(&plan, request.strategy, &config, &mut report)?;
                report.strategy = strategy;
                report.samples_requested = estimate.samples_requested;
                report.samples_used = estimate.samples_used;
                report.answer = Answer::Estimate(estimate);
            }
        }
        report.duration = started.elapsed();
        Ok(report)
    }

    /// Answers a batch of requests, sharing the plan cache across them and
    /// fanning out across [`std::thread::scope`] worker threads when
    /// [`RepairEngine::with_parallelism`] allows more than one.
    ///
    /// Reports come back in request order.  Batches sit between mutations
    /// (which need `&mut self`), so every request of a batch sees the same
    /// generation.
    pub fn run_batch(&self, requests: &[CountRequest]) -> Vec<Result<CountReport, CountError>> {
        let workers = self.parallelism.min(requests.len()).max(1);
        if workers == 1 {
            return requests.iter().map(|request| self.run(request)).collect();
        }
        let chunk_size = requests.len().div_ceil(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = requests
                .chunks(chunk_size)
                .map(|chunk| {
                    scope.spawn(move || {
                        chunk
                            .iter()
                            .map(|request| self.run(request))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|handle| handle.join().expect("a run_batch worker panicked"))
                .collect()
        })
    }

    /// Fetches or builds the plan for a query. The boolean is `true` on a
    /// cache hit.
    fn plan(&self, query: &Query) -> (Arc<QueryPlan>, bool) {
        let key = query.to_string();
        {
            let mut cache = lock(&self.plans);
            if let Some(plan) = cache.get(&key) {
                // Display collisions are not expected, but equality is
                // cheap insurance against serving a wrong plan.
                if plan.query == *query {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return (plan, true);
                }
            }
        }
        let plan = Arc::new(QueryPlan::build(query, &self.db, &self.keys));
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut cache = lock(&self.plans);
        if let Some(existing) = cache.get(&key) {
            // If another thread planned the same query first, prefer the
            // resident plan so lazily-computed artifacts are shared.
            if existing.query == *query {
                return (existing, false);
            }
            // A genuine display collision: serve the fresh plan uncached.
            return (plan, false);
        }
        let evicted = cache.insert(key, Arc::clone(&plan));
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        (plan, false)
    }

    /// Resolves `Auto` for exact semantics and rejects nonsensical
    /// strategy/semantics combinations.
    fn resolve_exact(
        &self,
        plan: &QueryPlan,
        strategy: Strategy,
        semantics: &'static str,
    ) -> Result<Strategy, CountError> {
        match strategy {
            Strategy::Auto => Ok(if plan.class == QueryClass::FirstOrder {
                Strategy::Enumeration
            } else {
                Strategy::CertificateBoxes
            }),
            Strategy::KarpLuby => Err(CountError::UnsupportedStrategy {
                semantics,
                strategy: strategy.name(),
            }),
            other => Ok(other),
        }
    }

    fn exact_count(
        &self,
        plan: &QueryPlan,
        strategy: Strategy,
        budget: u64,
        semantics: &'static str,
        report: &mut CountReport,
    ) -> Result<(BigNat, Strategy), CountError> {
        let effective = self.resolve_exact(plan, strategy, semantics)?;
        match effective {
            Strategy::Enumeration => {
                let count = count_by_enumeration(&self.db, &self.keys, &plan.query, budget)?;
                Ok((count, Strategy::Enumeration))
            }
            Strategy::CertificateBoxes => {
                let certs = plan.cert_summary(self)?;
                report.certificates = Some(certs.count);
                // The engine maintains ∏ |Bᵢ| incrementally; handing it to
                // the union counter spares an O(blocks) re-product per query.
                let count = count_union_of_boxes_with_total(
                    &self.blocks,
                    &certs.boxes,
                    budget,
                    self.total_repairs.clone(),
                )?;
                Ok((count, Strategy::CertificateBoxes))
            }
            _ => unreachable!("resolve_exact returns a concrete exact strategy"),
        }
    }

    fn decide_some(
        &self,
        plan: &QueryPlan,
        strategy: Strategy,
        budget: u64,
        report: &mut CountReport,
    ) -> Result<(bool, Strategy), CountError> {
        let effective = self.resolve_exact(plan, strategy, "the decision problem")?;
        match effective {
            Strategy::Enumeration => {
                let holds = crate::decision::holds_in_some_repair_fo_bounded(
                    &self.db,
                    &self.blocks,
                    &plan.query,
                    budget,
                )?;
                Ok((holds, Strategy::Enumeration))
            }
            Strategy::CertificateBoxes => {
                let certs = plan.cert_summary(self)?;
                report.certificates = Some(certs.count);
                Ok((certs.count > 0, Strategy::CertificateBoxes))
            }
            _ => unreachable!("resolve_exact returns a concrete exact strategy"),
        }
    }

    fn decide_every(
        &self,
        plan: &QueryPlan,
        strategy: Strategy,
        budget: u64,
        report: &mut CountReport,
    ) -> Result<(bool, Strategy), CountError> {
        let effective = self.resolve_exact(plan, strategy, "certain answers")?;
        match effective {
            Strategy::Enumeration => {
                // Witness search for a refuting repair: stop at the first
                // repair that does NOT entail the query.
                let mut visited: u64 = 0;
                for repair in RepairIter::new(&self.blocks) {
                    visited += 1;
                    if visited > budget {
                        return Err(CountError::ExactBudgetExceeded {
                            what: "certain-answer repair enumeration".into(),
                            budget,
                        });
                    }
                    let repaired = repair.to_database(&self.db);
                    if !evaluate(&repaired, &plan.query)? {
                        return Ok((false, Strategy::Enumeration));
                    }
                }
                Ok((true, Strategy::Enumeration))
            }
            Strategy::CertificateBoxes => {
                let certs = plan.cert_summary(self)?;
                report.certificates = Some(certs.count);
                if certs.has_unconstrained {
                    // Some certificate covers every repair.
                    return Ok((true, Strategy::CertificateBoxes));
                }
                if certs.boxes.is_empty() {
                    // No repair entails the query; there is always at
                    // least one repair (the empty database has one).
                    return Ok((false, Strategy::CertificateBoxes));
                }
                if self.refuting_choice(&certs.boxes).is_some() {
                    // Found block evidence: a repair avoiding every box.
                    return Ok((false, Strategy::CertificateBoxes));
                }
                // Inconclusive cheap checks: fall back to the exact count.
                let count = count_union_of_boxes_with_total(
                    &self.blocks,
                    &certs.boxes,
                    budget,
                    self.total_repairs.clone(),
                )?;
                Ok((count == self.total_repairs, Strategy::CertificateBoxes))
            }
            _ => unreachable!("resolve_exact returns a concrete exact strategy"),
        }
    }

    /// Greedily builds a repair avoiding every box, processing one box at
    /// a time and deviating on a pinned block. Sound but incomplete: a
    /// `Some` result is a genuine refutation of certainty, a `None` means
    /// the caller must fall back to exact counting.
    fn refuting_choice(&self, boxes: &[SelectorBox]) -> Option<HashMap<usize, FactId>> {
        let mut choice: HashMap<usize, FactId> = HashMap::new();
        for b in boxes {
            let already_avoided = b.pins().any(|(block, fact)| {
                choice
                    .get(&block.index())
                    .is_some_and(|&chosen| chosen != fact)
            });
            if already_avoided {
                continue;
            }
            let mut deviated = false;
            for (block, fact) in b.pins() {
                if choice.contains_key(&block.index()) {
                    // Already matching this pin; deviating here would
                    // disturb an earlier box's avoidance.
                    continue;
                }
                if let Some(&alternative) = self
                    .blocks
                    .block(block)
                    .facts()
                    .iter()
                    .find(|&&candidate| candidate != fact)
                {
                    choice.insert(block.index(), alternative);
                    deviated = true;
                    break;
                }
            }
            if !deviated {
                return None;
            }
        }
        Some(choice)
    }

    fn approximate(
        &self,
        plan: &Arc<QueryPlan>,
        strategy: Strategy,
        config: &ApproxConfig,
        report: &mut CountReport,
    ) -> Result<(ApproxCount, Strategy), CountError> {
        let effective = match strategy {
            Strategy::Auto => Strategy::CertificateBoxes,
            Strategy::KarpLuby => Strategy::KarpLuby,
            other => {
                return Err(CountError::UnsupportedStrategy {
                    semantics: "approximation",
                    strategy: other.name(),
                })
            }
        };
        let (estimators, freshly_built) = plan.estimators(self)?;
        if freshly_built {
            self.note_estimator_holder(plan);
        }
        if let Ok(certs) = plan.cert_summary(self) {
            report.certificates = Some(certs.count);
        }
        let estimate = match effective {
            Strategy::CertificateBoxes => estimators.fpras.estimate(config)?,
            Strategy::KarpLuby => estimators.karp_luby.estimate(config)?,
            _ => unreachable!("resolved above"),
        };
        Ok((estimate, effective))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdr_query::parse_query;
    use cdr_repairdb::Schema;

    fn employee_engine() -> RepairEngine {
        let mut schema = Schema::new();
        schema.add_relation("Employee", 3).unwrap();
        let keys = KeySet::builder(&schema).key("Employee", 1).unwrap().build();
        let mut db = Database::new(schema);
        db.insert_parsed("Employee(1, 'Bob', 'HR')").unwrap();
        db.insert_parsed("Employee(1, 'Bob', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Alice', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Tim', 'IT')").unwrap();
        RepairEngine::new(db, keys)
    }

    fn example_query() -> Query {
        parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap()
    }

    fn insert(engine: &mut RepairEngine, text: &str) -> MutationReport {
        let fact = engine.database().parse_fact(text).unwrap();
        engine.apply(Mutation::Insert(fact)).unwrap()
    }

    fn delete(engine: &mut RepairEngine, text: &str) -> MutationReport {
        let fact = engine.database().parse_fact(text).unwrap();
        let id = engine.database().fact_id(&fact).unwrap();
        engine.apply(Mutation::Delete(id)).unwrap()
    }

    fn exact_count(engine: &RepairEngine, query: &Query) -> u64 {
        engine
            .run(&CountRequest::exact(query.clone()))
            .unwrap()
            .answer
            .as_count()
            .unwrap()
            .to_u64()
            .unwrap()
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RepairEngine>();
        assert_send_sync::<CountRequest>();
        assert_send_sync::<CountReport>();
        assert_send_sync::<EngineCommand>();
        assert_send_sync::<EngineResponse>();
    }

    #[test]
    fn second_run_hits_the_plan_cache() {
        let engine = employee_engine();
        let request = CountRequest::exact(example_query());
        let first = engine.run(&request).unwrap();
        assert!(!first.plan_cached);
        let second = engine.run(&request).unwrap();
        assert!(second.plan_cached);
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1);
        // Different semantics over the same query still share the plan.
        engine
            .run(&CountRequest::frequency(example_query()))
            .unwrap();
        assert_eq!(engine.cache_stats().hits, 2);
    }

    #[test]
    fn all_semantics_answer_the_running_example() {
        let engine = employee_engine();
        let q = example_query();
        let reports = engine.run_batch(&[
            CountRequest::exact(q.clone()),
            CountRequest::frequency(q.clone()),
            CountRequest::decision(q.clone()),
            CountRequest::certain_answer(q.clone()),
            CountRequest::approximate(q.clone(), 0.1, 0.05),
        ]);
        let reports: Vec<CountReport> = reports.into_iter().collect::<Result<_, _>>().unwrap();
        assert_eq!(reports[0].answer.as_count().unwrap().to_u64(), Some(2));
        assert_eq!(reports[1].answer.as_frequency().unwrap().to_string(), "1/2");
        assert_eq!(reports[2].answer.as_bool(), Some(true));
        assert_eq!(reports[3].answer.as_bool(), Some(false));
        let estimate = reports[4].answer.as_estimate().unwrap();
        assert!(estimate.relative_error(&BigNat::from(2u64)) <= 0.1);
        assert!(reports[4].samples_used > 0);
        // One planning miss, four hits.
        assert_eq!(engine.cache_stats().misses, 1);
        assert_eq!(engine.cache_stats().hits, 4);
    }

    #[test]
    fn strategies_resolve_per_class() {
        let engine = employee_engine();
        let positive = parse_query("EXISTS n . Employee(2, n, 'IT')").unwrap();
        let report = engine.run(&CountRequest::exact(positive)).unwrap();
        assert_eq!(report.strategy, Strategy::CertificateBoxes);
        assert!(report.certificates.is_some());
        let negated = parse_query("NOT EXISTS i, n . Employee(i, n, 'HR')").unwrap();
        let report = engine.run(&CountRequest::exact(negated)).unwrap();
        assert_eq!(report.strategy, Strategy::Enumeration);
        assert_eq!(report.answer.as_count().unwrap().to_u64(), Some(2));
        assert!(report.certificates.is_none());
    }

    #[test]
    fn unsupported_strategy_combinations_are_rejected() {
        let engine = employee_engine();
        let q = example_query();
        let exact_kl = CountRequest::exact(q.clone()).with_strategy(Strategy::KarpLuby);
        assert!(matches!(
            engine.run(&exact_kl),
            Err(CountError::UnsupportedStrategy { .. })
        ));
        let approx_enum =
            CountRequest::approximate(q.clone(), 0.1, 0.05).with_strategy(Strategy::Enumeration);
        assert!(matches!(
            engine.run(&approx_enum),
            Err(CountError::UnsupportedStrategy { .. })
        ));
        let fo = parse_query("NOT EXISTS i, n . Employee(i, n, 'HR')").unwrap();
        let forced_boxes = CountRequest::exact(fo).with_strategy(Strategy::CertificateBoxes);
        assert!(matches!(
            engine.run(&forced_boxes),
            Err(CountError::Query(_))
        ));
    }

    #[test]
    fn certain_answers_match_the_counting_definition() {
        let engine = employee_engine();
        for (text, expected) in [
            ("EXISTS n . Employee(2, n, 'IT')", true),
            ("EXISTS n, d . Employee(1, n, d)", true),
            ("Employee(1, 'Bob', 'HR')", false),
            ("EXISTS n, d . Employee(3, n, d)", false),
            ("TRUE", true),
            ("FALSE", false),
        ] {
            let q = parse_query(text).unwrap();
            let report = engine
                .run(&CountRequest::certain_answer(q.clone()))
                .unwrap();
            assert_eq!(report.answer.as_bool(), Some(expected), "{text}");
            // Cross-check against the definition: count == total.
            let count = engine
                .run(&CountRequest::exact(q))
                .unwrap()
                .answer
                .as_count()
                .unwrap()
                .clone();
            assert_eq!(count == *engine.total_repairs(), expected, "{text}");
        }
    }

    #[test]
    fn certain_answer_refutes_without_counting_via_block_evidence() {
        // A single-box query over a large database: the greedy refutation
        // must answer without touching the (budget-guarded) counter.
        let mut schema = Schema::new();
        schema.add_relation("R", 2).unwrap();
        let keys = KeySet::builder(&schema).key("R", 1).unwrap().build();
        let mut db = Database::new(schema);
        for k in 0..40i64 {
            db.insert_parsed(&format!("R({k}, 'a')")).unwrap();
            db.insert_parsed(&format!("R({k}, 'b')")).unwrap();
        }
        let engine = RepairEngine::new(db, keys);
        let q = parse_query("R(0, 'a')").unwrap();
        // 2^40 repairs: a full count would blow this budget immediately,
        // so a false answer proves the refutation short-circuit ran.
        let report = engine
            .run(&CountRequest::certain_answer(q).with_budget(8))
            .unwrap();
        assert_eq!(report.answer.as_bool(), Some(false));
    }

    #[test]
    fn decision_enumeration_strategy_is_exhaustive() {
        let engine = employee_engine();
        let q = parse_query("NOT EXISTS i, n . Employee(i, n, 'HR')").unwrap();
        let report = engine.run(&CountRequest::decision(q)).unwrap();
        assert_eq!(report.answer.as_bool(), Some(true));
        assert_eq!(report.strategy, Strategy::Enumeration);
        let q = parse_query("NOT EXISTS d . Employee(1, 'Bob', d)").unwrap();
        let report = engine.run(&CountRequest::decision(q)).unwrap();
        assert_eq!(report.answer.as_bool(), Some(false));
    }

    #[test]
    fn budget_and_sample_cap_are_honoured() {
        let engine = employee_engine();
        let q = parse_query("TRUE").unwrap();
        let strict = CountRequest::exact(q.clone())
            .with_strategy(Strategy::Enumeration)
            .with_budget(2);
        assert!(matches!(
            engine.run(&strict),
            Err(CountError::ExactBudgetExceeded { .. })
        ));
        let capped = CountRequest::approximate(example_query(), 0.001, 0.05).with_sample_cap(100);
        let report = engine.run(&capped).unwrap();
        assert_eq!(report.samples_used, 100);
        assert!(report.samples_requested > 100);
    }

    #[test]
    fn decision_enumeration_honours_the_budget() {
        let engine = employee_engine();
        // A first-order query no repair satisfies forces the witness
        // search to visit every repair — the budget must stop it.
        let q = parse_query("NOT EXISTS d . Employee(1, 'Bob', d)").unwrap();
        let strict = CountRequest::decision(q.clone()).with_budget(2);
        assert!(matches!(
            engine.run(&strict),
            Err(CountError::ExactBudgetExceeded { .. })
        ));
        // A sufficient budget still answers.
        let report = engine
            .run(&CountRequest::decision(q).with_budget(4))
            .unwrap();
        assert_eq!(report.answer.as_bool(), Some(false));
    }

    #[test]
    fn frequency_strategy_errors_name_the_semantics() {
        let engine = employee_engine();
        let err = engine
            .run(&CountRequest::frequency(example_query()).with_strategy(Strategy::KarpLuby))
            .unwrap_err();
        assert!(err.to_string().contains("relative frequency"), "{err}");
    }

    #[test]
    fn karp_luby_strategy_runs_through_the_engine() {
        let engine = employee_engine();
        let request = CountRequest::approximate(example_query(), 0.1, 0.05)
            .with_strategy(Strategy::KarpLuby)
            .with_seed(7);
        let report = engine.run(&request).unwrap();
        assert_eq!(report.strategy, Strategy::KarpLuby);
        let estimate = report.answer.as_estimate().unwrap();
        assert!(estimate.relative_error(&BigNat::from(2u64)) <= 0.1);
    }

    #[test]
    fn engine_is_usable_across_threads() {
        let engine = Arc::new(employee_engine());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let engine = Arc::clone(&engine);
            handles.push(std::thread::spawn(move || {
                let report = engine.run(&CountRequest::exact(example_query())).unwrap();
                report.answer.as_count().unwrap().to_u64()
            }));
        }
        for handle in handles {
            assert_eq!(handle.join().unwrap(), Some(2));
        }
        let stats = engine.cache_stats();
        assert_eq!(stats.hits + stats.misses, 4);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn keywidths_are_served_from_the_plan() {
        let engine = employee_engine();
        let q = example_query();
        assert_eq!(engine.keywidth(&q), 2);
        assert_eq!(engine.disjunct_keywidth(&q).unwrap(), 2);
        let fo = parse_query("NOT EXISTS i, n . Employee(i, n, 'HR')").unwrap();
        assert!(engine.disjunct_keywidth(&fo).is_err());
        // Three lookups, one plan.
        assert_eq!(engine.cache_stats().entries, 2);
    }

    #[test]
    fn mutations_update_the_total_incrementally() {
        let mut engine = employee_engine();
        assert_eq!(engine.generation(), 0);
        assert_eq!(engine.total_repairs().to_u64(), Some(4));

        // Growing an existing block: 4 → 6.
        let report = insert(&mut engine, "Employee(1, 'Bob', 'Sales')");
        assert_eq!(report.applied, 1);
        assert_eq!(report.deltas.len(), 1);
        assert_eq!((report.deltas[0].old_len, report.deltas[0].new_len), (2, 3));
        assert_eq!(engine.total_repairs().to_u64(), Some(6));
        assert_eq!(engine.generation(), 1);

        // Creating a block: 6 → 6 (a singleton multiplies by 1).
        let report = insert(&mut engine, "Employee(3, 'Eve', 'R&D')");
        assert!(report.deltas[0].created());
        assert_eq!(engine.total_repairs().to_u64(), Some(6));

        // Shrinking and retiring blocks.
        delete(&mut engine, "Employee(1, 'Bob', 'Sales')");
        assert_eq!(engine.total_repairs().to_u64(), Some(4));
        let report = delete(&mut engine, "Employee(3, 'Eve', 'R&D')");
        assert!(report.deltas[0].removed());
        assert_eq!(engine.total_repairs().to_u64(), Some(4));
        assert_eq!(engine.generation(), 4);

        // The engine now matches a fresh one on the same database.
        let fresh = RepairEngine::new(engine.database().clone(), engine.keys().clone());
        assert_eq!(engine.total_repairs(), fresh.total_repairs());
    }

    #[test]
    fn noop_insert_does_not_bump_the_generation() {
        let mut engine = employee_engine();
        let report = insert(&mut engine, "Employee(1, 'Bob', 'HR')");
        assert_eq!(report.applied, 0);
        assert_eq!(report.noops, 1);
        assert!(report.deltas.is_empty());
        assert_eq!(engine.generation(), 0);
        assert_eq!(engine.total_repairs().to_u64(), Some(4));
    }

    #[test]
    fn deleting_a_missing_fact_is_an_error_and_leaves_the_engine_unchanged() {
        let mut engine = employee_engine();
        let err = engine.apply(Mutation::Delete(FactId::new(99))).unwrap_err();
        assert!(matches!(err, CountError::Db(_)));
        assert_eq!(engine.generation(), 0);
        assert_eq!(engine.total_repairs().to_u64(), Some(4));
    }

    #[test]
    fn queries_after_mutations_see_the_new_database() {
        let mut engine = employee_engine();
        let q = example_query();
        assert_eq!(exact_count(&engine, &q), 2);
        // Give employee 1 a third department that also matches IT: the
        // count over the query's own relation must be re-derived.
        insert(&mut engine, "Employee(1, 'Bob', 'Sales')");
        assert_eq!(exact_count(&engine, &q), 2);
        assert_eq!(engine.cache_stats().invalidations, 1);
        delete(&mut engine, "Employee(1, 'Bob', 'HR')");
        // Blocks: employee 1 = {IT, Sales}, employee 2 = {Alice, Tim}.
        assert_eq!(engine.total_repairs().to_u64(), Some(4));
        assert_eq!(exact_count(&engine, &q), 2);
        // Certain answers and decisions track the mutations too.
        delete(&mut engine, "Employee(1, 'Bob', 'Sales')");
        // Employee 1 only has IT now: the join is certain.
        let report = engine
            .run(&CountRequest::certain_answer(q.clone()))
            .unwrap();
        assert_eq!(report.answer.as_bool(), Some(true));
        assert_eq!(report.generation, engine.generation());
    }

    #[test]
    fn untouched_relations_keep_their_plans_but_see_the_new_total() {
        let mut schema = Schema::new();
        schema.add_relation("R", 2).unwrap();
        schema.add_relation("S", 2).unwrap();
        let keys = KeySet::builder(&schema)
            .key("R", 1)
            .unwrap()
            .key("S", 1)
            .unwrap()
            .build();
        let mut db = Database::new(schema);
        db.insert_parsed("R(1, 'a')").unwrap();
        db.insert_parsed("R(1, 'b')").unwrap();
        db.insert_parsed("S(1, 'x')").unwrap();
        let mut engine = RepairEngine::new(db, keys);
        let q = parse_query("R(1, 'a')").unwrap();
        assert_eq!(exact_count(&engine, &q), 1);

        // Mutate S only: the R plan must survive (no invalidation), while
        // both the count and the total move with the larger S block.
        let fact = engine.database().parse_fact("S(1, 'y')").unwrap();
        engine.apply(Mutation::Insert(fact)).unwrap();
        assert_eq!(engine.total_repairs().to_u64(), Some(4));
        let report = engine.run(&CountRequest::frequency(q.clone())).unwrap();
        assert!(report.plan_cached);
        // 2 of the 4 repairs pick R(1, 'a'): same 1/2 ratio, new absolutes.
        assert_eq!(report.answer.as_frequency().unwrap().to_string(), "1/2");
        assert_eq!(exact_count(&engine, &q), 2);
        assert_eq!(engine.cache_stats().invalidations, 0);

        // Mutating R does invalidate the plan on its next use.
        let fact = engine.database().parse_fact("R(2, 'c')").unwrap();
        engine.apply(Mutation::Insert(fact)).unwrap();
        assert_eq!(exact_count(&engine, &q), 2);
        assert_eq!(engine.cache_stats().invalidations, 1);
    }

    #[test]
    fn estimates_follow_mutations_and_match_a_fresh_engine() {
        let mut engine = employee_engine();
        let q = example_query();
        let request = CountRequest::approximate(q, 0.1, 0.05).with_seed(99);
        let before = engine.run(&request).unwrap();
        assert!(!before.answer.as_estimate().unwrap().estimate.is_zero());

        insert(&mut engine, "Employee(2, 'Ada', 'HR')");
        let after = engine.run(&request).unwrap();
        let fresh = RepairEngine::new(engine.database().clone(), engine.keys().clone());
        let expected = fresh.run(&request).unwrap();
        assert_eq!(
            after.answer.as_estimate().unwrap().estimate,
            expected.answer.as_estimate().unwrap().estimate,
            "a mutated engine and a fresh engine share the sample path"
        );
    }

    #[test]
    fn execute_speaks_commands_and_responses() {
        let mut engine = employee_engine();
        let q = example_query();
        let fact = engine
            .database()
            .parse_fact("Employee(3, 'Eve', 'IT')")
            .unwrap();
        let fact_again = fact.clone();
        let response = engine
            .execute(EngineCommand::Mutate(Mutation::Insert(fact)))
            .unwrap();
        let applied = response.as_applied().unwrap();
        assert_eq!(applied.applied, 1);
        assert_eq!(applied.generation, 1);
        assert!(response.as_report().is_none());

        let response = engine
            .execute(EngineCommand::Query(CountRequest::exact(q.clone())))
            .unwrap();
        assert_eq!(
            response
                .as_report()
                .unwrap()
                .answer
                .as_count()
                .unwrap()
                .to_u64(),
            Some(2)
        );
        assert!(response.as_applied().is_none());

        // A batch: one duplicate no-op, one delete.
        let id = engine.database().fact_id(&fact_again).unwrap();
        let response = engine
            .execute(EngineCommand::MutateBatch(vec![
                Mutation::Insert(fact_again),
                Mutation::Delete(id),
            ]))
            .unwrap();
        let applied = response.as_applied().unwrap();
        assert_eq!(applied.applied, 1);
        assert_eq!(applied.noops, 1);
        assert_eq!(applied.deltas.len(), 1);
        assert_eq!(engine.total_repairs().to_u64(), Some(4));
    }

    #[test]
    fn rejected_batches_are_atomic() {
        let mut engine = employee_engine();
        let good = engine
            .database()
            .parse_fact("Employee(3, 'Eve', 'IT')")
            .unwrap();
        let live = engine.database().fact_id(
            &engine
                .database()
                .parse_fact("Employee(1, 'Bob', 'HR')")
                .unwrap(),
        );
        // A batch with a valid insert, a valid delete, and a delete of a
        // fact that is not live: nothing may be applied.
        let err = engine
            .apply_batch(vec![
                Mutation::Insert(good.clone()),
                Mutation::Delete(live.unwrap()),
                Mutation::Delete(FactId::new(999)),
            ])
            .unwrap_err();
        assert!(matches!(err, CountError::Db(_)));
        assert_eq!(engine.generation(), 0);
        assert_eq!(engine.total_repairs().to_u64(), Some(4));
        assert!(!engine.database().contains(&good));
        assert!(engine.database().fact_id(&good).is_none());
        // Two deletes of the same fact are also rejected up front.
        let err = engine
            .apply_batch(vec![
                Mutation::Delete(live.unwrap()),
                Mutation::Delete(live.unwrap()),
            ])
            .unwrap_err();
        assert!(matches!(err, CountError::Db(_)));
        assert_eq!(engine.generation(), 0);
        // The valid prefix alone goes through.
        let report = engine
            .apply_batch(vec![
                Mutation::Insert(good),
                Mutation::Delete(live.unwrap()),
            ])
            .unwrap();
        assert_eq!(report.applied, 2);
        assert_eq!(engine.generation(), 2);
    }

    #[test]
    fn churn_on_one_key_does_not_grow_the_slot_table() {
        let mut engine = employee_engine();
        let slots = engine.blocks().slot_count();
        for _ in 0..50 {
            insert(&mut engine, "Employee(9, 'Flux', 'Ops')");
            delete(&mut engine, "Employee(9, 'Flux', 'Ops')");
        }
        assert_eq!(
            engine.blocks().slot_count(),
            slots + 1,
            "the revived slot is reused across all 50 cycles"
        );
        assert_eq!(engine.total_repairs().to_u64(), Some(4));
    }

    #[test]
    fn compact_reclaims_ids_and_slots_and_preserves_answers() {
        let mut engine = employee_engine();
        let q = example_query();
        assert_eq!(exact_count(&engine, &q), 2);
        // Churn: retire a block, consume ids, leave tombstones behind.
        insert(&mut engine, "Employee(9, 'Flux', 'Ops')");
        delete(&mut engine, "Employee(9, 'Flux', 'Ops')");
        insert(&mut engine, "Employee(1, 'Bob', 'Sales')");
        delete(&mut engine, "Employee(1, 'Bob', 'Sales')");
        assert_eq!(engine.waste(), 3, "two tombstones + one retired slot");
        let generation = engine.generation();
        let total_before = engine.total_repairs().clone();

        let outcome = engine.compact();
        assert_eq!(outcome.report.ids_reclaimed(), 2);
        assert_eq!(outcome.slots_dropped(), 1);
        assert_eq!(outcome.slots_after, engine.blocks().len());
        assert_eq!(outcome.plans_dropped, 1, "the cached plan was cleared");
        assert!(outcome.total_cross_checked);
        assert_eq!(outcome.generation, generation + 1);
        assert_eq!(engine.generation(), generation + 1);
        assert_eq!(engine.waste(), 0);
        assert_eq!(engine.database().fact_ids_assigned(), 4);
        assert_eq!(engine.total_repairs(), &total_before);
        assert_eq!(engine.cache_stats().entries, 0);

        // Answers are unchanged; the re-planned query is correct.
        assert_eq!(exact_count(&engine, &q), 2);
        let report = engine.run(&CountRequest::frequency(q)).unwrap();
        assert_eq!(report.answer.as_frequency().unwrap().to_string(), "1/2");
        assert_eq!(report.generation, generation + 1);
        // The compacted engine equals a fresh engine on its live facts.
        let fresh = RepairEngine::new(engine.database().clone(), engine.keys().clone());
        assert_eq!(engine.total_repairs(), fresh.total_repairs());
        assert_eq!(engine.blocks(), fresh.blocks());
    }

    #[test]
    fn compact_restores_insert_headroom_after_exhaustion() {
        let mut schema = Schema::new();
        schema.add_relation("Employee", 3).unwrap();
        let keys = KeySet::builder(&schema).key("Employee", 1).unwrap().build();
        let db = Database::new(schema).with_fact_id_capacity(3);
        let mut engine = RepairEngine::new(db, keys);
        insert(&mut engine, "Employee(1, 'Bob', 'HR')");
        insert(&mut engine, "Employee(1, 'Bob', 'IT')");
        delete(&mut engine, "Employee(1, 'Bob', 'IT')");
        insert(&mut engine, "Employee(2, 'Eve', 'IT')");
        // Id space spent: a fresh insert fails.
        let fact = engine
            .database()
            .parse_fact("Employee(3, 'Kim', 'IT')")
            .unwrap();
        let err = engine.apply(Mutation::Insert(fact.clone())).unwrap_err();
        assert!(matches!(
            err,
            CountError::Db(cdr_repairdb::DbError::FactIdsExhausted { .. })
        ));
        // Compaction through the command API reclaims the tombstone's id.
        let response = engine.execute(EngineCommand::Compact).unwrap();
        let outcome = response.as_compacted().unwrap();
        assert_eq!(outcome.report.ids_reclaimed(), 1);
        assert!(response.as_report().is_none() && response.as_applied().is_none());
        engine.apply(Mutation::Insert(fact)).unwrap();
        assert_eq!(engine.database().len(), 3);
        assert_eq!(engine.total_repairs().to_u64(), Some(1));
    }

    #[test]
    fn maybe_compact_follows_the_threshold_and_exhaustion_policy() {
        let mut engine = employee_engine();
        assert!(engine.maybe_compact(1).is_none(), "no waste, nothing to do");
        insert(&mut engine, "Employee(9, 'Flux', 'Ops')");
        delete(&mut engine, "Employee(9, 'Flux', 'Ops')");
        assert_eq!(engine.waste(), 2);
        assert!(engine.maybe_compact(3).is_none(), "below the threshold");
        let outcome = engine.maybe_compact(2).expect("threshold reached");
        assert_eq!(outcome.report.ids_reclaimed(), 1);
        assert_eq!(engine.waste(), 0);

        // Exhaustion triggers a compaction even below the threshold.
        let mut schema = Schema::new();
        schema.add_relation("R", 1).unwrap();
        let keys = KeySet::empty(&schema);
        let db = Database::new(schema).with_fact_id_capacity(2);
        let mut engine = RepairEngine::new(db, keys);
        insert(&mut engine, "R(1)");
        insert(&mut engine, "R(2)");
        delete(&mut engine, "R(1)");
        assert!(engine.maybe_compact(1_000).is_some(), "ids are exhausted");
        assert_eq!(engine.database().fact_ids_assigned(), 1);
    }

    #[test]
    fn estimates_are_bit_for_bit_stable_across_compaction() {
        let mut engine = employee_engine();
        // Non-dense ids and slots before compacting.
        insert(&mut engine, "Employee(2, 'Ada', 'HR')");
        insert(&mut engine, "Employee(7, 'Tmp', 'IT')");
        delete(&mut engine, "Employee(7, 'Tmp', 'IT')");
        let request = CountRequest::approximate(example_query(), 0.1, 0.05).with_seed(1234);
        let before = engine.run(&request).unwrap();
        let before = before.answer.as_estimate().unwrap();
        let (estimate, positive, used) = (
            before.estimate.clone(),
            before.positive_samples,
            before.samples_used,
        );
        engine.compact();
        let after = engine.run(&request).unwrap();
        let after = after.answer.as_estimate().unwrap();
        assert_eq!(after.estimate, estimate);
        assert_eq!(after.positive_samples, positive);
        assert_eq!(after.samples_used, used);
    }

    #[test]
    fn lru_cache_evicts_and_counts() {
        let engine = employee_engine().with_plan_cache_capacity(2);
        let q1 = parse_query("EXISTS n . Employee(1, n, 'HR')").unwrap();
        let q2 = parse_query("EXISTS n . Employee(1, n, 'IT')").unwrap();
        let q3 = parse_query("EXISTS n . Employee(2, n, 'IT')").unwrap();
        engine.run(&CountRequest::exact(q1.clone())).unwrap();
        engine.run(&CountRequest::exact(q2.clone())).unwrap();
        // Touch q1 so q2 is the LRU victim when q3 arrives.
        engine.run(&CountRequest::exact(q1.clone())).unwrap();
        engine.run(&CountRequest::exact(q3.clone())).unwrap();
        let stats = engine.cache_stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.capacity, 2);
        assert_eq!(stats.evictions, 1);
        // q1 survived (it was recently used), q2 was evicted.
        assert!(engine.run(&CountRequest::exact(q1)).unwrap().plan_cached);
        assert!(!engine.run(&CountRequest::exact(q2)).unwrap().plan_cached);
        assert_eq!(engine.cache_stats().evictions, 2);
    }

    #[test]
    fn cache_stats_display_is_readable() {
        let engine = employee_engine();
        engine.run(&CountRequest::exact(example_query())).unwrap();
        let text = engine.cache_stats().to_string();
        assert!(text.contains("1/1024 entries"), "{text}");
        assert!(text.contains("0 hits"), "{text}");
        assert!(text.contains("1 miss"), "{text}");
        assert!(text.contains("0 evictions"), "{text}");
        assert!(text.contains("0 invalidations"), "{text}");
    }

    #[test]
    fn parallel_run_batch_matches_sequential() {
        let sequential = employee_engine();
        let parallel = employee_engine().with_parallelism(4);
        assert_eq!(parallel.parallelism(), 4);
        let mut requests = Vec::new();
        for text in [
            "EXISTS n . Employee(1, n, 'HR')",
            "EXISTS n . Employee(1, n, 'IT')",
            "EXISTS n . Employee(2, n, 'IT')",
            "Employee(1, 'Bob', 'HR')",
            "TRUE",
            "FALSE",
        ] {
            let q = parse_query(text).unwrap();
            requests.push(CountRequest::exact(q.clone()));
            requests.push(CountRequest::frequency(q.clone()));
            requests.push(CountRequest::decision(q));
        }
        let expected: Vec<Option<u64>> = sequential
            .run_batch(&requests)
            .into_iter()
            .map(|r| match r.unwrap().answer {
                Answer::Count(c) => c.to_u64(),
                Answer::Decision(b) => Some(b as u64),
                Answer::Frequency(f) => Some(f.to_string().len() as u64),
                Answer::Estimate(_) => None,
            })
            .collect();
        let got: Vec<Option<u64>> = parallel
            .run_batch(&requests)
            .into_iter()
            .map(|r| match r.unwrap().answer {
                Answer::Count(c) => c.to_u64(),
                Answer::Decision(b) => Some(b as u64),
                Answer::Frequency(f) => Some(f.to_string().len() as u64),
                Answer::Estimate(_) => None,
            })
            .collect();
        assert_eq!(expected, got, "parallel batches preserve request order");
        let stats = parallel.cache_stats();
        assert_eq!(stats.hits + stats.misses, requests.len() as u64);
    }
}
