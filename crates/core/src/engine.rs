//! The [`RepairEngine`]: an owned, thread-safe, caching entry point for
//! every operation the paper studies.
//!
//! The engine owns its database and key set (behind [`Arc`]s so clones are
//! cheap to share across threads), computes the block partition `B₁, …, Bₙ`
//! and the total repair count **once** at construction, and memoizes every
//! per-query planning artifact — the UCQ rewrite, the query class, the
//! keywidth and disjunct keywidth, the certificate boxes, and the prepared
//! estimators — in an interior cache. Repeated runs of the same query skip
//! all planning; the [`RepairEngine::cache_stats`] counters make the hits
//! observable.
//!
//! All operations go through one request/report pair: a [`CountRequest`]
//! names a query, a [`Semantics`] (exact count, approximation, decision,
//! certain answer, relative frequency), a [`Strategy`], a budget and a
//! sample cap; a [`CountReport`] carries the tagged [`Answer`] plus
//! provenance (effective strategy, certificates found, samples requested
//! and used, wall-clock duration, whether the plan came from the cache).
//!
//! The legacy [`crate::RepairCounter`] facade is a thin wrapper over this
//! engine and is kept only for backwards compatibility.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use cdr_num::{BigNat, Ratio};
use cdr_query::{
    evaluate, keywidth, max_disjunct_keywidth, rewrite_to_ucq, Query, QueryClass, UcqQuery,
};
use cdr_repairdb::{count_repairs, BlockPartition, Database, FactId, KeySet, RepairIter};

use crate::approx::{ApproxConfig, ApproxCount, FprasEstimator, KarpLubyEstimator};
use crate::exact::{count_by_enumeration, count_union_of_boxes, DEFAULT_EXACT_BUDGET};
use crate::{distinct_boxes, enumerate_certificates, CountError, SelectorBox};

/// What question a [`CountRequest`] asks about its query.
#[derive(Clone, Debug, PartialEq)]
pub enum Semantics {
    /// The exact number of repairs entailing the query (`#CQA`).
    Exact,
    /// An (ε, δ)-approximation of the exact count (Theorem 6.2).
    Approximate {
        /// Relative error bound `ε > 0`.
        epsilon: f64,
        /// Failure probability `δ ∈ (0, 1)`.
        delta: f64,
        /// Seed for the pseudo-random generator, for reproducible runs.
        seed: u64,
    },
    /// The decision problem `#CQA>0`: does *some* repair entail the query?
    Decision,
    /// Certain-answer semantics: does *every* repair entail the query?
    CertainAnswer,
    /// The relative frequency of the query over the repairs (Section 1.1).
    Frequency,
}

/// How the engine should compute the answer.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Strategy {
    /// Choose automatically from the query class and the semantics: the
    /// certificate/box machinery for existential positive queries, repair
    /// enumeration for arbitrary first-order queries, and the paper's
    /// FPRAS for approximations.
    #[default]
    Auto,
    /// Enumerate every repair (any first-order query; exponential).
    Enumeration,
    /// The certificate/box algorithm (existential positive queries only).
    CertificateBoxes,
    /// The Karp–Luby baseline estimator (approximate semantics only).
    KarpLuby,
}

impl Strategy {
    fn name(self) -> &'static str {
        match self {
            Strategy::Auto => "Auto",
            Strategy::Enumeration => "Enumeration",
            Strategy::CertificateBoxes => "CertificateBoxes",
            Strategy::KarpLuby => "KarpLuby",
        }
    }
}

/// A single question for a [`RepairEngine`]: a query, the [`Semantics`] to
/// apply, and the tuning knobs ([`Strategy`], budget, sample cap, seed).
///
/// ```
/// use cdr_core::{CountRequest, Semantics, Strategy};
/// use cdr_query::parse_query;
///
/// let q = parse_query("EXISTS n . Employee(2, n, 'IT')").unwrap();
/// let request = CountRequest::exact(q.clone())
///     .with_strategy(Strategy::CertificateBoxes)
///     .with_budget(1_000_000);
/// assert_eq!(request.semantics(), &Semantics::Exact);
/// assert_eq!(request.strategy(), Strategy::CertificateBoxes);
/// assert_eq!(request.budget(), Some(1_000_000));
///
/// let approx = CountRequest::approximate(q, 0.1, 0.05).with_seed(42);
/// assert!(matches!(
///     approx.semantics(),
///     Semantics::Approximate { seed: 42, .. }
/// ));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CountRequest {
    query: Query,
    semantics: Semantics,
    strategy: Strategy,
    budget: Option<u64>,
    sample_cap: u64,
}

impl CountRequest {
    /// A request with explicit semantics and default knobs.
    pub fn new(query: Query, semantics: Semantics) -> Self {
        CountRequest {
            query,
            semantics,
            strategy: Strategy::Auto,
            budget: None,
            sample_cap: ApproxConfig::default().max_samples,
        }
    }

    /// Asks for the exact repair count of the query.
    pub fn exact(query: Query) -> Self {
        CountRequest::new(query, Semantics::Exact)
    }

    /// Asks for an (ε, δ)-approximate count with the default seed.
    pub fn approximate(query: Query, epsilon: f64, delta: f64) -> Self {
        CountRequest::new(
            query,
            Semantics::Approximate {
                epsilon,
                delta,
                seed: ApproxConfig::default().seed,
            },
        )
    }

    /// Asks whether some repair entails the query (`#CQA>0`).
    pub fn decision(query: Query) -> Self {
        CountRequest::new(query, Semantics::Decision)
    }

    /// Asks whether every repair entails the query (certain answers).
    pub fn certain_answer(query: Query) -> Self {
        CountRequest::new(query, Semantics::CertainAnswer)
    }

    /// Asks for the relative frequency of the query over the repairs.
    pub fn frequency(query: Query) -> Self {
        CountRequest::new(query, Semantics::Frequency)
    }

    /// Forces a particular [`Strategy`] instead of `Auto`.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Caps the number of repairs (or per-component assignments) exact
    /// algorithms may enumerate; defaults to the engine's budget.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Caps the number of samples an approximation may draw.
    pub fn with_sample_cap(mut self, sample_cap: u64) -> Self {
        self.sample_cap = sample_cap;
        self
    }

    /// Sets the random seed (only meaningful for approximate semantics).
    pub fn with_seed(mut self, seed: u64) -> Self {
        if let Semantics::Approximate { seed: s, .. } = &mut self.semantics {
            *s = seed;
        }
        self
    }

    /// The query being asked about.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The semantics requested.
    pub fn semantics(&self) -> &Semantics {
        &self.semantics
    }

    /// The strategy requested (before `Auto` resolution).
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The explicit budget, if one was set.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// The sample cap for approximate semantics.
    pub fn sample_cap(&self) -> u64 {
        self.sample_cap
    }
}

/// The tagged payload of a [`CountReport`].
#[derive(Clone, Debug)]
pub enum Answer {
    /// An exact repair count.
    Count(BigNat),
    /// An approximate count with its sampling diagnostics.
    Estimate(ApproxCount),
    /// An exact relative frequency.
    Frequency(Ratio),
    /// A yes/no answer (decision or certain-answer semantics).
    Decision(bool),
}

impl Answer {
    /// The exact count, if this answer is one.
    pub fn as_count(&self) -> Option<&BigNat> {
        match self {
            Answer::Count(c) => Some(c),
            _ => None,
        }
    }

    /// The estimate, if this answer is one.
    pub fn as_estimate(&self) -> Option<&ApproxCount> {
        match self {
            Answer::Estimate(e) => Some(e),
            _ => None,
        }
    }

    /// The frequency, if this answer is one.
    pub fn as_frequency(&self) -> Option<&Ratio> {
        match self {
            Answer::Frequency(f) => Some(f),
            _ => None,
        }
    }

    /// The boolean, if this answer is a decision.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Answer::Decision(b) => Some(*b),
            _ => None,
        }
    }
}

/// The uniform result of [`RepairEngine::run`]: the [`Answer`] plus the
/// provenance of how it was computed.
#[derive(Clone, Debug)]
pub struct CountReport {
    /// The answer, tagged by kind.
    pub answer: Answer,
    /// The strategy that actually produced the answer (`Auto` resolved).
    pub strategy: Strategy,
    /// Number of certificates found, when the certificate machinery ran.
    pub certificates: Option<usize>,
    /// The sample size the approximation theory asked for (0 for exact
    /// semantics).
    pub samples_requested: u64,
    /// The number of samples actually drawn (0 for exact semantics).
    pub samples_used: u64,
    /// Wall-clock time spent answering the request.
    pub duration: Duration,
    /// Whether the query plan came from the engine's cache.
    pub plan_cached: bool,
}

/// Counters describing the engine's plan cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests answered with an already-planned query.
    pub hits: u64,
    /// Requests that had to plan the query from scratch.
    pub misses: u64,
    /// Number of plans currently cached.
    pub entries: u64,
}

/// Everything the engine ever needs to know about one query, computed at
/// most once. Certificate boxes and prepared estimators are filled lazily
/// because not every semantics needs them.
struct QueryPlan {
    query: Query,
    class: QueryClass,
    keywidth: usize,
    /// The UCQ rewrite, or the rewrite error for genuinely first-order
    /// queries (kept so forced box strategies report the right error).
    ucq: Result<UcqQuery, CountError>,
    /// `max_disjunct_keywidth` of the rewrite (None for FO queries).
    disjunct_keywidth: Option<usize>,
    certificates: OnceLock<Result<CertSummary, CountError>>,
    estimators: OnceLock<Result<Estimators, CountError>>,
}

/// The certificate boxes of a query over the engine's fixed database.
struct CertSummary {
    /// Total number of certificates (before box deduplication).
    count: usize,
    /// The distinct selector boxes, shared with the prepared estimators.
    boxes: Arc<Vec<SelectorBox>>,
    /// Whether some box pins nothing (covers every repair).
    has_unconstrained: bool,
}

/// Both prepared estimators for a query, sharing the cached boxes.
struct Estimators {
    fpras: FprasEstimator,
    karp_luby: KarpLubyEstimator,
}

impl QueryPlan {
    fn build(query: &Query, db: &Database, keys: &KeySet) -> Self {
        let class = query.classify();
        let ucq = rewrite_to_ucq(query).map_err(CountError::from);
        let disjunct_keywidth = ucq
            .as_ref()
            .ok()
            .map(|u| max_disjunct_keywidth(u, db.schema(), keys));
        QueryPlan {
            query: query.clone(),
            class,
            keywidth: keywidth(query, db.schema(), keys),
            ucq,
            disjunct_keywidth,
            certificates: OnceLock::new(),
            estimators: OnceLock::new(),
        }
    }

    fn cert_summary(&self, engine: &RepairEngine) -> Result<&CertSummary, CountError> {
        self.certificates
            .get_or_init(|| {
                let ucq = self.ucq.as_ref().map_err(Clone::clone)?;
                let certs = enumerate_certificates(&engine.db, &engine.keys, &engine.blocks, ucq)?;
                let boxes = distinct_boxes(&certs);
                Ok(CertSummary {
                    count: certs.len(),
                    has_unconstrained: boxes.iter().any(SelectorBox::is_unconstrained),
                    boxes: Arc::new(boxes),
                })
            })
            .as_ref()
            .map_err(Clone::clone)
    }

    fn estimators(&self, engine: &RepairEngine) -> Result<&Estimators, CountError> {
        self.estimators
            .get_or_init(|| {
                let certs = self.cert_summary(engine)?;
                let disjunct_keywidth = self
                    .disjunct_keywidth
                    .expect("cert_summary succeeded, so the query rewrote to a UCQ");
                Ok(Estimators {
                    fpras: FprasEstimator::from_parts(
                        Arc::clone(&engine.blocks),
                        Arc::clone(&certs.boxes),
                        disjunct_keywidth,
                        engine.total_repairs.clone(),
                    ),
                    karp_luby: KarpLubyEstimator::from_parts(
                        Arc::clone(&engine.blocks),
                        Arc::clone(&certs.boxes),
                        engine.total_repairs.clone(),
                    ),
                })
            })
            .as_ref()
            .map_err(Clone::clone)
    }
}

/// An owned, `Send + Sync`, caching engine answering repair-counting
/// requests over one fixed database and key set.
///
/// ```
/// use cdr_core::{CountRequest, RepairEngine};
/// use cdr_query::parse_query;
/// use cdr_repairdb::{Database, KeySet, Schema};
///
/// let mut schema = Schema::new();
/// schema.add_relation("Employee", 3).unwrap();
/// let keys = KeySet::builder(&schema).key("Employee", 1).unwrap().build();
/// let mut db = Database::new(schema);
/// db.insert_parsed("Employee(1, 'Bob', 'HR')").unwrap();
/// db.insert_parsed("Employee(1, 'Bob', 'IT')").unwrap();
/// db.insert_parsed("Employee(2, 'Alice', 'IT')").unwrap();
/// db.insert_parsed("Employee(2, 'Tim', 'IT')").unwrap();
///
/// let engine = RepairEngine::new(db, keys);
/// let q = parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap();
///
/// assert_eq!(engine.total_repairs().to_u64(), Some(4));
/// let exact = engine.run(&CountRequest::exact(q.clone())).unwrap();
/// assert_eq!(exact.answer.as_count().unwrap().to_u64(), Some(2));
/// let freq = engine.run(&CountRequest::frequency(q.clone())).unwrap();
/// assert_eq!(freq.answer.as_frequency().unwrap().to_string(), "1/2");
///
/// // The second run reused the cached plan.
/// assert!(freq.plan_cached);
/// assert_eq!(engine.cache_stats().misses, 1);
/// ```
pub struct RepairEngine {
    db: Arc<Database>,
    keys: Arc<KeySet>,
    blocks: Arc<BlockPartition>,
    total_repairs: BigNat,
    default_budget: u64,
    plans: Mutex<HashMap<String, Arc<QueryPlan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl RepairEngine {
    /// Builds an engine that owns the database and key set.
    ///
    /// The block partition and the total repair count are computed here,
    /// once, and shared by every subsequent request.
    pub fn new(db: Database, keys: KeySet) -> Self {
        RepairEngine::from_arcs(Arc::new(db), Arc::new(keys))
    }

    /// Builds an engine over shared handles, avoiding a copy when the
    /// caller already holds the database in an [`Arc`].
    pub fn from_arcs(db: Arc<Database>, keys: Arc<KeySet>) -> Self {
        let blocks = Arc::new(BlockPartition::new(&db, &keys));
        let total_repairs = count_repairs(&blocks);
        RepairEngine {
            db,
            keys,
            blocks,
            total_repairs,
            default_budget: DEFAULT_EXACT_BUDGET,
            plans: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Sets the budget used when a request does not carry its own.
    pub fn with_default_budget(mut self, budget: u64) -> Self {
        self.default_budget = budget;
        self
    }

    /// The database being counted over.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// A shareable handle to the database.
    pub fn database_arc(&self) -> Arc<Database> {
        Arc::clone(&self.db)
    }

    /// The primary keys in force.
    pub fn keys(&self) -> &KeySet {
        &self.keys
    }

    /// A shareable handle to the key set.
    pub fn keys_arc(&self) -> Arc<KeySet> {
        Arc::clone(&self.keys)
    }

    /// The block partition `B₁, …, Bₙ`, computed once at construction.
    pub fn blocks(&self) -> &BlockPartition {
        &self.blocks
    }

    /// The total number of repairs `∏ |Bᵢ|`, computed once at construction.
    pub fn total_repairs(&self) -> &BigNat {
        &self.total_repairs
    }

    /// The engine's default exact budget.
    pub fn default_budget(&self) -> u64 {
        self.default_budget
    }

    /// Plan-cache counters: hits, misses and resident entries.
    pub fn cache_stats(&self) -> CacheStats {
        let entries = self
            .plans
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .len() as u64;
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
        }
    }

    /// The keywidth `kw(Q, Σ)` of a query (cached with the query's plan).
    pub fn keywidth(&self, query: &Query) -> usize {
        self.plan(query).0.keywidth
    }

    /// The disjunct keywidth of a query — the exponent in the FPRAS
    /// sample-size bound. Errors for genuinely first-order queries.
    pub fn disjunct_keywidth(&self, query: &Query) -> Result<usize, CountError> {
        let (plan, _) = self.plan(query);
        plan.ucq.as_ref().map_err(Clone::clone)?;
        Ok(plan
            .disjunct_keywidth
            .expect("rewrite succeeded, so the disjunct keywidth was computed"))
    }

    /// Answers one request.
    pub fn run(&self, request: &CountRequest) -> Result<CountReport, CountError> {
        let started = Instant::now();
        let (plan, plan_cached) = self.plan(&request.query);
        let budget = request.budget.unwrap_or(self.default_budget);
        let mut report = CountReport {
            answer: Answer::Decision(false),
            strategy: request.strategy,
            certificates: None,
            samples_requested: 0,
            samples_used: 0,
            duration: Duration::ZERO,
            plan_cached,
        };
        match &request.semantics {
            Semantics::Exact => {
                let (count, strategy) = self.exact_count(
                    &plan,
                    request.strategy,
                    budget,
                    "exact counting",
                    &mut report,
                )?;
                report.strategy = strategy;
                report.answer = Answer::Count(count);
            }
            Semantics::Frequency => {
                let (count, strategy) = self.exact_count(
                    &plan,
                    request.strategy,
                    budget,
                    "relative frequency",
                    &mut report,
                )?;
                report.strategy = strategy;
                report.answer = Answer::Frequency(Ratio::new(count, self.total_repairs.clone()));
            }
            Semantics::Decision => {
                let (holds, strategy) =
                    self.decide_some(&plan, request.strategy, budget, &mut report)?;
                report.strategy = strategy;
                report.answer = Answer::Decision(holds);
            }
            Semantics::CertainAnswer => {
                let (holds, strategy) =
                    self.decide_every(&plan, request.strategy, budget, &mut report)?;
                report.strategy = strategy;
                report.answer = Answer::Decision(holds);
            }
            Semantics::Approximate {
                epsilon,
                delta,
                seed,
            } => {
                let config = ApproxConfig {
                    epsilon: *epsilon,
                    delta: *delta,
                    max_samples: request.sample_cap,
                    seed: *seed,
                };
                let (estimate, strategy) =
                    self.approximate(&plan, request.strategy, &config, &mut report)?;
                report.strategy = strategy;
                report.samples_requested = estimate.samples_requested;
                report.samples_used = estimate.samples_used;
                report.answer = Answer::Estimate(estimate);
            }
        }
        report.duration = started.elapsed();
        Ok(report)
    }

    /// Answers a batch of requests, sharing the plan cache across them.
    pub fn run_batch(&self, requests: &[CountRequest]) -> Vec<Result<CountReport, CountError>> {
        requests.iter().map(|request| self.run(request)).collect()
    }

    /// Fetches or builds the plan for a query. The boolean is `true` on a
    /// cache hit.
    fn plan(&self, query: &Query) -> (Arc<QueryPlan>, bool) {
        let key = query.to_string();
        {
            let plans = self
                .plans
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            if let Some(plan) = plans.get(&key) {
                // Display collisions are not expected, but equality is
                // cheap insurance against serving a wrong plan.
                if plan.query == *query {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return (Arc::clone(plan), true);
                }
            }
        }
        let plan = Arc::new(QueryPlan::build(query, &self.db, &self.keys));
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut plans = self
            .plans
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let entry = plans.entry(key).or_insert_with(|| Arc::clone(&plan));
        // If another thread planned the same query first, prefer the
        // resident plan so lazily-computed artifacts are shared.
        if entry.query == *query {
            (Arc::clone(entry), false)
        } else {
            (plan, false)
        }
    }

    /// Resolves `Auto` for exact semantics and rejects nonsensical
    /// strategy/semantics combinations.
    fn resolve_exact(
        &self,
        plan: &QueryPlan,
        strategy: Strategy,
        semantics: &'static str,
    ) -> Result<Strategy, CountError> {
        match strategy {
            Strategy::Auto => Ok(if plan.class == QueryClass::FirstOrder {
                Strategy::Enumeration
            } else {
                Strategy::CertificateBoxes
            }),
            Strategy::KarpLuby => Err(CountError::UnsupportedStrategy {
                semantics,
                strategy: strategy.name(),
            }),
            other => Ok(other),
        }
    }

    fn exact_count(
        &self,
        plan: &QueryPlan,
        strategy: Strategy,
        budget: u64,
        semantics: &'static str,
        report: &mut CountReport,
    ) -> Result<(BigNat, Strategy), CountError> {
        let effective = self.resolve_exact(plan, strategy, semantics)?;
        match effective {
            Strategy::Enumeration => {
                let count = count_by_enumeration(&self.db, &self.keys, &plan.query, budget)?;
                Ok((count, Strategy::Enumeration))
            }
            Strategy::CertificateBoxes => {
                let certs = plan.cert_summary(self)?;
                report.certificates = Some(certs.count);
                let count = count_union_of_boxes(&self.blocks, &certs.boxes, budget)?;
                Ok((count, Strategy::CertificateBoxes))
            }
            _ => unreachable!("resolve_exact returns a concrete exact strategy"),
        }
    }

    fn decide_some(
        &self,
        plan: &QueryPlan,
        strategy: Strategy,
        budget: u64,
        report: &mut CountReport,
    ) -> Result<(bool, Strategy), CountError> {
        let effective = self.resolve_exact(plan, strategy, "the decision problem")?;
        match effective {
            Strategy::Enumeration => {
                let holds = crate::decision::holds_in_some_repair_fo_bounded(
                    &self.db,
                    &self.blocks,
                    &plan.query,
                    budget,
                )?;
                Ok((holds, Strategy::Enumeration))
            }
            Strategy::CertificateBoxes => {
                let certs = plan.cert_summary(self)?;
                report.certificates = Some(certs.count);
                Ok((certs.count > 0, Strategy::CertificateBoxes))
            }
            _ => unreachable!("resolve_exact returns a concrete exact strategy"),
        }
    }

    fn decide_every(
        &self,
        plan: &QueryPlan,
        strategy: Strategy,
        budget: u64,
        report: &mut CountReport,
    ) -> Result<(bool, Strategy), CountError> {
        let effective = self.resolve_exact(plan, strategy, "certain answers")?;
        match effective {
            Strategy::Enumeration => {
                // Witness search for a refuting repair: stop at the first
                // repair that does NOT entail the query.
                let mut visited: u64 = 0;
                for repair in RepairIter::new(&self.blocks) {
                    visited += 1;
                    if visited > budget {
                        return Err(CountError::ExactBudgetExceeded {
                            what: "certain-answer repair enumeration".into(),
                            budget,
                        });
                    }
                    let repaired = repair.to_database(&self.db);
                    if !evaluate(&repaired, &plan.query)? {
                        return Ok((false, Strategy::Enumeration));
                    }
                }
                Ok((true, Strategy::Enumeration))
            }
            Strategy::CertificateBoxes => {
                let certs = plan.cert_summary(self)?;
                report.certificates = Some(certs.count);
                if certs.has_unconstrained {
                    // Some certificate covers every repair.
                    return Ok((true, Strategy::CertificateBoxes));
                }
                if certs.boxes.is_empty() {
                    // No repair entails the query; there is always at
                    // least one repair (the empty database has one).
                    return Ok((false, Strategy::CertificateBoxes));
                }
                if self.refuting_choice(&certs.boxes).is_some() {
                    // Found block evidence: a repair avoiding every box.
                    return Ok((false, Strategy::CertificateBoxes));
                }
                // Inconclusive cheap checks: fall back to the exact count.
                let count = count_union_of_boxes(&self.blocks, &certs.boxes, budget)?;
                Ok((count == self.total_repairs, Strategy::CertificateBoxes))
            }
            _ => unreachable!("resolve_exact returns a concrete exact strategy"),
        }
    }

    /// Greedily builds a repair avoiding every box, processing one box at
    /// a time and deviating on a pinned block. Sound but incomplete: a
    /// `Some` result is a genuine refutation of certainty, a `None` means
    /// the caller must fall back to exact counting.
    fn refuting_choice(&self, boxes: &[SelectorBox]) -> Option<HashMap<usize, FactId>> {
        let mut choice: HashMap<usize, FactId> = HashMap::new();
        for b in boxes {
            let already_avoided = b.pins().any(|(block, fact)| {
                choice
                    .get(&block.index())
                    .is_some_and(|&chosen| chosen != fact)
            });
            if already_avoided {
                continue;
            }
            let mut deviated = false;
            for (block, fact) in b.pins() {
                if choice.contains_key(&block.index()) {
                    // Already matching this pin; deviating here would
                    // disturb an earlier box's avoidance.
                    continue;
                }
                if let Some(&alternative) = self
                    .blocks
                    .block(block)
                    .facts()
                    .iter()
                    .find(|&&candidate| candidate != fact)
                {
                    choice.insert(block.index(), alternative);
                    deviated = true;
                    break;
                }
            }
            if !deviated {
                return None;
            }
        }
        Some(choice)
    }

    fn approximate(
        &self,
        plan: &QueryPlan,
        strategy: Strategy,
        config: &ApproxConfig,
        report: &mut CountReport,
    ) -> Result<(ApproxCount, Strategy), CountError> {
        let effective = match strategy {
            Strategy::Auto => Strategy::CertificateBoxes,
            Strategy::KarpLuby => Strategy::KarpLuby,
            other => {
                return Err(CountError::UnsupportedStrategy {
                    semantics: "approximation",
                    strategy: other.name(),
                })
            }
        };
        let estimators = plan.estimators(self)?;
        if let Ok(certs) = plan.cert_summary(self) {
            report.certificates = Some(certs.count);
        }
        let estimate = match effective {
            Strategy::CertificateBoxes => estimators.fpras.estimate(config)?,
            Strategy::KarpLuby => estimators.karp_luby.estimate(config)?,
            _ => unreachable!("resolved above"),
        };
        Ok((estimate, effective))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdr_query::parse_query;
    use cdr_repairdb::Schema;

    fn employee_engine() -> RepairEngine {
        let mut schema = Schema::new();
        schema.add_relation("Employee", 3).unwrap();
        let keys = KeySet::builder(&schema).key("Employee", 1).unwrap().build();
        let mut db = Database::new(schema);
        db.insert_parsed("Employee(1, 'Bob', 'HR')").unwrap();
        db.insert_parsed("Employee(1, 'Bob', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Alice', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Tim', 'IT')").unwrap();
        RepairEngine::new(db, keys)
    }

    fn example_query() -> Query {
        parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap()
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RepairEngine>();
        assert_send_sync::<CountRequest>();
        assert_send_sync::<CountReport>();
    }

    #[test]
    fn second_run_hits_the_plan_cache() {
        let engine = employee_engine();
        let request = CountRequest::exact(example_query());
        let first = engine.run(&request).unwrap();
        assert!(!first.plan_cached);
        let second = engine.run(&request).unwrap();
        assert!(second.plan_cached);
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1);
        // Different semantics over the same query still share the plan.
        engine
            .run(&CountRequest::frequency(example_query()))
            .unwrap();
        assert_eq!(engine.cache_stats().hits, 2);
    }

    #[test]
    fn all_semantics_answer_the_running_example() {
        let engine = employee_engine();
        let q = example_query();
        let reports = engine.run_batch(&[
            CountRequest::exact(q.clone()),
            CountRequest::frequency(q.clone()),
            CountRequest::decision(q.clone()),
            CountRequest::certain_answer(q.clone()),
            CountRequest::approximate(q.clone(), 0.1, 0.05),
        ]);
        let reports: Vec<CountReport> = reports.into_iter().collect::<Result<_, _>>().unwrap();
        assert_eq!(reports[0].answer.as_count().unwrap().to_u64(), Some(2));
        assert_eq!(reports[1].answer.as_frequency().unwrap().to_string(), "1/2");
        assert_eq!(reports[2].answer.as_bool(), Some(true));
        assert_eq!(reports[3].answer.as_bool(), Some(false));
        let estimate = reports[4].answer.as_estimate().unwrap();
        assert!(estimate.relative_error(&BigNat::from(2u64)) <= 0.1);
        assert!(reports[4].samples_used > 0);
        // One planning miss, four hits.
        assert_eq!(engine.cache_stats().misses, 1);
        assert_eq!(engine.cache_stats().hits, 4);
    }

    #[test]
    fn strategies_resolve_per_class() {
        let engine = employee_engine();
        let positive = parse_query("EXISTS n . Employee(2, n, 'IT')").unwrap();
        let report = engine.run(&CountRequest::exact(positive)).unwrap();
        assert_eq!(report.strategy, Strategy::CertificateBoxes);
        assert!(report.certificates.is_some());
        let negated = parse_query("NOT EXISTS i, n . Employee(i, n, 'HR')").unwrap();
        let report = engine.run(&CountRequest::exact(negated)).unwrap();
        assert_eq!(report.strategy, Strategy::Enumeration);
        assert_eq!(report.answer.as_count().unwrap().to_u64(), Some(2));
        assert!(report.certificates.is_none());
    }

    #[test]
    fn unsupported_strategy_combinations_are_rejected() {
        let engine = employee_engine();
        let q = example_query();
        let exact_kl = CountRequest::exact(q.clone()).with_strategy(Strategy::KarpLuby);
        assert!(matches!(
            engine.run(&exact_kl),
            Err(CountError::UnsupportedStrategy { .. })
        ));
        let approx_enum =
            CountRequest::approximate(q.clone(), 0.1, 0.05).with_strategy(Strategy::Enumeration);
        assert!(matches!(
            engine.run(&approx_enum),
            Err(CountError::UnsupportedStrategy { .. })
        ));
        let fo = parse_query("NOT EXISTS i, n . Employee(i, n, 'HR')").unwrap();
        let forced_boxes = CountRequest::exact(fo).with_strategy(Strategy::CertificateBoxes);
        assert!(matches!(
            engine.run(&forced_boxes),
            Err(CountError::Query(_))
        ));
    }

    #[test]
    fn certain_answers_match_the_counting_definition() {
        let engine = employee_engine();
        for (text, expected) in [
            ("EXISTS n . Employee(2, n, 'IT')", true),
            ("EXISTS n, d . Employee(1, n, d)", true),
            ("Employee(1, 'Bob', 'HR')", false),
            ("EXISTS n, d . Employee(3, n, d)", false),
            ("TRUE", true),
            ("FALSE", false),
        ] {
            let q = parse_query(text).unwrap();
            let report = engine
                .run(&CountRequest::certain_answer(q.clone()))
                .unwrap();
            assert_eq!(report.answer.as_bool(), Some(expected), "{text}");
            // Cross-check against the definition: count == total.
            let count = engine
                .run(&CountRequest::exact(q))
                .unwrap()
                .answer
                .as_count()
                .unwrap()
                .clone();
            assert_eq!(count == *engine.total_repairs(), expected, "{text}");
        }
    }

    #[test]
    fn certain_answer_refutes_without_counting_via_block_evidence() {
        // A single-box query over a large database: the greedy refutation
        // must answer without touching the (budget-guarded) counter.
        let mut schema = Schema::new();
        schema.add_relation("R", 2).unwrap();
        let keys = KeySet::builder(&schema).key("R", 1).unwrap().build();
        let mut db = Database::new(schema);
        for k in 0..40i64 {
            db.insert_parsed(&format!("R({k}, 'a')")).unwrap();
            db.insert_parsed(&format!("R({k}, 'b')")).unwrap();
        }
        let engine = RepairEngine::new(db, keys);
        let q = parse_query("R(0, 'a')").unwrap();
        // 2^40 repairs: a full count would blow this budget immediately,
        // so a false answer proves the refutation short-circuit ran.
        let report = engine
            .run(&CountRequest::certain_answer(q).with_budget(8))
            .unwrap();
        assert_eq!(report.answer.as_bool(), Some(false));
    }

    #[test]
    fn decision_enumeration_strategy_is_exhaustive() {
        let engine = employee_engine();
        let q = parse_query("NOT EXISTS i, n . Employee(i, n, 'HR')").unwrap();
        let report = engine.run(&CountRequest::decision(q)).unwrap();
        assert_eq!(report.answer.as_bool(), Some(true));
        assert_eq!(report.strategy, Strategy::Enumeration);
        let q = parse_query("NOT EXISTS d . Employee(1, 'Bob', d)").unwrap();
        let report = engine.run(&CountRequest::decision(q)).unwrap();
        assert_eq!(report.answer.as_bool(), Some(false));
    }

    #[test]
    fn budget_and_sample_cap_are_honoured() {
        let engine = employee_engine();
        let q = parse_query("TRUE").unwrap();
        let strict = CountRequest::exact(q.clone())
            .with_strategy(Strategy::Enumeration)
            .with_budget(2);
        assert!(matches!(
            engine.run(&strict),
            Err(CountError::ExactBudgetExceeded { .. })
        ));
        let capped = CountRequest::approximate(example_query(), 0.001, 0.05).with_sample_cap(100);
        let report = engine.run(&capped).unwrap();
        assert_eq!(report.samples_used, 100);
        assert!(report.samples_requested > 100);
    }

    #[test]
    fn decision_enumeration_honours_the_budget() {
        let engine = employee_engine();
        // A first-order query no repair satisfies forces the witness
        // search to visit every repair — the budget must stop it.
        let q = parse_query("NOT EXISTS d . Employee(1, 'Bob', d)").unwrap();
        let strict = CountRequest::decision(q.clone()).with_budget(2);
        assert!(matches!(
            engine.run(&strict),
            Err(CountError::ExactBudgetExceeded { .. })
        ));
        // A sufficient budget still answers.
        let report = engine
            .run(&CountRequest::decision(q).with_budget(4))
            .unwrap();
        assert_eq!(report.answer.as_bool(), Some(false));
    }

    #[test]
    fn frequency_strategy_errors_name_the_semantics() {
        let engine = employee_engine();
        let err = engine
            .run(&CountRequest::frequency(example_query()).with_strategy(Strategy::KarpLuby))
            .unwrap_err();
        assert!(err.to_string().contains("relative frequency"), "{err}");
    }

    #[test]
    fn karp_luby_strategy_runs_through_the_engine() {
        let engine = employee_engine();
        let request = CountRequest::approximate(example_query(), 0.1, 0.05)
            .with_strategy(Strategy::KarpLuby)
            .with_seed(7);
        let report = engine.run(&request).unwrap();
        assert_eq!(report.strategy, Strategy::KarpLuby);
        let estimate = report.answer.as_estimate().unwrap();
        assert!(estimate.relative_error(&BigNat::from(2u64)) <= 0.1);
    }

    #[test]
    fn engine_is_usable_across_threads() {
        let engine = Arc::new(employee_engine());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let engine = Arc::clone(&engine);
            handles.push(std::thread::spawn(move || {
                let report = engine.run(&CountRequest::exact(example_query())).unwrap();
                report.answer.as_count().unwrap().to_u64()
            }));
        }
        for handle in handles {
            assert_eq!(handle.join().unwrap(), Some(2));
        }
        let stats = engine.cache_stats();
        assert_eq!(stats.hits + stats.misses, 4);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn keywidths_are_served_from_the_plan() {
        let engine = employee_engine();
        let q = example_query();
        assert_eq!(engine.keywidth(&q), 2);
        assert_eq!(engine.disjunct_keywidth(&q).unwrap(), 2);
        let fo = parse_query("NOT EXISTS i, n . Employee(i, n, 'HR')").unwrap();
        assert!(engine.disjunct_keywidth(&fo).is_err());
        // Three lookups, one plan.
        assert_eq!(engine.cache_stats().entries, 2);
    }
}
