//! The [`RepairCounter`] facade.
//!
//! A `RepairCounter` bundles a database and a set of primary keys and
//! exposes every operation the paper studies: the total repair count, the
//! decision problem, exact counting (with a choice of algorithm), relative
//! frequency, keywidth, and the two approximation schemes.

use cdr_num::{BigNat, Ratio};
use cdr_query::{
    keywidth, max_disjunct_keywidth, rewrite_to_ucq, Query, QueryClass, UcqQuery,
};
use cdr_repairdb::{count_repairs, BlockPartition, Database, KeySet};

use crate::approx::{ApproxConfig, ApproxCount, FprasEstimator, KarpLubyEstimator};
use crate::exact::{count_by_enumeration, DEFAULT_EXACT_BUDGET};
use crate::{holds_in_some_repair, relative_frequency, CountError};

/// Which exact algorithm to use.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ExactStrategy {
    /// Choose automatically: the certificate/box algorithm for existential
    /// positive queries, enumeration otherwise.
    #[default]
    Auto,
    /// Enumerate every repair and evaluate the query on it (works for any
    /// first-order query).
    Enumeration,
    /// The certificate/box algorithm (existential positive queries only).
    CertificateBoxes,
}

/// The result of an exact count.
#[derive(Clone, Debug)]
pub struct CountOutcome {
    /// The number of repairs that entail the query.
    pub count: BigNat,
    /// The strategy that actually produced the count.
    pub strategy: ExactStrategy,
    /// Number of certificates found (only for the box strategy).
    pub certificates: Option<usize>,
}

/// Counts repairs of a fixed database w.r.t. a fixed set of primary keys.
///
/// ```
/// use cdr_core::RepairCounter;
/// use cdr_query::parse_query;
/// use cdr_repairdb::{Database, KeySet, Schema};
///
/// let mut schema = Schema::new();
/// schema.add_relation("Employee", 3).unwrap();
/// let keys = KeySet::builder(&schema).key("Employee", 1).unwrap().build();
/// let mut db = Database::new(schema);
/// db.insert_parsed("Employee(1, 'Bob', 'HR')").unwrap();
/// db.insert_parsed("Employee(1, 'Bob', 'IT')").unwrap();
/// db.insert_parsed("Employee(2, 'Alice', 'IT')").unwrap();
/// db.insert_parsed("Employee(2, 'Tim', 'IT')").unwrap();
///
/// let counter = RepairCounter::new(&db, &keys);
/// let q = parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap();
/// assert_eq!(counter.total_repairs().to_u64(), Some(4));
/// assert_eq!(counter.count(&q).unwrap().count.to_u64(), Some(2));
/// assert_eq!(counter.frequency(&q).unwrap().to_string(), "1/2");
/// ```
pub struct RepairCounter<'a> {
    db: &'a Database,
    keys: &'a KeySet,
    budget: u64,
}

impl<'a> RepairCounter<'a> {
    /// Creates a counter with the default exact budget.
    pub fn new(db: &'a Database, keys: &'a KeySet) -> Self {
        RepairCounter {
            db,
            keys,
            budget: DEFAULT_EXACT_BUDGET,
        }
    }

    /// Sets the exact-counting budget (maximum number of repairs or
    /// per-component assignments that exact algorithms may enumerate).
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// The database being counted over.
    pub fn database(&self) -> &Database {
        self.db
    }

    /// The primary keys in force.
    pub fn keys(&self) -> &KeySet {
        self.keys
    }

    /// The block partition `B₁, …, Bₙ` of the database.
    pub fn blocks(&self) -> BlockPartition {
        BlockPartition::new(self.db, self.keys)
    }

    /// The total number of repairs `∏ |Bᵢ|` (the paper's easy denominator).
    pub fn total_repairs(&self) -> BigNat {
        count_repairs(&self.blocks())
    }

    /// The keywidth `kw(Q, Σ)` of a query against this counter's keys.
    pub fn keywidth(&self, query: &Query) -> usize {
        keywidth(query, self.db.schema(), self.keys)
    }

    /// The decision problem `#CQA>0`: does some repair entail the query?
    pub fn holds_in_some_repair(&self, query: &Query) -> Result<bool, CountError> {
        holds_in_some_repair(self.db, self.keys, query)
    }

    /// Certain-answer semantics: does *every* repair entail the query?
    pub fn holds_in_every_repair(&self, query: &Query) -> Result<bool, CountError> {
        let outcome = self.count(query)?;
        Ok(outcome.count == self.total_repairs())
    }

    /// Counts the repairs entailing the query with the automatic strategy.
    pub fn count(&self, query: &Query) -> Result<CountOutcome, CountError> {
        self.count_with(query, ExactStrategy::Auto)
    }

    /// Counts the repairs entailing the query with an explicit strategy.
    pub fn count_with(
        &self,
        query: &Query,
        strategy: ExactStrategy,
    ) -> Result<CountOutcome, CountError> {
        let effective = match strategy {
            ExactStrategy::Auto => {
                if query.classify() == QueryClass::FirstOrder {
                    ExactStrategy::Enumeration
                } else {
                    ExactStrategy::CertificateBoxes
                }
            }
            other => other,
        };
        match effective {
            ExactStrategy::Enumeration => {
                let count = count_by_enumeration(self.db, self.keys, query, self.budget)?;
                Ok(CountOutcome {
                    count,
                    strategy: ExactStrategy::Enumeration,
                    certificates: None,
                })
            }
            ExactStrategy::CertificateBoxes => {
                let ucq = rewrite_to_ucq(query)?;
                self.count_ucq(&ucq)
            }
            ExactStrategy::Auto => unreachable!("resolved above"),
        }
    }

    /// Counts the repairs entailing an already-rewritten UCQ with the
    /// certificate/box algorithm.
    pub fn count_ucq(&self, ucq: &UcqQuery) -> Result<CountOutcome, CountError> {
        let blocks = self.blocks();
        let certificates = crate::enumerate_certificates(self.db, self.keys, &blocks, ucq)?;
        let boxes = crate::distinct_boxes(&certificates);
        let count = crate::exact::count_union_of_boxes(&blocks, &boxes, self.budget)?;
        Ok(CountOutcome {
            count,
            strategy: ExactStrategy::CertificateBoxes,
            certificates: Some(certificates.len()),
        })
    }

    /// The relative frequency of the query (Section 1.1).
    pub fn frequency(&self, query: &Query) -> Result<Ratio, CountError> {
        relative_frequency(self.db, self.keys, query)
    }

    /// The paper's FPRAS (Theorem 6.2 / Corollary 6.4) for an existential
    /// positive query.
    pub fn approximate(
        &self,
        query: &Query,
        config: &ApproxConfig,
    ) -> Result<ApproxCount, CountError> {
        let ucq = rewrite_to_ucq(query)?;
        FprasEstimator::new(self.db, self.keys, &ucq)?.estimate(config)
    }

    /// The Karp–Luby baseline estimator (the "[5]-style" scheme).
    pub fn approximate_karp_luby(
        &self,
        query: &Query,
        config: &ApproxConfig,
    ) -> Result<ApproxCount, CountError> {
        let ucq = rewrite_to_ucq(query)?;
        KarpLubyEstimator::new(self.db, self.keys, &ucq)?.estimate(config)
    }

    /// The disjunct keywidth of the query, i.e. the exponent in the FPRAS
    /// sample-size bound.
    pub fn disjunct_keywidth(&self, query: &Query) -> Result<usize, CountError> {
        let ucq = rewrite_to_ucq(query)?;
        Ok(max_disjunct_keywidth(&ucq, self.db.schema(), self.keys))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdr_query::parse_query;
    use cdr_repairdb::Schema;

    fn employee() -> (Database, KeySet) {
        let mut schema = Schema::new();
        schema.add_relation("Employee", 3).unwrap();
        let keys = KeySet::builder(&schema).key("Employee", 1).unwrap().build();
        let mut db = Database::new(schema);
        db.insert_parsed("Employee(1, 'Bob', 'HR')").unwrap();
        db.insert_parsed("Employee(1, 'Bob', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Alice', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Tim', 'IT')").unwrap();
        (db, keys)
    }

    #[test]
    fn facade_reproduces_example_1_1() {
        let (db, keys) = employee();
        let counter = RepairCounter::new(&db, &keys);
        let q = parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap();
        assert_eq!(counter.total_repairs().to_u64(), Some(4));
        assert_eq!(counter.count(&q).unwrap().count.to_u64(), Some(2));
        assert_eq!(counter.frequency(&q).unwrap().to_string(), "1/2");
        assert!(counter.holds_in_some_repair(&q).unwrap());
        assert!(!counter.holds_in_every_repair(&q).unwrap());
        assert_eq!(counter.keywidth(&q), 2);
        assert_eq!(counter.disjunct_keywidth(&q).unwrap(), 2);
        assert_eq!(counter.database().len(), 4);
        assert_eq!(counter.keys().keyed_relation_count(), 1);
        assert_eq!(counter.blocks().len(), 2);
    }

    #[test]
    fn strategies_agree() {
        let (db, keys) = employee();
        let counter = RepairCounter::new(&db, &keys);
        for text in [
            "EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)",
            "EXISTS n . Employee(2, n, 'IT')",
            "Employee(1, 'Bob', 'HR') OR Employee(2, 'Tim', 'IT')",
            "FALSE",
            "TRUE",
        ] {
            let q = parse_query(text).unwrap();
            let a = counter
                .count_with(&q, ExactStrategy::Enumeration)
                .unwrap()
                .count;
            let b = counter
                .count_with(&q, ExactStrategy::CertificateBoxes)
                .unwrap()
                .count;
            assert_eq!(a, b, "strategy mismatch on {text}");
        }
    }

    #[test]
    fn auto_strategy_dispatches_on_query_class() {
        let (db, keys) = employee();
        let counter = RepairCounter::new(&db, &keys);
        let positive = parse_query("EXISTS n . Employee(2, n, 'IT')").unwrap();
        let outcome = counter.count(&positive).unwrap();
        assert_eq!(outcome.strategy, ExactStrategy::CertificateBoxes);
        assert!(outcome.certificates.is_some());
        let negated = parse_query("NOT EXISTS i, n . Employee(i, n, 'HR')").unwrap();
        let outcome = counter.count(&negated).unwrap();
        assert_eq!(outcome.strategy, ExactStrategy::Enumeration);
        assert!(outcome.certificates.is_none());
        assert_eq!(outcome.count.to_u64(), Some(2));
    }

    #[test]
    fn certain_answers_via_counting() {
        let (db, keys) = employee();
        let counter = RepairCounter::new(&db, &keys);
        let certain = parse_query("EXISTS n . Employee(2, n, 'IT')").unwrap();
        assert!(counter.holds_in_every_repair(&certain).unwrap());
        let possible = parse_query("Employee(1, 'Bob', 'HR')").unwrap();
        assert!(!counter.holds_in_every_repair(&possible).unwrap());
        assert!(counter.holds_in_some_repair(&possible).unwrap());
    }

    #[test]
    fn approximations_are_available_through_the_facade() {
        let (db, keys) = employee();
        let counter = RepairCounter::new(&db, &keys);
        let q = parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap();
        let config = ApproxConfig {
            epsilon: 0.2,
            ..ApproxConfig::default()
        };
        let fpras = counter.approximate(&q, &config).unwrap();
        let kl = counter.approximate_karp_luby(&q, &config).unwrap();
        let exact = BigNat::from(2u64);
        assert!(fpras.relative_error(&exact) <= 0.2);
        assert!(kl.relative_error(&exact) <= 0.2);
    }

    #[test]
    fn budget_is_passed_through() {
        let (db, keys) = employee();
        let counter = RepairCounter::new(&db, &keys).with_budget(2);
        let q = parse_query("TRUE").unwrap();
        assert!(counter.count_with(&q, ExactStrategy::Enumeration).is_err());
        // The box strategy needs no enumeration for TRUE, so it still works.
        assert!(counter
            .count_with(&q, ExactStrategy::CertificateBoxes)
            .is_ok());
    }

    #[test]
    fn first_order_query_rejected_by_box_strategy() {
        let (db, keys) = employee();
        let counter = RepairCounter::new(&db, &keys);
        let q = parse_query("NOT EXISTS i, n . Employee(i, n, 'HR')").unwrap();
        assert!(counter
            .count_with(&q, ExactStrategy::CertificateBoxes)
            .is_err());
    }
}
