//! The legacy [`RepairCounter`] facade.
//!
//! **Deprecated path**: `RepairCounter` predates the owned, caching
//! [`RepairEngine`](crate::RepairEngine) and is kept as a thin
//! compatibility wrapper over it. Every method is expressible as one
//! [`CountRequest`](crate::CountRequest); new code should construct a
//! `RepairEngine` directly and use the request/report API, which shares
//! plan caches across calls and across threads.

use cdr_num::{BigNat, Ratio};
use cdr_query::{Query, UcqQuery};
use cdr_repairdb::{BlockPartition, Database, KeySet};

use crate::approx::{ApproxConfig, ApproxCount};
use crate::engine::{CountRequest, RepairEngine, Strategy};
use crate::exact::DEFAULT_EXACT_BUDGET;
use crate::CountError;

/// Which exact algorithm to use.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ExactStrategy {
    /// Choose automatically: the certificate/box algorithm for existential
    /// positive queries, enumeration otherwise.
    #[default]
    Auto,
    /// Enumerate every repair and evaluate the query on it (works for any
    /// first-order query).
    Enumeration,
    /// The certificate/box algorithm (existential positive queries only).
    CertificateBoxes,
}

impl From<ExactStrategy> for Strategy {
    fn from(strategy: ExactStrategy) -> Strategy {
        match strategy {
            ExactStrategy::Auto => Strategy::Auto,
            ExactStrategy::Enumeration => Strategy::Enumeration,
            ExactStrategy::CertificateBoxes => Strategy::CertificateBoxes,
        }
    }
}

/// The result of an exact count.
#[derive(Clone, Debug)]
pub struct CountOutcome {
    /// The number of repairs that entail the query.
    pub count: BigNat,
    /// The strategy that actually produced the count.
    pub strategy: ExactStrategy,
    /// Number of certificates found (only for the box strategy).
    pub certificates: Option<usize>,
}

/// Counts repairs of a fixed database w.r.t. a fixed set of primary keys.
///
/// This is the legacy borrow-style facade; it snapshots the database and
/// keys into an owned [`RepairEngine`] at construction and delegates every
/// call. Prefer using the engine directly.
///
/// ```
/// use cdr_core::RepairCounter;
/// use cdr_query::parse_query;
/// use cdr_repairdb::{Database, KeySet, Schema};
///
/// let mut schema = Schema::new();
/// schema.add_relation("Employee", 3).unwrap();
/// let keys = KeySet::builder(&schema).key("Employee", 1).unwrap().build();
/// let mut db = Database::new(schema);
/// db.insert_parsed("Employee(1, 'Bob', 'HR')").unwrap();
/// db.insert_parsed("Employee(1, 'Bob', 'IT')").unwrap();
/// db.insert_parsed("Employee(2, 'Alice', 'IT')").unwrap();
/// db.insert_parsed("Employee(2, 'Tim', 'IT')").unwrap();
///
/// let counter = RepairCounter::new(&db, &keys);
/// let q = parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap();
/// assert_eq!(counter.total_repairs().to_u64(), Some(4));
/// assert_eq!(counter.count(&q).unwrap().count.to_u64(), Some(2));
/// assert_eq!(counter.frequency(&q).unwrap().to_string(), "1/2");
/// ```
pub struct RepairCounter {
    engine: RepairEngine,
    /// Explicit budget, if the caller set one. Counting paths default to
    /// [`DEFAULT_EXACT_BUDGET`]; the decision path defaults to unbounded,
    /// matching the historical facade behaviour.
    budget: Option<u64>,
}

impl RepairCounter {
    /// Creates a counter with the default exact budget.
    pub fn new(db: &Database, keys: &KeySet) -> Self {
        RepairCounter {
            engine: RepairEngine::new(db.clone(), keys.clone()),
            budget: None,
        }
    }

    /// Sets the exact-counting budget (maximum number of repairs or
    /// per-component assignments that exact algorithms may enumerate).
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = Some(budget);
        self
    }

    fn counting_budget(&self) -> u64 {
        self.budget.unwrap_or(DEFAULT_EXACT_BUDGET)
    }

    /// The underlying engine, for callers migrating to the request/report
    /// API.
    pub fn engine(&self) -> &RepairEngine {
        &self.engine
    }

    /// The database being counted over.
    pub fn database(&self) -> &Database {
        self.engine.database()
    }

    /// The primary keys in force.
    pub fn keys(&self) -> &KeySet {
        self.engine.keys()
    }

    /// The block partition `B₁, …, Bₙ` of the database.
    pub fn blocks(&self) -> BlockPartition {
        self.engine.blocks().clone()
    }

    /// The total number of repairs `∏ |Bᵢ|` (the paper's easy denominator).
    pub fn total_repairs(&self) -> BigNat {
        self.engine.total_repairs().clone()
    }

    /// The keywidth `kw(Q, Σ)` of a query against this counter's keys.
    pub fn keywidth(&self, query: &Query) -> usize {
        self.engine.keywidth(query)
    }

    /// The decision problem `#CQA>0`: does some repair entail the query?
    pub fn holds_in_some_repair(&self, query: &Query) -> Result<bool, CountError> {
        // The historical facade ran an unbounded witness search, so an
        // unset budget maps to "no limit" here rather than the default.
        let report = self.engine.run(
            &CountRequest::decision(query.clone()).with_budget(self.budget.unwrap_or(u64::MAX)),
        )?;
        Ok(report.answer.as_bool().expect("decision reports a boolean"))
    }

    /// Certain-answer semantics: does *every* repair entail the query?
    pub fn holds_in_every_repair(&self, query: &Query) -> Result<bool, CountError> {
        let report = self.engine.run(
            &CountRequest::certain_answer(query.clone()).with_budget(self.counting_budget()),
        )?;
        Ok(report.answer.as_bool().expect("decision reports a boolean"))
    }

    /// Counts the repairs entailing the query with the automatic strategy.
    pub fn count(&self, query: &Query) -> Result<CountOutcome, CountError> {
        self.count_with(query, ExactStrategy::Auto)
    }

    /// Counts the repairs entailing the query with an explicit strategy.
    pub fn count_with(
        &self,
        query: &Query,
        strategy: ExactStrategy,
    ) -> Result<CountOutcome, CountError> {
        let report = self.engine.run(
            &CountRequest::exact(query.clone())
                .with_strategy(strategy.into())
                .with_budget(self.counting_budget()),
        )?;
        let effective = match report.strategy {
            Strategy::Enumeration => ExactStrategy::Enumeration,
            Strategy::CertificateBoxes => ExactStrategy::CertificateBoxes,
            _ => ExactStrategy::Auto,
        };
        Ok(CountOutcome {
            count: report
                .answer
                .as_count()
                .expect("exact semantics report a count")
                .clone(),
            strategy: effective,
            certificates: report.certificates,
        })
    }

    /// Counts the repairs entailing an already-rewritten UCQ with the
    /// certificate/box algorithm.
    pub fn count_ucq(&self, ucq: &UcqQuery) -> Result<CountOutcome, CountError> {
        let blocks = self.engine.blocks();
        let certificates =
            crate::enumerate_certificates(self.engine.database(), self.engine.keys(), blocks, ucq)?;
        let boxes = crate::distinct_boxes(&certificates);
        let count = crate::exact::count_union_of_boxes(blocks, &boxes, self.counting_budget())?;
        Ok(CountOutcome {
            count,
            strategy: ExactStrategy::CertificateBoxes,
            certificates: Some(certificates.len()),
        })
    }

    /// The relative frequency of the query (Section 1.1).
    pub fn frequency(&self, query: &Query) -> Result<Ratio, CountError> {
        let report = self
            .engine
            .run(&CountRequest::frequency(query.clone()).with_budget(self.counting_budget()))?;
        Ok(report
            .answer
            .as_frequency()
            .expect("frequency semantics report a ratio")
            .clone())
    }

    /// The paper's FPRAS (Theorem 6.2 / Corollary 6.4) for an existential
    /// positive query.
    pub fn approximate(
        &self,
        query: &Query,
        config: &ApproxConfig,
    ) -> Result<ApproxCount, CountError> {
        self.approximate_with(query, config, Strategy::Auto)
    }

    /// The Karp–Luby baseline estimator (the "\[5\]-style" scheme).
    pub fn approximate_karp_luby(
        &self,
        query: &Query,
        config: &ApproxConfig,
    ) -> Result<ApproxCount, CountError> {
        self.approximate_with(query, config, Strategy::KarpLuby)
    }

    fn approximate_with(
        &self,
        query: &Query,
        config: &ApproxConfig,
        strategy: Strategy,
    ) -> Result<ApproxCount, CountError> {
        let request = CountRequest::new(
            query.clone(),
            crate::Semantics::Approximate {
                epsilon: config.epsilon,
                delta: config.delta,
                seed: config.seed,
            },
        )
        .with_strategy(strategy)
        .with_sample_cap(config.max_samples);
        let report = self.engine.run(&request)?;
        Ok(report
            .answer
            .as_estimate()
            .expect("approximate semantics report an estimate")
            .clone())
    }

    /// The disjunct keywidth of the query, i.e. the exponent in the FPRAS
    /// sample-size bound.
    pub fn disjunct_keywidth(&self, query: &Query) -> Result<usize, CountError> {
        self.engine.disjunct_keywidth(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdr_query::parse_query;
    use cdr_repairdb::Schema;

    fn employee() -> (Database, KeySet) {
        let mut schema = Schema::new();
        schema.add_relation("Employee", 3).unwrap();
        let keys = KeySet::builder(&schema).key("Employee", 1).unwrap().build();
        let mut db = Database::new(schema);
        db.insert_parsed("Employee(1, 'Bob', 'HR')").unwrap();
        db.insert_parsed("Employee(1, 'Bob', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Alice', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Tim', 'IT')").unwrap();
        (db, keys)
    }

    #[test]
    fn facade_reproduces_example_1_1() {
        let (db, keys) = employee();
        let counter = RepairCounter::new(&db, &keys);
        let q = parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap();
        assert_eq!(counter.total_repairs().to_u64(), Some(4));
        assert_eq!(counter.count(&q).unwrap().count.to_u64(), Some(2));
        assert_eq!(counter.frequency(&q).unwrap().to_string(), "1/2");
        assert!(counter.holds_in_some_repair(&q).unwrap());
        assert!(!counter.holds_in_every_repair(&q).unwrap());
        assert_eq!(counter.keywidth(&q), 2);
        assert_eq!(counter.disjunct_keywidth(&q).unwrap(), 2);
        assert_eq!(counter.database().len(), 4);
        assert_eq!(counter.keys().keyed_relation_count(), 1);
        assert_eq!(counter.blocks().len(), 2);
    }

    #[test]
    fn strategies_agree() {
        let (db, keys) = employee();
        let counter = RepairCounter::new(&db, &keys);
        for text in [
            "EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)",
            "EXISTS n . Employee(2, n, 'IT')",
            "Employee(1, 'Bob', 'HR') OR Employee(2, 'Tim', 'IT')",
            "FALSE",
            "TRUE",
        ] {
            let q = parse_query(text).unwrap();
            let a = counter
                .count_with(&q, ExactStrategy::Enumeration)
                .unwrap()
                .count;
            let b = counter
                .count_with(&q, ExactStrategy::CertificateBoxes)
                .unwrap()
                .count;
            assert_eq!(a, b, "strategy mismatch on {text}");
        }
    }

    #[test]
    fn auto_strategy_dispatches_on_query_class() {
        let (db, keys) = employee();
        let counter = RepairCounter::new(&db, &keys);
        let positive = parse_query("EXISTS n . Employee(2, n, 'IT')").unwrap();
        let outcome = counter.count(&positive).unwrap();
        assert_eq!(outcome.strategy, ExactStrategy::CertificateBoxes);
        assert!(outcome.certificates.is_some());
        let negated = parse_query("NOT EXISTS i, n . Employee(i, n, 'HR')").unwrap();
        let outcome = counter.count(&negated).unwrap();
        assert_eq!(outcome.strategy, ExactStrategy::Enumeration);
        assert!(outcome.certificates.is_none());
        assert_eq!(outcome.count.to_u64(), Some(2));
    }

    #[test]
    fn certain_answers_via_counting() {
        let (db, keys) = employee();
        let counter = RepairCounter::new(&db, &keys);
        let certain = parse_query("EXISTS n . Employee(2, n, 'IT')").unwrap();
        assert!(counter.holds_in_every_repair(&certain).unwrap());
        let possible = parse_query("Employee(1, 'Bob', 'HR')").unwrap();
        assert!(!counter.holds_in_every_repair(&possible).unwrap());
        assert!(counter.holds_in_some_repair(&possible).unwrap());
    }

    #[test]
    fn approximations_are_available_through_the_facade() {
        let (db, keys) = employee();
        let counter = RepairCounter::new(&db, &keys);
        let q = parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap();
        let config = ApproxConfig {
            epsilon: 0.2,
            ..ApproxConfig::default()
        };
        let fpras = counter.approximate(&q, &config).unwrap();
        let kl = counter.approximate_karp_luby(&q, &config).unwrap();
        let exact = BigNat::from(2u64);
        assert!(fpras.relative_error(&exact) <= 0.2);
        assert!(kl.relative_error(&exact) <= 0.2);
    }

    #[test]
    fn budget_is_passed_through() {
        let (db, keys) = employee();
        let counter = RepairCounter::new(&db, &keys).with_budget(2);
        let q = parse_query("TRUE").unwrap();
        assert!(counter.count_with(&q, ExactStrategy::Enumeration).is_err());
        // The box strategy needs no enumeration for TRUE, so it still works.
        assert!(counter
            .count_with(&q, ExactStrategy::CertificateBoxes)
            .is_ok());
    }

    #[test]
    fn first_order_query_rejected_by_box_strategy() {
        let (db, keys) = employee();
        let counter = RepairCounter::new(&db, &keys);
        let q = parse_query("NOT EXISTS i, n . Employee(i, n, 'HR')").unwrap();
        assert!(counter
            .count_with(&q, ExactStrategy::CertificateBoxes)
            .is_err());
    }

    #[test]
    fn facade_methods_share_the_engine_plan_cache() {
        let (db, keys) = employee();
        let counter = RepairCounter::new(&db, &keys);
        let q = parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap();
        counter.count(&q).unwrap();
        counter.frequency(&q).unwrap();
        counter.holds_in_some_repair(&q).unwrap();
        let stats = counter.engine().cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
    }
}
