//! The decision problem `#CQA>0`: is there a repair that entails the query?
//!
//! * For existential positive queries, Lemma 3.5 reduces the question to the
//!   existence of a single certificate: some disjunct `Qᵢ` has a
//!   homomorphism `h` with `h(Qᵢ) ⊆ D` and `h(Qᵢ) ⊨ Σ`.  This is the
//!   logspace procedure behind Theorem 3.4 ("`#CQA>0(∃FO⁺)` is in L").
//! * For arbitrary first-order queries the problem is NP-complete
//!   (Theorem 3.2); the implementation is the obvious witness search —
//!   enumerate repairs and stop at the first one that satisfies the query.

use cdr_query::{evaluate, rewrite_to_ucq, Query, QueryClass, UcqQuery};
use cdr_repairdb::{BlockPartition, Database, KeySet, RepairIter};

use crate::{enumerate_certificates, CountError};

/// Decides `#CQA>0(Q, Σ)` for an arbitrary Boolean first-order query,
/// dispatching to the certificate-based procedure when the query is
/// existential positive.
pub fn holds_in_some_repair(
    db: &Database,
    keys: &KeySet,
    query: &Query,
) -> Result<bool, CountError> {
    match query.classify() {
        QueryClass::FirstOrder => holds_in_some_repair_fo(db, keys, query),
        _ => {
            let ucq = rewrite_to_ucq(query)?;
            holds_in_some_repair_ucq(db, keys, &ucq)
        }
    }
}

/// The Lemma 3.5 procedure: a repair entailing the UCQ exists iff some
/// disjunct has a homomorphism whose image is key-consistent.
pub fn holds_in_some_repair_ucq(
    db: &Database,
    keys: &KeySet,
    ucq: &UcqQuery,
) -> Result<bool, CountError> {
    let blocks = BlockPartition::new(db, keys);
    // Enumerating all certificates is more work than strictly needed for the
    // decision problem, but keeps a single code path; the first certificate
    // suffices as a witness.
    let certificates = enumerate_certificates(db, keys, &blocks, ucq)?;
    Ok(!certificates.is_empty())
}

/// The NP witness search of Theorem 3.2: guess a repair, verify the query.
///
/// The implementation enumerates repairs in `≺_{D,Σ}` order with early
/// exit; it is exponential in the worst case, as expected for an
/// NP-complete problem.
pub fn holds_in_some_repair_fo(
    db: &Database,
    keys: &KeySet,
    query: &Query,
) -> Result<bool, CountError> {
    let blocks = BlockPartition::new(db, keys);
    holds_in_some_repair_fo_bounded(db, &blocks, query, u64::MAX)
}

/// The witness search of [`holds_in_some_repair_fo`] over an
/// already-computed block partition, visiting at most `budget` repairs
/// before failing with [`CountError::ExactBudgetExceeded`].
///
/// This is the single implementation both the free function above and the
/// [`crate::RepairEngine`] decision path share.
pub fn holds_in_some_repair_fo_bounded(
    db: &Database,
    blocks: &BlockPartition,
    query: &Query,
    budget: u64,
) -> Result<bool, CountError> {
    let mut visited: u64 = 0;
    for repair in RepairIter::new(blocks) {
        visited += 1;
        if visited > budget {
            return Err(CountError::ExactBudgetExceeded {
                what: "decision-problem repair enumeration".into(),
                budget,
            });
        }
        let repaired = repair.to_database(db);
        if evaluate(&repaired, query)? {
            return Ok(true);
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdr_query::parse_query;
    use cdr_repairdb::Schema;

    fn employee() -> (Database, KeySet) {
        let mut schema = Schema::new();
        schema.add_relation("Employee", 3).unwrap();
        let keys = KeySet::builder(&schema).key("Employee", 1).unwrap().build();
        let mut db = Database::new(schema);
        db.insert_parsed("Employee(1, 'Bob', 'HR')").unwrap();
        db.insert_parsed("Employee(1, 'Bob', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Alice', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Tim', 'IT')").unwrap();
        (db, keys)
    }

    #[test]
    fn example_query_is_possible_but_not_certain() {
        let (db, keys) = employee();
        let q = parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap();
        assert!(holds_in_some_repair(&db, &keys, &q).unwrap());
    }

    #[test]
    fn impossible_queries_are_rejected() {
        let (db, keys) = employee();
        // No repair contains employee 3.
        let q = parse_query("EXISTS x, y . Employee(3, x, y)").unwrap();
        assert!(!holds_in_some_repair(&db, &keys, &q).unwrap());
        // No repair contains both departments for Bob simultaneously.
        let q = parse_query("Employee(1, 'Bob', 'HR') AND Employee(1, 'Bob', 'IT')").unwrap();
        assert!(!holds_in_some_repair(&db, &keys, &q).unwrap());
    }

    #[test]
    fn fo_and_ucq_procedures_agree_on_positive_queries() {
        let (db, keys) = employee();
        let queries = [
            "EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)",
            "EXISTS x, y . Employee(3, x, y)",
            "Employee(1, 'Bob', 'HR')",
            "Employee(1, 'Bob', 'HR') AND Employee(2, 'Tim', 'IT')",
            "Employee(1, 'Bob', 'HR') AND Employee(1, 'Bob', 'IT')",
            "TRUE",
            "FALSE",
        ];
        for text in queries {
            let q = parse_query(text).unwrap();
            let ucq = rewrite_to_ucq(&q).unwrap();
            assert_eq!(
                holds_in_some_repair_fo(&db, &keys, &q).unwrap(),
                holds_in_some_repair_ucq(&db, &keys, &ucq).unwrap(),
                "decision mismatch for {text}"
            );
        }
    }

    #[test]
    fn first_order_queries_use_the_witness_search() {
        let (db, keys) = employee();
        // "Some repair misses Bob entirely" — false, every repair keeps one
        // Bob fact.
        let q = parse_query("NOT EXISTS d . Employee(1, 'Bob', d)").unwrap();
        assert!(!holds_in_some_repair(&db, &keys, &q).unwrap());
        // "Some repair has nobody in HR" — true (choose Bob→IT).
        let q = parse_query("NOT EXISTS i, n . Employee(i, n, 'HR')").unwrap();
        assert!(holds_in_some_repair(&db, &keys, &q).unwrap());
    }

    #[test]
    fn empty_database_decision() {
        let mut schema = Schema::new();
        schema.add_relation("R", 1).unwrap();
        let keys = KeySet::builder(&schema).key("R", 1).unwrap().build();
        let db = Database::new(schema);
        let q = parse_query("EXISTS x . R(x)").unwrap();
        assert!(!holds_in_some_repair(&db, &keys, &q).unwrap());
        let t = parse_query("TRUE").unwrap();
        assert!(holds_in_some_repair(&db, &keys, &t).unwrap());
    }
}
