//! Exact counting via certificates and selector boxes.
//!
//! The set of repairs entailing a UCQ is the union of the boxes
//! `[B₁, …, Bₙ]_{σ_c}` over all certificates `c` (Section 4.1).  Counting
//! that union exactly is the crux of the exact algorithm:
//!
//! 1. boxes that are subsumed by another box are discarded;
//! 2. the remaining boxes are grouped into *components*: two boxes are in
//!    the same component iff they pin a common block (transitively);
//! 3. blocks pinned by no box at all are *free* and contribute a plain
//!    multiplicative factor;
//! 4. within a component the number of covered assignments is counted
//!    either by enumerating the assignments of the component's touched
//!    blocks or by inclusion–exclusion over its boxes, whichever is
//!    cheaper;
//! 5. the component counts combine by complementation, because a repair
//!    fails to entail the query iff it avoids every box of every component,
//!    and components constrain disjoint blocks:
//!    `#non-entailing = (∏ free |Bᵢ|) · ∏_components (totalᵢ − coveredᵢ)`.
//!
//! The implementation is a flat-representation hot path: boxes are sorted
//! pin slices (no per-box tree allocations), subsumption pruning and
//! component grouping work on *references* with a pin-count pre-sort, and
//! the free-block product is obtained by dividing the (precomputed) total
//! instead of multiplying over every untouched block.

use cdr_num::BigNat;
use cdr_query::UcqQuery;
use cdr_repairdb::{count_repairs, BlockPartition, Database, KeySet};

use crate::{distinct_boxes, enumerate_certificates, CountError, SelectorBox};

/// Counts the repairs of `db` w.r.t. `keys` that entail the UCQ, using the
/// certificate/box algorithm.
pub fn count_by_boxes(
    db: &Database,
    keys: &KeySet,
    ucq: &UcqQuery,
    budget: u64,
) -> Result<BigNat, CountError> {
    let blocks = BlockPartition::new(db, keys);
    let certificates = enumerate_certificates(db, keys, &blocks, ucq)?;
    let boxes = distinct_boxes(&certificates);
    count_union_of_boxes(&blocks, &boxes, budget)
}

/// Counts `|⋃ boxes|`: the number of repairs (one fact per block of
/// `blocks`) contained in at least one of the given selector boxes.
///
/// This is the quantity `|⋃_c [B₁, …, Bₙ]_{σ_c}|` of the paper's
/// "solutions via certificate expansion" property, and it is also the
/// unfolding count of a compactor output, which is why the Λ-hierarchy
/// crate reuses [`count_union_generic`], the domain-agnostic version this
/// function delegates to.
pub fn count_union_of_boxes(
    blocks: &BlockPartition,
    boxes: &[SelectorBox],
    budget: u64,
) -> Result<BigNat, CountError> {
    count_union_of_boxes_with_total(blocks, boxes, budget, count_repairs(blocks))
}

/// [`count_union_of_boxes`] with the total repair count `∏ |Bᵢ|` supplied
/// by the caller (the engine maintains it incrementally across mutations),
/// so the union count never re-multiplies every block size per query.
pub fn count_union_of_boxes_with_total(
    blocks: &BlockPartition,
    boxes: &[SelectorBox],
    budget: u64,
    total: BigNat,
) -> Result<BigNat, CountError> {
    // Domains are indexed by block *slot* (`BlockId::index`), because that
    // is what box pins name.  Retired slots (emptied by deletions) become
    // neutral size-1 domains — `SlotSizes` clamps on access, borrowing
    // straight from the partition instead of materialising a sizes vector.
    let generic: Vec<GenericBox> = boxes
        .iter()
        .map(|b| {
            // A selector's pins are sorted by block slot, so the mapped
            // pins arrive already sorted by domain.
            GenericBox::from_sorted(
                b.pins()
                    .map(|(block, fact)| {
                        let position = blocks
                            .block(block)
                            .position_of(fact)
                            .expect("a box only pins facts of its own block");
                        (block.index() as u32, position as u32)
                    })
                    .collect(),
            )
        })
        .collect();
    count_union_impl(&SlotSizes(blocks), &generic, budget, total)
}

/// A box over abstract solution domains: a partial map from domain index
/// to the index of the pinned element within that domain, stored as a flat
/// slice of `(domain, element)` pairs sorted by domain.
///
/// Subset tests are linear merges over the sorted pins and lookups are
/// binary searches; compared to the previous `BTreeMap` representation a
/// box is one allocation and hashing/equality touch contiguous memory.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct GenericBox {
    pins: Box<[(u32, u32)]>,
}

impl GenericBox {
    /// The empty (unconstrained) box, covering every tuple.
    pub fn new() -> GenericBox {
        GenericBox::default()
    }

    /// Builds a box from pins already sorted by strictly increasing
    /// domain index.
    pub fn from_sorted(pins: Vec<(u32, u32)>) -> GenericBox {
        debug_assert!(
            pins.windows(2).all(|w| w[0].0 < w[1].0),
            "pins must be sorted by strictly increasing domain"
        );
        GenericBox {
            pins: pins.into_boxed_slice(),
        }
    }

    /// Number of pinned domains.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.pins.len()
    }

    /// Returns `true` iff no domain is pinned (the box covers everything).
    pub fn is_empty(&self) -> bool {
        self.pins.is_empty()
    }

    /// The element the given domain is pinned to, if any.
    pub fn get(&self, domain: usize) -> Option<usize> {
        u32::try_from(domain).ok().and_then(|d| {
            self.pins
                .binary_search_by_key(&d, |&(pin_domain, _)| pin_domain)
                .ok()
                .map(|i| self.pins[i].1 as usize)
        })
    }

    /// The pins `(domain, element)` in ascending domain order.
    pub fn pins(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.pins.iter().map(|&(d, e)| (d as usize, e as usize))
    }

    /// The raw sorted pin slice.
    pub fn as_slice(&self) -> &[(u32, u32)] {
        &self.pins
    }

    /// Returns `true` iff every tuple covered by `self` is covered by
    /// `other`, i.e. `other`'s pins are a subset of `self`'s pins — a
    /// linear merge with early exit.
    pub fn is_subset_of(&self, other: &GenericBox) -> bool {
        if other.pins.len() > self.pins.len() {
            return false;
        }
        let mut mine = self.pins.iter();
        'outer: for &(domain, element) in other.pins.iter() {
            for &(candidate_domain, candidate_element) in mine.by_ref() {
                if candidate_domain == domain {
                    if candidate_element != element {
                        return false;
                    }
                    continue 'outer;
                }
                if candidate_domain > domain {
                    return false;
                }
            }
            return false;
        }
        true
    }
}

impl FromIterator<(usize, usize)> for GenericBox {
    /// Collects pins, sorting by domain; pinning the same domain twice
    /// keeps the last pin (map-insertion semantics).
    fn from_iter<I: IntoIterator<Item = (usize, usize)>>(iter: I) -> GenericBox {
        let mut pins: Vec<(u32, u32)> = iter
            .into_iter()
            .map(|(d, e)| {
                (
                    u32::try_from(d).expect("domain index fits in u32"),
                    u32::try_from(e).expect("element index fits in u32"),
                )
            })
            .collect();
        pins.sort_by_key(|&(d, _)| d);
        // Keep the *last* pin of every equal-domain run.
        pins.reverse();
        pins.dedup_by_key(|&mut (d, _)| d);
        pins.reverse();
        GenericBox {
            pins: pins.into_boxed_slice(),
        }
    }
}

/// Counts the tuples of `S₀ × ⋯ × S_{n-1}` (where `|Sᵢ| = domain_sizes[i]`)
/// that are covered by at least one box.
///
/// This is the engine behind both [`count_union_of_boxes`] and the
/// unfolding count of a Λ-hierarchy compactor: the paper's
/// `|⋃_c unfolding(M(x, c))|`.
pub fn count_union_generic(
    domain_sizes: &[usize],
    boxes: &[GenericBox],
    budget: u64,
) -> Result<BigNat, CountError> {
    let mut total = BigNat::one();
    for &s in domain_sizes {
        total.mul_assign_u64(s as u64);
    }
    count_union_impl(&domain_sizes, boxes, budget, total)
}

/// Domain-size lookup abstraction: the generic entry point reads a plain
/// slice, while the selector-box path borrows sizes directly from the
/// block partition (clamping retired slots to neutral size 1) without
/// materialising a vector per query.
trait DomainSizes {
    fn count(&self) -> usize;
    fn size(&self, domain: usize) -> usize;
}

impl DomainSizes for &[usize] {
    fn count(&self) -> usize {
        self.len()
    }

    fn size(&self, domain: usize) -> usize {
        self[domain]
    }
}

struct SlotSizes<'a>(&'a BlockPartition);

impl DomainSizes for SlotSizes<'_> {
    fn count(&self) -> usize {
        self.0.slot_count()
    }

    fn size(&self, domain: usize) -> usize {
        self.0
            .block(cdr_repairdb::BlockId::new(domain))
            .len()
            .max(1)
    }
}

fn count_union_impl<S: DomainSizes>(
    sizes: &S,
    boxes: &[GenericBox],
    budget: u64,
    total: BigNat,
) -> Result<BigNat, CountError> {
    // A box pinning an element outside its domain, or an empty domain,
    // cannot cover anything; skip such boxes up front (by reference — the
    // surviving boxes are never cloned).
    let boxes: Vec<&GenericBox> = boxes
        .iter()
        .filter(|b| {
            b.pins()
                .all(|(d, e)| d < sizes.count() && e < sizes.size(d))
        })
        .collect();
    if total.is_zero() || boxes.is_empty() {
        return Ok(BigNat::zero());
    }
    if boxes.iter().any(|b| b.is_empty()) {
        return Ok(total);
    }
    let boxes = prune_subsumed(&boxes);
    let components = connected_components(&boxes, sizes.count());

    // A repair avoids the union iff it avoids every component's boxes;
    // free domains (touched by no component) contribute their full size.
    // Start from the caller's total and divide out each touched domain —
    // O(touched) divisions instead of O(domains) multiplications.
    let mut uncovered_product = total.clone();
    for component in &components {
        for &d in &component.touched {
            let (quotient, remainder) = uncovered_product.div_rem_u64(sizes.size(d) as u64);
            debug_assert_eq!(remainder, 0, "domain sizes divide the total exactly");
            uncovered_product = quotient;
        }
    }
    for component in &components {
        let mut component_total = BigNat::one();
        for &d in &component.touched {
            component_total.mul_assign_u64(sizes.size(d) as u64);
        }
        let covered = count_component_union(sizes, &component.boxes, &component.touched, budget)?;
        let uncovered = component_total
            .checked_sub(&covered)
            .expect("covered assignments cannot exceed the component total");
        uncovered_product = &uncovered_product * &uncovered;
    }
    Ok(total
        .checked_sub(&uncovered_product)
        .expect("non-entailing tuples cannot exceed the total"))
}

/// Drops boxes that are subsumed by (contained in) another box, preserving
/// the input order of the survivors.
///
/// A box can only be subsumed by a box with at most as many pins, so the
/// scan processes candidates in ascending pin count and checks each only
/// against already-kept boxes, stopping as soon as the kept boxes grow
/// larger than the candidate — no clones, no O(n²) full cross-product.
/// Tie-break: of two *equal* boxes exactly the first (smallest input
/// index) survives, exactly as before the flat-representation rewrite.
fn prune_subsumed<'a>(boxes: &[&'a GenericBox]) -> Vec<&'a GenericBox> {
    let mut order: Vec<usize> = (0..boxes.len()).collect();
    order.sort_by_key(|&i| (boxes[i].len(), i));
    let mut kept: Vec<usize> = Vec::with_capacity(boxes.len());
    'outer: for &i in &order {
        let candidate = boxes[i];
        for &j in &kept {
            let other = boxes[j];
            if other.len() > candidate.len() {
                // Kept boxes are visited in ascending pin count: nothing
                // beyond this point can subsume the candidate.
                break;
            }
            if candidate.is_subset_of(other) {
                continue 'outer;
            }
        }
        kept.push(i);
    }
    kept.sort_unstable();
    kept.into_iter().map(|i| boxes[i]).collect()
}

struct Component<'a> {
    boxes: Vec<&'a GenericBox>,
    /// The domains pinned by at least one box of the component, sorted.
    touched: Vec<usize>,
}

/// Groups boxes into connected components of the "shares a pinned domain"
/// relation, via union–find over box indices with a slot-indexed
/// domain-owner table (domains are dense indices below `domain_count`).
fn connected_components<'a>(boxes: &[&'a GenericBox], domain_count: usize) -> Vec<Component<'a>> {
    let mut parent: Vec<u32> = (0..boxes.len() as u32).collect();

    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    fn union(parent: &mut [u32], a: u32, b: u32) {
        let ra = find(parent, a);
        let rb = find(parent, b);
        if ra != rb {
            parent[ra as usize] = rb;
        }
    }

    const NO_OWNER: u32 = u32::MAX;
    let mut domain_owner: Vec<u32> = vec![NO_OWNER; domain_count];
    for (i, b) in boxes.iter().enumerate() {
        for &(domain, _) in b.as_slice() {
            let owner = &mut domain_owner[domain as usize];
            if *owner == NO_OWNER {
                *owner = i as u32;
            } else {
                let previous = *owner;
                union(&mut parent, i as u32, previous);
            }
        }
    }

    // Group boxes by root, preserving input order within and across
    // components (components are ordered by their first member).
    let mut component_of: Vec<u32> = vec![NO_OWNER; boxes.len()];
    let mut components: Vec<Component<'a>> = Vec::new();
    for (i, b) in boxes.iter().enumerate() {
        let root = find(&mut parent, i as u32);
        let slot = if component_of[root as usize] == NO_OWNER {
            components.push(Component {
                boxes: Vec::new(),
                touched: Vec::new(),
            });
            component_of[root as usize] = (components.len() - 1) as u32;
            components.len() - 1
        } else {
            component_of[root as usize] as usize
        };
        components[slot].boxes.push(b);
        components[slot]
            .touched
            .extend(b.pins().map(|(domain, _)| domain));
    }
    for component in &mut components {
        component.touched.sort_unstable();
        component.touched.dedup();
    }
    components
}

/// Maximum number of boxes for which inclusion–exclusion (2^boxes terms) is
/// attempted when enumeration of the touched domains is over budget.
const MAX_IE_BOXES: usize = 22;

/// Counts the assignments of the component's touched domains that are
/// covered by at least one of the component's boxes.
fn count_component_union<S: DomainSizes>(
    sizes: &S,
    boxes: &[&GenericBox],
    touched: &[usize],
    budget: u64,
) -> Result<BigNat, CountError> {
    // Cost of enumerating the touched assignments.
    let mut enumeration_cost: u128 = 1;
    for &d in touched {
        enumeration_cost = enumeration_cost.saturating_mul(sizes.size(d) as u128);
        if enumeration_cost > budget as u128 {
            break;
        }
    }
    if enumeration_cost <= budget as u128 {
        return Ok(count_by_touched_enumeration(sizes, boxes, touched));
    }
    if boxes.len() <= MAX_IE_BOXES {
        return Ok(count_by_inclusion_exclusion(sizes, boxes, touched));
    }
    Err(CountError::ExactBudgetExceeded {
        what: format!(
            "a component with {} boxes touching {} domains ({} assignments)",
            boxes.len(),
            touched.len(),
            enumeration_cost
        ),
        budget,
    })
}

/// Enumerates the assignments of the touched domains and counts those
/// covered by at least one box.
fn count_by_touched_enumeration<S: DomainSizes>(
    sizes: &S,
    boxes: &[&GenericBox],
    touched: &[usize],
) -> BigNat {
    let touched_sizes: Vec<usize> = touched.iter().map(|&d| sizes.size(d)).collect();
    let mut choice = vec![0usize; touched.len()];
    let mut covered: u64 = 0;
    loop {
        let is_covered = boxes.iter().any(|b| {
            b.pins().all(|(domain, element)| {
                match touched.binary_search(&domain) {
                    Ok(position) => choice[position] == element,
                    // A box never pins a domain outside its own component.
                    Err(_) => false,
                }
            })
        });
        if is_covered {
            covered += 1;
        }
        // Advance the mixed-radix counter.
        let mut i = touched.len();
        loop {
            if i == 0 {
                return BigNat::from(covered);
            }
            i -= 1;
            choice[i] += 1;
            if choice[i] < touched_sizes[i] {
                break;
            }
            choice[i] = 0;
        }
        if touched.is_empty() {
            return BigNat::from(covered);
        }
    }
}

/// Counts the covered assignments by inclusion–exclusion over the boxes:
/// `|⋃ boxes| = Σ_{∅ ≠ S} (−1)^{|S|+1} |⋂ S|`, where the intersection of a
/// set of boxes is itself a box (or empty).  The intersection pin sets are
/// built by sorted merges into two scratch buffers reused across the
/// 2^n − 1 subsets.
fn count_by_inclusion_exclusion<S: DomainSizes>(
    sizes: &S,
    boxes: &[&GenericBox],
    touched: &[usize],
) -> BigNat {
    let n = boxes.len();
    let mut positive = BigNat::zero();
    let mut negative = BigNat::zero();
    let mut intersection: Vec<(u32, u32)> = Vec::new();
    let mut merged: Vec<(u32, u32)> = Vec::new();
    for mask in 1u64..(1u64 << n) {
        intersection.clear();
        let mut empty = false;
        'boxes: for (i, b) in boxes.iter().enumerate() {
            if mask & (1 << i) == 0 {
                continue;
            }
            // merged ← intersection ∪ b.pins, conflict ⇒ empty box.
            merged.clear();
            let mut existing = intersection.iter().peekable();
            for &(domain, element) in b.as_slice() {
                while let Some(&&(have_domain, have_element)) = existing.peek() {
                    if have_domain < domain {
                        merged.push((have_domain, have_element));
                        existing.next();
                    } else if have_domain == domain {
                        if have_element != element {
                            empty = true;
                            break 'boxes;
                        }
                        existing.next();
                        break;
                    } else {
                        break;
                    }
                }
                merged.push((domain, element));
            }
            merged.extend(existing.copied());
            std::mem::swap(&mut intersection, &mut merged);
        }
        if empty {
            continue;
        }
        // Size of the intersection restricted to the touched domains: walk
        // the two sorted lists in lockstep.
        let mut size = BigNat::one();
        let mut pins = intersection.iter().peekable();
        for &d in touched {
            while pins.next_if(|&&(pin, _)| (pin as usize) < d).is_some() {}
            if pins.peek().is_some_and(|&&(pin, _)| pin as usize == d) {
                continue;
            }
            size.mul_assign_u64(sizes.size(d) as u64);
        }
        if mask.count_ones() % 2 == 1 {
            positive += size;
        } else {
            negative += size;
        }
    }
    positive
        .checked_sub(&negative)
        .expect("inclusion-exclusion must not go negative")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::count_by_enumeration;
    use cdr_query::{parse_query, rewrite_to_ucq};
    use cdr_repairdb::Schema;

    fn employee() -> (Database, KeySet) {
        let mut schema = Schema::new();
        schema.add_relation("Employee", 3).unwrap();
        let keys = KeySet::builder(&schema).key("Employee", 1).unwrap().build();
        let mut db = Database::new(schema);
        db.insert_parsed("Employee(1, 'Bob', 'HR')").unwrap();
        db.insert_parsed("Employee(1, 'Bob', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Alice', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Tim', 'IT')").unwrap();
        (db, keys)
    }

    fn count_both_ways(db: &Database, keys: &KeySet, text: &str) -> (u64, u64) {
        let q = parse_query(text).unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        let by_boxes = count_by_boxes(db, keys, &ucq, 1_000_000).unwrap();
        let by_enum = count_by_enumeration(db, keys, &q, 1_000_000).unwrap();
        (by_boxes.to_u64().unwrap(), by_enum.to_u64().unwrap())
    }

    /// Shorthand: prune a slice of owned boxes through the by-reference
    /// entry point, returning clones of the survivors.
    fn prune(boxes: &[GenericBox]) -> Vec<GenericBox> {
        let refs: Vec<&GenericBox> = boxes.iter().collect();
        prune_subsumed(&refs).into_iter().cloned().collect()
    }

    #[test]
    fn example_1_1_counts_two() {
        let (db, keys) = employee();
        let (boxes, enumeration) = count_both_ways(
            &db,
            &keys,
            "EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)",
        );
        assert_eq!(boxes, 2);
        assert_eq!(enumeration, 2);
    }

    #[test]
    fn agreement_with_enumeration_on_various_queries() {
        let (db, keys) = employee();
        for text in [
            "EXISTS n . Employee(2, n, 'IT')",
            "EXISTS n, d . Employee(3, n, d)",
            "Employee(1, 'Bob', 'HR')",
            "Employee(1, 'Bob', 'HR') OR Employee(1, 'Bob', 'IT')",
            "Employee(1, 'Bob', 'HR') AND Employee(2, 'Tim', 'IT')",
            "EXISTS i, n . Employee(i, n, 'HR')",
            "EXISTS i, n, d . Employee(i, n, d)",
            "TRUE",
            "FALSE",
        ] {
            let (a, b) = count_both_ways(&db, &keys, text);
            assert_eq!(a, b, "count mismatch for {text}");
        }
    }

    #[test]
    fn larger_database_with_mixed_blocks() {
        let mut schema = Schema::new();
        schema.add_relation("R", 2).unwrap();
        schema.add_relation("S", 2).unwrap();
        let keys = KeySet::builder(&schema)
            .key("R", 1)
            .unwrap()
            .key("S", 1)
            .unwrap()
            .build();
        let mut db = Database::new(schema);
        // R blocks: key 1 -> {a, b, c}; key 2 -> {a, b}; key 3 -> {c}.
        for (k, v) in [(1, "a"), (1, "b"), (1, "c"), (2, "a"), (2, "b"), (3, "c")] {
            db.insert_parsed(&format!("R({k}, '{v}')")).unwrap();
        }
        // S blocks: key 1 -> {a, x}; key 2 -> {y}.
        for (k, v) in [(1, "a"), (1, "x"), (2, "y")] {
            db.insert_parsed(&format!("S({k}, '{v}')")).unwrap();
        }
        for text in [
            "EXISTS k . R(k, 'a') AND S(k, 'a')",
            "EXISTS k, v . R(k, v) AND S(k, v)",
            "EXISTS k . R(k, 'c')",
            "R(1, 'a') OR S(1, 'x')",
            "EXISTS k . R(k, 'b') AND S(1, 'a')",
            "(EXISTS k . R(k, 'a')) AND (EXISTS j . S(j, 'y'))",
        ] {
            let q = parse_query(text).unwrap();
            let ucq = rewrite_to_ucq(&q).unwrap();
            let by_boxes = count_by_boxes(&db, &keys, &ucq, 1_000_000).unwrap();
            let by_enum = count_by_enumeration(&db, &keys, &q, 1_000_000).unwrap();
            assert_eq!(by_boxes, by_enum, "count mismatch for {text}");
        }
    }

    #[test]
    fn unconstrained_box_short_circuits_to_total() {
        let (db, keys) = employee();
        let ucq = rewrite_to_ucq(&parse_query("TRUE").unwrap()).unwrap();
        assert_eq!(
            count_by_boxes(&db, &keys, &ucq, 10).unwrap().to_u64(),
            Some(4)
        );
    }

    #[test]
    fn subsumed_boxes_are_pruned() {
        let (db, keys) = employee();
        let blocks = BlockPartition::new(&db, &keys);
        // Build two boxes where one subsumes the other.
        let q = parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        let certs = enumerate_certificates(&db, &keys, &blocks, &ucq).unwrap();
        let tight = certs[0].selector.clone();
        let loose = SelectorBox::new(tight.pins().take(1));
        // At the generic level, the tighter box (more pins) is dropped.
        let tight_g: GenericBox = [(0usize, 1usize), (1, 0)].into_iter().collect();
        let loose_g: GenericBox = [(0usize, 1usize)].into_iter().collect();
        let pruned = prune(&[tight_g.clone(), loose_g.clone()]);
        assert_eq!(pruned, vec![loose_g.clone()]);
        // Equal boxes: exactly one survives.
        let pruned = prune(&[loose_g.clone(), loose_g.clone()]);
        assert_eq!(pruned.len(), 1);
        // Counting with redundant boxes still gives the right answer.
        let with_redundant = count_union_of_boxes(&blocks, &[tight, loose.clone()], 1000).unwrap();
        let alone = count_union_of_boxes(&blocks, &[loose], 1000).unwrap();
        assert_eq!(with_redundant, alone);
    }

    /// Regression for the pin-count pre-sort: duplicates, mutually
    /// subsuming chains and interleaved input orders must keep the
    /// pre-rewrite semantics — strictly-subsumed boxes always die, and of
    /// two equal boxes exactly the first survives, in input order.
    #[test]
    fn prune_tie_breaks_match_the_quadratic_semantics() {
        let a: GenericBox = [(0usize, 0usize)].into_iter().collect();
        let ab: GenericBox = [(0usize, 0usize), (1, 1)].into_iter().collect();
        let abc: GenericBox = [(0usize, 0usize), (1, 1), (2, 2)].into_iter().collect();
        let other: GenericBox = [(5usize, 0usize)].into_iter().collect();

        // A chain with duplicates, largest first: only the smallest
        // (and, of its two copies, the first) survives.
        let pruned = prune(&[abc.clone(), ab.clone(), a.clone(), a.clone(), ab.clone()]);
        assert_eq!(pruned, vec![a.clone()]);

        // Three identical boxes: exactly one survivor.
        let pruned = prune(&[ab.clone(), ab.clone(), ab.clone()]);
        assert_eq!(pruned, vec![ab.clone()]);

        // Survivors keep their input order, even when the pin-count
        // pre-sort visits them in a different order.
        let pruned = prune(&[abc.clone(), other.clone(), a.clone()]);
        assert_eq!(pruned, vec![other.clone(), a.clone()]);

        // Mutually incomparable boxes all survive.
        let b: GenericBox = [(1usize, 0usize)].into_iter().collect();
        let pruned = prune(&[a.clone(), b.clone(), other.clone()]);
        assert_eq!(pruned, vec![a.clone(), b, other]);

        // Equal boxes still collapse to one when a strict subsumer is
        // also present — and the subsumer is the survivor.
        let pruned = prune(&[ab.clone(), ab.clone(), a.clone()]);
        assert_eq!(pruned, vec![a]);
    }

    #[test]
    fn generic_box_accessors_and_last_pin_wins() {
        let b: GenericBox = [(3usize, 1usize), (1, 2), (3, 7)].into_iter().collect();
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert_eq!(b.get(1), Some(2));
        assert_eq!(b.get(3), Some(7), "the last pin of a domain wins");
        assert_eq!(b.get(0), None);
        assert_eq!(b.pins().collect::<Vec<_>>(), vec![(1, 2), (3, 7)]);
        assert_eq!(b.as_slice(), &[(1u32, 2u32), (3, 7)]);
    }

    #[test]
    fn generic_union_counting_matches_brute_force() {
        // Three domains of sizes 3, 2, 4; a handful of boxes; compare
        // against a brute-force sweep of all 24 tuples.
        let sizes = [3usize, 2, 4];
        let boxes: Vec<GenericBox> = vec![
            [(0usize, 0usize), (1, 1)].into_iter().collect(),
            [(1usize, 0usize), (2, 3)].into_iter().collect(),
            [(0usize, 2usize)].into_iter().collect(),
        ];
        let mut expected = 0u64;
        for a in 0..3 {
            for b in 0..2 {
                for c in 0..4 {
                    let tuple = [a, b, c];
                    if boxes.iter().any(|bx| bx.pins().all(|(d, e)| tuple[d] == e)) {
                        expected += 1;
                    }
                }
            }
        }
        let counted = count_union_generic(&sizes, &boxes, 1_000).unwrap();
        assert_eq!(counted.to_u64(), Some(expected));
        // The same result through the inclusion-exclusion path.
        let counted_ie = count_union_generic(&sizes, &boxes, 1).unwrap();
        assert_eq!(counted_ie.to_u64(), Some(expected));
    }

    #[test]
    fn generic_union_counting_edge_cases() {
        // No boxes.
        assert!(count_union_generic(&[2, 2], &[], 10).unwrap().is_zero());
        // An empty (unconstrained) box covers everything.
        let all: Vec<GenericBox> = vec![GenericBox::new()];
        assert_eq!(
            count_union_generic(&[2, 3], &all, 10).unwrap().to_u64(),
            Some(6)
        );
        // A box pinning a non-existent element is discarded.
        let bogus: Vec<GenericBox> = vec![[(0usize, 9usize)].into_iter().collect()];
        assert!(count_union_generic(&[2, 2], &bogus, 10).unwrap().is_zero());
        // An empty product space.
        let b: Vec<GenericBox> = vec![[(0usize, 0usize)].into_iter().collect()];
        assert!(count_union_generic(&[2, 0], &b, 10).unwrap().is_zero());
        // No domains at all: the single empty tuple, covered only by an
        // unconstrained box.
        assert_eq!(
            count_union_generic(&[], &all, 10).unwrap().to_u64(),
            Some(1)
        );
        assert!(count_union_generic(&[], &[], 10).unwrap().is_zero());
    }

    #[test]
    fn inclusion_exclusion_matches_enumeration_within_a_component() {
        // Force the IE path by using a tiny budget, then compare with the
        // enumeration path under a large budget.
        let mut schema = Schema::new();
        schema.add_relation("R", 2).unwrap();
        let keys = KeySet::builder(&schema).key("R", 1).unwrap().build();
        let mut db = Database::new(schema);
        for k in 1..=4i64 {
            for v in ["a", "b", "c"] {
                db.insert_parsed(&format!("R({k}, '{v}')")).unwrap();
            }
        }
        let q = parse_query(
            "(EXISTS x . R(1, 'a') AND R(2, 'a')) OR (EXISTS x . R(2, 'b') AND R(3, 'c')) \
             OR (EXISTS x . R(1, 'b') AND R(3, 'a') AND R(4, 'c'))",
        )
        .unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        let blocks = BlockPartition::new(&db, &keys);
        let certs = enumerate_certificates(&db, &keys, &blocks, &ucq).unwrap();
        let boxes = distinct_boxes(&certs);
        // All three boxes overlap on blocks {1,2,3,4}: a single component.
        let big_budget = count_union_of_boxes(&blocks, &boxes, 1_000_000).unwrap();
        let tiny_budget = count_union_of_boxes(&blocks, &boxes, 2).unwrap();
        assert_eq!(big_budget, tiny_budget);
        let by_enum = count_by_enumeration(&db, &keys, &q, 1_000_000).unwrap();
        assert_eq!(big_budget, by_enum);
    }

    #[test]
    fn budget_exceeded_when_both_strategies_are_infeasible() {
        // Many boxes in one component and a huge touched product: with a
        // tiny budget and more than MAX_IE_BOXES boxes, counting must fail.
        let mut schema = Schema::new();
        schema.add_relation("R", 2).unwrap();
        schema.add_relation("Hub", 2).unwrap();
        let keys = KeySet::builder(&schema)
            .key("R", 1)
            .unwrap()
            .key("Hub", 1)
            .unwrap()
            .build();
        let mut db = Database::new(schema);
        for k in 1..=30i64 {
            db.insert_parsed(&format!("R({k}, 'a')")).unwrap();
            db.insert_parsed(&format!("R({k}, 'b')")).unwrap();
            // Hub links every R block into one component.
            db.insert_parsed(&format!("Hub(0, 'h{k}')")).unwrap();
        }
        // Each disjunct pins Hub block 0 (shared) and one R block.
        let mut disjuncts = Vec::new();
        for k in 1..=30i64 {
            disjuncts.push(format!("(EXISTS h . R({k}, 'a') AND Hub(0, h))"));
        }
        let q = parse_query(&disjuncts.join(" OR ")).unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        let err = count_by_boxes(&db, &keys, &ucq, 100).unwrap_err();
        assert!(matches!(err, CountError::ExactBudgetExceeded { .. }));
    }

    #[test]
    fn empty_database_cases() {
        let mut schema = Schema::new();
        schema.add_relation("R", 1).unwrap();
        let keys = KeySet::builder(&schema).key("R", 1).unwrap().build();
        let db = Database::new(schema);
        let t = rewrite_to_ucq(&parse_query("TRUE").unwrap()).unwrap();
        let f = rewrite_to_ucq(&parse_query("FALSE").unwrap()).unwrap();
        let r = rewrite_to_ucq(&parse_query("EXISTS x . R(x)").unwrap()).unwrap();
        assert_eq!(
            count_by_boxes(&db, &keys, &t, 10).unwrap().to_u64(),
            Some(1)
        );
        assert_eq!(
            count_by_boxes(&db, &keys, &f, 10).unwrap().to_u64(),
            Some(0)
        );
        assert_eq!(
            count_by_boxes(&db, &keys, &r, 10).unwrap().to_u64(),
            Some(0)
        );
    }
}
