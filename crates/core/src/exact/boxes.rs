//! Exact counting via certificates and selector boxes.
//!
//! The set of repairs entailing a UCQ is the union of the boxes
//! `[B₁, …, Bₙ]_{σ_c}` over all certificates `c` (Section 4.1).  Counting
//! that union exactly is the crux of the exact algorithm:
//!
//! 1. boxes that are subsumed by another box are discarded;
//! 2. the remaining boxes are grouped into *components*: two boxes are in
//!    the same component iff they pin a common block (transitively);
//! 3. blocks pinned by no box at all are *free* and contribute a plain
//!    multiplicative factor;
//! 4. within a component the number of covered assignments is counted
//!    either by enumerating the assignments of the component's touched
//!    blocks or by inclusion–exclusion over its boxes, whichever is
//!    cheaper;
//! 5. the component counts combine by complementation, because a repair
//!    fails to entail the query iff it avoids every box of every component,
//!    and components constrain disjoint blocks:
//!    `#non-entailing = (∏ free |Bᵢ|) · ∏_components (totalᵢ − coveredᵢ)`.

use std::collections::{BTreeMap, BTreeSet};

use cdr_num::BigNat;
use cdr_query::UcqQuery;
use cdr_repairdb::{BlockPartition, Database, KeySet};

use crate::{distinct_boxes, enumerate_certificates, CountError, SelectorBox};

/// Counts the repairs of `db` w.r.t. `keys` that entail the UCQ, using the
/// certificate/box algorithm.
pub fn count_by_boxes(
    db: &Database,
    keys: &KeySet,
    ucq: &UcqQuery,
    budget: u64,
) -> Result<BigNat, CountError> {
    let blocks = BlockPartition::new(db, keys);
    let certificates = enumerate_certificates(db, keys, &blocks, ucq)?;
    let boxes = distinct_boxes(&certificates);
    count_union_of_boxes(&blocks, &boxes, budget)
}

/// Counts `|⋃ boxes|`: the number of repairs (one fact per block of
/// `blocks`) contained in at least one of the given selector boxes.
///
/// This is the quantity `|⋃_c [B₁, …, Bₙ]_{σ_c}|` of the paper's
/// "solutions via certificate expansion" property, and it is also the
/// unfolding count of a compactor output, which is why the Λ-hierarchy
/// crate reuses [`count_union_generic`], the domain-agnostic version this
/// function delegates to.
pub fn count_union_of_boxes(
    blocks: &BlockPartition,
    boxes: &[SelectorBox],
    budget: u64,
) -> Result<BigNat, CountError> {
    // Domains are indexed by block *slot* (`BlockId::index`), because that
    // is what box pins name.  Retired slots (emptied by deletions) become
    // neutral size-1 domains: they multiply nothing into the total and no
    // live box pins them.
    let sizes: Vec<usize> = blocks.slot_sizes().into_iter().map(|s| s.max(1)).collect();
    let generic: Vec<GenericBox> = boxes
        .iter()
        .map(|b| {
            b.pins()
                .map(|(block, fact)| {
                    let position = blocks
                        .block(block)
                        .position_of(fact)
                        .expect("a box only pins facts of its own block");
                    (block.index(), position)
                })
                .collect()
        })
        .collect();
    count_union_generic(&sizes, &generic, budget)
}

/// A box over abstract solution domains: a partial map from domain index to
/// the index of the pinned element within that domain.
pub type GenericBox = BTreeMap<usize, usize>;

/// Counts the tuples of `S₀ × ⋯ × S_{n-1}` (where `|Sᵢ| = domain_sizes[i]`)
/// that are covered by at least one box.
///
/// This is the engine behind both [`count_union_of_boxes`] and the
/// unfolding count of a Λ-hierarchy compactor: the paper's
/// `|⋃_c unfolding(M(x, c))|`.
pub fn count_union_generic(
    domain_sizes: &[usize],
    boxes: &[GenericBox],
    budget: u64,
) -> Result<BigNat, CountError> {
    let mut total = BigNat::one();
    for &s in domain_sizes {
        total.mul_assign_u64(s as u64);
    }
    // A box pinning an element outside its domain, or an empty domain,
    // cannot cover anything; filter such boxes out up front.
    let boxes: Vec<GenericBox> = boxes
        .iter()
        .filter(|b| {
            b.iter()
                .all(|(&d, &e)| d < domain_sizes.len() && e < domain_sizes[d])
        })
        .cloned()
        .collect();
    if total.is_zero() || boxes.is_empty() {
        return Ok(BigNat::zero());
    }
    if boxes.iter().any(|b| b.is_empty()) {
        return Ok(total);
    }
    let boxes = prune_subsumed(&boxes);
    let components = connected_components(&boxes);

    // Free domains: domains pinned by no box.
    let mut touched_all: BTreeSet<usize> = BTreeSet::new();
    for b in &boxes {
        touched_all.extend(b.keys().copied());
    }
    let mut free_product = BigNat::one();
    for (i, &s) in domain_sizes.iter().enumerate() {
        if !touched_all.contains(&i) {
            free_product.mul_assign_u64(s as u64);
        }
    }

    let mut uncovered_product = free_product;
    for component in &components {
        let touched: Vec<usize> = component.touched.iter().copied().collect();
        let mut component_total = BigNat::one();
        for &d in &touched {
            component_total.mul_assign_u64(domain_sizes[d] as u64);
        }
        let covered = count_component_union(domain_sizes, &component.boxes, &touched, budget)?;
        let uncovered = component_total
            .checked_sub(&covered)
            .expect("covered assignments cannot exceed the component total");
        uncovered_product = &uncovered_product * &uncovered;
    }
    Ok(total
        .checked_sub(&uncovered_product)
        .expect("non-entailing tuples cannot exceed the total"))
}

/// Drops boxes that are subsumed by (contained in) another box.
fn prune_subsumed(boxes: &[GenericBox]) -> Vec<GenericBox> {
    fn subset_of(a: &GenericBox, b: &GenericBox) -> bool {
        // Every tuple in the box with pins `a` is in the box with pins `b`
        // iff b's pins are a subset of a's pins.
        b.iter().all(|(d, e)| a.get(d) == Some(e))
    }
    let mut kept: Vec<GenericBox> = Vec::new();
    'outer: for (i, candidate) in boxes.iter().enumerate() {
        for (j, other) in boxes.iter().enumerate() {
            if i == j {
                continue;
            }
            // candidate ⊆ other, with ties broken by index so exactly one of
            // two equal boxes survives.
            if subset_of(candidate, other) && (!subset_of(other, candidate) || j < i) {
                continue 'outer;
            }
        }
        kept.push(candidate.clone());
    }
    kept
}

struct Component {
    boxes: Vec<GenericBox>,
    touched: BTreeSet<usize>,
}

/// Groups boxes into connected components of the "shares a pinned domain"
/// relation, via union–find over box indices.
fn connected_components(boxes: &[GenericBox]) -> Vec<Component> {
    let mut parent: Vec<usize> = (0..boxes.len()).collect();

    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    fn union(parent: &mut [usize], a: usize, b: usize) {
        let ra = find(parent, a);
        let rb = find(parent, b);
        if ra != rb {
            parent[ra] = rb;
        }
    }

    let mut domain_owner: BTreeMap<usize, usize> = BTreeMap::new();
    for (i, b) in boxes.iter().enumerate() {
        for &domain in b.keys() {
            match domain_owner.get(&domain) {
                Some(&owner) => union(&mut parent, i, owner),
                None => {
                    domain_owner.insert(domain, i);
                }
            }
        }
    }

    let mut grouped: BTreeMap<usize, Component> = BTreeMap::new();
    for (i, b) in boxes.iter().enumerate() {
        let root = find(&mut parent, i);
        let entry = grouped.entry(root).or_insert_with(|| Component {
            boxes: Vec::new(),
            touched: BTreeSet::new(),
        });
        entry.touched.extend(b.keys().copied());
        entry.boxes.push(b.clone());
    }
    grouped.into_values().collect()
}

/// Maximum number of boxes for which inclusion–exclusion (2^boxes terms) is
/// attempted when enumeration of the touched domains is over budget.
const MAX_IE_BOXES: usize = 22;

/// Counts the assignments of the component's touched domains that are
/// covered by at least one of the component's boxes.
fn count_component_union(
    domain_sizes: &[usize],
    boxes: &[GenericBox],
    touched: &[usize],
    budget: u64,
) -> Result<BigNat, CountError> {
    // Cost of enumerating the touched assignments.
    let mut enumeration_cost: u128 = 1;
    for &d in touched {
        enumeration_cost = enumeration_cost.saturating_mul(domain_sizes[d] as u128);
        if enumeration_cost > budget as u128 {
            break;
        }
    }
    if enumeration_cost <= budget as u128 {
        return Ok(count_by_touched_enumeration(domain_sizes, boxes, touched));
    }
    if boxes.len() <= MAX_IE_BOXES {
        return Ok(count_by_inclusion_exclusion(domain_sizes, boxes, touched));
    }
    Err(CountError::ExactBudgetExceeded {
        what: format!(
            "a component with {} boxes touching {} domains ({} assignments)",
            boxes.len(),
            touched.len(),
            enumeration_cost
        ),
        budget,
    })
}

/// Enumerates the assignments of the touched domains and counts those
/// covered by at least one box.
fn count_by_touched_enumeration(
    domain_sizes: &[usize],
    boxes: &[GenericBox],
    touched: &[usize],
) -> BigNat {
    let sizes: Vec<usize> = touched.iter().map(|&d| domain_sizes[d]).collect();
    let mut choice = vec![0usize; touched.len()];
    let mut covered: u64 = 0;
    loop {
        let is_covered = boxes.iter().any(|b| {
            b.iter().all(|(&domain, &element)| {
                match touched.iter().position(|&t| t == domain) {
                    Some(pos) => choice[pos] == element,
                    // A box never pins a domain outside its own component.
                    None => false,
                }
            })
        });
        if is_covered {
            covered += 1;
        }
        // Advance the mixed-radix counter.
        let mut i = touched.len();
        loop {
            if i == 0 {
                return BigNat::from(covered);
            }
            i -= 1;
            choice[i] += 1;
            if choice[i] < sizes[i] {
                break;
            }
            choice[i] = 0;
        }
        if touched.is_empty() {
            return BigNat::from(covered);
        }
    }
}

/// Counts the covered assignments by inclusion–exclusion over the boxes:
/// `|⋃ boxes| = Σ_{∅ ≠ S} (−1)^{|S|+1} |⋂ S|`, where the intersection of a
/// set of boxes is itself a box (or empty).
fn count_by_inclusion_exclusion(
    domain_sizes: &[usize],
    boxes: &[GenericBox],
    touched: &[usize],
) -> BigNat {
    let n = boxes.len();
    let mut positive = BigNat::zero();
    let mut negative = BigNat::zero();
    for mask in 1u64..(1u64 << n) {
        let mut intersection = GenericBox::new();
        let mut empty = false;
        'boxes: for (i, b) in boxes.iter().enumerate() {
            if mask & (1 << i) != 0 {
                for (&d, &e) in b {
                    match intersection.get(&d) {
                        Some(&existing) if existing != e => {
                            empty = true;
                            break 'boxes;
                        }
                        _ => {
                            intersection.insert(d, e);
                        }
                    }
                }
            }
        }
        if empty {
            continue;
        }
        // Size of the intersection restricted to the touched domains.
        let mut size = BigNat::one();
        for &d in touched {
            if !intersection.contains_key(&d) {
                size.mul_assign_u64(domain_sizes[d] as u64);
            }
        }
        if mask.count_ones() % 2 == 1 {
            positive += size;
        } else {
            negative += size;
        }
    }
    positive
        .checked_sub(&negative)
        .expect("inclusion-exclusion must not go negative")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::count_by_enumeration;
    use cdr_query::{parse_query, rewrite_to_ucq};
    use cdr_repairdb::Schema;

    fn employee() -> (Database, KeySet) {
        let mut schema = Schema::new();
        schema.add_relation("Employee", 3).unwrap();
        let keys = KeySet::builder(&schema).key("Employee", 1).unwrap().build();
        let mut db = Database::new(schema);
        db.insert_parsed("Employee(1, 'Bob', 'HR')").unwrap();
        db.insert_parsed("Employee(1, 'Bob', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Alice', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Tim', 'IT')").unwrap();
        (db, keys)
    }

    fn count_both_ways(db: &Database, keys: &KeySet, text: &str) -> (u64, u64) {
        let q = parse_query(text).unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        let by_boxes = count_by_boxes(db, keys, &ucq, 1_000_000).unwrap();
        let by_enum = count_by_enumeration(db, keys, &q, 1_000_000).unwrap();
        (by_boxes.to_u64().unwrap(), by_enum.to_u64().unwrap())
    }

    #[test]
    fn example_1_1_counts_two() {
        let (db, keys) = employee();
        let (boxes, enumeration) = count_both_ways(
            &db,
            &keys,
            "EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)",
        );
        assert_eq!(boxes, 2);
        assert_eq!(enumeration, 2);
    }

    #[test]
    fn agreement_with_enumeration_on_various_queries() {
        let (db, keys) = employee();
        for text in [
            "EXISTS n . Employee(2, n, 'IT')",
            "EXISTS n, d . Employee(3, n, d)",
            "Employee(1, 'Bob', 'HR')",
            "Employee(1, 'Bob', 'HR') OR Employee(1, 'Bob', 'IT')",
            "Employee(1, 'Bob', 'HR') AND Employee(2, 'Tim', 'IT')",
            "EXISTS i, n . Employee(i, n, 'HR')",
            "EXISTS i, n, d . Employee(i, n, d)",
            "TRUE",
            "FALSE",
        ] {
            let (a, b) = count_both_ways(&db, &keys, text);
            assert_eq!(a, b, "count mismatch for {text}");
        }
    }

    #[test]
    fn larger_database_with_mixed_blocks() {
        let mut schema = Schema::new();
        schema.add_relation("R", 2).unwrap();
        schema.add_relation("S", 2).unwrap();
        let keys = KeySet::builder(&schema)
            .key("R", 1)
            .unwrap()
            .key("S", 1)
            .unwrap()
            .build();
        let mut db = Database::new(schema);
        // R blocks: key 1 -> {a, b, c}; key 2 -> {a, b}; key 3 -> {c}.
        for (k, v) in [(1, "a"), (1, "b"), (1, "c"), (2, "a"), (2, "b"), (3, "c")] {
            db.insert_parsed(&format!("R({k}, '{v}')")).unwrap();
        }
        // S blocks: key 1 -> {a, x}; key 2 -> {y}.
        for (k, v) in [(1, "a"), (1, "x"), (2, "y")] {
            db.insert_parsed(&format!("S({k}, '{v}')")).unwrap();
        }
        for text in [
            "EXISTS k . R(k, 'a') AND S(k, 'a')",
            "EXISTS k, v . R(k, v) AND S(k, v)",
            "EXISTS k . R(k, 'c')",
            "R(1, 'a') OR S(1, 'x')",
            "EXISTS k . R(k, 'b') AND S(1, 'a')",
            "(EXISTS k . R(k, 'a')) AND (EXISTS j . S(j, 'y'))",
        ] {
            let q = parse_query(text).unwrap();
            let ucq = rewrite_to_ucq(&q).unwrap();
            let by_boxes = count_by_boxes(&db, &keys, &ucq, 1_000_000).unwrap();
            let by_enum = count_by_enumeration(&db, &keys, &q, 1_000_000).unwrap();
            assert_eq!(by_boxes, by_enum, "count mismatch for {text}");
        }
    }

    #[test]
    fn unconstrained_box_short_circuits_to_total() {
        let (db, keys) = employee();
        let ucq = rewrite_to_ucq(&parse_query("TRUE").unwrap()).unwrap();
        assert_eq!(
            count_by_boxes(&db, &keys, &ucq, 10).unwrap().to_u64(),
            Some(4)
        );
    }

    #[test]
    fn subsumed_boxes_are_pruned() {
        let (db, keys) = employee();
        let blocks = BlockPartition::new(&db, &keys);
        // Build two boxes where one subsumes the other.
        let q = parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        let certs = enumerate_certificates(&db, &keys, &blocks, &ucq).unwrap();
        let tight = certs[0].selector.clone();
        let loose = SelectorBox::new(tight.pins().take(1));
        // At the generic level, the tighter box (more pins) is dropped.
        let tight_g: GenericBox = [(0usize, 1usize), (1, 0)].into_iter().collect();
        let loose_g: GenericBox = [(0usize, 1usize)].into_iter().collect();
        let pruned = prune_subsumed(&[tight_g.clone(), loose_g.clone()]);
        assert_eq!(pruned, vec![loose_g.clone()]);
        // Equal boxes: exactly one survives.
        let pruned = prune_subsumed(&[loose_g.clone(), loose_g.clone()]);
        assert_eq!(pruned.len(), 1);
        // Counting with redundant boxes still gives the right answer.
        let with_redundant = count_union_of_boxes(&blocks, &[tight, loose.clone()], 1000).unwrap();
        let alone = count_union_of_boxes(&blocks, &[loose], 1000).unwrap();
        assert_eq!(with_redundant, alone);
    }

    #[test]
    fn generic_union_counting_matches_brute_force() {
        // Three domains of sizes 3, 2, 4; a handful of boxes; compare
        // against a brute-force sweep of all 24 tuples.
        let sizes = [3usize, 2, 4];
        let boxes: Vec<GenericBox> = vec![
            [(0usize, 0usize), (1, 1)].into_iter().collect(),
            [(1usize, 0usize), (2, 3)].into_iter().collect(),
            [(0usize, 2usize)].into_iter().collect(),
        ];
        let mut expected = 0u64;
        for a in 0..3 {
            for b in 0..2 {
                for c in 0..4 {
                    let tuple = [a, b, c];
                    if boxes
                        .iter()
                        .any(|bx| bx.iter().all(|(&d, &e)| tuple[d] == e))
                    {
                        expected += 1;
                    }
                }
            }
        }
        let counted = count_union_generic(&sizes, &boxes, 1_000).unwrap();
        assert_eq!(counted.to_u64(), Some(expected));
        // The same result through the inclusion-exclusion path.
        let counted_ie = count_union_generic(&sizes, &boxes, 1).unwrap();
        assert_eq!(counted_ie.to_u64(), Some(expected));
    }

    #[test]
    fn generic_union_counting_edge_cases() {
        // No boxes.
        assert!(count_union_generic(&[2, 2], &[], 10).unwrap().is_zero());
        // An empty (unconstrained) box covers everything.
        let all: Vec<GenericBox> = vec![GenericBox::new()];
        assert_eq!(
            count_union_generic(&[2, 3], &all, 10).unwrap().to_u64(),
            Some(6)
        );
        // A box pinning a non-existent element is discarded.
        let bogus: Vec<GenericBox> = vec![[(0usize, 9usize)].into_iter().collect()];
        assert!(count_union_generic(&[2, 2], &bogus, 10).unwrap().is_zero());
        // An empty product space.
        let b: Vec<GenericBox> = vec![[(0usize, 0usize)].into_iter().collect()];
        assert!(count_union_generic(&[2, 0], &b, 10).unwrap().is_zero());
        // No domains at all: the single empty tuple, covered only by an
        // unconstrained box.
        assert_eq!(
            count_union_generic(&[], &all, 10).unwrap().to_u64(),
            Some(1)
        );
        assert!(count_union_generic(&[], &[], 10).unwrap().is_zero());
    }

    #[test]
    fn inclusion_exclusion_matches_enumeration_within_a_component() {
        // Force the IE path by using a tiny budget, then compare with the
        // enumeration path under a large budget.
        let mut schema = Schema::new();
        schema.add_relation("R", 2).unwrap();
        let keys = KeySet::builder(&schema).key("R", 1).unwrap().build();
        let mut db = Database::new(schema);
        for k in 1..=4i64 {
            for v in ["a", "b", "c"] {
                db.insert_parsed(&format!("R({k}, '{v}')")).unwrap();
            }
        }
        let q = parse_query(
            "(EXISTS x . R(1, 'a') AND R(2, 'a')) OR (EXISTS x . R(2, 'b') AND R(3, 'c')) \
             OR (EXISTS x . R(1, 'b') AND R(3, 'a') AND R(4, 'c'))",
        )
        .unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        let blocks = BlockPartition::new(&db, &keys);
        let certs = enumerate_certificates(&db, &keys, &blocks, &ucq).unwrap();
        let boxes = distinct_boxes(&certs);
        // All three boxes overlap on blocks {1,2,3,4}: a single component.
        let big_budget = count_union_of_boxes(&blocks, &boxes, 1_000_000).unwrap();
        let tiny_budget = count_union_of_boxes(&blocks, &boxes, 2).unwrap();
        assert_eq!(big_budget, tiny_budget);
        let by_enum = count_by_enumeration(&db, &keys, &q, 1_000_000).unwrap();
        assert_eq!(big_budget, by_enum);
    }

    #[test]
    fn budget_exceeded_when_both_strategies_are_infeasible() {
        // Many boxes in one component and a huge touched product: with a
        // tiny budget and more than MAX_IE_BOXES boxes, counting must fail.
        let mut schema = Schema::new();
        schema.add_relation("R", 2).unwrap();
        schema.add_relation("Hub", 2).unwrap();
        let keys = KeySet::builder(&schema)
            .key("R", 1)
            .unwrap()
            .key("Hub", 1)
            .unwrap()
            .build();
        let mut db = Database::new(schema);
        for k in 1..=30i64 {
            db.insert_parsed(&format!("R({k}, 'a')")).unwrap();
            db.insert_parsed(&format!("R({k}, 'b')")).unwrap();
            // Hub links every R block into one component.
            db.insert_parsed(&format!("Hub(0, 'h{k}')")).unwrap();
        }
        // Each disjunct pins Hub block 0 (shared) and one R block.
        let mut disjuncts = Vec::new();
        for k in 1..=30i64 {
            disjuncts.push(format!("(EXISTS h . R({k}, 'a') AND Hub(0, h))"));
        }
        let q = parse_query(&disjuncts.join(" OR ")).unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        let err = count_by_boxes(&db, &keys, &ucq, 100).unwrap_err();
        assert!(matches!(err, CountError::ExactBudgetExceeded { .. }));
    }

    #[test]
    fn empty_database_cases() {
        let mut schema = Schema::new();
        schema.add_relation("R", 1).unwrap();
        let keys = KeySet::builder(&schema).key("R", 1).unwrap().build();
        let db = Database::new(schema);
        let t = rewrite_to_ucq(&parse_query("TRUE").unwrap()).unwrap();
        let f = rewrite_to_ucq(&parse_query("FALSE").unwrap()).unwrap();
        let r = rewrite_to_ucq(&parse_query("EXISTS x . R(x)").unwrap()).unwrap();
        assert_eq!(
            count_by_boxes(&db, &keys, &t, 10).unwrap().to_u64(),
            Some(1)
        );
        assert_eq!(
            count_by_boxes(&db, &keys, &f, 10).unwrap().to_u64(),
            Some(0)
        );
        assert_eq!(
            count_by_boxes(&db, &keys, &r, 10).unwrap().to_u64(),
            Some(0)
        );
    }
}
