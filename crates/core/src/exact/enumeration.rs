//! Exact counting by exhaustive repair enumeration.

use cdr_num::BigNat;
use cdr_query::{evaluate, rewrite_to_ucq, ucq_holds, Query, QueryClass};
use cdr_repairdb::{count_repairs, BlockPartition, Database, KeySet, RepairIter};

use crate::CountError;

/// Counts the repairs of `db` w.r.t. `keys` that entail the Boolean query,
/// by enumerating every repair and evaluating the query on it.
///
/// This is the counting machine of Theorem 3.3 made concrete: each branch
/// of the nondeterministic machine corresponds to one iteration of
/// [`RepairIter`], and a branch accepts iff the materialised repair
/// satisfies the query.  It works for arbitrary first-order queries.
///
/// `budget` bounds the number of repairs that will be enumerated; if the
/// total number of repairs exceeds it, the function fails fast with
/// [`CountError::ExactBudgetExceeded`] instead of running for years.
pub fn count_by_enumeration(
    db: &Database,
    keys: &KeySet,
    query: &Query,
    budget: u64,
) -> Result<BigNat, CountError> {
    let blocks = BlockPartition::new(db, keys);
    let total = count_repairs(&blocks);
    if total > BigNat::from(budget) {
        return Err(CountError::ExactBudgetExceeded {
            what: format!("{total} repairs to enumerate"),
            budget,
        });
    }
    // For existential positive queries, homomorphism search on each repair
    // is much faster than active-domain FO evaluation.
    let ucq = if query.classify() == QueryClass::FirstOrder {
        None
    } else {
        Some(rewrite_to_ucq(query)?)
    };
    let mut count = BigNat::zero();
    for repair in RepairIter::new(&blocks) {
        let repaired = repair.to_database(db);
        let holds = match &ucq {
            Some(u) => ucq_holds(&repaired, u)?,
            None => evaluate(&repaired, query)?,
        };
        if holds {
            count += BigNat::one();
        }
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdr_query::parse_query;
    use cdr_repairdb::Schema;

    fn employee() -> (Database, KeySet) {
        let mut schema = Schema::new();
        schema.add_relation("Employee", 3).unwrap();
        let keys = KeySet::builder(&schema).key("Employee", 1).unwrap().build();
        let mut db = Database::new(schema);
        db.insert_parsed("Employee(1, 'Bob', 'HR')").unwrap();
        db.insert_parsed("Employee(1, 'Bob', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Alice', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Tim', 'IT')").unwrap();
        (db, keys)
    }

    #[test]
    fn example_1_1_counts_two_of_four() {
        let (db, keys) = employee();
        let q = parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap();
        let count = count_by_enumeration(&db, &keys, &q, 1_000).unwrap();
        assert_eq!(count.to_u64(), Some(2));
    }

    #[test]
    fn certain_and_impossible_queries() {
        let (db, keys) = employee();
        // Employee 2 works in IT in every repair.
        let q = parse_query("EXISTS n . Employee(2, n, 'IT')").unwrap();
        assert_eq!(
            count_by_enumeration(&db, &keys, &q, 1_000)
                .unwrap()
                .to_u64(),
            Some(4)
        );
        // Employee 3 never exists.
        let q = parse_query("EXISTS n, d . Employee(3, n, d)").unwrap();
        assert_eq!(
            count_by_enumeration(&db, &keys, &q, 1_000)
                .unwrap()
                .to_u64(),
            Some(0)
        );
        // TRUE holds in every repair, FALSE in none.
        assert_eq!(
            count_by_enumeration(&db, &keys, &parse_query("TRUE").unwrap(), 1_000)
                .unwrap()
                .to_u64(),
            Some(4)
        );
        assert_eq!(
            count_by_enumeration(&db, &keys, &parse_query("FALSE").unwrap(), 1_000)
                .unwrap()
                .to_u64(),
            Some(0)
        );
    }

    #[test]
    fn first_order_queries_with_negation() {
        let (db, keys) = employee();
        // Repairs where nobody works in HR: exactly those that pick Bob→IT,
        // i.e. 2 of the 4 repairs.
        let q = parse_query("NOT EXISTS i, n . Employee(i, n, 'HR')").unwrap();
        assert_eq!(
            count_by_enumeration(&db, &keys, &q, 1_000)
                .unwrap()
                .to_u64(),
            Some(2)
        );
        // Repairs where employees 1 and 2 do NOT share a department: the
        // complement of the example count, 4 - 2 = 2.
        let q =
            parse_query("NOT EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap();
        assert_eq!(
            count_by_enumeration(&db, &keys, &q, 1_000)
                .unwrap()
                .to_u64(),
            Some(2)
        );
    }

    #[test]
    fn budget_is_enforced() {
        let (db, keys) = employee();
        let q = parse_query("TRUE").unwrap();
        let err = count_by_enumeration(&db, &keys, &q, 3).unwrap_err();
        assert!(matches!(
            err,
            CountError::ExactBudgetExceeded { budget: 3, .. }
        ));
    }

    #[test]
    fn consistent_database_counts_zero_or_one() {
        let mut schema = Schema::new();
        schema.add_relation("R", 2).unwrap();
        let keys = KeySet::builder(&schema).key("R", 1).unwrap().build();
        let mut db = Database::new(schema);
        db.insert_parsed("R(1, 'a')").unwrap();
        db.insert_parsed("R(2, 'b')").unwrap();
        let yes = parse_query("EXISTS x . R(x, 'a')").unwrap();
        let no = parse_query("EXISTS x . R(x, 'z')").unwrap();
        assert_eq!(
            count_by_enumeration(&db, &keys, &yes, 10).unwrap().to_u64(),
            Some(1)
        );
        assert_eq!(
            count_by_enumeration(&db, &keys, &no, 10).unwrap().to_u64(),
            Some(0)
        );
    }
}
