//! Exact counting of repairs that entail a query.
//!
//! `#CQA(Q, Σ)` is #P-hard already for very simple conjunctive queries
//! (Theorem 3.1, citing Maslowski–Wijsen), so every exact algorithm here is
//! worst-case exponential.  Two algorithms are provided:
//!
//! * [`count_by_enumeration`] — enumerate all repairs and evaluate the query
//!   on each; works for arbitrary first-order queries and is the direct
//!   implementation of the nondeterministic machine in the proof of
//!   Theorem 3.3.
//! * [`count_by_boxes`] — the certificate/box algorithm for UCQs: compute
//!   all certificates, group their selector boxes into independent
//!   components, count the covered assignments per component, and combine
//!   by complementation.  This mirrors the paper's "solutions via
//!   certificate expansion" view (Section 4.1) and is usually orders of
//!   magnitude faster than enumeration because only *touched* blocks are
//!   ever enumerated.
//!
//! Both take a budget guarding against accidentally exponential runs and
//! return [`CountError::ExactBudgetExceeded`] when it would be exceeded.

mod boxes;
mod enumeration;

pub use boxes::{
    count_by_boxes, count_union_generic, count_union_of_boxes, count_union_of_boxes_with_total,
    GenericBox,
};
pub use enumeration::count_by_enumeration;

/// Default budget for exact counters: the maximum number of repairs (for
/// enumeration) or per-component assignments (for the box algorithm) that
/// will be enumerated before giving up with
/// [`crate::CountError::ExactBudgetExceeded`].
pub const DEFAULT_EXACT_BUDGET: u64 = 20_000_000;
