//! Certificates and selector boxes.
//!
//! A *small certificate* for "some repair entails the UCQ `Q = Q₁ ∨ ⋯ ∨ Qₘ`"
//! is a pair `(Q', h)` where `Q'` is a disjunct of `Q` and
//! `h : var(Q') → dom(D)` is a homomorphism with `h(Q') ⊆ D` and
//! `h(Q') ⊨ Σ` (Section 4.1).  Each certificate determines an ℓ-selector
//! over the block sequence `B₁, …, Bₙ`: block `Bᵢ` is *pinned* to the fact
//! `R(t̄)` iff `h(Q') ∩ Bᵢ = {R(t̄)}` and `Σ` has an `R`-key.  The set of
//! repairs witnessed by the certificate is then the cartesian "box"
//! `[B₁, …, Bₙ]_σ`: pinned blocks contribute their pinned fact, all other
//! blocks contribute any of their facts.
//!
//! The exact counters, the FPRAS and the Λ-hierarchy compactors all consume
//! this module.

use cdr_num::BigNat;
use cdr_query::{find_homomorphisms, Assignment, Term, UcqQuery};
use cdr_repairdb::{BlockId, BlockPartition, Database, FactId, KeySet, Repair};

use crate::CountError;

/// A certificate `(Q', h)` together with its derived selector.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Certificate {
    /// Index of the disjunct `Q'` within the UCQ.
    pub disjunct: usize,
    /// The homomorphism `h : var(Q') → dom(D)`.
    pub homomorphism: Assignment,
    /// The image `h(Q') ⊆ D`, as fact ids (duplicates removed, sorted).
    pub image: Vec<FactId>,
    /// The selector box determined by the certificate.
    pub selector: SelectorBox,
}

/// A selector box `[B₁, …, Bₙ]_σ`: a set of repairs described by pinning
/// at most `k` blocks to specific facts.
///
/// Pins are stored as a flat slice sorted by block slot — boxes are tiny
/// (at most the query's keywidth entries), so linear merges and binary
/// searches beat a tree both in time and in allocation count, and the
/// derived ordering/hashing coincide with the old sorted-map
/// representation.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SelectorBox {
    /// The pins `(block, fact)`, sorted by block slot, one pin per block.
    pinned: Box<[(BlockId, FactId)]>,
}

impl SelectorBox {
    /// Creates a box from explicit pins.  Pinning the same block twice
    /// keeps the last pin (map-insertion semantics).
    pub fn new(pins: impl IntoIterator<Item = (BlockId, FactId)>) -> Self {
        let mut pinned: Vec<(BlockId, FactId)> = pins.into_iter().collect();
        pinned.sort_by_key(|&(block, _)| block);
        // Keep the *last* pin of every equal-block run.
        pinned.reverse();
        pinned.dedup_by_key(|&mut (block, _)| block);
        pinned.reverse();
        SelectorBox {
            pinned: pinned.into_boxed_slice(),
        }
    }

    /// The pinned blocks and the fact each one is pinned to, in ascending
    /// block-slot order.
    pub fn pins(&self) -> impl Iterator<Item = (BlockId, FactId)> + '_ {
        self.pinned.iter().copied()
    }

    /// Number of pinned blocks (the `ℓ` of an ℓ-selector).
    pub fn pin_count(&self) -> usize {
        self.pinned.len()
    }

    /// Returns `true` iff no block is pinned, i.e. the box is the full
    /// cartesian product of all blocks (every repair is covered).
    pub fn is_unconstrained(&self) -> bool {
        self.pinned.is_empty()
    }

    /// The fact the given block is pinned to, if any.
    pub fn pin_for(&self, block: BlockId) -> Option<FactId> {
        self.pinned
            .binary_search_by_key(&block, |&(b, _)| b)
            .ok()
            .map(|i| self.pinned[i].1)
    }

    /// Returns `true` iff the repair lies inside the box.
    ///
    /// A repair holds exactly one fact from every block, so it matches a
    /// pin `(B, α)` iff it contains `α` — no block lookup is needed.
    pub fn contains_repair(&self, repair: &Repair) -> bool {
        self.pinned.iter().all(|&(_, fact)| repair.contains(fact))
    }

    /// Returns `true` iff a repair described by "fact chosen per block"
    /// lies inside the box.
    ///
    /// `chosen` is indexed by block *slot* ([`BlockId::index`]), not by
    /// `≺_{D,Σ}` position, and must span every slot
    /// ([`BlockPartition::slot_count`] entries); after deletions retire
    /// slots, the two numbering schemes diverge.  Entries for retired
    /// slots are never read (no live box pins them).
    pub fn contains_choice(&self, chosen: &[FactId]) -> bool {
        self.pinned
            .iter()
            .all(|&(block, fact)| chosen[block.index()] == fact)
    }

    /// The number of repairs inside the box: `∏` over unpinned blocks of
    /// `|Bᵢ|`.
    pub fn size(&self, blocks: &BlockPartition) -> BigNat {
        let mut size = BigNat::one();
        for (id, block) in blocks.iter() {
            if self.pin_for(id).is_none() {
                size.mul_assign_u64(block.len() as u64);
            }
        }
        size
    }

    /// [`SelectorBox::size`] computed by *division*: `total / ∏` over
    /// pinned blocks of `|Bᵢ|`, where `total = ∏ |Bᵢ|` is the caller's
    /// precomputed total repair count.  Exact (every pinned block's size
    /// divides the total) and `O(pins)` instead of `O(blocks)`.
    ///
    /// # Panics
    ///
    /// Panics if a pinned block is empty (a live box never pins a retired
    /// slot) — the division would otherwise be by zero.
    pub fn size_with_total(&self, blocks: &BlockPartition, total: &BigNat) -> BigNat {
        let mut size = total.clone();
        for &(block, _) in self.pinned.iter() {
            let len = blocks.block(block).len() as u64;
            assert!(len > 0, "a live box never pins a retired block slot");
            let (quotient, remainder) = size.div_rem_u64(len);
            debug_assert_eq!(remainder, 0, "block sizes divide the total exactly");
            size = quotient;
        }
        size
    }

    /// The intersection of two boxes: a box, unless they pin the same block
    /// to different facts, in which case the intersection is empty.
    pub fn intersect(&self, other: &SelectorBox) -> Option<SelectorBox> {
        let mut pinned = Vec::with_capacity(self.pinned.len() + other.pinned.len());
        let (mut left, mut right) = (
            self.pinned.iter().peekable(),
            other.pinned.iter().peekable(),
        );
        loop {
            match (left.peek(), right.peek()) {
                (Some(&&(lb, lf)), Some(&&(rb, rf))) => {
                    if lb == rb {
                        if lf != rf {
                            return None;
                        }
                        pinned.push((lb, lf));
                        left.next();
                        right.next();
                    } else if lb < rb {
                        pinned.push((lb, lf));
                        left.next();
                    } else {
                        pinned.push((rb, rf));
                        right.next();
                    }
                }
                (Some(&&pin), None) => {
                    pinned.push(pin);
                    left.next();
                }
                (None, Some(&&pin)) => {
                    pinned.push(pin);
                    right.next();
                }
                (None, None) => break,
            }
        }
        Some(SelectorBox {
            pinned: pinned.into_boxed_slice(),
        })
    }

    /// Returns `true` iff every repair in `self` is also in `other`
    /// (i.e. `other`'s pins are a subset of `self`'s pins) — a linear
    /// merge over the two sorted pin slices.
    pub fn is_subset_of(&self, other: &SelectorBox) -> bool {
        let mut mine = self.pinned.iter();
        'outer: for &(block, fact) in other.pinned.iter() {
            for &(candidate_block, candidate_fact) in mine.by_ref() {
                if candidate_block == block {
                    if candidate_fact != fact {
                        return false;
                    }
                    continue 'outer;
                }
                if candidate_block > block {
                    return false;
                }
            }
            return false;
        }
        true
    }
}

/// Enumerates all certificates of a UCQ over a database, together with
/// their selector boxes.
///
/// Certificates are returned in a deterministic order: by disjunct index,
/// then by the sorted homomorphism.  Two different homomorphisms can induce
/// the same box; no deduplication is performed here because the certificate
/// itself (not the box) is the paper's notion — callers that only need
/// boxes can deduplicate with [`distinct_boxes`].
pub fn enumerate_certificates(
    db: &Database,
    keys: &KeySet,
    blocks: &BlockPartition,
    ucq: &UcqQuery,
) -> Result<Vec<Certificate>, CountError> {
    let mut certificates = Vec::new();
    for (disjunct_index, disjunct) in ucq.disjuncts().iter().enumerate() {
        let homomorphisms = find_homomorphisms(db, disjunct)?;
        for hom in homomorphisms {
            // Compute the image h(Q') as fact ids.
            let mut image = Vec::with_capacity(disjunct.atoms().len());
            let mut image_facts = Vec::with_capacity(disjunct.atoms().len());
            for atom in disjunct.atoms() {
                let grounded = atom.substitute(&|v| hom.get(v).cloned().map(Term::Const));
                debug_assert!(grounded.is_ground(), "homomorphism must ground the atom");
                let rel = db
                    .schema()
                    .relation_id(grounded.relation())
                    .expect("validated by find_homomorphisms");
                let args: Vec<_> = grounded
                    .terms()
                    .iter()
                    .map(|t| t.as_const().expect("ground").clone())
                    .collect();
                let fact = cdr_repairdb::Fact::new(rel, args);
                let id = db
                    .fact_id(&fact)
                    .expect("image facts are in D by construction");
                if !image.contains(&id) {
                    image.push(id);
                    image_facts.push(fact);
                }
            }
            image.sort();
            // Check h(Q') ⊨ Σ.
            if !keys.satisfied_by(image_facts.iter()) {
                continue;
            }
            // Derive the selector: pin block Bᵢ to R(t̄) iff
            // h(Q') ∩ Bᵢ = {R(t̄)} and Σ has an R-key.
            // h(Q') ⊨ Σ guarantees at most one image fact per keyed
            // block, so collecting never produces conflicting pins.
            let pins = image.iter().filter_map(|&fact_id| {
                let fact = db.fact(fact_id);
                if !keys.has_key(fact.relation()) {
                    return None;
                }
                let block = blocks
                    .block_of(fact_id)
                    .expect("facts of D belong to a block");
                Some((block, fact_id))
            });
            certificates.push(Certificate {
                disjunct: disjunct_index,
                homomorphism: hom,
                selector: SelectorBox::new(pins),
                image,
            });
        }
    }
    Ok(certificates)
}

/// The distinct selector boxes of a certificate set, preserving first-seen
/// order.
pub fn distinct_boxes(certificates: &[Certificate]) -> Vec<SelectorBox> {
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    for cert in certificates {
        if seen.insert(cert.selector.clone()) {
            out.push(cert.selector.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdr_query::{parse_query, rewrite_to_ucq};
    use cdr_repairdb::{RepairIter, Schema};

    fn employee() -> (Database, KeySet, BlockPartition, UcqQuery) {
        let mut schema = Schema::new();
        schema.add_relation("Employee", 3).unwrap();
        let keys = KeySet::builder(&schema).key("Employee", 1).unwrap().build();
        let mut db = Database::new(schema);
        db.insert_parsed("Employee(1, 'Bob', 'HR')").unwrap();
        db.insert_parsed("Employee(1, 'Bob', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Alice', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Tim', 'IT')").unwrap();
        let blocks = BlockPartition::new(&db, &keys);
        let q = parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        (db, keys, blocks, ucq)
    }

    #[test]
    fn example_1_1_certificates() {
        let (db, keys, blocks, ucq) = employee();
        let certs = enumerate_certificates(&db, &keys, &blocks, &ucq).unwrap();
        // Bob(IT) with Alice(IT), and Bob(IT) with Tim(IT).
        assert_eq!(certs.len(), 2);
        for c in &certs {
            assert_eq!(c.disjunct, 0);
            assert_eq!(c.image.len(), 2);
            assert_eq!(c.selector.pin_count(), 2, "both atoms are keyed");
            assert!(!c.selector.is_unconstrained());
        }
        // Each certificate's box contains exactly one repair here (both
        // blocks pinned), and the two boxes are distinct.
        let boxes = distinct_boxes(&certs);
        assert_eq!(boxes.len(), 2);
        for b in &boxes {
            assert_eq!(b.size(&blocks).to_u64(), Some(1));
        }
    }

    #[test]
    fn union_of_boxes_matches_enumeration_on_the_example() {
        let (db, keys, blocks, ucq) = employee();
        let certs = enumerate_certificates(&db, &keys, &blocks, &ucq).unwrap();
        let boxes = distinct_boxes(&certs);
        let mut covered = 0;
        for repair in RepairIter::new(&blocks) {
            if boxes.iter().any(|b| b.contains_repair(&repair)) {
                covered += 1;
            }
        }
        assert_eq!(covered, 2, "the paper's example: 2 of 4 repairs entail Q");
    }

    #[test]
    fn inconsistent_homomorphic_images_are_rejected() {
        // Query joining two different names for the same employee id:
        // h(Q') would need two conflicting facts, which violates Σ.
        let mut schema = Schema::new();
        schema.add_relation("Employee", 3).unwrap();
        let keys = KeySet::builder(&schema).key("Employee", 1).unwrap().build();
        let mut db = Database::new(schema);
        db.insert_parsed("Employee(1, 'Bob', 'HR')").unwrap();
        db.insert_parsed("Employee(1, 'Ann', 'IT')").unwrap();
        let blocks = BlockPartition::new(&db, &keys);
        let q =
            parse_query("EXISTS d, e . Employee(1, 'Bob', d) AND Employee(1, 'Ann', e)").unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        let certs = enumerate_certificates(&db, &keys, &blocks, &ucq).unwrap();
        assert!(certs.is_empty(), "no repair can contain both facts");
    }

    #[test]
    fn unkeyed_atoms_are_not_pinned() {
        let mut schema = Schema::new();
        schema.add_relation("Employee", 3).unwrap();
        schema.add_relation("Log", 1).unwrap();
        let keys = KeySet::builder(&schema).key("Employee", 1).unwrap().build();
        let mut db = Database::new(schema);
        db.insert_parsed("Employee(1, 'Bob', 'HR')").unwrap();
        db.insert_parsed("Employee(1, 'Bob', 'IT')").unwrap();
        db.insert_parsed("Log('audit')").unwrap();
        let blocks = BlockPartition::new(&db, &keys);
        let q = parse_query("EXISTS d . Employee(1, 'Bob', d) AND Log('audit')").unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        let certs = enumerate_certificates(&db, &keys, &blocks, &ucq).unwrap();
        assert_eq!(certs.len(), 2);
        for c in &certs {
            assert_eq!(
                c.selector.pin_count(),
                1,
                "only the Employee atom is pinned"
            );
        }
    }

    #[test]
    fn selector_box_operations() {
        let (db, keys, blocks, ucq) = employee();
        let certs = enumerate_certificates(&db, &keys, &blocks, &ucq).unwrap();
        let a = &certs[0].selector;
        let b = &certs[1].selector;
        // Intersection of a box with itself is itself.
        assert_eq!(a.intersect(a).as_ref(), Some(a));
        assert!(a.is_subset_of(a));
        // The two boxes pin the same block (employee 2) to different facts:
        // their intersection must be empty.
        assert_eq!(a.intersect(b), None);
        assert!(!a.is_subset_of(b));
        // Pins are accessible and consistent with pin_for.
        for (block, fact) in a.pins() {
            assert_eq!(a.pin_for(block), Some(fact));
        }
        assert_eq!(a.pin_for(BlockId::new(99)), None);
        // An unconstrained box covers every repair and has full size.
        let full = SelectorBox::default();
        assert!(full.is_unconstrained());
        assert_eq!(full.size(&blocks).to_u64(), Some(4));
        for repair in RepairIter::new(&blocks) {
            assert!(full.contains_repair(&repair));
        }
        // A subset relation with a less constrained box.
        let looser = SelectorBox::new(a.pins().take(1));
        assert!(a.is_subset_of(&looser));
        assert!(!looser.is_subset_of(a));
        assert!(looser.intersect(a).is_some());
    }

    #[test]
    fn contains_choice_matches_contains_repair() {
        let (_db, _keys, blocks, ucq) = employee();
        let (db, keys, _, _) = employee();
        let certs = enumerate_certificates(&db, &keys, &blocks, &ucq).unwrap();
        for repair in RepairIter::new(&blocks) {
            let chosen: Vec<FactId> = repair.facts().to_vec();
            for c in &certs {
                assert_eq!(
                    c.selector.contains_repair(&repair),
                    c.selector.contains_choice(&chosen)
                );
            }
        }
    }

    #[test]
    fn trivially_true_query_yields_unconstrained_certificate() {
        let (db, keys, blocks, _) = employee();
        let ucq = rewrite_to_ucq(&parse_query("TRUE").unwrap()).unwrap();
        let certs = enumerate_certificates(&db, &keys, &blocks, &ucq).unwrap();
        assert_eq!(certs.len(), 1);
        assert!(certs[0].selector.is_unconstrained());
        assert!(certs[0].image.is_empty());
    }

    #[test]
    fn false_query_has_no_certificates() {
        let (db, keys, blocks, _) = employee();
        let ucq = rewrite_to_ucq(&parse_query("FALSE").unwrap()).unwrap();
        let certs = enumerate_certificates(&db, &keys, &blocks, &ucq).unwrap();
        assert!(certs.is_empty());
    }
}
