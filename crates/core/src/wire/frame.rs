//! The binary bulk-ingest frame: `BULK` escapes the line protocol.
//!
//! Textual `INSERT` parsing dominates ingest-heavy sessions (the
//! `wire_parse` bench shows value parsing and fact construction costing
//! far more than the engine's own apply step for small facts).  The
//! `BULK` verb escapes the line protocol into one length-prefixed binary
//! frame carrying a whole run of mutations:
//!
//! ```text
//! client: BULK <len>\n              — header line; <len> = frame bytes
//! client: <len raw bytes>           — the frame: [crc32 ‖ payload]
//! server: <one reply line per op>   — byte-identical to the textual path
//! ```
//!
//! The frame reuses the CRC-32 integrity check and the byte-reader of
//! the snapshot/replog codecs ([`cdr_repairdb::snapshot`]); its own
//! integers are LEB128 varints (signed ones zigzagged), which keeps the
//! common small relation/symbol indexes and keys to one or two bytes —
//! the frame is both smaller on the wire and cheaper to checksum.  The
//! payload is:
//!
//! ```text
//! version   u8                            — BULK_VERSION (1)
//! dict_len  varint                        — symbol dictionary entries
//! dict      dict_len × (varint ‖ utf-8)   — length-prefixed strings
//! op_count  varint
//! ops       op_count × op
//!
//! op := 0x00 ‖ relation varint ‖ arity × value   — INSERT
//!     | 0x01 ‖ fact-id varint                    — DELETE
//! value := 0x00 ‖ zigzag-varint                  — integer constant
//!        | 0x01 ‖ symbol-index varint            — dictionary reference
//! ```
//!
//! Every distinct string constant is shipped **once**, in the
//! dictionary; facts reference it by index.  The decoder interns
//! each dictionary entry exactly once (the PR 4 intern table makes the
//! per-fact cost an integer copy), so decoding a frame is within a small
//! constant of `memcpy` — the `wire_frame` bench tracks the ratio over
//! the equivalent textual parse.
//!
//! Decoding is strict: a checksum mismatch, a truncated structure, an
//! unknown tag, an out-of-range relation/symbol index or trailing bytes
//! all reject the *whole* frame — the serving layer executes none of its
//! ops and answers a single deterministic `ERR FRAME` line.  Counts are
//! never trusted before the bytes backing them exist: allocation is
//! bounded by the frame's actual length, so a hostile `op_count` cannot
//! reserve memory it never sent.

use cdr_repairdb::snapshot::{crc32, write_u32, ByteReader, SnapshotError};
use cdr_repairdb::{Database, Fact, FactId, Mutation, Symbol, Value};
use std::collections::HashMap;
use std::fmt;

/// Appends an LEB128 varint.
pub(crate) fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends a zigzag-encoded signed varint.
fn write_varint_i64(out: &mut Vec<u8>, v: i64) {
    write_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// Reads an LEB128 varint.  The one-byte case — almost every varint in
/// a real frame — returns without entering the continuation loop.
#[inline]
pub(crate) fn read_varint(reader: &mut ByteReader<'_>) -> Result<u64, FrameError> {
    let byte = reader.u8()?;
    if byte & 0x80 == 0 {
        return Ok(u64::from(byte));
    }
    read_varint_slow(reader, u64::from(byte & 0x7F))
}

/// Continuation bytes of a multi-byte varint.
fn read_varint_slow(reader: &mut ByteReader<'_>, mut acc: u64) -> Result<u64, FrameError> {
    let mut shift = 7u32;
    loop {
        let byte = reader.u8()?;
        if shift == 63 && byte > 1 {
            return Err(FrameError::Corrupt("varint overflows 64 bits".to_string()));
        }
        acc |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(acc);
        }
        shift += 7;
        if shift > 63 {
            return Err(FrameError::Corrupt("varint overflows 64 bits".to_string()));
        }
    }
}

/// Reads a zigzag-encoded signed varint.
#[inline]
fn read_varint_i64(reader: &mut ByteReader<'_>) -> Result<i64, FrameError> {
    let raw = read_varint(reader)?;
    Ok((raw >> 1) as i64 ^ -((raw & 1) as i64))
}

/// Reads a varint-length-prefixed UTF-8 string.
fn read_str<'a>(reader: &mut ByteReader<'a>) -> Result<&'a str, FrameError> {
    let len = read_varint(reader)? as usize;
    let bytes = reader.bytes(len)?;
    std::str::from_utf8(bytes)
        .map_err(|_| FrameError::Corrupt("dictionary entry is not UTF-8".to_string()))
}

/// Codec version byte every frame opens with.
pub const BULK_VERSION: u8 = 1;

/// Why a bulk frame was rejected.  The serving layer renders this as one
/// `ERR FRAME <reason>` reply and executes none of the frame's ops.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The frame ended before the structure it promised.
    Truncated,
    /// The payload does not match its CRC-32 checksum.
    Checksum {
        /// The checksum the frame header carried.
        expected: u32,
        /// The checksum of the payload as received.
        actual: u32,
    },
    /// The frame is structurally invalid (bad version, unknown tag,
    /// out-of-range index, malformed UTF-8, trailing bytes, …).
    Corrupt(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame bytes are truncated"),
            FrameError::Checksum { expected, actual } => write!(
                f,
                "checksum mismatch (frame says {expected:#010x}, payload hashes to {actual:#010x})"
            ),
            FrameError::Corrupt(why) => write!(f, "frame is corrupt: {why}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<SnapshotError> for FrameError {
    fn from(e: SnapshotError) -> Self {
        match e {
            SnapshotError::Truncated => FrameError::Truncated,
            SnapshotError::Corrupt(why) => FrameError::Corrupt(why),
        }
    }
}

const OP_INSERT: u8 = 0;
const OP_DELETE: u8 = 1;
const VALUE_INT: u8 = 0;
const VALUE_SYMBOL: u8 = 1;

/// Encodes a run of mutations as one bulk frame (`[crc32 ‖ payload]`,
/// ready to follow a `BULK <len>` header line).
///
/// Inserted facts must already be valid against `db`'s schema — the
/// encoder ships the relation *index*, so an unknown relation cannot be
/// represented at all.  String constants are deduplicated into the
/// per-frame dictionary in first-use order, making the encoding
/// deterministic for a given mutation sequence.
pub fn encode_bulk(db: &Database, mutations: &[Mutation]) -> Vec<u8> {
    let mut dictionary: Vec<&Symbol> = Vec::new();
    let mut index_of: HashMap<&Symbol, u32> = HashMap::new();
    for mutation in mutations {
        if let Mutation::Insert(fact) = mutation {
            for arg in fact.args() {
                if let Value::Text(symbol) = arg {
                    index_of.entry(symbol).or_insert_with(|| {
                        dictionary.push(symbol);
                        (dictionary.len() - 1) as u32
                    });
                }
            }
        }
    }
    let _ = db; // The schema constrains what `mutations` may contain.
    let mut payload = Vec::with_capacity(16 + mutations.len() * 16);
    payload.push(BULK_VERSION);
    write_varint(&mut payload, dictionary.len() as u64);
    for symbol in &dictionary {
        write_varint(&mut payload, symbol.as_str().len() as u64);
        payload.extend_from_slice(symbol.as_str().as_bytes());
    }
    write_varint(&mut payload, mutations.len() as u64);
    for mutation in mutations {
        match mutation {
            Mutation::Insert(fact) => {
                payload.push(OP_INSERT);
                write_varint(&mut payload, fact.relation().index() as u64);
                for arg in fact.args() {
                    match arg {
                        Value::Int(v) => {
                            payload.push(VALUE_INT);
                            write_varint_i64(&mut payload, *v);
                        }
                        Value::Text(symbol) => {
                            payload.push(VALUE_SYMBOL);
                            write_varint(&mut payload, u64::from(index_of[symbol]));
                        }
                    }
                }
            }
            Mutation::Delete(id) => {
                payload.push(OP_DELETE);
                write_varint(&mut payload, id.index() as u64);
            }
        }
    }
    let mut frame = Vec::with_capacity(4 + payload.len());
    write_u32(&mut frame, crc32(&payload));
    frame.extend_from_slice(&payload);
    frame
}

/// Decodes one bulk frame (`[crc32 ‖ payload]`) against the served
/// schema, returning the mutations in wire order.
///
/// All-or-nothing: any defect rejects the whole frame.  Capacity
/// reservations are bounded by the bytes actually present, so a frame
/// announcing a billion ops over ten bytes fails with
/// [`FrameError::Truncated`] without allocating for the lie.
pub fn decode_bulk(frame: &[u8], db: &Database) -> Result<Vec<Mutation>, FrameError> {
    if frame.len() < 4 {
        return Err(FrameError::Truncated);
    }
    let expected = u32::from_le_bytes(frame[..4].try_into().expect("4 bytes"));
    let payload = &frame[4..];
    let actual = crc32(payload);
    if actual != expected {
        return Err(FrameError::Checksum { expected, actual });
    }
    let mut reader = ByteReader::new(payload);
    let version = reader.u8()?;
    if version != BULK_VERSION {
        return Err(FrameError::Corrupt(format!(
            "unknown frame version {version} (this build speaks {BULK_VERSION})"
        )));
    }
    let dict_len = read_varint(&mut reader)? as usize;
    // Each dictionary entry costs at least its length byte.
    let mut dictionary: Vec<Symbol> = Vec::with_capacity(dict_len.min(reader.remaining() + 1));
    for _ in 0..dict_len {
        dictionary.push(Symbol::intern(read_str(&mut reader)?));
    }
    let schema = db.schema();
    let relations: Vec<_> = schema.iter().collect();
    let op_count = read_varint(&mut reader)? as usize;
    // Each op costs at least its tag byte.
    let mut mutations: Vec<Mutation> = Vec::with_capacity(op_count.min(reader.remaining() + 1));
    for _ in 0..op_count {
        match reader.u8()? {
            OP_INSERT => {
                let rel_index = read_varint(&mut reader)? as usize;
                let Some(&(relation, info)) = relations.get(rel_index) else {
                    return Err(FrameError::Corrupt(format!(
                        "relation index {rel_index} out of range (schema has {} relations)",
                        relations.len()
                    )));
                };
                let fact = Fact::try_build(relation, info.arity(), |_| {
                    Ok::<Value, FrameError>(match reader.u8()? {
                        VALUE_INT => Value::Int(read_varint_i64(&mut reader)?),
                        VALUE_SYMBOL => {
                            let index = read_varint(&mut reader)? as usize;
                            let Some(symbol) = dictionary.get(index) else {
                                return Err(FrameError::Corrupt(format!(
                                    "symbol index {index} out of range \
                                     (dictionary has {dict_len} entries)"
                                )));
                            };
                            Value::Text(symbol.clone())
                        }
                        tag => {
                            return Err(FrameError::Corrupt(format!("unknown value tag {tag}")));
                        }
                    })
                })?;
                mutations.push(Mutation::Insert(fact));
            }
            OP_DELETE => {
                let id = read_varint(&mut reader)? as usize;
                mutations.push(Mutation::Delete(FactId::new(id)));
            }
            tag => return Err(FrameError::Corrupt(format!("unknown op tag {tag}"))),
        }
    }
    if !reader.is_empty() {
        return Err(FrameError::Corrupt(format!(
            "{} trailing bytes after the last op",
            reader.remaining()
        )));
    }
    Ok(mutations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::parse_mutation;
    use cdr_repairdb::Schema;

    fn db() -> Database {
        let mut schema = Schema::new();
        schema.add_relation("Reading", 3).unwrap();
        schema.add_relation("Employee", 3).unwrap();
        Database::new(schema)
    }

    fn mutations(db: &Database, lines: &[&str]) -> Vec<Mutation> {
        lines
            .iter()
            .map(|line| parse_mutation(line, db).expect("valid line"))
            .collect()
    }

    #[test]
    fn frames_round_trip_and_dedup_the_dictionary() {
        let db = db();
        let ops = mutations(
            &db,
            &[
                "INSERT Reading(1, 'sensor_a', 'v1')",
                "INSERT Reading(2, 'sensor_a', 'v2')",
                "DELETE 7",
                "INSERT Employee(3, 'sensor_a', 'v1')",
            ],
        );
        let frame = encode_bulk(&db, &ops);
        let decoded = decode_bulk(&frame, &db).expect("round trip");
        assert_eq!(decoded, ops);
        // 'sensor_a', 'v1', 'v2' — each shipped exactly once.  The
        // dict_len varint follows the crc (4 bytes) and version (1).
        let mut reader = ByteReader::new(&frame[5..]);
        assert_eq!(read_varint(&mut reader).unwrap(), 3);
    }

    #[test]
    fn an_empty_frame_is_valid_and_carries_no_ops() {
        let db = db();
        let frame = encode_bulk(&db, &[]);
        assert_eq!(decode_bulk(&frame, &db).expect("empty frame"), vec![]);
    }

    #[test]
    fn a_flipped_byte_fails_the_checksum() {
        let db = db();
        let mut frame = encode_bulk(&db, &mutations(&db, &["INSERT Reading(1, 'a', 'b')"]));
        let last = frame.len() - 1;
        frame[last] ^= 0x40;
        assert!(matches!(
            decode_bulk(&frame, &db),
            Err(FrameError::Checksum { .. })
        ));
        // A flipped checksum byte fails the same way.
        let mut frame = encode_bulk(&db, &mutations(&db, &["INSERT Reading(1, 'a', 'b')"]));
        frame[0] ^= 0x01;
        assert!(matches!(
            decode_bulk(&frame, &db),
            Err(FrameError::Checksum { .. })
        ));
    }

    #[test]
    fn truncated_frames_never_allocate_for_promised_counts() {
        let db = db();
        // A payload promising 2^31 ops over no bytes at all.
        let mut payload = vec![BULK_VERSION];
        write_varint(&mut payload, 0); // empty dictionary
        write_varint(&mut payload, 0x8000_0000); // op_count lie
        let mut frame = Vec::new();
        write_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        assert_eq!(decode_bulk(&frame, &db), Err(FrameError::Truncated));
        // Same for a dictionary-count lie.
        let mut payload = vec![BULK_VERSION];
        write_varint(&mut payload, 0x8000_0000);
        let mut frame = Vec::new();
        write_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        assert_eq!(decode_bulk(&frame, &db), Err(FrameError::Truncated));
        // And a frame shorter than its own checksum.
        assert_eq!(decode_bulk(&[1, 2], &db), Err(FrameError::Truncated));
    }

    #[test]
    fn out_of_range_indexes_are_rejected() {
        let db = db();
        // Symbol index 9 against a 1-entry dictionary.
        let mut payload = vec![BULK_VERSION];
        write_varint(&mut payload, 1);
        write_varint(&mut payload, "only".len() as u64);
        payload.extend_from_slice(b"only");
        write_varint(&mut payload, 1);
        payload.push(OP_INSERT);
        write_varint(&mut payload, 0); // Reading/3
        payload.push(VALUE_SYMBOL);
        write_varint(&mut payload, 9);
        payload.push(VALUE_INT);
        write_varint_i64(&mut payload, 0);
        payload.push(VALUE_INT);
        write_varint_i64(&mut payload, 0);
        let mut frame = Vec::new();
        write_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        match decode_bulk(&frame, &db) {
            Err(FrameError::Corrupt(why)) => assert!(why.contains("symbol index 9"), "{why}"),
            other => panic!("expected a corrupt-frame error, got {other:?}"),
        }
        // Relation index out of schema range.
        let mut payload = vec![BULK_VERSION];
        write_varint(&mut payload, 0);
        write_varint(&mut payload, 1);
        payload.push(OP_INSERT);
        write_varint(&mut payload, 55);
        let mut frame = Vec::new();
        write_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        match decode_bulk(&frame, &db) {
            Err(FrameError::Corrupt(why)) => assert!(why.contains("relation index 55"), "{why}"),
            other => panic!("expected a corrupt-frame error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_tags_versions_and_trailing_bytes_are_rejected() {
        let db = db();
        let reject = |payload: Vec<u8>| {
            let mut frame = Vec::new();
            write_u32(&mut frame, crc32(&payload));
            frame.extend_from_slice(&payload);
            decode_bulk(&frame, &db)
        };
        assert!(matches!(reject(vec![99]), Err(FrameError::Corrupt(_))));
        let mut payload = vec![BULK_VERSION];
        write_varint(&mut payload, 0);
        write_varint(&mut payload, 1);
        payload.push(7); // unknown op tag
        assert!(matches!(reject(payload), Err(FrameError::Corrupt(_))));
        let ops = mutations(&db, &["DELETE 3"]);
        let mut frame = encode_bulk(&db, &ops);
        let mut payload = frame.split_off(4);
        payload.push(0xAB); // trailing garbage, re-checksummed
        let mut frame = Vec::new();
        write_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        match decode_bulk(&frame, &db) {
            Err(FrameError::Corrupt(why)) => assert!(why.contains("trailing"), "{why}"),
            other => panic!("expected a trailing-bytes error, got {other:?}"),
        }
    }

    #[test]
    fn varints_round_trip_extreme_values() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut reader = ByteReader::new(&buf);
            assert_eq!(read_varint(&mut reader).unwrap(), v);
            assert!(reader.is_empty());
        }
        for v in [0i64, -1, 1, 63, -64, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            write_varint_i64(&mut buf, v);
            let mut reader = ByteReader::new(&buf);
            assert_eq!(read_varint_i64(&mut reader).unwrap(), v);
            assert!(reader.is_empty());
        }
        // An unterminated continuation run overflows 64 bits.
        let mut reader = ByteReader::new(&[0xFF; 11]);
        assert!(matches!(
            read_varint(&mut reader),
            Err(FrameError::Corrupt(_))
        ));
    }

    #[test]
    fn error_displays_name_the_defect() {
        assert!(FrameError::Truncated.to_string().contains("truncated"));
        let e = FrameError::Checksum {
            expected: 1,
            actual: 2,
        };
        assert!(e.to_string().contains("checksum mismatch"), "{e}");
        assert!(FrameError::Corrupt("why".into())
            .to_string()
            .contains("why"));
    }
}
