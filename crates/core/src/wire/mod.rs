//! The text wire format for [`EngineCommand`]s.
//!
//! The serving front end (`cdr-server`) speaks a line protocol: one
//! command per line, one (or, for query batches, a framed sequence of)
//! single-line replies back.  This module is the *parsing half* of that
//! protocol, kept in `cdr-core` so any front end — TCP server, REPL,
//! replay tool — turns wire lines into [`EngineCommand`]s with the same
//! grammar:
//!
//! ```text
//! INSERT <Relation>(<v1>, …, <vn>)      — add a fact
//! DELETE <fact-id>                      — retract a fact by id
//! COUNT <strategy> <query>              — exact repair count
//! CERTAIN <query>                       — does every repair entail it?
//! DECIDE <query>                        — does some repair entail it?
//! FREQ <query>                          — relative frequency
//! APPROX <epsilon> <delta> [seed] <query> — (ε, δ)-approximate count
//! COMPACT                               — reclaim fact-id/slot space
//! ```
//!
//! `<strategy>` is one of `auto`, `enumeration` (or `enum`), `boxes`
//! (or `certificate-boxes`), `karp-luby`; verbs and strategy tokens are
//! case-insensitive.  Queries use the [`cdr_query::parse_query`] syntax
//! and extend to the end of the line.  Framing verbs (`BATCH`/`END`,
//! `STATS`, `QUIT`, …) belong to the serving layer, which reports them
//! here as [`WireError::UnknownVerb`] and handles them itself.
//!
//! ```
//! use cdr_core::wire::parse_engine_command;
//! use cdr_core::{EngineCommand, Semantics};
//! use cdr_repairdb::{Database, Schema};
//!
//! let mut schema = Schema::new();
//! schema.add_relation("Employee", 3).unwrap();
//! let db = Database::new(schema);
//!
//! let command = parse_engine_command("INSERT Employee(1, 'Bob', 'HR')", &db).unwrap();
//! assert!(matches!(command, EngineCommand::Mutate(_)));
//!
//! let command = parse_engine_command("COUNT auto EXISTS n, d . Employee(1, n, d)", &db).unwrap();
//! match command {
//!     EngineCommand::Query(request) => assert_eq!(request.semantics(), &Semantics::Exact),
//!     other => panic!("expected a query, got {other:?}"),
//! }
//! ```

/// The binary bulk-ingest frame (`BULK` escape from the line protocol).
pub mod frame;

use std::fmt;
use std::str::FromStr;

use cdr_query::parse_query;
use cdr_repairdb::{Database, FactId, Mutation};

use crate::{CountError, CountRequest, EngineCommand, Strategy};

/// Why a wire line did not parse into an [`EngineCommand`].
#[derive(Clone, Debug, PartialEq)]
pub enum WireError {
    /// The line was blank or a `#` comment: nothing to execute.
    Empty,
    /// The first token is not a verb this module knows.  The serving
    /// layer's own framing verbs (`BATCH`, `STATS`, …) land here.
    UnknownVerb(String),
    /// The verb was recognised but its operands were malformed.
    Syntax {
        /// The verb whose operands failed to parse.
        verb: &'static str,
        /// What was wrong with them.
        message: String,
    },
    /// The strategy token of a `COUNT` line is not a known [`Strategy`].
    UnknownStrategy(String),
    /// The operands parsed but the underlying layer rejected them (e.g. a
    /// fact over an unknown relation, or a malformed query).
    Count(CountError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Empty => write!(f, "empty command line"),
            WireError::UnknownVerb(verb) => write!(f, "unknown verb `{verb}`"),
            WireError::Syntax { verb, message } => write!(f, "{verb}: {message}"),
            WireError::UnknownStrategy(token) => write!(
                f,
                "unknown strategy `{token}` (expected auto, enumeration, boxes or karp-luby)"
            ),
            WireError::Count(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Count(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CountError> for WireError {
    fn from(e: CountError) -> Self {
        WireError::Count(e)
    }
}

impl FromStr for Strategy {
    type Err = WireError;

    /// Parses a wire strategy token, case-insensitively.
    fn from_str(token: &str) -> Result<Self, Self::Err> {
        match token.to_ascii_lowercase().as_str() {
            "auto" => Ok(Strategy::Auto),
            "enumeration" | "enum" => Ok(Strategy::Enumeration),
            "boxes" | "certificate-boxes" | "certificateboxes" => Ok(Strategy::CertificateBoxes),
            "karp-luby" | "karpluby" => Ok(Strategy::KarpLuby),
            _ => Err(WireError::UnknownStrategy(token.to_string())),
        }
    }
}

/// Splits a line into its verb and the rest (which may be empty).
fn split_verb(line: &str) -> Result<(&str, &str), WireError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Err(WireError::Empty);
    }
    match line.split_once(char::is_whitespace) {
        Some((verb, rest)) => Ok((verb, rest.trim())),
        None => Ok((line, "")),
    }
}

fn require_operand(verb: &'static str, rest: &str, what: &str) -> Result<(), WireError> {
    if rest.is_empty() {
        return Err(WireError::Syntax {
            verb,
            message: format!("missing {what}"),
        });
    }
    Ok(())
}

/// Parses one `INSERT`/`DELETE` line into a [`Mutation`].
///
/// `INSERT` resolves the fact against `db`'s schema (the schema is fixed
/// at engine construction, so parsing against any snapshot of the served
/// database is safe); `DELETE` takes the decimal fact id — liveness is
/// checked when the mutation is applied, not here.
pub fn parse_mutation(line: &str, db: &Database) -> Result<Mutation, WireError> {
    let (verb, rest) = split_verb(line)?;
    match verb.to_ascii_uppercase().as_str() {
        "INSERT" => {
            require_operand("INSERT", rest, "fact (expected `INSERT Relation(v1, …)`)")?;
            let fact = db.parse_fact(rest).map_err(CountError::from)?;
            Ok(Mutation::Insert(fact))
        }
        "DELETE" => {
            require_operand("DELETE", rest, "fact id (expected `DELETE <id>`)")?;
            let id: u32 = rest.parse().map_err(|_| WireError::Syntax {
                verb: "DELETE",
                message: format!("`{rest}` is not a fact id"),
            })?;
            Ok(Mutation::Delete(FactId::new(id as usize)))
        }
        _ => Err(WireError::UnknownVerb(verb.to_string())),
    }
}

/// Parses one `COUNT`/`CERTAIN`/`DECIDE`/`FREQ`/`APPROX` line into a
/// [`CountRequest`].
pub fn parse_count_request(line: &str) -> Result<CountRequest, WireError> {
    let (verb, rest) = split_verb(line)?;
    match verb.to_ascii_uppercase().as_str() {
        "COUNT" => {
            require_operand("COUNT", rest, "strategy and query")?;
            let (token, query_text) =
                rest.split_once(char::is_whitespace)
                    .ok_or_else(|| WireError::Syntax {
                        verb: "COUNT",
                        message: "missing query (expected `COUNT <strategy> <query>`)".to_string(),
                    })?;
            let strategy: Strategy = token.parse()?;
            let query = parse_query(query_text.trim()).map_err(CountError::from)?;
            Ok(CountRequest::exact(query).with_strategy(strategy))
        }
        "CERTAIN" => {
            require_operand("CERTAIN", rest, "query")?;
            let query = parse_query(rest).map_err(CountError::from)?;
            Ok(CountRequest::certain_answer(query))
        }
        "DECIDE" => {
            require_operand("DECIDE", rest, "query")?;
            let query = parse_query(rest).map_err(CountError::from)?;
            Ok(CountRequest::decision(query))
        }
        "FREQ" => {
            require_operand("FREQ", rest, "query")?;
            let query = parse_query(rest).map_err(CountError::from)?;
            Ok(CountRequest::frequency(query))
        }
        "APPROX" => {
            require_operand("APPROX", rest, "epsilon, delta and query")?;
            let (epsilon, rest) = next_token(rest);
            let epsilon = parse_f64("APPROX", "epsilon", epsilon)?;
            let (delta, rest) = next_token(rest);
            let delta = parse_f64("APPROX", "delta", delta)?;
            require_operand("APPROX", rest, "query")?;
            // An optional integer seed may precede the query; queries never
            // start with a bare integer token, so try-parsing is unambiguous.
            let (first, tail) = next_token(rest);
            let (seed, query_text) = match first.and_then(|t| t.parse::<u64>().ok()) {
                Some(seed) if !tail.is_empty() => (Some(seed), tail),
                _ => (None, rest),
            };
            require_operand("APPROX", query_text, "query")?;
            let query = parse_query(query_text).map_err(CountError::from)?;
            let mut request = CountRequest::approximate(query, epsilon, delta);
            if let Some(seed) = seed {
                request = request.with_seed(seed);
            }
            Ok(request)
        }
        _ => Err(WireError::UnknownVerb(verb.to_string())),
    }
}

/// Splits off the next whitespace-delimited token, tolerating runs of
/// whitespace (so `APPROX 0.25  0.1 TRUE` parses like the single-spaced
/// form).  Returns `None` when the text is exhausted.
fn next_token(text: &str) -> (Option<&str>, &str) {
    let text = text.trim_start();
    if text.is_empty() {
        return (None, "");
    }
    match text.split_once(char::is_whitespace) {
        Some((token, rest)) => (Some(token), rest.trim_start()),
        None => (Some(text), ""),
    }
}

fn parse_f64(verb: &'static str, what: &str, token: Option<&str>) -> Result<f64, WireError> {
    let token = token.ok_or_else(|| WireError::Syntax {
        verb,
        message: format!("missing {what}"),
    })?;
    token.parse().map_err(|_| WireError::Syntax {
        verb,
        message: format!("`{token}` is not a valid {what}"),
    })
}

/// Parses one wire line into an [`EngineCommand`]: a mutation verb
/// (`INSERT`/`DELETE`) or a query verb (`COUNT`/`CERTAIN`/`DECIDE`/
/// `FREQ`/`APPROX`).
///
/// Serving-layer framing verbs (`BATCH`, `END`, `STATS`, `QUIT`, …) come
/// back as [`WireError::UnknownVerb`] so the caller can layer its own
/// grammar on top.
pub fn parse_engine_command(line: &str, db: &Database) -> Result<EngineCommand, WireError> {
    let (verb, rest) = split_verb(line)?;
    match verb.to_ascii_uppercase().as_str() {
        "INSERT" | "DELETE" => Ok(EngineCommand::Mutate(parse_mutation(line, db)?)),
        "COUNT" | "CERTAIN" | "DECIDE" | "FREQ" | "APPROX" => {
            Ok(EngineCommand::Query(parse_count_request(line)?))
        }
        "COMPACT" => {
            if !rest.is_empty() {
                return Err(WireError::Syntax {
                    verb: "COMPACT",
                    message: format!("takes no operands, got `{rest}`"),
                });
            }
            Ok(EngineCommand::Compact)
        }
        _ => Err(WireError::UnknownVerb(verb.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Semantics;
    use cdr_repairdb::Schema;

    fn employee_db() -> Database {
        let mut schema = Schema::new();
        schema.add_relation("Employee", 3).unwrap();
        let mut db = Database::new(schema);
        db.insert_parsed("Employee(1, 'Bob', 'HR')").unwrap();
        db
    }

    #[test]
    fn mutations_parse() {
        let db = employee_db();
        let m = parse_mutation("INSERT Employee(2, 'Eve', 'IT')", &db).unwrap();
        assert!(matches!(m, Mutation::Insert(_)));
        let m = parse_mutation("delete 7", &db).unwrap();
        assert_eq!(m, Mutation::Delete(FactId::new(7)));
    }

    #[test]
    fn count_requests_parse_with_strategies_and_semantics() {
        let q = "EXISTS n, d . Employee(1, n, d)";
        let r = parse_count_request(&format!("COUNT enum {q}")).unwrap();
        assert_eq!(r.semantics(), &Semantics::Exact);
        assert_eq!(r.strategy(), Strategy::Enumeration);
        let r = parse_count_request(&format!("COUNT boxes {q}")).unwrap();
        assert_eq!(r.strategy(), Strategy::CertificateBoxes);
        let r = parse_count_request(&format!("CERTAIN {q}")).unwrap();
        assert_eq!(r.semantics(), &Semantics::CertainAnswer);
        let r = parse_count_request(&format!("DECIDE {q}")).unwrap();
        assert_eq!(r.semantics(), &Semantics::Decision);
        let r = parse_count_request(&format!("FREQ {q}")).unwrap();
        assert_eq!(r.semantics(), &Semantics::Frequency);
        let r = parse_count_request(&format!("APPROX 0.25 0.1 42 {q}")).unwrap();
        match r.semantics() {
            Semantics::Approximate {
                epsilon,
                delta,
                seed,
            } => {
                assert_eq!(*epsilon, 0.25);
                assert_eq!(*delta, 0.1);
                assert_eq!(*seed, 42);
            }
            other => panic!("expected approximate semantics, got {other:?}"),
        }
        // The seed is optional.
        let r = parse_count_request(&format!("APPROX 0.25 0.1 {q}")).unwrap();
        assert!(matches!(r.semantics(), Semantics::Approximate { .. }));
        // Runs of whitespace between operands are tolerated, as in every
        // other verb.
        let r = parse_count_request(&format!("APPROX  0.25   0.1  7  {q}")).unwrap();
        match r.semantics() {
            Semantics::Approximate { seed, .. } => assert_eq!(*seed, 7),
            other => panic!("expected approximate semantics, got {other:?}"),
        }
    }

    #[test]
    fn engine_commands_dispatch_by_verb() {
        let db = employee_db();
        assert!(matches!(
            parse_engine_command("INSERT Employee(3, 'Ann', 'IT')", &db),
            Ok(EngineCommand::Mutate(_))
        ));
        assert!(matches!(
            parse_engine_command("FREQ Employee(1, 'Bob', 'HR')", &db),
            Ok(EngineCommand::Query(_))
        ));
        assert!(matches!(
            parse_engine_command("STATS", &db),
            Err(WireError::UnknownVerb(_))
        ));
    }

    #[test]
    fn compact_parses_and_rejects_operands() {
        let db = employee_db();
        assert_eq!(
            parse_engine_command("COMPACT", &db),
            Ok(EngineCommand::Compact)
        );
        assert_eq!(
            parse_engine_command("  compact  ", &db),
            Ok(EngineCommand::Compact)
        );
        assert!(matches!(
            parse_engine_command("COMPACT now", &db),
            Err(WireError::Syntax {
                verb: "COMPACT",
                ..
            })
        ));
    }

    #[test]
    fn malformed_lines_report_what_went_wrong() {
        let db = employee_db();
        assert_eq!(parse_engine_command("", &db), Err(WireError::Empty));
        assert_eq!(
            parse_engine_command("   # comment", &db),
            Err(WireError::Empty)
        );
        assert!(matches!(
            parse_engine_command("INSERT", &db),
            Err(WireError::Syntax { verb: "INSERT", .. })
        ));
        assert!(matches!(
            parse_engine_command("DELETE not-a-number", &db),
            Err(WireError::Syntax { verb: "DELETE", .. })
        ));
        assert!(matches!(
            parse_engine_command("COUNT warp EXISTS n, d . Employee(1, n, d)", &db),
            Err(WireError::UnknownStrategy(_))
        ));
        assert!(matches!(
            parse_engine_command("COUNT auto", &db),
            Err(WireError::Syntax { verb: "COUNT", .. })
        ));
        assert!(matches!(
            parse_engine_command("APPROX zero 0.1 TRUE", &db),
            Err(WireError::Syntax { verb: "APPROX", .. })
        ));
        assert!(matches!(
            parse_engine_command("INSERT Unknown(1)", &db),
            Err(WireError::Count(_))
        ));
        // Display strings mention the offending token.
        let err = parse_engine_command("COUNT warp TRUE", &db).unwrap_err();
        assert!(err.to_string().contains("warp"));
        let err = parse_engine_command("NONSENSE", &db).unwrap_err();
        assert!(err.to_string().contains("NONSENSE"));
    }

    #[test]
    fn strategy_tokens_round_trip() {
        for (token, expected) in [
            ("auto", Strategy::Auto),
            ("AUTO", Strategy::Auto),
            ("enumeration", Strategy::Enumeration),
            ("enum", Strategy::Enumeration),
            ("boxes", Strategy::CertificateBoxes),
            ("certificate-boxes", Strategy::CertificateBoxes),
            ("karp-luby", Strategy::KarpLuby),
            ("KarpLuby", Strategy::KarpLuby),
        ] {
            assert_eq!(token.parse::<Strategy>().unwrap(), expected, "{token}");
        }
        assert!("warp".parse::<Strategy>().is_err());
    }
}
