//! Relative frequency of a query over the repairs.
//!
//! Section 1.1 motivates counting with *relative frequency*: instead of the
//! all-or-nothing certain answers, report how often the query holds —
//! the number of repairs entailing it divided by the total number of
//! repairs.  In Example 1.1 the frequency of the Boolean query is `1/2`.

use cdr_num::Ratio;
use cdr_query::Query;
use cdr_repairdb::{Database, KeySet};

use crate::counter::{ExactStrategy, RepairCounter};
use crate::CountError;

/// Computes the relative frequency of a Boolean query: the fraction of
/// repairs that entail it, as an exact rational.
pub fn relative_frequency(
    db: &Database,
    keys: &KeySet,
    query: &Query,
) -> Result<Ratio, CountError> {
    relative_frequency_with(db, keys, query, ExactStrategy::Auto, None)
}

/// [`relative_frequency`] with an explicit exact strategy and budget.
pub fn relative_frequency_with(
    db: &Database,
    keys: &KeySet,
    query: &Query,
    strategy: ExactStrategy,
    budget: Option<u64>,
) -> Result<Ratio, CountError> {
    let mut counter = RepairCounter::new(db, keys);
    if let Some(b) = budget {
        counter = counter.with_budget(b);
    }
    let outcome = counter.count_with(query, strategy)?;
    let total = counter.total_repairs();
    Ok(Ratio::new(outcome.count, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdr_query::parse_query;
    use cdr_repairdb::Schema;

    fn employee() -> (Database, KeySet) {
        let mut schema = Schema::new();
        schema.add_relation("Employee", 3).unwrap();
        let keys = KeySet::builder(&schema).key("Employee", 1).unwrap().build();
        let mut db = Database::new(schema);
        db.insert_parsed("Employee(1, 'Bob', 'HR')").unwrap();
        db.insert_parsed("Employee(1, 'Bob', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Alice', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Tim', 'IT')").unwrap();
        (db, keys)
    }

    #[test]
    fn example_1_1_frequency_is_one_half() {
        let (db, keys) = employee();
        let q = parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap();
        let freq = relative_frequency(&db, &keys, &q).unwrap();
        assert_eq!(freq.to_string(), "1/2");
        assert!((freq.to_f64() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn certain_impossible_and_negated_queries() {
        let (db, keys) = employee();
        let certain = parse_query("EXISTS n . Employee(2, n, 'IT')").unwrap();
        assert!(relative_frequency(&db, &keys, &certain).unwrap().is_one());
        let impossible = parse_query("EXISTS n, d . Employee(3, n, d)").unwrap();
        assert!(relative_frequency(&db, &keys, &impossible)
            .unwrap()
            .is_zero());
        // First-order query (negation) goes through the enumeration path.
        let negated = parse_query("NOT EXISTS i, n . Employee(i, n, 'HR')").unwrap();
        assert_eq!(
            relative_frequency(&db, &keys, &negated)
                .unwrap()
                .to_string(),
            "1/2"
        );
    }

    #[test]
    fn explicit_strategy_and_budget() {
        let (db, keys) = employee();
        let q = parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap();
        for strategy in [
            ExactStrategy::Auto,
            ExactStrategy::Enumeration,
            ExactStrategy::CertificateBoxes,
        ] {
            let freq = relative_frequency_with(&db, &keys, &q, strategy, Some(1_000_000)).unwrap();
            assert_eq!(freq.to_string(), "1/2");
        }
        // A budget of 1 makes enumeration fail.
        assert!(
            relative_frequency_with(&db, &keys, &q, ExactStrategy::Enumeration, Some(1)).is_err()
        );
    }

    #[test]
    fn consistent_database_frequency_is_zero_or_one() {
        let mut schema = Schema::new();
        schema.add_relation("R", 2).unwrap();
        let keys = KeySet::builder(&schema).key("R", 1).unwrap().build();
        let mut db = Database::new(schema);
        db.insert_parsed("R(1, 'a')").unwrap();
        let yes = parse_query("R(1, 'a')").unwrap();
        let no = parse_query("R(1, 'b')").unwrap();
        assert!(relative_frequency(&db, &keys, &yes).unwrap().is_one());
        assert!(relative_frequency(&db, &keys, &no).unwrap().is_zero());
    }
}
