//! The paper's FPRAS (Theorem 6.2, Corollary 6.4).
//!
//! The estimator samples from the *natural* sample space
//! `U = B₁ × ⋯ × Bₙ` (the set of all repairs): Algorithm 3 draws a uniform
//! repair and reports whether it entails the query; `Apx_f` averages
//! `t = ⌈(2+ε)·mᵏ/ε² · ln(2/δ)⌉` such Bernoulli draws and scales by `|U|`.
//! The analysis hinges on `f(x)/|U| ≥ 1/mᵏ`, which holds because any single
//! certificate already witnesses `∏_{i>ℓ} |Bᵢ|` repairs (see the proof of
//! Theorem 6.2); `m` is the maximum block size and `k` bounds the number of
//! blocks a certificate can pin — the disjunct keywidth.

use std::sync::Arc;

use cdr_num::BigNat;
use cdr_query::{max_disjunct_keywidth, UcqQuery};
use cdr_repairdb::{count_repairs, BlockPartition, Database, KeySet};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::approx::{scale_by_fraction, ApproxConfig, ApproxCount, LiveBlockSampler};
use crate::{distinct_boxes, enumerate_certificates, CountError, SelectorBox};

/// The FPRAS of Theorem 6.2, specialised to `#CQA(Q, Σ)` as in
/// Corollary 6.4.
///
/// ```
/// use cdr_core::{ApproxConfig, FprasEstimator};
/// use cdr_query::{parse_query, rewrite_to_ucq};
/// use cdr_repairdb::{Database, KeySet, Schema};
///
/// let mut schema = Schema::new();
/// schema.add_relation("Employee", 3).unwrap();
/// let keys = KeySet::builder(&schema).key("Employee", 1).unwrap().build();
/// let mut db = Database::new(schema);
/// db.insert_parsed("Employee(1, 'Bob', 'HR')").unwrap();
/// db.insert_parsed("Employee(1, 'Bob', 'IT')").unwrap();
/// db.insert_parsed("Employee(2, 'Alice', 'IT')").unwrap();
/// db.insert_parsed("Employee(2, 'Tim', 'IT')").unwrap();
///
/// let q = parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap();
/// let ucq = rewrite_to_ucq(&q).unwrap();
/// let estimator = FprasEstimator::new(&db, &keys, &ucq).unwrap();
/// let outcome = estimator.estimate(&ApproxConfig::default()).unwrap();
/// // The exact answer is 2 (out of 4 repairs); ε = 0.1 keeps us within ±0.2.
/// let estimate = outcome.estimate.to_u64().unwrap();
/// assert!(estimate >= 1 && estimate <= 3);
/// ```
pub struct FprasEstimator {
    boxes: Arc<Vec<SelectorBox>>,
    /// The live blocks flattened for the sampling hot loop (shared with
    /// every estimator over the same partition generation).
    sampler: Arc<LiveBlockSampler>,
    /// `m`: the maximum block size.
    max_block_size: usize,
    /// `k`: the maximum number of blocks a certificate can pin.
    keywidth: usize,
    total_repairs: BigNat,
}

impl FprasEstimator {
    /// Prepares the estimator: computes the block partition, the
    /// certificates of the query and their selector boxes.
    ///
    /// The preprocessing is polynomial in the size of the database for a
    /// fixed query, as the FPRAS requires.
    pub fn new(db: &Database, keys: &KeySet, ucq: &UcqQuery) -> Result<Self, CountError> {
        let blocks = BlockPartition::new(db, keys);
        let certificates = enumerate_certificates(db, keys, &blocks, ucq)?;
        let boxes = distinct_boxes(&certificates);
        let total_repairs = count_repairs(&blocks);
        let sampler = Arc::new(LiveBlockSampler::new(&blocks));
        Ok(FprasEstimator::from_parts(
            Arc::new(blocks),
            Arc::new(boxes),
            sampler,
            max_disjunct_keywidth(ucq, db.schema(), keys),
            total_repairs,
        ))
    }

    /// Builds the estimator from artifacts an engine has already computed,
    /// skipping the block/certificate recomputation of [`FprasEstimator::new`].
    pub(crate) fn from_parts(
        blocks: Arc<BlockPartition>,
        boxes: Arc<Vec<SelectorBox>>,
        sampler: Arc<LiveBlockSampler>,
        keywidth: usize,
        total_repairs: BigNat,
    ) -> Self {
        FprasEstimator {
            max_block_size: blocks.max_block_size().max(1),
            sampler,
            keywidth,
            boxes,
            total_repairs,
        }
    }

    /// The sample-space size `|U| = ∏ |Bᵢ|` (the total number of repairs).
    pub fn sample_space_size(&self) -> &BigNat {
        &self.total_repairs
    }

    /// The number of certificate boxes the membership test uses.
    pub fn box_count(&self) -> usize {
        self.boxes.len()
    }

    /// The theoretical sample size `t = ⌈(2+ε)·mᵏ/ε² · ln(2/δ)⌉`.
    ///
    /// Saturates at `u64::MAX` for extreme parameters.
    pub fn required_samples(&self, config: &ApproxConfig) -> Result<u64, CountError> {
        config.validate()?;
        let m = self.max_block_size as f64;
        let k = self.keywidth as f64;
        let eps = config.epsilon;
        let delta = config.delta;
        let t = (2.0 + eps) * m.powf(k) / (eps * eps) * (2.0 / delta).ln();
        if !t.is_finite() || t >= u64::MAX as f64 {
            return Ok(u64::MAX);
        }
        Ok(t.ceil().max(1.0) as u64)
    }

    /// Runs the FPRAS and returns the estimate.
    ///
    /// Degenerate cases short-circuit to an exact answer: a query with no
    /// certificates has count 0, and a query with an unconstrained
    /// certificate (a disjunct with no keyed atoms mapped into `D`) is
    /// entailed by every repair.
    pub fn estimate(&self, config: &ApproxConfig) -> Result<ApproxCount, CountError> {
        config.validate()?;
        if self.boxes.is_empty() {
            return Ok(ApproxCount::exact_value(
                BigNat::zero(),
                self.total_repairs.clone(),
            ));
        }
        if self.boxes.iter().any(SelectorBox::is_unconstrained) {
            return Ok(ApproxCount::exact_value(
                self.total_repairs.clone(),
                self.total_repairs.clone(),
            ));
        }
        let requested = self.required_samples(config)?;
        let samples = requested.min(config.max_samples).max(1);
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut positives: u64 = 0;
        // One scratch choice vector for the whole run: the sampling loop
        // allocates nothing.
        let mut choice: Vec<cdr_repairdb::FactId> = Vec::new();
        self.sampler.init_choice(&mut choice);
        for _ in 0..samples {
            self.sampler.sample_repair_into(&mut rng, &mut choice);
            if self.boxes.iter().any(|b| b.contains_choice(&choice)) {
                positives += 1;
            }
        }
        let (estimate, estimate_log) = scale_by_fraction(&self.total_repairs, positives, samples);
        Ok(ApproxCount {
            estimate,
            estimate_log,
            covered_fraction: positives as f64 / samples as f64,
            samples_requested: requested,
            samples_used: samples,
            positive_samples: positives,
            sample_space_size: self.total_repairs.clone(),
            exact: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::count_by_enumeration;
    use cdr_query::{parse_query, rewrite_to_ucq};
    use cdr_repairdb::Schema;

    fn employee() -> (Database, KeySet) {
        let mut schema = Schema::new();
        schema.add_relation("Employee", 3).unwrap();
        let keys = KeySet::builder(&schema).key("Employee", 1).unwrap().build();
        let mut db = Database::new(schema);
        db.insert_parsed("Employee(1, 'Bob', 'HR')").unwrap();
        db.insert_parsed("Employee(1, 'Bob', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Alice', 'IT')").unwrap();
        db.insert_parsed("Employee(2, 'Tim', 'IT')").unwrap();
        (db, keys)
    }

    /// A moderately sized inconsistent database for accuracy checks: 8 keys,
    /// each with 3 conflicting department assignments.
    fn wide_db() -> (Database, KeySet) {
        let mut schema = Schema::new();
        schema.add_relation("Works", 2).unwrap();
        let keys = KeySet::builder(&schema).key("Works", 1).unwrap().build();
        let mut db = Database::new(schema);
        for k in 0..8i64 {
            for d in ["sales", "eng", "hr"] {
                db.insert_parsed(&format!("Works({k}, '{d}')")).unwrap();
            }
        }
        (db, keys)
    }

    #[test]
    fn sample_size_formula_matches_the_paper() {
        let (db, keys) = employee();
        let q = parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        let est = FprasEstimator::new(&db, &keys, &ucq).unwrap();
        // m = 2, k = 2.
        let config = ApproxConfig {
            epsilon: 0.5,
            delta: 0.1,
            ..ApproxConfig::default()
        };
        let expected = ((2.0 + 0.5) * 4.0 / 0.25 * (2.0f64 / 0.1).ln()).ceil() as u64;
        assert_eq!(est.required_samples(&config).unwrap(), expected);
        // Smaller epsilon needs more samples.
        let tighter = ApproxConfig {
            epsilon: 0.1,
            delta: 0.1,
            ..ApproxConfig::default()
        };
        assert!(est.required_samples(&tighter).unwrap() > expected);
        // Extreme parameters saturate instead of overflowing.
        let extreme = ApproxConfig {
            epsilon: 1e-9,
            delta: 1e-9,
            ..ApproxConfig::default()
        };
        assert_eq!(est.required_samples(&extreme).unwrap(), u64::MAX);
    }

    #[test]
    fn estimate_is_close_to_exact_on_the_example() {
        let (db, keys) = employee();
        let q = parse_query("EXISTS x, y, z . Employee(1, x, y) AND Employee(2, z, y)").unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        let est = FprasEstimator::new(&db, &keys, &ucq).unwrap();
        let outcome = est.estimate(&ApproxConfig::default()).unwrap();
        let exact = count_by_enumeration(&db, &keys, &q, 1_000).unwrap();
        assert!(
            outcome.relative_error(&exact) <= 0.1,
            "estimate {} too far from exact {exact}",
            outcome.estimate
        );
        assert!(!outcome.exact);
        assert!(outcome.samples_used > 0);
        assert_eq!(outcome.sample_space_size.to_u64(), Some(4));
    }

    #[test]
    fn estimate_is_close_to_exact_on_a_wider_database() {
        let (db, keys) = wide_db();
        // Repairs where employee 0 is in sales or employee 1 is in eng.
        let q = parse_query("Works(0, 'sales') OR Works(1, 'eng')").unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        let est = FprasEstimator::new(&db, &keys, &ucq).unwrap();
        let config = ApproxConfig {
            epsilon: 0.1,
            delta: 0.05,
            ..ApproxConfig::default()
        };
        let outcome = est.estimate(&config).unwrap();
        let exact = count_by_enumeration(&db, &keys, &q, 10_000_000).unwrap();
        // 3^8 = 6561 repairs, exact = 6561 * (1 - (2/3)*(2/3)) = 3645.
        assert_eq!(exact.to_u64(), Some(3645));
        assert!(
            outcome.relative_error(&exact) <= config.epsilon,
            "estimate {} vs exact {exact}",
            outcome.estimate
        );
    }

    #[test]
    fn degenerate_queries_short_circuit() {
        let (db, keys) = employee();
        // No certificates at all.
        let ucq = rewrite_to_ucq(&parse_query("EXISTS n, d . Employee(9, n, d)").unwrap()).unwrap();
        let est = FprasEstimator::new(&db, &keys, &ucq).unwrap();
        let outcome = est.estimate(&ApproxConfig::default()).unwrap();
        assert!(outcome.exact);
        assert!(outcome.estimate.is_zero());
        assert_eq!(est.box_count(), 0);
        // Trivially true query: every repair entails it.
        let ucq = rewrite_to_ucq(&parse_query("TRUE").unwrap()).unwrap();
        let est = FprasEstimator::new(&db, &keys, &ucq).unwrap();
        let outcome = est.estimate(&ApproxConfig::default()).unwrap();
        assert!(outcome.exact);
        assert_eq!(outcome.estimate.to_u64(), Some(4));
        assert_eq!(est.sample_space_size().to_u64(), Some(4));
    }

    #[test]
    fn results_are_reproducible_for_a_fixed_seed() {
        let (db, keys) = wide_db();
        let q = parse_query("Works(0, 'sales') OR Works(1, 'eng')").unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        let est = FprasEstimator::new(&db, &keys, &ucq).unwrap();
        let config = ApproxConfig {
            epsilon: 0.3,
            seed: 42,
            ..ApproxConfig::default()
        };
        let a = est.estimate(&config).unwrap();
        let b = est.estimate(&config).unwrap();
        assert_eq!(a.estimate, b.estimate);
        assert_eq!(a.positive_samples, b.positive_samples);
        let other_seed = ApproxConfig {
            seed: 43,
            ..config.clone()
        };
        let c = est.estimate(&other_seed).unwrap();
        // Different seed: same guarantees, typically different sample path.
        assert_eq!(a.samples_used, c.samples_used);
    }

    #[test]
    fn max_samples_cap_is_respected() {
        let (db, keys) = wide_db();
        let q = parse_query("Works(0, 'sales')").unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        let est = FprasEstimator::new(&db, &keys, &ucq).unwrap();
        let config = ApproxConfig {
            epsilon: 0.01,
            max_samples: 500,
            ..ApproxConfig::default()
        };
        let outcome = est.estimate(&config).unwrap();
        assert_eq!(outcome.samples_used, 500);
        assert!(outcome.samples_requested > 500);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let (db, keys) = employee();
        let ucq = rewrite_to_ucq(&parse_query("TRUE").unwrap()).unwrap();
        let est = FprasEstimator::new(&db, &keys, &ucq).unwrap();
        let bad = ApproxConfig {
            epsilon: -1.0,
            ..ApproxConfig::default()
        };
        assert!(est.estimate(&bad).is_err());
        assert!(est.required_samples(&bad).is_err());
    }
}
