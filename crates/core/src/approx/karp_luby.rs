//! The Karp–Luby union-of-boxes estimator (the "\[5\]-style" baseline).
//!
//! Section 6 of the paper contrasts its own FPRAS with the one inherited
//! from probabilistic databases \[5\]: the latter cannot sample from the
//! natural space of possible worlds (repairs) directly — it must sample
//! *pairs* of a witness (here: a certificate box) and a completion, and
//! correct for over-counting with the classic Karp–Luby "am I the first box
//! that contains this sample?" trick.  This module implements that
//! estimator so the benchmarks can compare the two schemes on accuracy and
//! running time.
//!
//! Estimator: let `W = Σᵢ |boxᵢ|`.  Repeat `t` times: draw a box `i` with
//! probability `|boxᵢ|/W`, draw a uniform completion of `boxᵢ` (a repair
//! inside the box), and output 1 iff no box with a smaller index contains
//! the drawn repair.  The mean of the indicator times `W` is an unbiased
//! estimate of `|⋃ᵢ boxᵢ|`, and because the union is at least `W/#boxes`,
//! `t = ⌈(2+ε)·#boxes/ε² · ln(2/δ)⌉` samples give an (ε, δ) guarantee.

use std::sync::Arc;

use cdr_num::BigNat;
use cdr_query::UcqQuery;
use cdr_repairdb::{count_repairs, BlockId, BlockPartition, Database, FactId, KeySet};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::approx::{scale_by_fraction, ApproxConfig, ApproxCount, LiveBlockSampler};
use crate::{distinct_boxes, enumerate_certificates, CountError, SelectorBox};

/// The Karp–Luby estimator over the certificate boxes of a UCQ.
pub struct KarpLubyEstimator {
    blocks: Arc<BlockPartition>,
    boxes: Arc<Vec<SelectorBox>>,
    /// `Σᵢ |boxᵢ|` — the size of the (certificate, completion) sample space.
    total_weight: BigNat,
    /// Per-box relative weights `|boxᵢ| / ∏ⱼ |Bⱼ|`, used for sampling; each
    /// equals `∏_{pinned j} 1/|Bⱼ| ∈ (0, 1]`, so they are safe in `f64`.
    relative_weights: Vec<f64>,
    /// `Σ relative_weights` (left-to-right), the scale of each box draw.
    weight_sum: f64,
    /// Precomputed selection thresholds: `thresholds[j]` is the smallest
    /// `f64` target that the historical sequential-subtraction scan maps
    /// past box `j`, so a binary search (`partition_point`) replaces the
    /// per-sample linear scan *bit-for-bit* (see [`selection_thresholds`]).
    thresholds: Box<[f64]>,
    /// The live blocks flattened for the sampling hot loop (shared with
    /// every estimator over the same partition generation).
    sampler: Arc<LiveBlockSampler>,
    total_repairs: BigNat,
}

/// The box index the pre-refactor per-sample scan assigned to `target`:
/// subtract weights left to right and stop at the first box whose weight
/// exceeds what remains.  Kept as the ground truth the precomputed
/// thresholds are verified against.
fn sequential_pick(weights: &[f64], mut target: f64) -> usize {
    let mut chosen = weights.len() - 1;
    for (i, w) in weights.iter().enumerate() {
        if target < *w {
            chosen = i;
            break;
        }
        target -= w;
    }
    chosen
}

/// For every box boundary `j`, the smallest non-negative `f64` whose
/// [`sequential_pick`] lands past box `j` (`f64::INFINITY` if none does).
///
/// `sequential_pick` is monotone in its target — floating-point
/// subtraction of a constant is monotone, so a larger target survives at
/// least as many boxes — and non-negative floats are ordered like their
/// bit patterns, so each threshold is found by a 63-step bisection over
/// the bit space *against `sequential_pick` itself*.  Sampling via
/// `partition_point` over these thresholds therefore selects **the exact
/// box the linear scan would have selected for every representable
/// target**, including targets within rounding distance of a boundary —
/// this is what keeps seeded estimates bit-for-bit stable across the
/// representation change.
fn selection_thresholds(weights: &[f64]) -> Box<[f64]> {
    let boundaries = weights.len().saturating_sub(1);
    let mut thresholds = Vec::with_capacity(boundaries);
    for j in 0..boundaries {
        // Smallest bit pattern (≡ smallest non-negative float, +∞
        // included) whose pick exceeds j; every weight is positive, so
        // 0.0 always picks box 0 and +∞ always survives to the last box.
        let mut lo = 0u64;
        let mut hi = f64::INFINITY.to_bits();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if sequential_pick(weights, f64::from_bits(mid)) > j {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        thresholds.push(f64::from_bits(lo));
    }
    thresholds.into_boxed_slice()
}

impl KarpLubyEstimator {
    /// Prepares the estimator for a UCQ over a database.
    pub fn new(db: &Database, keys: &KeySet, ucq: &UcqQuery) -> Result<Self, CountError> {
        let blocks = BlockPartition::new(db, keys);
        let certificates = enumerate_certificates(db, keys, &blocks, ucq)?;
        let boxes = distinct_boxes(&certificates);
        let total_repairs = count_repairs(&blocks);
        let sampler = Arc::new(LiveBlockSampler::new(&blocks));
        Ok(KarpLubyEstimator::from_parts(
            Arc::new(blocks),
            Arc::new(boxes),
            sampler,
            total_repairs,
        ))
    }

    /// Builds the estimator from artifacts an engine has already computed,
    /// skipping the block/certificate recomputation of
    /// [`KarpLubyEstimator::new`].
    pub(crate) fn from_parts(
        blocks: Arc<BlockPartition>,
        boxes: Arc<Vec<SelectorBox>>,
        sampler: Arc<LiveBlockSampler>,
        total_repairs: BigNat,
    ) -> Self {
        let mut total_weight = BigNat::zero();
        let mut relative_weights = Vec::with_capacity(boxes.len());
        for b in boxes.iter() {
            // |boxᵢ| by dividing the precomputed total — O(pins) instead
            // of a walk over every block.
            total_weight += b.size_with_total(&blocks, &total_repairs);
            let mut w = 1.0f64;
            for (block, _) in b.pins() {
                w /= blocks.block(block).len() as f64;
            }
            relative_weights.push(w);
        }
        let weight_sum: f64 = relative_weights.iter().sum();
        let thresholds = selection_thresholds(&relative_weights);
        KarpLubyEstimator {
            sampler,
            blocks,
            boxes,
            total_weight,
            relative_weights,
            weight_sum,
            thresholds,
            total_repairs,
        }
    }

    /// The summed box weight `W = Σᵢ |boxᵢ|` (the sample-space size of the
    /// pair space).
    pub fn total_weight(&self) -> &BigNat {
        &self.total_weight
    }

    /// Number of boxes the estimator samples from.
    pub fn box_count(&self) -> usize {
        self.boxes.len()
    }

    /// The sample size `t = ⌈(2+ε)·#boxes/ε² · ln(2/δ)⌉`.
    pub fn required_samples(&self, config: &ApproxConfig) -> Result<u64, CountError> {
        config.validate()?;
        let boxes = self.boxes.len().max(1) as f64;
        let eps = config.epsilon;
        let t = (2.0 + eps) * boxes / (eps * eps) * (2.0 / config.delta).ln();
        if !t.is_finite() || t >= u64::MAX as f64 {
            return Ok(u64::MAX);
        }
        Ok(t.ceil().max(1.0) as u64)
    }

    /// Runs the estimator.
    pub fn estimate(&self, config: &ApproxConfig) -> Result<ApproxCount, CountError> {
        config.validate()?;
        if self.boxes.is_empty() {
            return Ok(ApproxCount::exact_value(
                BigNat::zero(),
                self.total_weight.clone(),
            ));
        }
        if self.boxes.iter().any(SelectorBox::is_unconstrained) {
            // Some box is the whole space of repairs: the union is exactly
            // the total number of repairs.
            return Ok(ApproxCount::exact_value(
                self.total_repairs.clone(),
                self.total_weight.clone(),
            ));
        }
        let requested = self.required_samples(config)?;
        let samples = requested.min(config.max_samples).max(1);
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut positives: u64 = 0;
        // Indexed by block slot (`BlockId::index`); retired slots keep a
        // placeholder that no live box pins.  One scratch vector for the
        // whole run — the sampling loop allocates nothing.
        let mut choice: Vec<FactId> = Vec::new();
        self.sampler.init_choice(&mut choice);
        for _ in 0..samples {
            // Draw a box proportionally to its size: a binary search over
            // the precomputed thresholds, selecting exactly the box the
            // historical sequential scan would have picked.
            let target = rng.gen_range(0.0..self.weight_sum);
            let chosen_box = self.thresholds.partition_point(|&t| target >= t);
            debug_assert_eq!(
                chosen_box,
                sequential_pick(&self.relative_weights, target),
                "threshold selection must replicate the sequential scan"
            );
            // Draw a uniform completion of the chosen box over the
            // flattened live blocks: precomputed rejection thresholds
            // (no division) and sequential memory (no pointer chasing).
            self.sampler
                .sample_completion_into(&self.boxes[chosen_box], &mut rng, &mut choice);
            // Count the sample only if no earlier box already covers it.
            let first_cover = self
                .boxes
                .iter()
                .position(|b| b.contains_choice(&choice))
                .expect("the chosen box covers its own completion");
            if first_cover == chosen_box {
                positives += 1;
            }
        }
        let (estimate, estimate_log) = scale_by_fraction(&self.total_weight, positives, samples);
        Ok(ApproxCount {
            estimate,
            estimate_log,
            covered_fraction: positives as f64 / samples as f64,
            samples_requested: requested,
            samples_used: samples,
            positive_samples: positives,
            sample_space_size: self.total_weight.clone(),
            exact: false,
        })
    }

    /// The blocks the estimator samples over (exposed for diagnostics).
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.blocks.iter().map(|(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::count_by_enumeration;
    use cdr_query::{parse_query, rewrite_to_ucq};
    use cdr_repairdb::Schema;

    fn wide_db() -> (Database, KeySet) {
        let mut schema = Schema::new();
        schema.add_relation("Works", 2).unwrap();
        let keys = KeySet::builder(&schema).key("Works", 1).unwrap().build();
        let mut db = Database::new(schema);
        for k in 0..8i64 {
            for d in ["sales", "eng", "hr"] {
                db.insert_parsed(&format!("Works({k}, '{d}')")).unwrap();
            }
        }
        (db, keys)
    }

    #[test]
    fn estimate_is_close_to_exact() {
        let (db, keys) = wide_db();
        let q = parse_query("Works(0, 'sales') OR Works(1, 'eng') OR Works(2, 'hr')").unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        let est = KarpLubyEstimator::new(&db, &keys, &ucq).unwrap();
        let config = ApproxConfig {
            epsilon: 0.1,
            delta: 0.05,
            ..ApproxConfig::default()
        };
        let outcome = est.estimate(&config).unwrap();
        let exact = count_by_enumeration(&db, &keys, &q, 10_000_000).unwrap();
        assert!(
            outcome.relative_error(&exact) <= config.epsilon,
            "estimate {} vs exact {exact}",
            outcome.estimate
        );
        assert_eq!(est.box_count(), 3);
        // W = 3 * 3^7.
        assert_eq!(est.total_weight().to_u64(), Some(3 * 2187));
        assert_eq!(est.block_ids().count(), 8);
    }

    #[test]
    fn sample_size_depends_on_box_count_not_block_size() {
        let (db, keys) = wide_db();
        let q = parse_query("Works(0, 'sales') OR Works(1, 'eng')").unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        let est = KarpLubyEstimator::new(&db, &keys, &ucq).unwrap();
        let config = ApproxConfig {
            epsilon: 0.5,
            delta: 0.1,
            ..ApproxConfig::default()
        };
        let expected = ((2.0 + 0.5) * 2.0 / 0.25 * (2.0f64 / 0.1).ln()).ceil() as u64;
        assert_eq!(est.required_samples(&config).unwrap(), expected);
        let extreme = ApproxConfig {
            epsilon: 1e-12,
            ..ApproxConfig::default()
        };
        assert_eq!(est.required_samples(&extreme).unwrap(), u64::MAX);
    }

    #[test]
    fn degenerate_cases_short_circuit() {
        let (db, keys) = wide_db();
        let none = rewrite_to_ucq(&parse_query("Works(99, 'sales')").unwrap()).unwrap();
        let est = KarpLubyEstimator::new(&db, &keys, &none).unwrap();
        let outcome = est.estimate(&ApproxConfig::default()).unwrap();
        assert!(outcome.exact);
        assert!(outcome.estimate.is_zero());

        let trivial = rewrite_to_ucq(&parse_query("TRUE").unwrap()).unwrap();
        let est = KarpLubyEstimator::new(&db, &keys, &trivial).unwrap();
        let outcome = est.estimate(&ApproxConfig::default()).unwrap();
        assert!(outcome.exact);
        assert_eq!(outcome.estimate.to_u64(), Some(3u64.pow(8)));
    }

    #[test]
    fn reproducible_and_validates_parameters() {
        let (db, keys) = wide_db();
        let q = parse_query("Works(0, 'sales') OR Works(1, 'eng')").unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        let est = KarpLubyEstimator::new(&db, &keys, &ucq).unwrap();
        let config = ApproxConfig {
            epsilon: 0.3,
            seed: 7,
            ..ApproxConfig::default()
        };
        let a = est.estimate(&config).unwrap();
        let b = est.estimate(&config).unwrap();
        assert_eq!(a.estimate, b.estimate);
        let bad = ApproxConfig {
            delta: 0.0,
            ..ApproxConfig::default()
        };
        assert!(est.estimate(&bad).is_err());
    }

    /// The precomputed thresholds must replicate the historical
    /// sequential-subtraction scan for *every* probed target, including
    /// bit-neighbours of each boundary — that equivalence is what keeps
    /// seeded estimates identical across the representation change.
    #[test]
    fn threshold_selection_replicates_the_sequential_scan() {
        let weight_sets: Vec<Vec<f64>> = vec![
            vec![1.0],
            vec![0.5, 0.5],
            vec![1.0 / 3.0; 9],
            // Mixed magnitudes: tiny weights are absorbed by the running
            // subtraction, which the thresholds must reproduce.
            vec![1e-300, 1.0, 1e-300, 0.25, 1e-16],
            vec![0.125; 64],
            (1..40).map(|i| 1.0 / (i as f64)).collect(),
        ];
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        for weights in &weight_sets {
            let thresholds = selection_thresholds(weights);
            assert_eq!(thresholds.len(), weights.len() - 1);
            let sum: f64 = weights.iter().sum();
            let mut probes: Vec<f64> = vec![0.0, sum, sum * 0.5];
            for &t in thresholds.iter().filter(|t| t.is_finite()) {
                probes.push(t);
                probes.push(f64::from_bits(t.to_bits().saturating_sub(1)));
                probes.push(f64::from_bits(t.to_bits() + 1));
            }
            for _ in 0..300 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                probes.push(sum * ((state >> 11) as f64 / (1u64 << 53) as f64));
            }
            for &target in probes.iter().filter(|p| p.is_finite() && **p >= 0.0) {
                assert_eq!(
                    thresholds.partition_point(|&t| target >= t),
                    sequential_pick(weights, target),
                    "divergence at target {target:e} for weights {weights:?}"
                );
            }
        }
    }

    #[test]
    fn agrees_with_the_fpras_on_the_same_query() {
        let (db, keys) = wide_db();
        let q = parse_query("Works(3, 'hr') OR Works(4, 'sales')").unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        let config = ApproxConfig {
            epsilon: 0.1,
            delta: 0.05,
            ..ApproxConfig::default()
        };
        let kl = KarpLubyEstimator::new(&db, &keys, &ucq)
            .unwrap()
            .estimate(&config)
            .unwrap();
        let fpras = crate::FprasEstimator::new(&db, &keys, &ucq)
            .unwrap()
            .estimate(&config)
            .unwrap();
        let exact = count_by_enumeration(&db, &keys, &q, 10_000_000).unwrap();
        assert!(kl.relative_error(&exact) <= 0.1);
        assert!(fpras.relative_error(&exact) <= 0.1);
    }
}
