//! The Karp–Luby union-of-boxes estimator (the "\[5\]-style" baseline).
//!
//! Section 6 of the paper contrasts its own FPRAS with the one inherited
//! from probabilistic databases \[5\]: the latter cannot sample from the
//! natural space of possible worlds (repairs) directly — it must sample
//! *pairs* of a witness (here: a certificate box) and a completion, and
//! correct for over-counting with the classic Karp–Luby "am I the first box
//! that contains this sample?" trick.  This module implements that
//! estimator so the benchmarks can compare the two schemes on accuracy and
//! running time.
//!
//! Estimator: let `W = Σᵢ |boxᵢ|`.  Repeat `t` times: draw a box `i` with
//! probability `|boxᵢ|/W`, draw a uniform completion of `boxᵢ` (a repair
//! inside the box), and output 1 iff no box with a smaller index contains
//! the drawn repair.  The mean of the indicator times `W` is an unbiased
//! estimate of `|⋃ᵢ boxᵢ|`, and because the union is at least `W/#boxes`,
//! `t = ⌈(2+ε)·#boxes/ε² · ln(2/δ)⌉` samples give an (ε, δ) guarantee.

use std::sync::Arc;

use cdr_num::BigNat;
use cdr_query::UcqQuery;
use cdr_repairdb::{count_repairs, BlockId, BlockPartition, Database, FactId, KeySet};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::approx::{scale_by_fraction, ApproxConfig, ApproxCount};
use crate::{distinct_boxes, enumerate_certificates, CountError, SelectorBox};

/// The Karp–Luby estimator over the certificate boxes of a UCQ.
pub struct KarpLubyEstimator {
    blocks: Arc<BlockPartition>,
    boxes: Arc<Vec<SelectorBox>>,
    /// `Σᵢ |boxᵢ|` — the size of the (certificate, completion) sample space.
    total_weight: BigNat,
    /// Per-box relative weights `|boxᵢ| / ∏ⱼ |Bⱼ|`, used for sampling; each
    /// equals `∏_{pinned j} 1/|Bⱼ| ∈ (0, 1]`, so they are safe in `f64`.
    relative_weights: Vec<f64>,
    total_repairs: BigNat,
}

impl KarpLubyEstimator {
    /// Prepares the estimator for a UCQ over a database.
    pub fn new(db: &Database, keys: &KeySet, ucq: &UcqQuery) -> Result<Self, CountError> {
        let blocks = BlockPartition::new(db, keys);
        let certificates = enumerate_certificates(db, keys, &blocks, ucq)?;
        let boxes = distinct_boxes(&certificates);
        let total_repairs = count_repairs(&blocks);
        Ok(KarpLubyEstimator::from_parts(
            Arc::new(blocks),
            Arc::new(boxes),
            total_repairs,
        ))
    }

    /// Builds the estimator from artifacts an engine has already computed,
    /// skipping the block/certificate recomputation of
    /// [`KarpLubyEstimator::new`].
    pub(crate) fn from_parts(
        blocks: Arc<BlockPartition>,
        boxes: Arc<Vec<SelectorBox>>,
        total_repairs: BigNat,
    ) -> Self {
        let mut total_weight = BigNat::zero();
        let mut relative_weights = Vec::with_capacity(boxes.len());
        for b in boxes.iter() {
            total_weight += b.size(&blocks);
            let mut w = 1.0f64;
            for (block, _) in b.pins() {
                w /= blocks.block(block).len() as f64;
            }
            relative_weights.push(w);
        }
        KarpLubyEstimator {
            blocks,
            boxes,
            total_weight,
            relative_weights,
            total_repairs,
        }
    }

    /// The summed box weight `W = Σᵢ |boxᵢ|` (the sample-space size of the
    /// pair space).
    pub fn total_weight(&self) -> &BigNat {
        &self.total_weight
    }

    /// Number of boxes the estimator samples from.
    pub fn box_count(&self) -> usize {
        self.boxes.len()
    }

    /// The sample size `t = ⌈(2+ε)·#boxes/ε² · ln(2/δ)⌉`.
    pub fn required_samples(&self, config: &ApproxConfig) -> Result<u64, CountError> {
        config.validate()?;
        let boxes = self.boxes.len().max(1) as f64;
        let eps = config.epsilon;
        let t = (2.0 + eps) * boxes / (eps * eps) * (2.0 / config.delta).ln();
        if !t.is_finite() || t >= u64::MAX as f64 {
            return Ok(u64::MAX);
        }
        Ok(t.ceil().max(1.0) as u64)
    }

    /// Runs the estimator.
    pub fn estimate(&self, config: &ApproxConfig) -> Result<ApproxCount, CountError> {
        config.validate()?;
        if self.boxes.is_empty() {
            return Ok(ApproxCount::exact_value(
                BigNat::zero(),
                self.total_weight.clone(),
            ));
        }
        if self.boxes.iter().any(SelectorBox::is_unconstrained) {
            // Some box is the whole space of repairs: the union is exactly
            // the total number of repairs.
            return Ok(ApproxCount::exact_value(
                self.total_repairs.clone(),
                self.total_weight.clone(),
            ));
        }
        let requested = self.required_samples(config)?;
        let samples = requested.min(config.max_samples).max(1);
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let weight_sum: f64 = self.relative_weights.iter().sum();
        let mut positives: u64 = 0;
        // Indexed by block slot (`BlockId::index`); retired slots keep a
        // placeholder that no live box pins.
        let mut choice: Vec<FactId> =
            vec![FactId::new(u32::MAX as usize); self.blocks.slot_count()];
        for _ in 0..samples {
            // Draw a box proportionally to its size.
            let mut target = rng.gen_range(0.0..weight_sum);
            let mut chosen_box = self.boxes.len() - 1;
            for (i, w) in self.relative_weights.iter().enumerate() {
                if target < *w {
                    chosen_box = i;
                    break;
                }
                target -= w;
            }
            // Draw a uniform completion of the chosen box.
            for (id, block) in self.blocks.iter() {
                let fact = match self.boxes[chosen_box].pin_for(id) {
                    Some(f) => f,
                    None => block.facts()[rng.gen_range(0..block.len())],
                };
                choice[id.index()] = fact;
            }
            // Count the sample only if no earlier box already covers it.
            let first_cover = self
                .boxes
                .iter()
                .position(|b| b.contains_choice(&choice))
                .expect("the chosen box covers its own completion");
            if first_cover == chosen_box {
                positives += 1;
            }
        }
        let (estimate, estimate_log) = scale_by_fraction(&self.total_weight, positives, samples);
        Ok(ApproxCount {
            estimate,
            estimate_log,
            covered_fraction: positives as f64 / samples as f64,
            samples_requested: requested,
            samples_used: samples,
            positive_samples: positives,
            sample_space_size: self.total_weight.clone(),
            exact: false,
        })
    }

    /// The blocks the estimator samples over (exposed for diagnostics).
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.blocks.iter().map(|(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::count_by_enumeration;
    use cdr_query::{parse_query, rewrite_to_ucq};
    use cdr_repairdb::Schema;

    fn wide_db() -> (Database, KeySet) {
        let mut schema = Schema::new();
        schema.add_relation("Works", 2).unwrap();
        let keys = KeySet::builder(&schema).key("Works", 1).unwrap().build();
        let mut db = Database::new(schema);
        for k in 0..8i64 {
            for d in ["sales", "eng", "hr"] {
                db.insert_parsed(&format!("Works({k}, '{d}')")).unwrap();
            }
        }
        (db, keys)
    }

    #[test]
    fn estimate_is_close_to_exact() {
        let (db, keys) = wide_db();
        let q = parse_query("Works(0, 'sales') OR Works(1, 'eng') OR Works(2, 'hr')").unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        let est = KarpLubyEstimator::new(&db, &keys, &ucq).unwrap();
        let config = ApproxConfig {
            epsilon: 0.1,
            delta: 0.05,
            ..ApproxConfig::default()
        };
        let outcome = est.estimate(&config).unwrap();
        let exact = count_by_enumeration(&db, &keys, &q, 10_000_000).unwrap();
        assert!(
            outcome.relative_error(&exact) <= config.epsilon,
            "estimate {} vs exact {exact}",
            outcome.estimate
        );
        assert_eq!(est.box_count(), 3);
        // W = 3 * 3^7.
        assert_eq!(est.total_weight().to_u64(), Some(3 * 2187));
        assert_eq!(est.block_ids().count(), 8);
    }

    #[test]
    fn sample_size_depends_on_box_count_not_block_size() {
        let (db, keys) = wide_db();
        let q = parse_query("Works(0, 'sales') OR Works(1, 'eng')").unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        let est = KarpLubyEstimator::new(&db, &keys, &ucq).unwrap();
        let config = ApproxConfig {
            epsilon: 0.5,
            delta: 0.1,
            ..ApproxConfig::default()
        };
        let expected = ((2.0 + 0.5) * 2.0 / 0.25 * (2.0f64 / 0.1).ln()).ceil() as u64;
        assert_eq!(est.required_samples(&config).unwrap(), expected);
        let extreme = ApproxConfig {
            epsilon: 1e-12,
            ..ApproxConfig::default()
        };
        assert_eq!(est.required_samples(&extreme).unwrap(), u64::MAX);
    }

    #[test]
    fn degenerate_cases_short_circuit() {
        let (db, keys) = wide_db();
        let none = rewrite_to_ucq(&parse_query("Works(99, 'sales')").unwrap()).unwrap();
        let est = KarpLubyEstimator::new(&db, &keys, &none).unwrap();
        let outcome = est.estimate(&ApproxConfig::default()).unwrap();
        assert!(outcome.exact);
        assert!(outcome.estimate.is_zero());

        let trivial = rewrite_to_ucq(&parse_query("TRUE").unwrap()).unwrap();
        let est = KarpLubyEstimator::new(&db, &keys, &trivial).unwrap();
        let outcome = est.estimate(&ApproxConfig::default()).unwrap();
        assert!(outcome.exact);
        assert_eq!(outcome.estimate.to_u64(), Some(3u64.pow(8)));
    }

    #[test]
    fn reproducible_and_validates_parameters() {
        let (db, keys) = wide_db();
        let q = parse_query("Works(0, 'sales') OR Works(1, 'eng')").unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        let est = KarpLubyEstimator::new(&db, &keys, &ucq).unwrap();
        let config = ApproxConfig {
            epsilon: 0.3,
            seed: 7,
            ..ApproxConfig::default()
        };
        let a = est.estimate(&config).unwrap();
        let b = est.estimate(&config).unwrap();
        assert_eq!(a.estimate, b.estimate);
        let bad = ApproxConfig {
            delta: 0.0,
            ..ApproxConfig::default()
        };
        assert!(est.estimate(&bad).is_err());
    }

    #[test]
    fn agrees_with_the_fpras_on_the_same_query() {
        let (db, keys) = wide_db();
        let q = parse_query("Works(3, 'hr') OR Works(4, 'sales')").unwrap();
        let ucq = rewrite_to_ucq(&q).unwrap();
        let config = ApproxConfig {
            epsilon: 0.1,
            delta: 0.05,
            ..ApproxConfig::default()
        };
        let kl = KarpLubyEstimator::new(&db, &keys, &ucq)
            .unwrap()
            .estimate(&config)
            .unwrap();
        let fpras = crate::FprasEstimator::new(&db, &keys, &ucq)
            .unwrap()
            .estimate(&config)
            .unwrap();
        let exact = count_by_enumeration(&db, &keys, &q, 10_000_000).unwrap();
        assert!(kl.relative_error(&exact) <= 0.1);
        assert!(fpras.relative_error(&exact) <= 0.1);
    }
}
