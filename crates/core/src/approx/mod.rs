//! Approximate counting of repairs.
//!
//! Exact `#CQA` is #P-hard, so Section 6 of the paper turns to fully
//! polynomial-time randomized approximation schemes (FPRAS):
//!
//! * [`FprasEstimator`] — the paper's own scheme (Theorem 6.2 /
//!   Corollary 6.4).  It samples from the *natural* sample space: a uniform
//!   repair is drawn by picking one fact uniformly from every block, the
//!   Bernoulli outcome is "does the repair entail the query", and the
//!   estimate is `|U| · (Σ Xᵢ) / t` with the paper's sample size
//!   `t = ⌈(2+ε)·mᵏ/ε² · ln(2/δ)⌉` where `m` is the maximum block size and
//!   `k` the (disjunct) keywidth.
//! * [`KarpLubyEstimator`] — the baseline inherited from probabilistic
//!   databases \[5\]: a Karp–Luby union-of-sets estimator over the "complex"
//!   sample space of (certificate, completion) pairs.  The paper's point is
//!   that its own scheme is conceptually simpler; implementing both lets
//!   the benchmarks compare them.
//!
//! Both estimators are deterministic given a seed ([`ApproxConfig::seed`]),
//! which keeps experiments reproducible.

mod fpras;
mod karp_luby;

pub use fpras::FprasEstimator;
pub use karp_luby::KarpLubyEstimator;

use cdr_num::{BigNat, LogNum};
use cdr_repairdb::{BlockPartition, FactId};
use rand::distributions::{Distribution, Uniform};
use rand::RngCore;

use crate::CountError;

/// Parameters of an approximation run.
#[derive(Clone, Debug, PartialEq)]
pub struct ApproxConfig {
    /// Relative error bound `ε > 0`.
    pub epsilon: f64,
    /// Failure probability `δ ∈ (0, 1)`.
    pub delta: f64,
    /// Hard cap on the number of samples actually drawn.  The theoretical
    /// sample size can be astronomically large for tiny `ε`; the cap keeps
    /// experiments finite and is reported back in [`ApproxCount`].
    pub max_samples: u64,
    /// Seed for the pseudo-random generator, so runs are reproducible.
    pub seed: u64,
}

impl Default for ApproxConfig {
    fn default() -> Self {
        ApproxConfig {
            epsilon: 0.1,
            delta: 0.05,
            max_samples: 2_000_000,
            seed: 0xC0FFEE,
        }
    }
}

impl ApproxConfig {
    /// Validates `ε` and `δ`.
    pub fn validate(&self) -> Result<(), CountError> {
        if self.epsilon <= 0.0 || !self.epsilon.is_finite() {
            return Err(CountError::InvalidApproxParameter(format!(
                "epsilon must be a positive finite number, got {}",
                self.epsilon
            )));
        }
        if !(self.delta > 0.0 && self.delta < 1.0) {
            return Err(CountError::InvalidApproxParameter(format!(
                "delta must lie strictly between 0 and 1, got {}",
                self.delta
            )));
        }
        if self.max_samples == 0 {
            return Err(CountError::InvalidApproxParameter(
                "max_samples must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// The outcome of an approximation run.
#[derive(Clone, Debug)]
pub struct ApproxCount {
    /// The estimate rounded to a natural number.
    pub estimate: BigNat,
    /// The estimate in the log domain (useful when it exceeds `f64`).
    pub estimate_log: LogNum,
    /// The estimated fraction of the sample space that is covered
    /// (the empirical mean of the Bernoulli variable).
    pub covered_fraction: f64,
    /// The sample size the theory asks for.
    pub samples_requested: u64,
    /// The sample size actually used (`min(requested, max_samples)`, and 0
    /// when the estimator short-circuits to an exact answer).
    pub samples_used: u64,
    /// Number of positive samples.
    pub positive_samples: u64,
    /// The size of the sample space the estimator scaled by (`|U|` for the
    /// FPRAS, the summed box weight for Karp–Luby).
    pub sample_space_size: BigNat,
    /// Whether the estimator short-circuited to an exact value (e.g. no
    /// certificates at all, or an unconstrained certificate).
    pub exact: bool,
}

impl ApproxCount {
    /// Builds an outcome representing an exactly-known value (used when an
    /// estimator short-circuits, e.g. no certificates at all).
    pub fn exact_value(value: BigNat, space: BigNat) -> ApproxCount {
        let log = LogNum::from_bignat(&value);
        let fraction = if space.is_zero() {
            0.0
        } else {
            (value.ln() - space.ln()).exp()
        };
        ApproxCount {
            estimate: value,
            estimate_log: log,
            covered_fraction: fraction,
            samples_requested: 0,
            samples_used: 0,
            positive_samples: 0,
            sample_space_size: space,
            exact: true,
        }
    }

    /// The relative error of the estimate against a known exact count.
    pub fn relative_error(&self, exact: &BigNat) -> f64 {
        self.estimate_log
            .relative_error(&LogNum::from_bignat(exact))
    }
}

/// Scales a sample-space size by an empirical success fraction
/// `positives / samples`, returning both a rounded [`BigNat`] and the
/// log-domain value.
pub(crate) fn scale_by_fraction(space: &BigNat, positives: u64, samples: u64) -> (BigNat, LogNum) {
    assert!(samples > 0, "cannot scale by an empty sample");
    if positives == 0 {
        return (BigNat::zero(), LogNum::zero());
    }
    let mut numerator = space.clone();
    numerator.mul_assign_u64(positives);
    let (estimate, remainder) = numerator.div_rem_u64(samples);
    // Round half-up on the remainder.
    let rounded = if remainder.saturating_mul(2) >= samples {
        &estimate + &BigNat::one()
    } else {
        estimate
    };
    let log = LogNum::from_ln(space.ln() + (positives as f64 / samples as f64).ln());
    (rounded, log)
}

/// The live blocks of a partition flattened for the sampling hot loop.
///
/// Built once per estimator, this carries everything a per-sample
/// completion walk needs in parallel, cache-friendly arrays laid out in
/// `≺_{D,Σ}` order: the block's slot (the index into the choice vector),
/// a [`Uniform`] sampler with the block's Lemire rejection threshold — an
/// integer division — precomputed, and the block's facts concatenated
/// into one slice.  The old loop chased `order → Block → facts` pointers
/// and re-derived the threshold per draw; this walk touches only
/// sequential memory and the generator.  Sampled values are draw-for-draw
/// identical to the `blocks.iter()` + `gen_range` formulation (the
/// vendored `Uniform` guarantees value equality with `gen_range`).
pub(crate) struct LiveBlockSampler {
    slot_count: usize,
    /// Per live block, in `≺_{D,Σ}` order: its slot index.
    slots: Box<[u32]>,
    /// Per live block: a `0..len` sampler with precomputed threshold.
    samplers: Box<[Uniform]>,
    /// Per live block: offset of its facts within `facts`.
    offsets: Box<[u32]>,
    /// Every live block's facts, concatenated in `≺_{D,Σ}` order.
    facts: Box<[FactId]>,
}

impl LiveBlockSampler {
    pub(crate) fn new(blocks: &BlockPartition) -> LiveBlockSampler {
        let live = blocks.len();
        let mut slots = Vec::with_capacity(live);
        let mut samplers = Vec::with_capacity(live);
        let mut offsets = Vec::with_capacity(live);
        let mut facts = Vec::new();
        for (id, block) in blocks.iter() {
            slots.push(id.index() as u32);
            samplers.push(Uniform::from(0..block.len()));
            offsets.push(facts.len() as u32);
            facts.extend_from_slice(block.facts());
        }
        LiveBlockSampler {
            slot_count: blocks.slot_count(),
            slots: slots.into_boxed_slice(),
            samplers: samplers.into_boxed_slice(),
            offsets: offsets.into_boxed_slice(),
            facts: facts.into_boxed_slice(),
        }
    }

    /// Initialises the reusable `choice` vector: placeholders spanning
    /// every slot.  Every live slot is overwritten by each sample; retired
    /// slots keep the placeholder (no live box pins them), so one reset
    /// before the sampling loop suffices.
    pub(crate) fn init_choice(&self, choice: &mut Vec<FactId>) {
        choice.clear();
        choice.resize(self.slot_count, FactId::new(u32::MAX as usize));
    }

    /// Draws a uniform repair into the reusable `choice` vector, indexed
    /// by block slot so [`crate::SelectorBox::contains_choice`] can look
    /// pins up directly.  Randomness is drawn in `≺_{D,Σ}` order, so two
    /// engines over the same live facts sample identical repairs for the
    /// same seed regardless of how their slots are numbered.
    pub(crate) fn sample_repair_into<R: RngCore>(&self, rng: &mut R, choice: &mut [FactId]) {
        for i in 0..self.slots.len() {
            let idx = self.samplers[i].sample(rng);
            choice[self.slots[i] as usize] = self.facts[self.offsets[i] as usize + idx];
        }
    }

    /// Draws a uniform completion of `pinned` into `choice`: pinned blocks
    /// contribute their pinned fact, every other live block draws
    /// uniformly — consuming randomness exactly as a full walk that skips
    /// pinned blocks, in `≺_{D,Σ}` order.
    pub(crate) fn sample_completion_into<R: RngCore>(
        &self,
        pinned: &crate::SelectorBox,
        rng: &mut R,
        choice: &mut [FactId],
    ) {
        for i in 0..self.slots.len() {
            let slot = self.slots[i] as usize;
            let fact = match pinned.pin_for(cdr_repairdb::BlockId::new(slot)) {
                Some(fact) => fact,
                None => {
                    let idx = self.samplers[i].sample(rng);
                    self.facts[self.offsets[i] as usize + idx]
                }
            };
            choice[slot] = fact;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(ApproxConfig::default().validate().is_ok());
        let bad_eps = ApproxConfig {
            epsilon: 0.0,
            ..ApproxConfig::default()
        };
        assert!(bad_eps.validate().is_err());
        let bad_delta = ApproxConfig {
            delta: 1.5,
            ..ApproxConfig::default()
        };
        assert!(bad_delta.validate().is_err());
        let bad_samples = ApproxConfig {
            max_samples: 0,
            ..ApproxConfig::default()
        };
        assert!(bad_samples.validate().is_err());
        let nan_eps = ApproxConfig {
            epsilon: f64::NAN,
            ..ApproxConfig::default()
        };
        assert!(nan_eps.validate().is_err());
    }

    #[test]
    fn scale_by_fraction_rounds_sensibly() {
        let space = BigNat::from(100u64);
        let (est, _) = scale_by_fraction(&space, 1, 2);
        assert_eq!(est.to_u64(), Some(50));
        let (est, _) = scale_by_fraction(&space, 1, 3);
        assert_eq!(est.to_u64(), Some(33));
        let (est, _) = scale_by_fraction(&space, 2, 3);
        assert_eq!(est.to_u64(), Some(67));
        let (est, log) = scale_by_fraction(&space, 0, 3);
        assert!(est.is_zero());
        assert!(log.is_zero());
        // Huge spaces survive in the log domain.
        let huge = BigNat::from(2u64).pow(400);
        let (_, log) = scale_by_fraction(&huge, 1, 4);
        assert!((log.ln() - (400.0 * 2f64.ln() - 4f64.ln())).abs() < 1e-6);
    }

    #[test]
    fn exact_value_outcome() {
        let out = ApproxCount::exact_value(BigNat::from(3u64), BigNat::from(12u64));
        assert!(out.exact);
        assert_eq!(out.estimate.to_u64(), Some(3));
        assert!((out.covered_fraction - 0.25).abs() < 1e-12);
        assert_eq!(out.samples_used, 0);
        assert!(out.relative_error(&BigNat::from(3u64)) < 1e-12);
        assert!(out.relative_error(&BigNat::from(6u64)) > 0.4);
        let zero_space = ApproxCount::exact_value(BigNat::zero(), BigNat::zero());
        assert_eq!(zero_space.covered_fraction, 0.0);
    }
}
