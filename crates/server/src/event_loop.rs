//! The readiness-driven serving loop: one reactor thread owns every
//! socket; a bounded worker pool executes commands.
//!
//! The old accept path was thread-per-connection — 10k mostly-idle
//! connections cost 10k parked threads.  Here the reactor thread holds
//! the listener and every connection on nonblocking sockets under a
//! [`cdr_reactor::poll`] set, so idle connections cost a file
//! descriptor and a table slot, never a thread:
//!
//! - **Reads** land in the connection's [`Decoder`]; each complete
//!   [`Command`] queues in the connection's inbox.
//! - **Execution** stays on the worker pool.  A connection with a
//!   non-empty inbox and no worker attached is handed to the
//!   [`JobQueue`]; the claiming worker drains the inbox one command at a
//!   time through the same [`Session`] state machine as before, so
//!   `ERR BUSY` semantics, rate limiting, `AUTH` and Oracle replay
//!   parity carry over unchanged.
//! - **Writes** buffer per connection; the reactor flushes on
//!   writability.  Workers never touch sockets — they append reply
//!   bytes and nudge the reactor's waker, which is what keeps a peer
//!   that stops reading (or dribbles a frame one byte at a time) from
//!   stalling anyone else.
//!
//! The executing-flag handoff is the one delicate invariant: a
//! connection is in the job queue **iff** `executing` is set, and the
//! flag is only cleared by the owning worker under the I/O lock after
//! re-checking the inbox is empty — a command decoded concurrently is
//! either seen by that re-check or observes `executing == false` and
//! re-enqueues, so no command is ever stranded.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use cdr_reactor::{poll, Interest, PollEntry};

use crate::conn::{Command, Decoder, TokenBucket};
use crate::reply;
use crate::scheduler::Shared;
use crate::session::{Session, Step};

/// Reply bytes a connection may buffer before the reactor stops reading
/// from it (a peer that sends but will not read its replies).
const MAX_OUT_BUFFER: usize = 256 * 1024;

/// How long a shutting-down reactor keeps flushing pending replies
/// before force-dropping the remaining connections.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(5);

/// Socket-facing state: owned by the reactor, briefly locked by workers
/// to pop commands and push reply bytes.  Never held across command
/// execution — that is what keeps the reactor non-blocking.
struct IoState {
    decoder: Decoder,
    /// Decoded commands awaiting a worker.
    inbox: VecDeque<Command>,
    /// Reply bytes awaiting socket writability.
    out: Vec<u8>,
    /// Whether a worker currently owns this connection's inbox.
    executing: bool,
    /// Close once `out` drains (QUIT, SHUTDOWN, post-panic).
    close_after_flush: bool,
    /// The peer closed its write side; drain the inbox, then close.
    eof: bool,
    /// The socket errored (or a handler panicked): drop immediately.
    dead: bool,
}

/// Session state: touched only by the single worker holding the
/// connection's `executing` flag, so this lock is never contended.
struct ExecState {
    session: Session,
    bucket: Option<TokenBucket>,
}

/// One live connection, shared between the reactor and the worker pool.
pub(crate) struct Conn {
    stream: TcpStream,
    io: Mutex<IoState>,
    exec: Mutex<ExecState>,
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Conn {
    fn new(stream: TcpStream, shared: &Shared) -> Conn {
        Conn {
            stream,
            io: Mutex::new(IoState {
                decoder: Decoder::new(shared.config.max_line_bytes, shared.config.max_frame_bytes),
                inbox: VecDeque::new(),
                out: Vec::new(),
                executing: false,
                close_after_flush: false,
                eof: false,
                dead: false,
            }),
            exec: Mutex::new(ExecState {
                session: Session::new(),
                bucket: shared.config.rate_limit.map(TokenBucket::new),
            }),
        }
    }
}

/// The queue of connections with commands awaiting a worker.
#[derive(Default)]
pub(crate) struct JobQueue {
    queue: Mutex<VecDeque<Arc<Conn>>>,
    ready: Condvar,
}

impl JobQueue {
    fn push(&self, conn: Arc<Conn>) {
        lock(&self.queue).push_back(conn);
        self.ready.notify_one();
    }

    /// Blocks for the next job; `None` once the server is shutting down
    /// and the queue has drained.
    fn pop(&self, shared: &Shared) -> Option<Arc<Conn>> {
        let mut queue = lock(&self.queue);
        loop {
            if let Some(conn) = queue.pop_front() {
                return Some(conn);
            }
            if shared.shutting_down() {
                return None;
            }
            // A timed wait doubles as the shutdown poll, so workers
            // never need an explicit wake-up to exit.
            let (guard, _) = self
                .ready
                .wait_timeout(queue, shared.config.poll_interval)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            queue = guard;
        }
    }

    pub(crate) fn notify_all(&self) {
        self.ready.notify_all();
    }
}

/// If `conn` has pending commands and no worker attached, attach one.
/// Must be called with the I/O lock held (hence the guard parameter).
fn schedule(io: &mut IoState, conn: &Arc<Conn>, jobs: &JobQueue) {
    if !io.executing && !io.inbox.is_empty() && !io.dead {
        io.executing = true;
        jobs.push(Arc::clone(conn));
    }
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

/// What executing one command means for the connection afterwards.
enum Outcome {
    Continue,
    Close,
    Shutdown,
}

pub(crate) fn worker_loop(shared: &Shared, jobs: &JobQueue) {
    while let Some(conn) = jobs.pop(shared) {
        serve_conn(shared, &conn);
    }
}

/// Drains one connection's inbox, executing each command through the
/// session.  A panicking command loses its connection, never its worker:
/// the panic is counted, the victim socket closes without a reply (the
/// crash-recovery tests pin this), and the worker moves on.
fn serve_conn(shared: &Shared, conn: &Arc<Conn>) {
    let mut exec = lock(&conn.exec);
    loop {
        let command = {
            let mut io = lock(&conn.io);
            if io.dead || io.close_after_flush {
                io.inbox.clear();
                io.executing = false;
                break;
            }
            match io.inbox.pop_front() {
                Some(command) => command,
                None => {
                    io.executing = false;
                    break;
                }
            }
        };
        match catch_unwind(AssertUnwindSafe(|| execute(shared, &mut exec, command))) {
            Ok((bytes, outcome)) => {
                let mut io = lock(&conn.io);
                io.out.extend_from_slice(&bytes);
                match outcome {
                    Outcome::Continue => {}
                    Outcome::Close => io.close_after_flush = true,
                    Outcome::Shutdown => io.close_after_flush = true,
                }
                drop(io);
                if matches!(outcome, Outcome::Shutdown) {
                    shared.begin_shutdown();
                }
                shared.waker().wake();
            }
            Err(_) => {
                shared.recovered_panics.fetch_add(1, Ordering::Relaxed);
                eprintln!("cdr-server: worker recovered from a command handler panic");
                let mut io = lock(&conn.io);
                io.inbox.clear();
                io.out.clear();
                io.dead = true;
                io.executing = false;
                drop(io);
                shared.waker().wake();
                break;
            }
        }
    }
}

fn push_line(bytes: &mut Vec<u8>, line: &str) {
    bytes.extend_from_slice(line.as_bytes());
    bytes.push(b'\n');
}

/// Executes one decoded command, returning the reply bytes to buffer and
/// what happens to the connection next.
fn execute(shared: &Shared, exec: &mut ExecState, command: Command) -> (Vec<u8>, Outcome) {
    let mut bytes = Vec::new();
    let step = match command {
        Command::Line(line) => {
            shared.commands.fetch_add(1, Ordering::Relaxed);
            let trimmed = line.trim();
            let chargeable = !trimmed.is_empty() && !trimmed.starts_with('#');
            if chargeable && !throttle_admits(shared, exec) {
                push_line(&mut bytes, reply::RATE_LIMITED);
                return (bytes, Outcome::Continue);
            }
            exec.session.feed(shared, &line)
        }
        Command::Bulk(frame) => {
            // One frame = one header line = one command, one rate token.
            shared.commands.fetch_add(1, Ordering::Relaxed);
            if !throttle_admits(shared, exec) {
                push_line(&mut bytes, reply::RATE_LIMITED);
                return (bytes, Outcome::Continue);
            }
            exec.session.bulk(shared, &frame)
        }
        Command::TooLong => {
            let max = shared.config.max_line_bytes;
            push_line(
                &mut bytes,
                &format!("ERR LINE line exceeds {max} bytes; discarded"),
            );
            return (bytes, Outcome::Continue);
        }
        Command::BadFrame(why) => {
            push_line(&mut bytes, &reply::frame_error(&why));
            return (bytes, Outcome::Continue);
        }
    };
    let outcome = match step {
        Step::Silent => Outcome::Continue,
        Step::Replies(replies) => {
            for line in &replies {
                push_line(&mut bytes, line);
            }
            Outcome::Continue
        }
        Step::RepliesRaw(replies, raw) => {
            for line in &replies {
                push_line(&mut bytes, line);
            }
            bytes.extend_from_slice(&raw);
            Outcome::Continue
        }
        Step::Quit(line) => {
            push_line(&mut bytes, &line);
            Outcome::Close
        }
        Step::Shutdown(line) => {
            push_line(&mut bytes, &line);
            Outcome::Shutdown
        }
    };
    (bytes, outcome)
}

/// The rate-limit gate.  A throttled command is never fed to the
/// session — it cannot mutate, open or extend a batch — and aborts any
/// open batch so a half-collected one never survives the rejection.
fn throttle_admits(shared: &Shared, exec: &mut ExecState) -> bool {
    let Some(bucket) = &mut exec.bucket else {
        return true;
    };
    if bucket.admit() {
        return true;
    }
    exec.session.abort_batch();
    shared.busy_rejections.fetch_add(1, Ordering::Relaxed);
    false
}

// ---------------------------------------------------------------------
// Reactor side
// ---------------------------------------------------------------------

pub(crate) fn reactor_loop(shared: &Arc<Shared>, listener: TcpListener, jobs: &Arc<JobQueue>) {
    let _ = listener.set_nonblocking(true);
    let mut conns: Vec<Arc<Conn>> = Vec::new();
    let mut shutdown_deadline: Option<Instant> = None;
    loop {
        let shutting = shared.shutting_down();
        if shutting && shutdown_deadline.is_none() {
            shutdown_deadline = Some(Instant::now() + SHUTDOWN_GRACE);
        }
        let past_deadline = shutdown_deadline.is_some_and(|d| Instant::now() >= d);
        conns.retain(|conn| {
            let io = lock(&conn.io);
            if io.dead || past_deadline {
                return false;
            }
            let finished = !io.executing && io.inbox.is_empty() && io.out.is_empty();
            // Closing paths: explicit (QUIT/SHUTDOWN reply flushed), the
            // peer's EOF after its last command, or server shutdown.
            !(finished && (io.close_after_flush || io.eof || shutting))
        });
        if shutting && conns.is_empty() {
            break;
        }

        // The poll set is rebuilt from scratch every iteration — the
        // connection table is the registration state.
        let mut entries = Vec::with_capacity(conns.len() + 2);
        entries.push(PollEntry::new(shared.waker().raw_fd(), Interest::READ));
        let accept_slot = if shutting {
            None
        } else {
            entries.push(PollEntry::new(listener.as_raw_fd(), Interest::READ));
            Some(entries.len() - 1)
        };
        let mut slots: Vec<Option<usize>> = Vec::with_capacity(conns.len());
        for conn in &conns {
            let io = lock(&conn.io);
            let interest = Interest {
                // Backpressure: stop reading while this connection's
                // inbox or reply buffer is full — never while anyone
                // else's is.
                read: !shutting
                    && !io.eof
                    && !io.close_after_flush
                    && io.inbox.len() < shared.config.backlog
                    && io.out.len() < MAX_OUT_BUFFER,
                write: !io.out.is_empty(),
            };
            if interest.read || interest.write {
                slots.push(Some(entries.len()));
                entries.push(PollEntry::new(conn.stream.as_raw_fd(), interest));
            } else {
                slots.push(None);
            }
        }

        let _ = poll(&mut entries, Some(shared.config.poll_interval));

        if entries[0].ready.readable {
            shared.waker().drain();
        }
        if accept_slot.is_some_and(|i| entries[i].ready.readable) {
            accept_pending(shared, &listener, &mut conns);
        }
        for (conn, slot) in conns.iter().zip(&slots) {
            let Some(i) = slot else { continue };
            let ready = entries[*i].ready;
            if ready.readable || ready.is_dead() {
                // On hangup/error, drain to EOF in one go: the level-
                // triggered condition would otherwise re-report forever.
                handle_readable(conn, jobs, ready.is_dead());
            }
            if ready.writable {
                flush(conn);
            }
        }
    }
    // Unblock any worker parked on an empty queue.
    jobs.notify_all();
}

fn accept_pending(shared: &Shared, listener: &TcpListener, conns: &mut Vec<Arc<Conn>>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.connections.fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                conns.push(Arc::new(Conn::new(stream, shared)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// One bounded read per readiness report (level-triggered polling
/// re-reports leftover data next iteration, which is what keeps a
/// firehose sender from starving other connections).  `to_eof` drains
/// the socket completely instead — used on hangup, where stopping short
/// would leave the condition re-reporting forever.
fn handle_readable(conn: &Arc<Conn>, jobs: &JobQueue, to_eof: bool) {
    let mut buf = [0u8; 16 * 1024];
    let mut io = lock(&conn.io);
    loop {
        match (&conn.stream).read(&mut buf) {
            Ok(0) => {
                io.eof = true;
                break;
            }
            Ok(n) => {
                io.decoder.push(&buf[..n]);
                while let Some(command) = io.decoder.next() {
                    io.inbox.push_back(command);
                }
                if !to_eof {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                io.dead = true;
                break;
            }
        }
    }
    schedule(&mut io, conn, jobs);
}

fn flush(conn: &Arc<Conn>) {
    let mut io = lock(&conn.io);
    let mut written = 0;
    while written < io.out.len() {
        match (&conn.stream).write(&io.out[written..]) {
            Ok(0) => {
                io.dead = true;
                break;
            }
            Ok(n) => written += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                io.dead = true;
                break;
            }
        }
    }
    io.out.drain(..written);
}
