//! The serving front end: a line-protocol TCP server over the
//! [`RepairEngine`](cdr_core::RepairEngine) command API.
//!
//! PR 2 made [`EngineCommand`](cdr_core::EngineCommand) /
//! [`EngineResponse`](cdr_core::EngineResponse) *be* the protocol; this
//! crate adds the network loop that speaks it.  Clients connect over TCP
//! and send one command per line in the [`cdr_core::wire`] grammar
//! (`INSERT`, `DELETE`, `COUNT`, `CERTAIN`, `DECIDE`, `FREQ`, `APPROX`,
//! `COMPACT`)
//! plus the serving-layer framing this crate defines (`BATCH … END`,
//! `STATS`, `SLEEP`, `QUIT`, `SHUTDOWN`); the server streams single-line
//! replies back (`OK …` on success, `ERR <code> <message>` on failure).
//! A `BULK <len>` header escapes the line protocol into one
//! length-prefixed binary frame of `INSERT`/`DELETE` ops (the
//! [`cdr_core::wire::frame`] codec); the server answers it with exactly
//! the reply lines the equivalent textual commands would have produced.
//!
//! # The scheduler
//!
//! The engine answers queries through `&self` but applies mutations
//! through `&mut self`, so the serving loop's real job is the scheduler
//! around that barrier.  This crate uses an
//! [`RwLock<RepairEngine>`](std::sync::RwLock): queries run concurrently
//! under read guards, and a mutation's write guard *drains* all in-flight
//! queries and applies atomically.  The alternative — an mpsc command
//! actor owning the engine on one thread — was rejected because it
//! serialises queries too: the engine's whole design (generation-stamped
//! shared plan cache, `Send + Sync` reports) exists so concurrent readers
//! scale, and an actor would also add a per-command channel hop on the
//! hot read path.  The costs of the lock — writer starvation under heavy
//! read load and poisoning on a panicking holder — are bounded here by
//! keeping guard scopes to a single command and by recovering poisoned
//! guards (a panicking handler cannot leave the engine mid-mutation
//! unless the engine itself panicked inside `apply`, which the fact-id
//! exhaustion fix removed the last known cause of).
//!
//! `BATCH` fan-outs (which occupy engine worker threads, not just a
//! guard) are admitted through a bounded permit pool: when every permit
//! is in use the server answers `ERR BUSY SERVER BUSY …` immediately
//! instead of buffering without bound.
//!
//! # The event loop
//!
//! Connections are served by a readiness-driven event loop, not
//! thread-per-connection: one reactor thread owns the listener and
//! every connection on nonblocking sockets under a `poll(2)` set (the
//! vendored [`cdr_reactor`] crate), decodes arriving bytes into
//! complete commands, and hands connections with pending commands to
//! the bounded worker pool for execution.  Workers never touch sockets;
//! they buffer reply bytes and nudge the reactor's waker, which flushes
//! on writability.  N mostly-idle connections therefore cost N file
//! descriptors and one polling thread — not N threads — and a peer that
//! dribbles a frame byte-by-byte or stops reading its replies is
//! backpressured individually without stalling anyone else.
//!
//! # In-process use
//!
//! [`Server::start`] boots a server on any listener address (port 0
//! picks an ephemeral port) and returns a handle; [`client::Client`] is
//! a minimal blocking client used by the integration tests and the
//! `cdr-replay` smoke binary.  [`Oracle`] executes the same wire lines
//! against a bare engine with the same parsing and rendering code and no
//! sockets or scheduler — the single-threaded replay that concurrency
//! tests compare server replies against, line for line.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
pub mod client;
mod conn;
mod event_loop;
pub mod replication;
mod reply;
mod scheduler;
mod server;
mod session;
pub mod supervisor;

pub use backend::Backend;
pub use replication::{FeedMode, ReplReply, ReplicatedBackend, Role};
pub use reply::{error_code, render_count_error, render_wire_error};
pub use server::{Server, ServerStats};
pub use session::Oracle;
pub use supervisor::{Supervisor, SupervisorConfig, SupervisorState, SupervisorStatus};

use std::time::Duration;

/// Tuning knobs for a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Size of the command worker pool: at most this many commands
    /// execute concurrently (connections themselves cost no thread — the
    /// reactor multiplexes them all).
    pub workers: usize,
    /// Per-connection pending-command bound.  The reactor stops reading
    /// from a connection whose decoded-but-unexecuted command queue has
    /// reached this depth, and resumes as workers drain it — per-sender
    /// backpressure instead of unbounded buffering.
    pub backlog: usize,
    /// Number of `BATCH` query fan-outs that may run concurrently; further
    /// batches are refused with `ERR BUSY SERVER BUSY …` until a permit
    /// frees up.
    pub batch_permits: usize,
    /// Longest accepted command line in bytes; longer lines are discarded
    /// up to their newline and answered `ERR LINE …`.
    pub max_line_bytes: usize,
    /// Longest accepted `BULK` frame body in bytes.  A header advertising
    /// more is refused with `ERR FRAME …` *before* any allocation — the
    /// advertised length never reserves memory — and the connection
    /// stays in line mode.
    pub max_frame_bytes: usize,
    /// Most commands a single `BATCH … END` may carry.
    pub max_batch_commands: usize,
    /// Socket read poll interval: how quickly an idle connection notices
    /// a server shutdown.
    pub poll_interval: Duration,
    /// Enables the chaos verbs (`PANIC`) used by the crash-recovery
    /// regression tests.  Never enable in production.
    pub chaos: bool,
    /// Auto-compaction waste threshold (`None` disables the policy).
    /// Before every mutating command the engine compacts — an exclusive
    /// write-guard operation, like any mutation — when its reclaimable
    /// waste (tombstoned fact ids plus retired block slots) has reached
    /// this value, or when the fact-id space is exhausted.  With the
    /// policy on, a delete-bearing session under a `--fact-id-cap`
    /// survives indefinitely instead of dying with `ERR EXHAUSTED`.
    pub auto_compact: Option<u64>,
    /// Admin token gating `SHUTDOWN` and the chaos verbs (`SLEEP`,
    /// `PANIC`).  `None` (the default) leaves them open, preserving the
    /// legacy behaviour; with a token set, a connection must first send
    /// `AUTH <token>` or the gated verbs answer `ERR DENIED …` (the
    /// connection stays alive).
    pub admin_token: Option<String>,
    /// Per-connection command rate limit, in commands per second (`None`
    /// disables throttling).  Each connection owns a token bucket with
    /// this capacity and refill rate; a command arriving to an empty
    /// bucket is answered exactly `ERR BUSY RATE LIMITED` (aborting any
    /// open `BATCH`) and is not executed.
    pub rate_limit: Option<u32>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            backlog: 16,
            batch_permits: 2,
            max_line_bytes: 64 * 1024,
            max_frame_bytes: 8 * 1024 * 1024,
            max_batch_commands: 4096,
            poll_interval: Duration::from_millis(100),
            chaos: false,
            auto_compact: None,
            admin_token: None,
            rate_limit: None,
        }
    }
}

impl ServerConfig {
    /// A config bound to the given address, otherwise default.
    pub fn bind(addr: impl Into<String>) -> Self {
        ServerConfig {
            addr: addr.into(),
            ..ServerConfig::default()
        }
    }
}
