//! `cdr-replay`: replay a deterministic workload trace against a running
//! `cdr-serve` and verify every reply — the CI smoke client.
//!
//! Boot the server on the matching base database first:
//!
//! ```text
//! cdr-serve --addr 127.0.0.1:7878 --scenario serving --sensors 6 --ticks 3 &
//! cdr-replay --addr 127.0.0.1:7878 --sensors 6 --ticks 3 --ops 60 --shutdown
//! ```
//!
//! or, for the delete-heavy churn soak (the server must run the *same*
//! auto-compaction threshold the trace was generated with, since
//! compaction points determine which fact ids the trace deletes):
//!
//! ```text
//! cdr-serve --addr 127.0.0.1:7878 --scenario churn --auto-compact 32 &
//! cdr-replay --addr 127.0.0.1:7878 --trace churn --auto-compact 32 \
//!            --ops 400 --shutdown
//! ```
//!
//! Exits 0 iff every trace line drew an `OK` reply (the traces are valid
//! by construction against the matching base).  The reply to the trace's
//! final `STATS` line is echoed as `cdr-replay: final <reply>` so CI can
//! assert gauges (e.g. a bounded slot count under `--auto-compact`).
//! `--shutdown` additionally sends `SHUTDOWN` so the server drains and
//! exits 0 itself.

use std::process::exit;

use cdr_server::client::Client;
use cdr_workloads::{churn_session, serving_session};

const USAGE: &str = "\
cdr-replay — workload-trace smoke client

USAGE:
  cdr-replay --addr <host:port> [--trace serving|churn] [--sensors <n>]
             [--ticks <n>] [--ops <n>] [--auto-compact <waste>] [--shutdown]
";

fn fail(message: &str) -> ! {
    eprintln!("cdr-replay: {message}");
    eprintln!("{USAGE}");
    exit(2)
}

fn main() {
    let mut addr = String::new();
    let mut trace_name = "serving".to_string();
    let mut sensors = 6usize;
    let mut ticks = 3usize;
    let mut ops = 60usize;
    let mut auto_compact: Option<u64> = None;
    let mut shutdown = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0)
            }
            "--addr" => addr = value(),
            "--trace" => trace_name = value(),
            "--sensors" => sensors = parse(&value()),
            "--ticks" => ticks = parse(&value()),
            "--ops" => ops = parse(&value()),
            "--auto-compact" => auto_compact = Some(parse(&value()) as u64),
            "--shutdown" => shutdown = true,
            other => fail(&format!("unknown flag `{other}`")),
        }
    }
    if addr.is_empty() {
        fail("--addr is required");
    }

    let trace = match trace_name.as_str() {
        "serving" => serving_session(sensors, ticks, ops).2,
        "churn" => churn_session(ops, auto_compact).2,
        other => fail(&format!("unknown trace `{other}`")),
    };
    let mut client = match Client::connect(&addr) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("cdr-replay: cannot connect to {addr}: {e}");
            exit(1)
        }
    };
    let mut ok = 0usize;
    let mut last_reply = String::new();
    for line in &trace {
        match client.send(line) {
            Ok(reply) if reply.starts_with("OK ") => {
                ok += 1;
                last_reply = reply;
            }
            Ok(reply) => {
                eprintln!("cdr-replay: line `{line}` drew `{reply}`");
                exit(1)
            }
            Err(e) => {
                eprintln!("cdr-replay: io error on `{line}`: {e}");
                exit(1)
            }
        }
    }
    println!(
        "cdr-replay: {ok}/{} trace lines OK against {addr}",
        trace.len()
    );
    println!("cdr-replay: final {last_reply}");
    if shutdown {
        match client.send("SHUTDOWN") {
            Ok(reply) if reply == "OK SHUTDOWN" => println!("cdr-replay: server shutting down"),
            Ok(reply) => {
                eprintln!("cdr-replay: SHUTDOWN drew `{reply}`");
                exit(1)
            }
            Err(e) => {
                eprintln!("cdr-replay: io error on SHUTDOWN: {e}");
                exit(1)
            }
        }
    }
}

fn parse(text: &str) -> usize {
    text.parse()
        .unwrap_or_else(|_| fail(&format!("`{text}` is not a number")))
}
