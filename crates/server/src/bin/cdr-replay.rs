//! `cdr-replay`: replay a deterministic workload trace against a running
//! `cdr-serve` and verify every reply — the CI smoke client.
//!
//! Boot the server on the matching base database first:
//!
//! ```text
//! cdr-serve --addr 127.0.0.1:7878 --scenario serving --sensors 6 --ticks 3 &
//! cdr-replay --addr 127.0.0.1:7878 --sensors 6 --ticks 3 --ops 60 --shutdown
//! ```
//!
//! or, for the delete-heavy churn soak (the server must run the *same*
//! auto-compaction threshold the trace was generated with, since
//! compaction points determine which fact ids the trace deletes):
//!
//! ```text
//! cdr-serve --addr 127.0.0.1:7878 --scenario churn --auto-compact 32 &
//! cdr-replay --addr 127.0.0.1:7878 --trace churn --auto-compact 32 \
//!            --ops 400 --shutdown
//! ```
//!
//! Exits 0 iff every trace line drew an `OK` reply (the traces are valid
//! by construction against the matching base).  The reply to the trace's
//! final `STATS` line is echoed as `cdr-replay: final <reply>` so CI can
//! assert gauges (e.g. a bounded slot count under `--auto-compact`).
//! `--shutdown` additionally sends `SHUTDOWN` so the server drains and
//! exits 0 itself.

use std::net::ToSocketAddrs;
use std::process::exit;
use std::time::{Duration, Instant};

use cdr_repairdb::{Database, Mutation};
use cdr_server::client::{Client, RetryPolicy};
use cdr_workloads::{churn_session, replication_battery, serving_session};

const USAGE: &str = "\
cdr-replay — workload-trace smoke client

USAGE:
  cdr-replay --addr <host:port> [--trace serving|churn] [--sensors <n>]
             [--ticks <n>] [--ops <n>] [--auto-compact <waste>]
             [--from <n>] [--until <n>] [--follow <host:port>]
             [--auth <token>] [--bulk] [--idle-conns <n>]
             [--hold-ms <ms>] [--retry <attempts>] [--shutdown]

  --auth presents the admin token first, so --shutdown works against a
  server running --admin-token.

  --retry keeps dialling --addr with deterministic capped-exponential
  backoff for up to <attempts> attempts before giving up — the failover
  soak points the suffix replay at a follower that is still mid-promotion.

  --from/--until replay only the trace lines in [from, until) — the
  failover soak replays a prefix, kills the primary, and finishes the
  suffix against the promoted follower.

  --bulk ships each maximal run of consecutive INSERT/DELETE trace
  lines as one binary BULK frame instead of textual lines; replies are
  checked identically (the server answers one line per op).

  --idle-conns opens that many extra connections before the trace,
  verifies each answers a STATS round-trip, and holds them open —
  mostly idle — through the replay plus --hold-ms extra milliseconds
  (the connection-scaling smoke samples the server's thread count while
  they are held).

  --follow <host:port> names a follower of --addr's primary: after the
  trace leg, cdr-replay waits for the follower to catch up (STATS
  end= parity), then sends the replication read battery to both nodes
  and byte-compares every reply, plus the STATS gauge head.  Exits 1 on
  the first divergent byte.
";

/// Most ops one `--bulk` frame carries; longer runs split into several
/// frames.
const BULK_CHUNK: usize = 512;

/// How long `--follow` waits for the follower to reach the primary's
/// replication offset before declaring it wedged.
const CATCH_UP_TIMEOUT: Duration = Duration::from_secs(30);

fn fail(message: &str) -> ! {
    eprintln!("cdr-replay: {message}");
    eprintln!("{USAGE}");
    exit(2)
}

fn main() {
    let mut addr = String::new();
    let mut trace_name = "serving".to_string();
    let mut sensors = 6usize;
    let mut ticks = 3usize;
    let mut ops = 60usize;
    let mut auto_compact: Option<u64> = None;
    let mut from = 0usize;
    let mut until = usize::MAX;
    let mut follow: Option<String> = None;
    let mut auth: Option<String> = None;
    let mut bulk = false;
    let mut idle_conns = 0usize;
    let mut hold_ms = 0u64;
    let mut retry: Option<u32> = None;
    let mut shutdown = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0)
            }
            "--addr" => addr = value(),
            "--trace" => trace_name = value(),
            "--sensors" => sensors = parse(&value()),
            "--ticks" => ticks = parse(&value()),
            "--ops" => ops = parse(&value()),
            "--auto-compact" => auto_compact = Some(parse(&value()) as u64),
            "--from" => from = parse(&value()),
            "--until" => until = parse(&value()),
            "--follow" => follow = Some(value()),
            "--auth" => auth = Some(value()),
            "--bulk" => bulk = true,
            "--idle-conns" => idle_conns = parse(&value()),
            "--hold-ms" => hold_ms = parse(&value()) as u64,
            "--retry" => retry = Some(parse(&value()) as u32),
            "--shutdown" => shutdown = true,
            other => fail(&format!("unknown flag `{other}`")),
        }
    }
    if addr.is_empty() {
        fail("--addr is required");
    }

    let (base_db, _keys, full_trace) = match trace_name.as_str() {
        "serving" => serving_session(sensors, ticks, ops),
        "churn" => churn_session(ops, auto_compact),
        other => fail(&format!("unknown trace `{other}`")),
    };
    let until = until.min(full_trace.len());
    if from > until {
        fail("--from must not exceed --until (or the trace length)");
    }
    let trace = &full_trace[from..until];
    let dialled = match retry {
        Some(attempts) => {
            let resolved = addr
                .to_socket_addrs()
                .ok()
                .and_then(|mut addrs| addrs.next())
                .unwrap_or_else(|| fail(&format!("cannot resolve `{addr}`")));
            let policy = RetryPolicy {
                attempts: attempts.max(1),
                ..RetryPolicy::default()
            };
            Client::connect_with_retry(
                resolved,
                Some(Duration::from_millis(500)),
                Some(Duration::from_secs(30)),
                &policy,
            )
        }
        None => Client::connect(&addr),
    };
    let mut client = match dialled {
        Ok(client) => client,
        Err(e) => {
            eprintln!("cdr-replay: cannot connect to {addr}: {e}");
            exit(1)
        }
    };
    if let Some(token) = &auth {
        match client.send(&format!("AUTH {token}")) {
            Ok(reply) if reply == "OK AUTH" => {}
            Ok(reply) => {
                eprintln!("cdr-replay: AUTH drew `{reply}`");
                exit(1)
            }
            Err(e) => {
                eprintln!("cdr-replay: io error on AUTH: {e}");
                exit(1)
            }
        }
    }
    let idle: Vec<Client> = (0..idle_conns)
        .map(|i| {
            let mut conn = Client::connect(&addr).unwrap_or_else(|e| {
                eprintln!("cdr-replay: idle connection {i} failed to connect: {e}");
                exit(1)
            });
            match conn.send("STATS") {
                Ok(reply) if reply.starts_with("OK STATS ") => conn,
                Ok(reply) => {
                    eprintln!("cdr-replay: idle connection {i} drew `{reply}` to STATS");
                    exit(1)
                }
                Err(e) => {
                    eprintln!("cdr-replay: idle connection {i} io error: {e}");
                    exit(1)
                }
            }
        })
        .collect();
    if idle_conns > 0 {
        println!("cdr-replay: holding {idle_conns} idle connections, all served");
    }
    let mut ok = 0usize;
    let mut last_reply = String::new();
    if bulk {
        replay_bulk(&mut client, trace, &base_db, &mut ok, &mut last_reply);
    } else {
        for line in trace {
            match client.send(line) {
                Ok(reply) if reply.starts_with("OK ") => {
                    ok += 1;
                    last_reply = reply;
                }
                Ok(reply) => {
                    eprintln!("cdr-replay: line `{line}` drew `{reply}`");
                    exit(1)
                }
                Err(e) => {
                    eprintln!("cdr-replay: io error on `{line}`: {e}");
                    exit(1)
                }
            }
        }
    }
    println!(
        "cdr-replay: {ok}/{} trace lines OK against {addr} (lines {from}..{until}{})",
        trace.len(),
        if bulk { ", bulk frames" } else { "" }
    );
    println!("cdr-replay: final {last_reply}");
    if hold_ms > 0 {
        std::thread::sleep(Duration::from_millis(hold_ms));
    }
    drop(idle);
    if let Some(follower_addr) = follow {
        verify_follower(&mut client, &addr, &follower_addr);
    }
    if shutdown {
        match client.send("SHUTDOWN") {
            Ok(reply) if reply == "OK SHUTDOWN" => println!("cdr-replay: server shutting down"),
            Ok(reply) => {
                eprintln!("cdr-replay: SHUTDOWN drew `{reply}`");
                exit(1)
            }
            Err(e) => {
                eprintln!("cdr-replay: io error on SHUTDOWN: {e}");
                exit(1)
            }
        }
    }
}

fn parse(text: &str) -> usize {
    text.parse()
        .unwrap_or_else(|_| fail(&format!("`{text}` is not a number")))
}

/// The `--bulk` leg: each maximal run of consecutive `INSERT`/`DELETE`
/// lines ships as binary frames (at most [`BULK_CHUNK`] ops each); the
/// server answers one reply line per op, checked exactly like the
/// textual replay.  Parsing is against the scenario's base schema, which
/// is fixed for the life of the engine.
fn replay_bulk(
    client: &mut Client,
    trace: &[String],
    db: &Database,
    ok: &mut usize,
    last_reply: &mut String,
) {
    let mut pending: Vec<Mutation> = Vec::new();
    for line in trace {
        let verb = line.split_whitespace().next().unwrap_or("");
        let mutation = if verb.eq_ignore_ascii_case("INSERT") || verb.eq_ignore_ascii_case("DELETE")
        {
            cdr_core::wire::parse_mutation(line, db).ok()
        } else {
            None
        };
        match mutation {
            Some(mutation) => pending.push(mutation),
            None => {
                flush_frames(client, db, &mut pending, ok, last_reply);
                match client.send(line) {
                    Ok(reply) if reply.starts_with("OK ") => {
                        *ok += 1;
                        *last_reply = reply;
                    }
                    Ok(reply) => {
                        eprintln!("cdr-replay: line `{line}` drew `{reply}`");
                        exit(1)
                    }
                    Err(e) => {
                        eprintln!("cdr-replay: io error on `{line}`: {e}");
                        exit(1)
                    }
                }
            }
        }
    }
    flush_frames(client, db, &mut pending, ok, last_reply);
}

/// Ships the pending mutations as bulk frames and checks each op's reply.
fn flush_frames(
    client: &mut Client,
    db: &Database,
    pending: &mut Vec<Mutation>,
    ok: &mut usize,
    last_reply: &mut String,
) {
    for chunk in pending.chunks(BULK_CHUNK) {
        let frame = cdr_core::encode_bulk(db, chunk);
        match client.send_bulk(&frame, chunk.len()) {
            Ok(replies) => {
                for reply in replies {
                    if !reply.starts_with("OK ") {
                        eprintln!("cdr-replay: a bulk op drew `{reply}`");
                        exit(1)
                    }
                    *ok += 1;
                    *last_reply = reply;
                }
            }
            Err(e) => {
                eprintln!("cdr-replay: io error on a bulk frame: {e}");
                exit(1)
            }
        }
    }
    pending.clear();
}

/// `key=value` extraction from a `STATS` (or `REPL`) reply line.
fn stat_u64(line: &str, key: &str) -> Option<u64> {
    line.split_whitespace()
        .find_map(|token| token.strip_prefix(key))
        .and_then(|value| value.parse().ok())
}

/// The comparable head of a `STATS` reply: everything before the first
/// ` | ` tail.  The tails legitimately differ across nodes (plan-cache
/// traffic depends on load; the repl gauge carries the role), the gauge
/// head must not.
fn stats_head(reply: &str) -> &str {
    reply.split(" | ").next().unwrap_or(reply)
}

/// The `--follow` leg: wait until the follower's replicated offset
/// reaches the primary's, then demand byte-identical replies to the read
/// battery — including `cached=`/`gen=` provenance and seeded `APPROX`
/// estimates — and an identical `STATS` gauge head.
fn verify_follower(primary: &mut Client, primary_addr: &str, follower_addr: &str) {
    let primary_stats = match primary.send("STATS") {
        Ok(reply) => reply,
        Err(e) => {
            eprintln!("cdr-replay: io error on the primary's STATS: {e}");
            exit(1)
        }
    };
    let Some(target) = stat_u64(&primary_stats, "end=") else {
        eprintln!("cdr-replay: {primary_addr} serves no replication gauge: {primary_stats}");
        exit(1)
    };
    let mut follower = match Client::connect(follower_addr) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("cdr-replay: cannot connect to follower {follower_addr}: {e}");
            exit(1)
        }
    };
    let deadline = Instant::now() + CATCH_UP_TIMEOUT;
    let follower_stats = loop {
        let reply = match follower.send("STATS") {
            Ok(reply) => reply,
            Err(e) => {
                eprintln!("cdr-replay: io error on the follower's STATS: {e}");
                exit(1)
            }
        };
        if stat_u64(&reply, "end=").is_some_and(|end| end >= target) {
            break reply;
        }
        if Instant::now() >= deadline {
            eprintln!(
                "cdr-replay: follower stuck short of offset {target} after {}s: {reply}",
                CATCH_UP_TIMEOUT.as_secs()
            );
            exit(1)
        }
        std::thread::sleep(Duration::from_millis(25));
    };
    if stats_head(&primary_stats) != stats_head(&follower_stats) {
        eprintln!(
            "cdr-replay: STATS gauge heads diverge\n  primary:  {primary_stats}\n  follower: {follower_stats}"
        );
        exit(1)
    }
    let battery = replication_battery();
    for line in &battery {
        let from_primary = primary.send(line);
        let from_follower = follower.send(line);
        match (from_primary, from_follower) {
            (Ok(p), Ok(f)) if p == f => {}
            (Ok(p), Ok(f)) => {
                eprintln!(
                    "cdr-replay: battery line `{line}` diverges\n  primary:  {p}\n  follower: {f}"
                );
                exit(1)
            }
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("cdr-replay: io error on battery line `{line}`: {e}");
                exit(1)
            }
        }
    }
    println!(
        "cdr-replay: follower {follower_addr} byte-identical on {} battery lines at offset {target}",
        battery.len()
    );
}
