//! `cdr-replay`: replay the deterministic `serving_session` trace against
//! a running `cdr-serve` and verify every reply — the CI smoke client.
//!
//! Boot the server on the matching base database first:
//!
//! ```text
//! cdr-serve --addr 127.0.0.1:7878 --scenario serving --sensors 6 --ticks 3 &
//! cdr-replay --addr 127.0.0.1:7878 --sensors 6 --ticks 3 --ops 60 --shutdown
//! ```
//!
//! Exits 0 iff every trace line drew an `OK` reply (the trace is valid by
//! construction against the matching base).  `--shutdown` additionally
//! sends `SHUTDOWN` so the server drains and exits 0 itself.

use std::process::exit;

use cdr_server::client::Client;
use cdr_workloads::serving_session;

const USAGE: &str = "\
cdr-replay — serving-session smoke client

USAGE:
  cdr-replay --addr <host:port> [--sensors <n>] [--ticks <n>] [--ops <n>] [--shutdown]
";

fn fail(message: &str) -> ! {
    eprintln!("cdr-replay: {message}");
    eprintln!("{USAGE}");
    exit(2)
}

fn main() {
    let mut addr = String::new();
    let mut sensors = 6usize;
    let mut ticks = 3usize;
    let mut ops = 60usize;
    let mut shutdown = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0)
            }
            "--addr" => addr = value(),
            "--sensors" => sensors = parse(&value()),
            "--ticks" => ticks = parse(&value()),
            "--ops" => ops = parse(&value()),
            "--shutdown" => shutdown = true,
            other => fail(&format!("unknown flag `{other}`")),
        }
    }
    if addr.is_empty() {
        fail("--addr is required");
    }

    let (_db, _keys, trace) = serving_session(sensors, ticks, ops);
    let mut client = match Client::connect(&addr) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("cdr-replay: cannot connect to {addr}: {e}");
            exit(1)
        }
    };
    let mut ok = 0usize;
    for line in &trace {
        match client.send(line) {
            Ok(reply) if reply.starts_with("OK ") => ok += 1,
            Ok(reply) => {
                eprintln!("cdr-replay: line `{line}` drew `{reply}`");
                exit(1)
            }
            Err(e) => {
                eprintln!("cdr-replay: io error on `{line}`: {e}");
                exit(1)
            }
        }
    }
    println!(
        "cdr-replay: {ok}/{} trace lines OK against {addr}",
        trace.len()
    );
    if shutdown {
        match client.send("SHUTDOWN") {
            Ok(reply) if reply == "OK SHUTDOWN" => println!("cdr-replay: server shutting down"),
            Ok(reply) => {
                eprintln!("cdr-replay: SHUTDOWN drew `{reply}`");
                exit(1)
            }
            Err(e) => {
                eprintln!("cdr-replay: io error on SHUTDOWN: {e}");
                exit(1)
            }
        }
    }
}

fn parse(text: &str) -> usize {
    text.parse()
        .unwrap_or_else(|_| fail(&format!("`{text}` is not a number")))
}
