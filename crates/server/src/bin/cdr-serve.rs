//! `cdr-serve`: boot a repair-counting line-protocol server.
//!
//! ```text
//! cdr-serve --addr 127.0.0.1:7878 --scenario sensors --sensors 8 --ticks 4
//! ```
//!
//! The server answers the `cdr_core::wire` grammar plus the serving-layer
//! verbs (`BATCH … END`, `STATS`, `SLEEP`, `QUIT`, `SHUTDOWN`); see the
//! README's Serving section for a transcript.  It prints one
//! `listening on <addr>` line once ready and exits 0 after a clean
//! shutdown (a client's `SHUTDOWN` command or SIGTERM-less drain).

use std::process::exit;

use cdr_core::{RepairEngine, ShardedEngine};
use cdr_repairdb::{Database, KeySet, Schema};
use cdr_server::{FeedMode, ReplicatedBackend, Server, ServerConfig};
use cdr_workloads::{
    churn_base, employee_example, sensor_readings, serving_session, two_source_customers,
};

const USAGE: &str = "\
cdr-serve — line-protocol repair-counting server

USAGE:
  cdr-serve [OPTIONS]

SERVER OPTIONS:
  --addr <host:port>      bind address (default 127.0.0.1:7878; port 0 = ephemeral)
  --workers <n>           connection worker pool size (default 4)
  --backlog <n>           bounded accept backlog before SERVER BUSY (default 16)
  --batch-permits <n>     concurrent BATCH fan-outs before SERVER BUSY (default 2)
  --max-line-bytes <n>    longest accepted command line (default 65536)
  --max-batch <n>         most commands per BATCH (default 4096)
  --auto-compact <waste>  compact before a mutating command once tombstones
                          + retired block slots reach <waste> (or the
                          fact-id space is exhausted); off by default
  --shards <n>            hash-partition the engine across <n> shards with
                          scatter-gather queries (default 1 = unsharded;
                          replies are byte-identical either way)
  --admin-token <tok>     gate SHUTDOWN, PROMOTE, RETARGET and the chaos
                          verbs behind `AUTH <tok>` (default: open,
                          legacy behaviour)
  --rate-limit <n>        per-connection token bucket: at most <n> commands
                          per second (burst <n>); throttled lines answer
                          exactly `ERR BUSY RATE LIMITED` (off by default)
  --chaos                 enable the PANIC test verb (never in production)

REPLICATION OPTIONS (both exclude --shards > 1):
  --log-dir <dir>         serve as a replicated primary: append every
                          mutating verb to <dir>/log.bin before applying,
                          snapshot to <dir>/snapshot.bin at every
                          compaction; on restart, recover from the
                          snapshot plus the log suffix
  --follow <host:port>    serve as a follower: bootstrap from the
                          primary's snapshot, tail its record stream, and
                          answer reads byte-identically; mutations answer
                          `ERR READONLY …` until PROMOTE; RETARGET
                          repoints the tailer at a newly promoted primary
  --feed <mode>           follower feed encoding: auto (binary when the
                          upstream advertises caps=bin, the default),
                          bin (require the binary feed), or text (force
                          the hex line fallback)
  --fetch-batch <n>       records per tailer FETCH round trip
                          (default 64, capped at 256)

ENGINE OPTIONS:
  --parallelism <n>       BATCH query fan-out threads (default 1)
  --cache-cap <n>         plan-cache capacity (default 1024)
  --budget <n>            default exact-counting budget
  --fact-id-cap <n>       cap on cumulative inserts (memory guardrail)

DATA OPTIONS:
  --scenario <name>       employee | sensors | customers | serving | churn |
                          empty (default sensors)
  --sensors <n>           sensors for sensors/serving (default 8)
  --ticks <n>             ticks for sensors/serving (default 4)
  --dups <n>              duplicated readings per sensor (default 2)
  --customers <n>         customers for customers (default 50)
  --conflict-every <n>    conflict period for customers (default 4)
  --relation <R/arity/kw> add a relation to the empty scenario (repeatable)
";

fn fail(message: &str) -> ! {
    eprintln!("cdr-serve: {message}");
    eprintln!("{USAGE}");
    exit(2)
}

struct Options {
    config: ServerConfig,
    shards: usize,
    log_dir: Option<String>,
    follow: Option<String>,
    feed: FeedMode,
    fetch_batch: u64,
    parallelism: usize,
    cache_cap: Option<usize>,
    budget: Option<u64>,
    fact_id_cap: Option<u32>,
    scenario: String,
    sensors: usize,
    ticks: usize,
    dups: usize,
    customers: usize,
    conflict_every: usize,
    relations: Vec<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            config: ServerConfig::bind("127.0.0.1:7878"),
            shards: 1,
            log_dir: None,
            follow: None,
            feed: FeedMode::Auto,
            fetch_batch: 64,
            parallelism: 1,
            cache_cap: None,
            budget: None,
            fact_id_cap: None,
            scenario: "sensors".to_string(),
            sensors: 8,
            ticks: 4,
            dups: 2,
            customers: 50,
            conflict_every: 4,
            relations: Vec::new(),
        }
    }
}

fn parse_options() -> Options {
    let mut options = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| -> String {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a {what}")))
        };
        match flag.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0)
            }
            "--addr" => options.config.addr = value("host:port"),
            "--workers" => options.config.workers = parse(&flag, &value("count")),
            "--backlog" => options.config.backlog = parse(&flag, &value("count")),
            "--batch-permits" => options.config.batch_permits = parse(&flag, &value("count")),
            "--max-line-bytes" => options.config.max_line_bytes = parse(&flag, &value("bytes")),
            "--max-batch" => options.config.max_batch_commands = parse(&flag, &value("count")),
            "--auto-compact" => options.config.auto_compact = Some(parse(&flag, &value("waste"))),
            "--shards" => options.shards = parse(&flag, &value("count")),
            "--admin-token" => options.config.admin_token = Some(value("token")),
            "--rate-limit" => options.config.rate_limit = Some(parse(&flag, &value("count"))),
            "--log-dir" => options.log_dir = Some(value("dir")),
            "--follow" => options.follow = Some(value("host:port")),
            "--feed" => options.feed = parse(&flag, &value("auto|bin|text")),
            "--fetch-batch" => options.fetch_batch = parse(&flag, &value("count")),
            "--chaos" => options.config.chaos = true,
            "--parallelism" => options.parallelism = parse(&flag, &value("count")),
            "--cache-cap" => options.cache_cap = Some(parse(&flag, &value("count"))),
            "--budget" => options.budget = Some(parse(&flag, &value("count"))),
            "--fact-id-cap" => options.fact_id_cap = Some(parse(&flag, &value("count"))),
            "--scenario" => options.scenario = value("name"),
            "--sensors" => options.sensors = parse(&flag, &value("count")),
            "--ticks" => options.ticks = parse(&flag, &value("count")),
            "--dups" => options.dups = parse(&flag, &value("count")),
            "--customers" => options.customers = parse(&flag, &value("count")),
            "--conflict-every" => options.conflict_every = parse(&flag, &value("count")),
            "--relation" => options.relations.push(value("R/arity/keywidth")),
            other => fail(&format!("unknown flag `{other}`")),
        }
    }
    options
}

fn parse<T: std::str::FromStr>(flag: &str, text: &str) -> T {
    text.parse()
        .unwrap_or_else(|_| fail(&format!("{flag}: `{text}` is not a valid value")))
}

fn build_data(options: &Options) -> (Database, KeySet) {
    match options.scenario.as_str() {
        "employee" => employee_example(),
        "sensors" => sensor_readings(options.sensors, options.ticks, options.dups),
        "customers" => two_source_customers(options.customers, options.conflict_every),
        "serving" => {
            let (db, keys, _) = serving_session(options.sensors, options.ticks, 0);
            (db, keys)
        }
        "churn" => churn_base(),
        "empty" => {
            let mut schema = Schema::new();
            let mut keyed: Vec<(String, usize)> = Vec::new();
            for spec in &options.relations {
                let parts: Vec<&str> = spec.split('/').collect();
                let [name, arity, keywidth] = parts.as_slice() else {
                    fail(&format!("--relation `{spec}` is not R/arity/keywidth"));
                };
                let arity: usize = parse("--relation arity", arity);
                let keywidth: usize = parse("--relation keywidth", keywidth);
                schema
                    .add_relation(name, arity)
                    .unwrap_or_else(|e| fail(&format!("--relation `{spec}`: {e}")));
                if keywidth > 0 {
                    keyed.push((name.to_string(), keywidth));
                }
            }
            let mut builder = KeySet::builder(&schema);
            for (name, keywidth) in keyed {
                builder = builder
                    .key(&name, keywidth)
                    .unwrap_or_else(|e| fail(&format!("key on `{name}`: {e}")));
            }
            let keys = builder.build();
            (Database::new(schema), keys)
        }
        other => fail(&format!("unknown scenario `{other}`")),
    }
}

fn main() {
    let options = parse_options();
    if options.shards == 0 {
        fail("--shards must be at least 1");
    }
    if options.log_dir.is_some() && options.follow.is_some() {
        fail("--log-dir and --follow are mutually exclusive");
    }
    if (options.log_dir.is_some() || options.follow.is_some()) && options.shards > 1 {
        fail("replication (--log-dir / --follow) requires --shards 1");
    }

    if let Some(upstream) = options.follow.clone() {
        // A follower's state comes from the primary's snapshot: the
        // scenario flags are ignored, only the engine tuning applies.
        let tune = {
            let parallelism = options.parallelism;
            let cache_cap = options.cache_cap;
            let budget = options.budget;
            move |mut engine: RepairEngine| {
                engine = engine.with_parallelism(parallelism);
                if let Some(cap) = cache_cap {
                    engine = engine.with_plan_cache_capacity(cap);
                }
                if let Some(budget) = budget {
                    engine = engine.with_default_budget(budget);
                }
                engine
            }
        };
        let backend = match ReplicatedBackend::follower_with(
            &upstream,
            options.config.auto_compact,
            options.feed,
            options.fetch_batch,
            tune,
        ) {
            Ok(backend) => backend,
            Err(e) => {
                eprintln!("cdr-serve: cannot bootstrap from {upstream}: {e}");
                exit(1)
            }
        };
        eprintln!(
            "cdr-serve: follower of {upstream}, {} workers",
            options.config.workers
        );
        serve(
            Server::start_replicated(backend, options.config.clone()),
            &options,
        );
        return;
    }

    let (mut db, keys) = build_data(&options);
    if let Some(cap) = options.fact_id_cap {
        db = db.with_fact_id_capacity(cap);
    }
    let mut engine = RepairEngine::new(db, keys).with_parallelism(options.parallelism);
    if let Some(cap) = options.cache_cap {
        engine = engine.with_plan_cache_capacity(cap);
    }
    if let Some(budget) = options.budget {
        engine = engine.with_default_budget(budget);
    }
    eprintln!(
        "cdr-serve: scenario `{}`, {} facts, {} shards, {} workers, {} batch permits",
        options.scenario,
        engine.database().len(),
        options.shards,
        options.config.workers,
        options.config.batch_permits
    );
    let started = if let Some(dir) = options.log_dir.clone() {
        match ReplicatedBackend::primary(engine, std::path::Path::new(&dir)) {
            Ok(backend) => Server::start_replicated(backend, options.config.clone()),
            Err(e) => {
                eprintln!("cdr-serve: cannot open the command log in {dir}: {e}");
                exit(1)
            }
        }
    } else if options.shards > 1 {
        Server::start_sharded(
            ShardedEngine::from_engine(engine, options.shards),
            options.config.clone(),
        )
    } else {
        Server::start(engine, options.config.clone())
    };
    serve(started, &options);
}

fn serve(started: std::io::Result<Server>, options: &Options) {
    let server = match started {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cdr-serve: cannot bind {}: {e}", options.config.addr);
            exit(1)
        }
    };
    println!("cdr-serve listening on {}", server.addr());
    let stats = server.join();
    println!(
        "cdr-serve clean shutdown: {} connections, {} commands, {} busy rejections, {} recovered panics",
        stats.connections, stats.commands, stats.busy_rejections, stats.recovered_panics
    );
}
