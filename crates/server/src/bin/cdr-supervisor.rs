//! `cdr-supervisor` — watch a primary, auto-promote a follower on
//! failure, fence the deposed primary.
//!
//! ```text
//! cdr-supervisor --primary 127.0.0.1:7800 \
//!     --follower 127.0.0.1:7801 --follower 127.0.0.1:7802 \
//!     --interval-ms 50 --misses 3 --auth sekrit --status 127.0.0.1:7900
//! ```
//!
//! Prints `STATUS <addr>` once the status socket is bound, then runs
//! until killed.  Any line sent to the status socket answers the
//! supervisor's state:
//!
//! ```text
//! OK SUPERVISOR state=watching primary=127.0.0.1:7800 epoch=0 \
//!     probes=12 misses=0 promotions=0 last_acked=9
//! ```

use std::io::Write;
use std::net::SocketAddr;
use std::process::exit;
use std::time::Duration;

use cdr_server::{Supervisor, SupervisorConfig};

const USAGE: &str = "usage: cdr-supervisor --primary <host:port> --follower <host:port> \
    [--follower <host:port> ...] [--interval-ms <n>] [--misses <k>] \
    [--connect-timeout-ms <n>] [--read-timeout-ms <n>] [--catch-up-ms <n>] \
    [--auth <token>] [--seed <n>] [--status <host:port>]";

fn fail(message: &str) -> ! {
    eprintln!("cdr-supervisor: {message}");
    eprintln!("{USAGE}");
    exit(2)
}

fn parse_addr(flag: &str, value: &str) -> SocketAddr {
    value
        .parse()
        .unwrap_or_else(|e| fail(&format!("{flag} `{value}`: {e}")))
}

fn main() {
    let mut primary: Option<SocketAddr> = None;
    let mut followers: Vec<SocketAddr> = Vec::new();
    let mut interval = Duration::from_millis(50);
    let mut misses: u32 = 3;
    let mut connect_timeout = Duration::from_millis(250);
    let mut read_timeout = Duration::from_millis(250);
    let mut catch_up = Duration::from_secs(5);
    let mut auth: Option<String> = None;
    let mut seed: u64 = 0x5afe_cafe;
    let mut status_addr = "127.0.0.1:0".to_string();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{name} wants a value")))
        };
        let parse_ms = |flag: &str, raw: String| -> Duration {
            Duration::from_millis(
                raw.parse()
                    .unwrap_or_else(|_| fail(&format!("{flag} wants milliseconds"))),
            )
        };
        match flag.as_str() {
            "--primary" => primary = Some(parse_addr("--primary", &value("--primary"))),
            "--follower" => followers.push(parse_addr("--follower", &value("--follower"))),
            "--interval-ms" => interval = parse_ms("--interval-ms", value("--interval-ms")),
            "--misses" => {
                misses = value("--misses")
                    .parse()
                    .unwrap_or_else(|_| fail("--misses wants a count"));
            }
            "--connect-timeout-ms" => {
                connect_timeout = parse_ms("--connect-timeout-ms", value("--connect-timeout-ms"));
            }
            "--read-timeout-ms" => {
                read_timeout = parse_ms("--read-timeout-ms", value("--read-timeout-ms"));
            }
            "--catch-up-ms" => catch_up = parse_ms("--catch-up-ms", value("--catch-up-ms")),
            "--auth" => auth = Some(value("--auth")),
            "--seed" => {
                seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| fail("--seed wants a u64"));
            }
            "--status" => status_addr = value("--status"),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown flag `{other}`")),
        }
    }
    let Some(primary) = primary else {
        fail("--primary is required");
    };
    if followers.is_empty() {
        fail("at least one --follower is required");
    }

    let mut config = SupervisorConfig::watch(primary, followers);
    config.interval = interval;
    config.misses_to_fail = misses.max(1);
    config.connect_timeout = connect_timeout;
    config.read_timeout = read_timeout;
    config.catch_up = catch_up;
    config.auth = auth;
    config.seed = seed;
    config.status_addr = status_addr;

    let supervisor = match Supervisor::start(config) {
        Ok(supervisor) => supervisor,
        Err(e) => fail(&format!("cannot start: {e}")),
    };
    println!("STATUS {}", supervisor.status_addr());
    let _ = std::io::stdout().flush();
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
