//! Primary/follower replication over the line protocol.
//!
//! A [`ReplicatedBackend`] wraps the classic single-engine backend with a
//! replication sidecar: the **primary** appends every state-changing verb
//! to an in-memory record list (and, with `--log-dir`, a framed on-disk
//! log) *before* applying it, snapshots at every compaction point and
//! truncates the disk log there; a **follower** bootstraps from the
//! primary's snapshot over the ordinary text protocol (`REPL SNAPSHOT`),
//! then tails the record stream (`REPL FETCH`), applying each record
//! through the same replay path cold-start recovery uses.  Because wire
//! replies are deterministic functions of engine state and command order,
//! a caught-up follower answers every read — including seeded estimates
//! and `gen=`/`cached=` provenance — byte-identically to the primary.
//!
//! The protocol is pull-based and rides the existing line protocol:
//!
//! ```text
//! REPL HELLO                 -> OK REPL HELLO epoch=E base=B end=N snap=S … caps=bin
//! REPL SNAPSHOT              -> OK REPL SNAPSHOT epoch=E offset=S bytes=B chunks=K
//!                               REPL CHUNK <hex>          (x K)
//! REPL SNAPSHOT BIN          -> OK REPL SNAPSHOT BIN epoch=E offset=S bytes=B chunks=K
//!                               [len ‖ crc32 ‖ payload]   (x K, raw bytes)
//! REPL FETCH <from> <max>    -> OK REPL RECORDS n=N next=F end=E
//!                               REPL RECORD <hex(crc32||payload)>   (x N)
//! REPL FETCH <from> <max> BIN-> OK REPL BATCH <len> n=N next=F end=E
//!                               <len raw bytes>           (one batch frame)
//! PROMOTE [FORCE]            -> OK PROMOTED epoch=E end=N   (follower, behind AUTH)
//! ```
//!
//! The binary forms are negotiated: `REPL HELLO` advertises `caps=bin`,
//! and a follower started with the default `--feed auto` uses them when
//! the upstream does — the textual hex forms stay as the compatibility
//! fallback (`--feed text` forces them).  A binary batch is strict
//! all-or-nothing, mirroring `BULK`: any defect — flipped byte, bad
//! CRC, truncation, an oversize header — rejects the whole frame with
//! one `ERR REPL FRAME <reason>` and zero records applied, and the
//! tailer degrades to its usual drop-the-connection-and-retry backoff.
//! The tailer also double-buffers the feed: while one batch applies
//! under the engine write guard, the next `FETCH` is already in flight,
//! so catch-up throughput is bounded by apply cost, not RTT × records.
//!
//! Mutating verbs on a follower answer `ERR READONLY …`; `PROMOTE` flips
//! the role and bumps the epoch without touching the engine, so a
//! promoted follower keeps serving the exact state it replicated.
//! `PROMOTE FORCE` promotes even a behind follower — the operator's (or
//! supervisor's) explicit acceptance that the acknowledged-but-unfetched
//! suffix is lost — and reports the loss as `dropped=<n>`.

use std::path::{Path, PathBuf};
use std::sync::{Mutex, RwLock};

use cdr_core::replog::{
    apply_record, chunk_header, decode_record_batch, encode_record_batch, field, frame, from_hex,
    hello_request, open_log, parse_compact_token, read_snapshot_file, survivors_of, to_hex,
    unwrap_checksummed, verify_chunk, wrap_checksummed, write_snapshot_file, LogOp, LogRecord,
    ReplogError, LOG_FILE,
};
use cdr_core::{CompactionOutcome, RepairEngine};
use cdr_num::BigNat;
use cdr_repairdb::{Mutation, Snapshot};

use crate::backend::apply_single;
use crate::client::Client;
use crate::reply;

/// Bytes of snapshot per `REPL CHUNK` line (16 KiB of hex on the wire,
/// comfortably under the default line cap).
const SNAPSHOT_CHUNK_BYTES: usize = 8192;

/// Bytes of snapshot per binary chunk (`REPL SNAPSHOT BIN`).  Raw bytes
/// are not line-capped, so binary chunks are 8× the hex ones — fewer
/// framing round-trips on the bootstrap path.
const SNAPSHOT_BIN_CHUNK_BYTES: usize = 64 * 1024;

/// Most records one `REPL FETCH` answers, whatever the client asked for.
const MAX_FETCH_RECORDS: u64 = 256;

/// How many records the tailer requests per fetch when no
/// `--fetch-batch` override is given.
const DEFAULT_FETCH_RECORDS: u64 = 64;

/// Hard cap a tailer accepts for an `OK REPL BATCH <len>` header before
/// allocating anything: an upstream advertising more is answered with
/// one `ERR REPL FRAME` locally and dropped, never trusted.
const MAX_BATCH_FRAME_BYTES: u64 = 64 * 1024 * 1024;

/// Hard cap on one binary snapshot-chunk frame, same story.
const MAX_CHUNK_FRAME_BYTES: usize = 16 * 1024 * 1024;

fn rlock<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn wlock<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// `key=value` extraction from a reply header (`field_u64(line, "end=")`).
pub(crate) use cdr_core::replog::field_u64;

/// Renders a threshold for the `COMPACT MISMATCH` refusal (`16` / `off`).
fn threshold_value(threshold: Option<u64>) -> String {
    match threshold {
        Some(t) => t.to_string(),
        None => "off".to_string(),
    }
}

/// The usage refusal for a malformed `REPL HELLO` announcement.
fn hello_usage() -> String {
    "ERR REPL usage: REPL HELLO [epoch=<e>] [compact=<waste>|compact=off]".to_string()
}

/// Which side of the replication pair this backend currently is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Accepts mutations, appends-then-applies, serves the log.
    Primary,
    /// Tails a primary, serves reads, refuses mutations.
    Follower,
}

impl Role {
    fn as_str(self) -> &'static str {
        match self {
            Role::Primary => "primary",
            Role::Follower => "follower",
        }
    }
}

/// How a follower's feed travels: the negotiated default, or forced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FeedMode {
    /// Binary when the upstream advertises `caps=bin`, textual otherwise.
    Auto,
    /// Binary batches and snapshot chunks, refusing an upstream that
    /// does not advertise the capability.
    Bin,
    /// The textual hex fallback, whatever the upstream advertises.
    Text,
}

impl std::str::FromStr for FeedMode {
    type Err = String;

    fn from_str(text: &str) -> Result<FeedMode, String> {
        match text {
            "auto" => Ok(FeedMode::Auto),
            "bin" => Ok(FeedMode::Bin),
            "text" => Ok(FeedMode::Text),
            other => Err(format!("`{other}` is not auto, bin or text")),
        }
    }
}

/// One `REPL …` reply: the header/continuation lines, plus the raw
/// binary bytes (a record batch or snapshot chunks) that follow the
/// last line on the wire.  `raw` is empty for every textual form.
pub struct ReplReply {
    /// The reply lines, in order.
    pub lines: Vec<String>,
    /// Raw bytes streamed after the last line (binary forms only).
    pub raw: Vec<u8>,
}

impl ReplReply {
    /// A lines-only reply (the textual forms and every error).
    pub fn text(lines: Vec<String>) -> ReplReply {
        ReplReply {
            lines,
            raw: Vec::new(),
        }
    }
}

/// Renders a binary-feed defect exactly as the follower reports it:
/// one `ERR REPL FRAME <reason>` per rejected batch, zero records
/// applied — the strict all-or-nothing contract the `BULK` frame set.
pub fn feed_frame_error(reason: &str) -> String {
    format!("ERR REPL FRAME {reason}")
}

/// Does a `REPL HELLO` reply advertise the binary feed capability?
fn hello_caps_bin(hello: &str) -> bool {
    field(hello, "caps=").is_some_and(|caps| caps.split(',').any(|cap| cap == "bin"))
}

/// The `REPL FETCH` request line for either feed.
fn fetch_request(from: u64, max: u64, bin: bool) -> String {
    if bin {
        format!("REPL FETCH {from} {max} BIN")
    } else {
        format!("REPL FETCH {from} {max}")
    }
}

/// What one tailer iteration achieved.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum TailOutcome {
    /// Records were applied (or the snapshot was re-bootstrapped): fetch
    /// again immediately.
    Progress,
    /// Caught up (or frozen on divergence): sleep a poll tick before
    /// retrying.
    Idle,
    /// The upstream is unreachable or misbehaving: back off with capped
    /// exponential delay (plus seeded jitter) before retrying, and count
    /// the retry in the `repl retries=` gauge.
    Failed,
    /// This node is now a primary: the tailer is done for good.
    Promoted,
}

/// The tailer's warm upstream connection, carried between iterations.
struct TailConn {
    client: Client,
    /// The cursor of a `FETCH` already sent whose reply has not been
    /// read yet — the double-buffering half of the catch-up fast path.
    pending: Option<u64>,
    /// Whether this connection negotiated the binary feed.
    bin: bool,
    /// The [`ReplState::tail_gen`] this connection was dialled under.  A
    /// `RETARGET` or feed swap bumps the generation, so an iteration
    /// that raced it can neither reuse nor re-store the stale socket.
    gen: u64,
}

/// The replication sidecar state, guarded by one mutex.  Lock order is
/// engine write guard *then* this — never the reverse.
struct ReplState {
    role: Role,
    epoch: u64,
    /// The encoded snapshot served to bootstrapping followers.
    snapshot_bytes: Vec<u8>,
    /// The log offset the snapshot captures.
    snapshot_offset: u64,
    /// The offset of `records[0]`: offsets below this are only reachable
    /// through the snapshot.
    mem_base: u64,
    /// Encoded record payloads from `mem_base` to the end of the log.
    records: Vec<Vec<u8>>,
    /// The on-disk log (primaries started with `--log-dir`).
    log: Option<cdr_core::LogWriter>,
    /// The `--log-dir`, for snapshot rewrites.
    dir: Option<PathBuf>,
    /// The primary this follower tails.
    upstream: Option<String>,
    /// Records replayed from disk at boot — the recovery gauge proving a
    /// cold restart replayed only the post-snapshot suffix.
    replayed: u64,
    /// The tailer's warm upstream connection between iterations, with
    /// its negotiated feed and any in-flight prefetch.
    tail: Option<TailConn>,
    /// Bumped whenever the upstream or feed preference changes: a
    /// [`TailConn`] from an older generation is dead on arrival, even if
    /// a tail iteration holding it raced the change.
    tail_gen: u64,
    /// The epoch of the newest primary announced over `REPL HELLO`, when
    /// it is strictly newer than ours: this node was deposed, and every
    /// mutating verb answers `ERR FENCED epoch=<e>` until it is rebuilt.
    fenced: Option<u64>,
    /// Upstream fetch/connect failures the tailer has retried — the
    /// `repl retries=` gauge backing the backoff tests.
    retries: u64,
    /// The upstream's log end as last observed (bootstrap HELLO, then
    /// every FETCH header): `PROMOTE` refuses while `end()` lags this,
    /// closing the promote-while-behind race.
    upstream_end: u64,
    /// This node's auto-compaction threshold, announced (and checked)
    /// in the HELLO handshake: mismatched thresholds diverge replicas
    /// after promotion, so they are refused at connect time.
    auto_compact: Option<u64>,
    /// The feed this follower prefers (`--feed`); `Auto` negotiates.
    feed: FeedMode,
    /// Whether the active (or last negotiated) feed is binary — the
    /// `repl feed=` gauge.
    feed_bin: bool,
    /// Cumulative payload bytes received over the replication feed
    /// (snapshot bootstraps plus record fetches) — the `repl bytes=`
    /// gauge the wire-savings acceptance check reads.
    feed_bytes: u64,
    /// Records the tailer requests per fetch (`--fetch-batch`).
    fetch_batch: u64,
}

impl ReplState {
    /// One past the last record offset.
    fn end(&self) -> u64 {
        self.mem_base + self.records.len() as u64
    }

    /// Appends one operation at the current end: encode, write to the
    /// disk log (if any), retain in memory.  Disk errors are reported but
    /// not fatal — the in-memory stream (and therefore every follower)
    /// stays exact; only cold-restart durability degrades.
    fn append(&mut self, op: LogOp) {
        let record = LogRecord {
            epoch: self.epoch,
            offset: self.end(),
            op,
        };
        let payload = record.encode();
        if let Some(log) = &mut self.log {
            if let Err(e) = log.append(&payload) {
                eprintln!("cdr-server: command log append failed: {e}");
            }
        }
        self.records.push(payload);
    }

    /// The bookkeeping after the engine compacted (policy, explicit verb,
    /// or batch path): log the compaction record, then snapshot the dense
    /// post-compaction state and truncate the disk log behind it.
    fn record_compaction(&mut self, engine: &RepairEngine, outcome: &CompactionOutcome) {
        self.append(LogOp::Compact {
            fact_ids_before: outcome.report.fact_ids_before,
            survivors: survivors_of(&outcome.report),
        });
        let snapshot = Snapshot {
            epoch: self.epoch,
            offset: self.end(),
            generation: engine.generation(),
            rel_generations: engine.rel_generations().to_vec(),
            db: engine.database().clone(),
            keys: engine.keys().clone(),
        };
        match snapshot.encode() {
            Ok(bytes) => {
                self.snapshot_bytes = bytes;
                self.snapshot_offset = snapshot.offset;
                if let Some(dir) = &self.dir {
                    if let Err(e) = write_snapshot_file(dir, &snapshot) {
                        eprintln!("cdr-server: snapshot write failed: {e}");
                    } else if let Some(log) = &mut self.log {
                        if let Err(e) = log.truncate() {
                            eprintln!("cdr-server: log truncation failed: {e}");
                        }
                    }
                }
            }
            // Unreachable post-compaction (the database is dense); keep
            // serving the previous snapshot rather than dying.
            Err(e) => eprintln!("cdr-server: snapshot encode failed: {e}"),
        }
    }
}

/// A replicated single-engine backend: the engine behind its usual
/// read/write lock, plus the replication sidecar.
pub struct ReplicatedBackend {
    engine: RwLock<RepairEngine>,
    repl: Mutex<ReplState>,
    /// Re-applies the serving tuning (budget, parallelism, cache
    /// capacity) to an engine rebuilt from a snapshot.
    tune: Box<dyn Fn(RepairEngine) -> RepairEngine + Send + Sync>,
}

impl ReplicatedBackend {
    /// Boots a primary over `dir`.
    ///
    /// With a snapshot present, recovery ignores `seed`'s data and
    /// rebuilds the engine from the snapshot plus the valid suffix of the
    /// on-disk log (the torn tail a `SIGKILL` leaves is trimmed, never
    /// replayed); `seed` still donates its tuning.  On first boot the
    /// seed *is* the state: its snapshot is written at offset 0 — which
    /// requires the seed database to be compacted (freshly built data
    /// always is).
    pub fn primary(seed: RepairEngine, dir: &Path) -> Result<ReplicatedBackend, ReplogError> {
        std::fs::create_dir_all(dir)?;
        let budget = seed.default_budget();
        let parallelism = seed.parallelism();
        let cache_capacity = seed.cache_stats().capacity as usize;
        let tune = move |engine: RepairEngine| {
            engine
                .with_default_budget(budget)
                .with_parallelism(parallelism)
                .with_plan_cache_capacity(cache_capacity)
        };
        let log_path = dir.join(LOG_FILE);
        let (engine, state) = match read_snapshot_file(dir)? {
            Some(snapshot) => {
                let snapshot_bytes = snapshot.encode()?;
                let Snapshot {
                    epoch,
                    offset,
                    generation,
                    rel_generations,
                    db,
                    keys,
                } = snapshot;
                let mut engine = tune(RepairEngine::restore(db, keys, generation, rel_generations));
                let (log, payloads) = open_log(&log_path)?;
                let schema = engine.database().schema().clone();
                let mut epoch = epoch;
                for (expected, payload) in (offset..).zip(payloads.iter()) {
                    let record = LogRecord::decode(payload, &schema)?;
                    if record.offset != expected {
                        return Err(ReplogError::Diverged(format!(
                            "log record at offset {} where {} was expected",
                            record.offset, expected
                        )));
                    }
                    apply_record(&mut engine, &record)?;
                    epoch = epoch.max(record.epoch);
                }
                let replayed = payloads.len() as u64;
                let state = ReplState {
                    role: Role::Primary,
                    epoch,
                    snapshot_bytes,
                    snapshot_offset: offset,
                    mem_base: offset,
                    records: payloads,
                    log: Some(log),
                    dir: Some(dir.to_path_buf()),
                    upstream: None,
                    replayed,
                    tail: None,
                    tail_gen: 0,
                    fenced: None,
                    retries: 0,
                    upstream_end: 0,
                    auto_compact: None,
                    feed: FeedMode::Auto,
                    feed_bin: false,
                    feed_bytes: 0,
                    fetch_batch: DEFAULT_FETCH_RECORDS,
                };
                (engine, state)
            }
            None => {
                let engine = seed;
                let snapshot = Snapshot {
                    epoch: 0,
                    offset: 0,
                    generation: engine.generation(),
                    rel_generations: engine.rel_generations().to_vec(),
                    db: engine.database().clone(),
                    keys: engine.keys().clone(),
                };
                write_snapshot_file(dir, &snapshot)?;
                let snapshot_bytes = snapshot.encode()?;
                let (mut log, stale) = open_log(&log_path)?;
                if !stale.is_empty() {
                    // A log with no snapshot beside it describes nothing
                    // recoverable; start clean.
                    log.truncate()?;
                }
                let state = ReplState {
                    role: Role::Primary,
                    epoch: 0,
                    snapshot_bytes,
                    snapshot_offset: 0,
                    mem_base: 0,
                    records: Vec::new(),
                    log: Some(log),
                    dir: Some(dir.to_path_buf()),
                    upstream: None,
                    replayed: 0,
                    tail: None,
                    tail_gen: 0,
                    fenced: None,
                    retries: 0,
                    upstream_end: 0,
                    auto_compact: None,
                    feed: FeedMode::Auto,
                    feed_bin: false,
                    feed_bytes: 0,
                    fetch_batch: DEFAULT_FETCH_RECORDS,
                };
                (engine, state)
            }
        };
        Ok(ReplicatedBackend {
            engine: RwLock::new(engine),
            repl: Mutex::new(state),
            tune: Box::new(tune),
        })
    }

    /// Bootstraps a follower: exchanges the `REPL HELLO` handshake
    /// (announcing this node's auto-compaction threshold, so a
    /// divergence-inducing mismatch is refused right here instead of
    /// surfacing after a promotion), fetches the primary's snapshot over
    /// the line protocol, restores the engine from it (re-applying the
    /// serving tuning via `tune`), and leaves the connection warm for the
    /// tailer.
    ///
    /// `auto_compact` must be the threshold this node will serve with —
    /// the same value handed to
    /// [`ServerConfig::auto_compact`](crate::ServerConfig::auto_compact).
    pub fn follower(
        upstream: &str,
        auto_compact: Option<u64>,
        tune: impl Fn(RepairEngine) -> RepairEngine + Send + Sync + 'static,
    ) -> Result<ReplicatedBackend, ReplogError> {
        ReplicatedBackend::follower_with(
            upstream,
            auto_compact,
            FeedMode::Auto,
            DEFAULT_FETCH_RECORDS,
            tune,
        )
    }

    /// [`follower`](ReplicatedBackend::follower) with the feed tuned:
    /// `feed` picks the wire encoding (binary batches when the upstream
    /// advertises `caps=bin` under `Auto`, forced either way otherwise)
    /// and `fetch_batch` the records requested per tail fetch.
    pub fn follower_with(
        upstream: &str,
        auto_compact: Option<u64>,
        feed: FeedMode,
        fetch_batch: u64,
        tune: impl Fn(RepairEngine) -> RepairEngine + Send + Sync + 'static,
    ) -> Result<ReplicatedBackend, ReplogError> {
        let mut client = Client::connect(upstream)?;
        let hello = client.send(&hello_request(0, Some(auto_compact)))?;
        if !hello.starts_with("OK REPL HELLO") {
            return Err(ReplogError::Diverged(format!(
                "upstream {upstream} refused the handshake: {hello}"
            )));
        }
        let bin = match feed {
            FeedMode::Text => false,
            FeedMode::Auto => hello_caps_bin(&hello),
            FeedMode::Bin => {
                if !hello_caps_bin(&hello) {
                    return Err(ReplogError::Diverged(format!(
                        "upstream {upstream} does not advertise caps=bin; \
                         use --feed auto or --feed text to tail it"
                    )));
                }
                true
            }
        };
        let upstream_end = field_u64(&hello, "end=").unwrap_or(0);
        let (snapshot_bytes, snapshot, wire) = if bin {
            fetch_snapshot_bin(&mut client)?
        } else {
            fetch_snapshot(&mut client)?
        };
        let Snapshot {
            epoch,
            offset,
            generation,
            rel_generations,
            db,
            keys,
        } = snapshot;
        let engine = tune(RepairEngine::restore(db, keys, generation, rel_generations));
        let state = ReplState {
            role: Role::Follower,
            epoch,
            snapshot_bytes,
            snapshot_offset: offset,
            mem_base: offset,
            records: Vec::new(),
            log: None,
            dir: None,
            upstream: Some(upstream.to_string()),
            replayed: 0,
            tail: Some(TailConn {
                client,
                pending: None,
                bin,
                gen: 0,
            }),
            tail_gen: 0,
            fenced: None,
            retries: 0,
            upstream_end,
            auto_compact,
            feed,
            feed_bin: bin,
            feed_bytes: wire,
            fetch_batch: fetch_batch.clamp(1, MAX_FETCH_RECORDS),
        };
        Ok(ReplicatedBackend {
            engine: RwLock::new(engine),
            repl: Mutex::new(state),
            tune: Box::new(tune),
        })
    }

    /// The node's current role.
    pub fn role(&self) -> Role {
        lock(&self.repl).role
    }

    /// Installs the auto-compaction threshold this node serves with —
    /// the value the HELLO handshake announces and checks.  The server
    /// sets this from its config at start-up.
    pub fn set_auto_compact(&self, threshold: Option<u64>) {
        lock(&self.repl).auto_compact = threshold;
    }

    /// Swaps the preferred feed encoding.  The warm tail connection is
    /// dropped so the next iteration re-handshakes and negotiates the
    /// new preference.  Lets an operator — or a mixed-mode test —
    /// bootstrap over one encoding and tail over the other.
    pub fn set_feed(&self, feed: FeedMode) {
        let mut repl = lock(&self.repl);
        repl.feed = feed;
        repl.tail = None;
        repl.tail_gen += 1;
    }

    /// Shared query access to the engine.
    pub fn read<R>(&self, f: impl FnOnce(&RepairEngine) -> R) -> R {
        f(&rlock(&self.engine))
    }

    /// A schema snapshot for lock-free command parsing.
    pub fn parse_database(&self) -> std::sync::Arc<cdr_repairdb::Database> {
        rlock(&self.engine).database_arc()
    }

    /// Applies one mutation on a primary (append-then-apply); answers
    /// `ERR READONLY` on a follower.
    pub fn mutate(&self, mutation: Mutation, auto_compact: Option<u64>) -> String {
        let mut engine = wlock(&self.engine);
        let mut repl = lock(&self.repl);
        let verb = match mutation {
            Mutation::Insert(_) => "INSERT",
            Mutation::Delete(_) => "DELETE",
        };
        if repl.role == Role::Follower {
            return reply::readonly(verb);
        }
        if let Some(epoch) = repl.fenced {
            return reply::fenced(verb, epoch);
        }
        if let Some(threshold) = auto_compact {
            if let Some(outcome) = engine.maybe_compact(threshold) {
                repl.record_compaction(&engine, &outcome);
            }
        }
        repl.append(LogOp::Mutation(mutation.clone()));
        apply_single(&mut engine, mutation)
    }

    /// Applies a mutation batch atomically on a primary; `ERR READONLY`
    /// on a follower.  The batch is logged before it is applied — replay
    /// re-runs it through the same atomic path, so a rejected batch
    /// reproduces its rejection (and its untouched engine) exactly.
    pub fn mutate_batch(&self, mutations: Vec<Mutation>, auto_compact: Option<u64>) -> String {
        let mut engine = wlock(&self.engine);
        let mut repl = lock(&self.repl);
        if repl.role == Role::Follower {
            return reply::readonly("BATCH");
        }
        if let Some(epoch) = repl.fenced {
            return reply::fenced("BATCH", epoch);
        }
        if let Some(threshold) = auto_compact {
            if let Some(outcome) = engine.maybe_compact(threshold) {
                repl.record_compaction(&engine, &outcome);
            }
        }
        repl.append(LogOp::Batch(mutations.clone()));
        match engine.apply_batch(mutations) {
            Ok(report) => reply::render_batch_mutation(&report, engine.total_repairs()),
            Err(e) => reply::render_count_error(&e),
        }
    }

    /// Compacts a primary (logging the translation table, snapshotting,
    /// truncating the disk log); `ERR READONLY` on a follower.
    pub fn compact(&self) -> Result<(CompactionOutcome, BigNat), String> {
        let mut engine = wlock(&self.engine);
        let mut repl = lock(&self.repl);
        if repl.role == Role::Follower {
            return Err(reply::readonly("COMPACT"));
        }
        if let Some(epoch) = repl.fenced {
            return Err(reply::fenced("COMPACT", epoch));
        }
        let outcome = engine.compact();
        repl.record_compaction(&engine, &outcome);
        let total = engine.total_repairs().clone();
        Ok((outcome, total))
    }

    /// The `STATS` reply with the replication gauge tail.  Followers add
    /// the feed gauges (`feed=bin|text bytes=<n>`): the active wire
    /// encoding and the cumulative payload bytes it has cost.
    pub fn stats(&self) -> String {
        let head = self.read(reply::render_stats);
        let repl = lock(&self.repl);
        let feed = match repl.role {
            Role::Follower => format!(
                " feed={} bytes={}",
                if repl.feed_bin { "bin" } else { "text" },
                repl.feed_bytes
            ),
            Role::Primary => String::new(),
        };
        let fenced = match repl.fenced {
            Some(epoch) => format!(" fenced={epoch}"),
            None => String::new(),
        };
        format!(
            "{head} | repl role={} epoch={} base={} end={} replayed={} retries={}{feed}{fenced}",
            repl.role.as_str(),
            repl.epoch,
            repl.mem_base,
            repl.end(),
            repl.replayed,
            repl.retries
        )
    }

    /// Serves one `REPL …` line.  `admin_ok` says whether this session
    /// may exercise admin-grade side effects: the fencing bite of an
    /// epoch-announcing `HELLO` is as destructive as `PROMOTE` (it stops
    /// all writes on a primary, monotonically), so on a server that
    /// gates admin verbs it requires `AUTH` too.  The bare probe form
    /// and non-fencing announcements stay open.
    pub fn repl(&self, line: &str, admin_ok: bool) -> ReplReply {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let sub = tokens.get(1).copied().unwrap_or("").to_ascii_uppercase();
        let mut repl = lock(&self.repl);
        match sub.as_str() {
            "HELLO" => ReplReply::text({
                // `REPL HELLO [epoch=<e>] [compact=<t>|compact=off]` —
                // the bare form is the legacy probe; the announcements
                // drive the fencing and threshold-mismatch handshakes.
                let mut announced_epoch: Option<u64> = None;
                let mut announced_compact: Option<Option<u64>> = None;
                for token in &tokens[2..] {
                    if let Some(value) = token.strip_prefix("epoch=") {
                        match value.parse::<u64>() {
                            Ok(epoch) => announced_epoch = Some(epoch),
                            Err(_) => return ReplReply::text(vec![hello_usage()]),
                        }
                    } else if let Some(value) = token.strip_prefix("compact=") {
                        match parse_compact_token(value) {
                            Some(threshold) => announced_compact = Some(threshold),
                            None => return ReplReply::text(vec![hello_usage()]),
                        }
                    } else {
                        return ReplReply::text(vec![hello_usage()]);
                    }
                }
                // A mismatched auto-compaction threshold diverges the
                // replicas after a promotion (DELETE ids depend on the
                // compaction points); refuse it before any state changes.
                if let Some(theirs) = announced_compact {
                    if theirs != repl.auto_compact {
                        return ReplReply::text(vec![format!(
                            "ERR REPL COMPACT MISMATCH ours={} yours={}",
                            threshold_value(repl.auto_compact),
                            threshold_value(theirs)
                        )]);
                    }
                }
                // Epoch fencing: a strictly newer epoch announced to a
                // primary means a successor was promoted elsewhere — this
                // node is deposed and must refuse writes from now on.
                // The fence is monotone with no unfence path, so an
                // unauthenticated session must not be able to plant it.
                if let (Some(theirs), Role::Primary) = (announced_epoch, repl.role) {
                    if theirs > repl.epoch {
                        if !admin_ok {
                            return ReplReply::text(vec![format!(
                                "ERR DENIED REPL HELLO epoch={theirs} would fence this \
                                 primary and requires AUTH on this server"
                            )]);
                        }
                        let already = repl.fenced.map_or(0, |epoch| epoch);
                        if theirs > already {
                            eprintln!(
                                "cdr-server: fenced at epoch {theirs} (ours {}); \
                                 refusing writes",
                                repl.epoch
                            );
                            repl.fenced = Some(theirs);
                        }
                    }
                }
                let fenced = match repl.fenced {
                    Some(epoch) => format!(" fenced={epoch}"),
                    None => String::new(),
                };
                vec![format!(
                    "OK REPL HELLO epoch={} base={} end={} snap={} role={} {} caps=bin{fenced}",
                    repl.epoch,
                    repl.mem_base,
                    repl.end(),
                    repl.snapshot_offset,
                    repl.role.as_str(),
                    cdr_core::replog::compact_token(repl.auto_compact)
                )]
            }),
            "SNAPSHOT" => {
                let bin = match tokens.get(2) {
                    None => false,
                    Some(t) if t.eq_ignore_ascii_case("BIN") => true,
                    Some(_) => {
                        return ReplReply::text(vec![
                            "ERR REPL usage: REPL SNAPSHOT [BIN]".to_string()
                        ]);
                    }
                };
                if bin {
                    let chunks: Vec<&[u8]> = repl
                        .snapshot_bytes
                        .chunks(SNAPSHOT_BIN_CHUNK_BYTES)
                        .collect();
                    let mut raw = Vec::with_capacity(repl.snapshot_bytes.len() + chunks.len() * 8);
                    for chunk in &chunks {
                        raw.extend_from_slice(&frame(chunk));
                    }
                    return ReplReply {
                        lines: vec![format!(
                            "OK REPL SNAPSHOT BIN epoch={} offset={} bytes={} chunks={}",
                            repl.epoch,
                            repl.snapshot_offset,
                            repl.snapshot_bytes.len(),
                            chunks.len()
                        )],
                        raw,
                    };
                }
                let chunks: Vec<&[u8]> = repl.snapshot_bytes.chunks(SNAPSHOT_CHUNK_BYTES).collect();
                let mut lines = Vec::with_capacity(chunks.len() + 1);
                lines.push(format!(
                    "OK REPL SNAPSHOT epoch={} offset={} bytes={} chunks={}",
                    repl.epoch,
                    repl.snapshot_offset,
                    repl.snapshot_bytes.len(),
                    chunks.len()
                ));
                for chunk in chunks {
                    lines.push(format!("REPL CHUNK {}", to_hex(chunk)));
                }
                ReplReply::text(lines)
            }
            "FETCH" => {
                let usage = || vec!["ERR REPL usage: REPL FETCH <from> <max> [BIN]".to_string()];
                let (Some(Ok(from)), Some(Ok(max))) = (
                    tokens.get(2).map(|t| t.parse::<u64>()),
                    tokens.get(3).map(|t| t.parse::<u64>()),
                ) else {
                    return ReplReply::text(usage());
                };
                let bin = match tokens.get(4) {
                    None => false,
                    Some(t) if t.eq_ignore_ascii_case("BIN") => true,
                    Some(_) => return ReplReply::text(usage()),
                };
                if from < repl.mem_base {
                    return ReplReply::text(vec![format!(
                        "ERR REPL COMPACTED offset {from} predates base={}; re-bootstrap from REPL SNAPSHOT",
                        repl.mem_base
                    )]);
                }
                if from > repl.end() {
                    return ReplReply::text(vec![format!(
                        "ERR REPL RANGE offset {from} is past end={}",
                        repl.end()
                    )]);
                }
                let start = (from - repl.mem_base) as usize;
                let n = (repl.records.len() - start).min(max.min(MAX_FETCH_RECORDS) as usize);
                if bin {
                    let raw = encode_record_batch(&repl.records[start..start + n]);
                    return ReplReply {
                        lines: vec![format!(
                            "OK REPL BATCH {} n={} next={} end={}",
                            raw.len(),
                            n,
                            from + n as u64,
                            repl.end()
                        )],
                        raw,
                    };
                }
                let mut lines = Vec::with_capacity(n + 1);
                lines.push(format!(
                    "OK REPL RECORDS n={} next={} end={}",
                    n,
                    from + n as u64,
                    repl.end()
                ));
                for payload in &repl.records[start..start + n] {
                    lines.push(format!(
                        "REPL RECORD {}",
                        to_hex(&wrap_checksummed(payload))
                    ));
                }
                ReplReply::text(lines)
            }
            _ => ReplReply::text(vec![
                "ERR REPL usage: REPL HELLO | REPL SNAPSHOT [BIN] | REPL FETCH <from> <max> [BIN]"
                    .to_string(),
            ]),
        }
    }

    /// `PROMOTE`: flips a follower into a primary at a new epoch.  The
    /// engine is not touched — no compaction, no generation bump — so the
    /// promoted node keeps serving exactly the state it replicated.
    ///
    /// A follower that is still behind the upstream's last observed log
    /// end refuses with a deterministic `ERR REPL BEHIND end=<e>
    /// upstream=<u>`: promoting it would silently drop the acknowledged
    /// suffix it had not yet fetched.  `force` overrides that refusal —
    /// the catch-up escape hatch for records the dead primary
    /// acknowledged but no follower ever fetched — and the reply then
    /// carries the accepted loss as `dropped=<n>`.
    pub fn promote(&self, force: bool) -> String {
        let _engine = wlock(&self.engine);
        let mut repl = lock(&self.repl);
        match repl.role {
            Role::Primary => format!("ERR REPL already primary at epoch={}", repl.epoch),
            Role::Follower => {
                let dropped = repl.upstream_end.saturating_sub(repl.end());
                if dropped > 0 && !force {
                    return format!(
                        "ERR REPL BEHIND end={} upstream={}",
                        repl.end(),
                        repl.upstream_end
                    );
                }
                repl.role = Role::Primary;
                repl.epoch += 1;
                repl.tail = None;
                repl.upstream = None;
                if dropped > 0 {
                    format!(
                        "OK PROMOTED epoch={} end={} dropped={dropped}",
                        repl.epoch,
                        repl.end()
                    )
                } else {
                    format!("OK PROMOTED epoch={} end={}", repl.epoch, repl.end())
                }
            }
        }
    }

    /// `RETARGET <host:port>`: points a surviving follower at the newly
    /// promoted primary.  The warm tailer connection is dropped, so the
    /// next tail iteration reconnects (and re-runs the HELLO handshake)
    /// against the new upstream; the record stream continues at the same
    /// logical offsets, because a promoted follower keeps the log it
    /// replicated.
    pub fn retarget(&self, upstream: &str) -> String {
        let mut repl = lock(&self.repl);
        match repl.role {
            Role::Primary => {
                "ERR REPL RETARGET on a primary; only a follower can change upstream".to_string()
            }
            Role::Follower => {
                repl.upstream = Some(upstream.to_string());
                repl.tail = None;
                repl.tail_gen += 1;
                format!("OK RETARGET {upstream}")
            }
        }
    }

    /// Panics while holding the engine write lock (the chaos hook).
    pub fn chaos_panic(&self) -> ! {
        let _guard = wlock(&self.engine);
        panic!("chaos: PANIC verb")
    }

    /// Counts one upstream failure and tells the pump to back off.
    fn tail_failed(&self) -> TailOutcome {
        lock(&self.repl).retries += 1;
        TailOutcome::Failed
    }

    /// One tailer iteration: make sure a `FETCH` for our cursor is in
    /// flight, read its reply, prefetch the next batch, then apply the
    /// whole fetched batch under one engine write acquisition.  All
    /// network and decode failures degrade to [`TailOutcome::Failed`]
    /// (drop the connection, count the retry, back off) — a dead or
    /// hostile upstream must never panic the tailer.
    pub(crate) fn tail_once(&self) -> TailOutcome {
        let (conn, from, upstream, epoch, auto_compact, feed, fetch_batch, gen) = {
            let mut repl = lock(&self.repl);
            if repl.role == Role::Primary {
                return TailOutcome::Promoted;
            }
            let Some(upstream) = repl.upstream.clone() else {
                return TailOutcome::Promoted;
            };
            (
                repl.tail.take(),
                repl.end(),
                upstream,
                repl.epoch,
                repl.auto_compact,
                repl.feed,
                repl.fetch_batch,
                repl.tail_gen,
            )
        };
        let mut conn = match conn.filter(|conn| conn.gen == gen) {
            Some(conn) => conn,
            None => {
                // A fresh connection re-runs the HELLO handshake:
                // announce our epoch (fencing a stale revived primary on
                // the spot when it does not gate admin verbs; a gated one
                // answers `ERR DENIED`, which equally stops us tailing
                // it) and our compact threshold (so a mismatch is refused
                // here, not discovered as replay divergence), refuse to
                // tail an upstream behind our own epoch, and negotiate
                // the feed encoding from its `caps=` advertisement.
                let Ok(mut client) = Client::connect(&upstream) else {
                    return self.tail_failed();
                };
                let Ok(hello) = client.send(&hello_request(epoch, Some(auto_compact))) else {
                    return self.tail_failed();
                };
                if !hello.starts_with("OK REPL HELLO") {
                    eprintln!("cdr-server: upstream {upstream} refused the handshake: {hello}");
                    return self.tail_failed();
                }
                if field_u64(&hello, "epoch=").is_some_and(|theirs| theirs < epoch) {
                    eprintln!("cdr-server: upstream {upstream} is stale ({hello}); not tailing it");
                    return self.tail_failed();
                }
                let bin = match feed {
                    FeedMode::Text => false,
                    FeedMode::Auto => hello_caps_bin(&hello),
                    FeedMode::Bin => {
                        if !hello_caps_bin(&hello) {
                            eprintln!(
                                "cdr-server: upstream {upstream} does not advertise caps=bin; \
                                 --feed bin cannot tail it"
                            );
                            return self.tail_failed();
                        }
                        true
                    }
                };
                {
                    let mut repl = lock(&self.repl);
                    if let Some(end) = field_u64(&hello, "end=") {
                        repl.upstream_end = repl.upstream_end.max(end);
                    }
                    repl.feed_bin = bin;
                }
                TailConn {
                    client,
                    pending: None,
                    bin,
                    gen,
                }
            }
        };
        // Make sure a FETCH for our cursor is in flight.  A prefetch
        // left by the previous iteration must match it; if the cursor
        // moved underneath (a re-bootstrap raced), the pending reply is
        // stale — drop the connection rather than mis-read it.
        // Network I/O happens with no lock held: reads keep flowing on
        // both nodes while records travel.
        match conn.pending.take() {
            Some(pending) if pending == from => {}
            Some(_) => return TailOutcome::Idle,
            None => {
                if conn
                    .client
                    .send_line(&fetch_request(from, fetch_batch, conn.bin))
                    .is_err()
                {
                    return self.tail_failed();
                }
            }
        }
        let reply = if conn.bin {
            read_batch_reply(&mut conn.client)
        } else {
            read_records_reply(&mut conn.client)
        };
        let fetched = match reply {
            Ok(FetchReply::Compacted) => return self.rebootstrap(conn),
            Ok(FetchReply::Records(fetched)) => fetched,
            Err(Some(reason)) => {
                eprintln!("cdr-server: dropping the replication feed: {reason}");
                return self.tail_failed();
            }
            Err(None) => return self.tail_failed(),
        };
        if fetched.payloads.is_empty() {
            // Caught up; keep the connection warm for the next poll.
            let mut repl = lock(&self.repl);
            if let Some(end) = fetched.upstream_end {
                repl.upstream_end = repl.upstream_end.max(end);
            }
            repl.feed_bytes += fetched.wire;
            if repl.tail_gen == conn.gen {
                repl.tail = Some(conn);
            }
            return TailOutcome::Idle;
        }
        // Strict all-or-nothing, mirroring BULK: decode every record
        // (and check its offset) before any is applied — and do it
        // outside the engine write guard.
        let schema = self.read(|engine| engine.database().schema().clone());
        let mut records = Vec::with_capacity(fetched.payloads.len());
        for (i, payload) in fetched.payloads.iter().enumerate() {
            let expected = from + i as u64;
            match LogRecord::decode(payload, &schema) {
                Ok(record) if record.offset == expected => records.push(record),
                Ok(record) => {
                    eprintln!(
                        "cdr-server: {}",
                        feed_frame_error(&format!(
                            "record at offset {} where {expected} was expected",
                            record.offset
                        ))
                    );
                    return self.tail_failed();
                }
                Err(e) => {
                    eprintln!("cdr-server: {}", feed_frame_error(&e.to_string()));
                    return self.tail_failed();
                }
            }
        }
        // Double-buffer the feed: the next FETCH goes out before this
        // batch applies, so the upstream renders it while we hold the
        // write guard — catch-up pays apply cost, not RTT × batches.  A
        // failed send only costs the warm connection.
        let more = fetched.upstream_end.is_some_and(|end| fetched.next < end);
        let mut keep_conn = true;
        if more {
            if conn
                .client
                .send_line(&fetch_request(fetched.next, fetch_batch, conn.bin))
                .is_ok()
            {
                conn.pending = Some(fetched.next);
            } else {
                keep_conn = false;
            }
        }
        let mut engine = wlock(&self.engine);
        let mut repl = lock(&self.repl);
        if repl.role == Role::Primary {
            return TailOutcome::Promoted;
        }
        if let Some(end) = fetched.upstream_end {
            repl.upstream_end = repl.upstream_end.max(end);
        }
        repl.feed_bytes += fetched.wire;
        if repl.end() != from {
            // The cursor moved under us (a re-bootstrap raced this
            // fetch): the batch — and any prefetch — is stale; drop both.
            return TailOutcome::Idle;
        }
        for (record, payload) in records.into_iter().zip(fetched.payloads) {
            if let Err(e) = apply_record(&mut engine, &record) {
                // Divergence is an invariant violation the tests assert
                // never happens; freeze rather than serve wrong answers.
                eprintln!("cdr-server: follower stopped tailing: {e}");
                return TailOutcome::Idle;
            }
            repl.epoch = record.epoch;
            repl.records.push(payload);
        }
        if keep_conn && repl.tail_gen == conn.gen {
            repl.tail = Some(conn);
        }
        TailOutcome::Progress
    }

    /// The tailer fell behind the upstream's snapshot horizon: fetch the
    /// current snapshot (over the connection's negotiated feed) and
    /// restart the engine from it.
    fn rebootstrap(&self, mut conn: TailConn) -> TailOutcome {
        let fetched = if conn.bin {
            fetch_snapshot_bin(&mut conn.client)
        } else {
            fetch_snapshot(&mut conn.client)
        };
        let Ok((snapshot_bytes, snapshot, wire)) = fetched else {
            return self.tail_failed();
        };
        let Snapshot {
            epoch,
            offset,
            generation,
            rel_generations,
            db,
            keys,
        } = snapshot;
        let rebuilt = (self.tune)(RepairEngine::restore(db, keys, generation, rel_generations));
        let mut engine = wlock(&self.engine);
        let mut repl = lock(&self.repl);
        if repl.role == Role::Primary {
            return TailOutcome::Promoted;
        }
        *engine = rebuilt;
        repl.epoch = epoch;
        repl.snapshot_bytes = snapshot_bytes;
        repl.snapshot_offset = offset;
        repl.mem_base = offset;
        repl.records.clear();
        repl.feed_bytes += wire;
        if repl.tail_gen == conn.gen {
            repl.tail = Some(conn);
        }
        TailOutcome::Progress
    }
}

/// A fetched record batch, whichever encoding it travelled in.
struct Fetched {
    /// The record payloads, in offset order.
    payloads: Vec<Vec<u8>>,
    /// The cursor after this batch (the header's `next=`).
    next: u64,
    /// The upstream's log end as the header reported it.
    upstream_end: Option<u64>,
    /// Wire bytes this fetch cost (the `repl bytes=` gauge).
    wire: u64,
}

/// One `REPL FETCH` reply, already integrity-checked.
enum FetchReply {
    /// Records (possibly none — caught up).
    Records(Fetched),
    /// The cursor predates the upstream's snapshot horizon.
    Compacted,
}

/// Reads a textual `OK REPL RECORDS` reply.  `Err(Some(reason))` is a
/// loggable feed defect, `Err(None)` a plain I/O failure.
fn read_records_reply(client: &mut Client) -> Result<FetchReply, Option<String>> {
    let header = client.read_line().map_err(|_| None)?;
    if header.starts_with("ERR REPL COMPACTED") {
        return Ok(FetchReply::Compacted);
    }
    let (Some(n), Some(next)) = (field_u64(&header, "n="), field_u64(&header, "next=")) else {
        return Err(Some(format!("unexpected fetch reply: {header}")));
    };
    let mut wire = header.len() as u64 + 1;
    let mut payloads = Vec::with_capacity(n.min(MAX_FETCH_RECORDS) as usize);
    for _ in 0..n {
        let line = client.read_line().map_err(|_| None)?;
        wire += line.len() as u64 + 1;
        let Some(hex) = line.strip_prefix("REPL RECORD ") else {
            return Err(Some(format!("expected a REPL RECORD line, got: {line}")));
        };
        let bytes = from_hex(hex).map_err(|e| Some(feed_frame_error(&e.to_string())))?;
        let payload =
            unwrap_checksummed(&bytes).map_err(|e| Some(feed_frame_error(&e.to_string())))?;
        payloads.push(payload.to_vec());
    }
    Ok(FetchReply::Records(Fetched {
        payloads,
        next,
        upstream_end: field_u64(&header, "end="),
        wire,
    }))
}

/// Reads a binary `OK REPL BATCH <len> …` reply: the header line, then
/// `len` raw bytes decoded through the strict all-or-nothing batch
/// codec.  An oversize header is refused before any allocation.
fn read_batch_reply(client: &mut Client) -> Result<FetchReply, Option<String>> {
    let header = client.read_line().map_err(|_| None)?;
    if header.starts_with("ERR REPL COMPACTED") {
        return Ok(FetchReply::Compacted);
    }
    let len = header
        .strip_prefix("OK REPL BATCH ")
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|t| t.parse::<u64>().ok());
    let (Some(len), Some(n), Some(next)) =
        (len, field_u64(&header, "n="), field_u64(&header, "next="))
    else {
        return Err(Some(format!("unexpected batch reply: {header}")));
    };
    if len > MAX_BATCH_FRAME_BYTES {
        return Err(Some(feed_frame_error(&format!(
            "batch of {len} bytes exceeds the {MAX_BATCH_FRAME_BYTES}-byte cap"
        ))));
    }
    let frame = client
        .read_exact(len as usize)
        .map_err(|e| Some(feed_frame_error(&format!("batch truncated: {e}"))))?;
    let payloads =
        decode_record_batch(&frame).map_err(|e| Some(feed_frame_error(&e.to_string())))?;
    if payloads.len() as u64 != n {
        return Err(Some(feed_frame_error(&format!(
            "batch carries {} records, header promised {n}",
            payloads.len()
        ))));
    }
    Ok(FetchReply::Records(Fetched {
        payloads,
        next,
        upstream_end: field_u64(&header, "end="),
        wire: header.len() as u64 + 1 + len,
    }))
}

/// Pulls and reassembles the upstream's snapshot over the textual hex
/// chunk protocol: the raw bytes (served verbatim to any downstream
/// follower), the decoded image, and the wire bytes it cost.
fn fetch_snapshot(client: &mut Client) -> Result<(Vec<u8>, Snapshot, u64), ReplogError> {
    let header = client.send("REPL SNAPSHOT")?;
    let (Some(bytes), Some(chunks)) = (field_u64(&header, "bytes="), field_u64(&header, "chunks="))
    else {
        return Err(ReplogError::Diverged(format!(
            "upstream refused the snapshot: {header}"
        )));
    };
    let mut assembled = Vec::with_capacity(bytes as usize);
    let mut wire = header.len() as u64 + 1;
    for _ in 0..chunks {
        let line = client.read_line()?;
        wire += line.len() as u64 + 1;
        let Some(hex) = line.strip_prefix("REPL CHUNK ") else {
            return Err(ReplogError::Diverged(format!(
                "expected a REPL CHUNK line, got: {line}"
            )));
        };
        assembled.extend_from_slice(&from_hex(hex)?);
    }
    if assembled.len() as u64 != bytes {
        return Err(ReplogError::Diverged(format!(
            "snapshot reassembled to {} bytes, header promised {bytes}",
            assembled.len()
        )));
    }
    let snapshot = Snapshot::decode(&assembled)?;
    Ok((assembled, snapshot, wire))
}

/// Pulls and reassembles the upstream's snapshot over the binary chunk
/// protocol (`REPL SNAPSHOT BIN`): each chunk is one
/// `[len ‖ crc32 ‖ payload]` frame of raw bytes, CRC-checked as it
/// lands.  A chunk header promising more than the frame cap is refused
/// before any allocation.
fn fetch_snapshot_bin(client: &mut Client) -> Result<(Vec<u8>, Snapshot, u64), ReplogError> {
    let header = client.send("REPL SNAPSHOT BIN")?;
    let (Some(bytes), Some(chunks)) = (field_u64(&header, "bytes="), field_u64(&header, "chunks="))
    else {
        return Err(ReplogError::Diverged(format!(
            "upstream refused the binary snapshot: {header}"
        )));
    };
    let mut assembled = Vec::with_capacity((bytes as usize).min(MAX_CHUNK_FRAME_BYTES));
    let mut wire = header.len() as u64 + 1;
    for _ in 0..chunks {
        let head = client.read_exact(8)?;
        let (len, crc) = chunk_header(&head)
            .map_err(|e| ReplogError::Diverged(format!("bad snapshot chunk header: {e}")))?;
        if len > MAX_CHUNK_FRAME_BYTES {
            return Err(ReplogError::Diverged(format!(
                "snapshot chunk of {len} bytes exceeds the {MAX_CHUNK_FRAME_BYTES}-byte cap"
            )));
        }
        let payload = client.read_exact(len)?;
        verify_chunk(crc, &payload)
            .map_err(|e| ReplogError::Diverged(format!("snapshot chunk rejected: {e}")))?;
        wire += 8 + len as u64;
        assembled.extend_from_slice(&payload);
    }
    if assembled.len() as u64 != bytes {
        return Err(ReplogError::Diverged(format!(
            "snapshot reassembled to {} bytes, header promised {bytes}",
            assembled.len()
        )));
    }
    let snapshot = Snapshot::decode(&assembled)?;
    Ok((assembled, snapshot, wire))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdr_core::replog::read_log_payloads;
    use cdr_workloads::employee_example;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cdr-replication-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn seed() -> RepairEngine {
        let (db, keys) = employee_example();
        RepairEngine::new(db, keys)
    }

    #[test]
    fn a_fresh_primary_logs_then_applies_and_snapshots_at_compaction() {
        let dir = temp_dir("fresh");
        let backend = ReplicatedBackend::primary(seed(), &dir).unwrap();
        assert_eq!(backend.role(), Role::Primary);
        let db = backend.parse_database();
        let insert = |text: &str| Mutation::Insert(db.parse_fact(text).unwrap());
        let reply = backend.mutate(insert("Employee(9, 'Flux', 'Ops')"), None);
        assert!(reply.starts_with("OK INSERT id=4 "), "{reply}");
        let reply = backend.mutate(Mutation::Delete(cdr_repairdb::FactId::new(4)), None);
        assert!(reply.starts_with("OK DELETE id=4 "), "{reply}");
        // Two records on disk, none compacted away yet.
        assert_eq!(read_log_payloads(&dir.join(LOG_FILE)).unwrap().len(), 2);
        let stats = backend.stats();
        assert!(
            stats.ends_with("| repl role=primary epoch=0 base=0 end=2 replayed=0 retries=0"),
            "{stats}"
        );
        // Compaction logs its record, snapshots, truncates the disk log.
        let (outcome, _) = backend.compact().unwrap();
        assert_eq!(outcome.report.live_facts, 4);
        assert_eq!(read_log_payloads(&dir.join(LOG_FILE)).unwrap().len(), 0);
        let hello = &backend.repl("REPL HELLO", true).lines[0];
        assert_eq!(
            hello,
            "OK REPL HELLO epoch=0 base=0 end=3 snap=3 role=primary compact=off caps=bin"
        );
        // In-memory records are retained across the snapshot for tailers.
        let fetched = backend.repl("REPL FETCH 0 64", true).lines;
        assert!(
            fetched[0].starts_with("OK REPL RECORDS n=3 "),
            "{}",
            fetched[0]
        );
        assert_eq!(fetched.len(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_replays_only_the_post_snapshot_suffix() {
        let dir = temp_dir("recover");
        let db = {
            let backend = ReplicatedBackend::primary(seed(), &dir).unwrap();
            let db = backend.parse_database();
            let insert = |text: &str| Mutation::Insert(db.parse_fact(text).unwrap());
            backend.mutate(insert("Employee(7, 'Ada', 'IT')"), None);
            backend.compact().unwrap();
            backend.mutate(insert("Employee(8, 'Kim', 'HR')"), None);
            backend.mutate(insert("Employee(8, 'Kim, Jr.', 'HR')"), None);
            backend.read(|engine| (engine.database().clone(), engine.generation()))
        };
        // Cold restart over the same directory: the snapshot captured the
        // compaction point, so exactly the 2 post-snapshot inserts replay.
        let recovered = ReplicatedBackend::primary(seed(), &dir).unwrap();
        let stats = recovered.stats();
        assert!(
            stats.contains(" repl role=primary epoch=0 base=2 end=4 replayed=2"),
            "{stats}"
        );
        recovered.read(|engine| {
            assert_eq!(engine.database(), &db.0);
            assert_eq!(engine.generation(), db.1);
        });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repl_fetch_bounds_are_enforced() {
        let dir = temp_dir("bounds");
        let backend = ReplicatedBackend::primary(seed(), &dir).unwrap();
        assert!(backend.repl("REPL FETCH 5 4", true).lines[0].starts_with("ERR REPL RANGE "));
        assert!(backend.repl("REPL FETCH x 4", true).lines[0].starts_with("ERR REPL usage"));
        assert!(backend.repl("REPL NONSENSE", true).lines[0].starts_with("ERR REPL usage"));
        assert_eq!(
            backend.repl("REPL FETCH 0 10", true).lines,
            vec!["OK REPL RECORDS n=0 next=0 end=0".to_string()]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn promote_on_a_primary_is_refused() {
        let dir = temp_dir("promote");
        let backend = ReplicatedBackend::primary(seed(), &dir).unwrap();
        assert_eq!(
            backend.promote(false),
            "ERR REPL already primary at epoch=0"
        );
        assert_eq!(
            backend.promote(true),
            "ERR REPL already primary at epoch=0",
            "FORCE never applies to a primary"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_newer_epoch_announced_over_hello_fences_the_primary() {
        let dir = temp_dir("fence");
        let backend = ReplicatedBackend::primary(seed(), &dir).unwrap();
        let db = backend.parse_database();
        let insert = |text: &str| Mutation::Insert(db.parse_fact(text).unwrap());

        // An equal (or lower) epoch never fences.
        let hello = &backend.repl("REPL HELLO epoch=0", true).lines[0];
        assert_eq!(
            hello,
            "OK REPL HELLO epoch=0 base=0 end=0 snap=0 role=primary compact=off caps=bin"
        );
        assert!(backend
            .mutate(insert("Employee(9, 'Flux', 'Ops')"), None)
            .starts_with("OK INSERT "));

        // A strictly newer epoch deposes this primary: the reply carries
        // the fence, and every mutating verb refuses deterministically.
        let hello = &backend.repl("REPL HELLO epoch=3", true).lines[0];
        assert_eq!(
            hello,
            "OK REPL HELLO epoch=0 base=0 end=1 snap=0 role=primary compact=off caps=bin fenced=3"
        );
        assert_eq!(
            backend.mutate(insert("Employee(9, 'Nope', 'Ops')"), None),
            "ERR FENCED epoch=3 INSERT refused; a newer primary was promoted"
        );
        assert_eq!(
            backend.mutate_batch(vec![insert("Employee(9, 'Nope', 'Ops')")], None),
            "ERR FENCED epoch=3 BATCH refused; a newer primary was promoted"
        );
        assert_eq!(
            backend.compact().unwrap_err(),
            "ERR FENCED epoch=3 COMPACT refused; a newer primary was promoted"
        );
        // Reads keep flowing, and the gauge surfaces the fence.
        let stats = backend.stats();
        assert!(stats.starts_with("OK STATS "), "{stats}");
        assert!(stats.ends_with(" retries=0 fenced=3"), "{stats}");
        // The fence is monotone: an older announcement cannot unfence.
        backend.repl("REPL HELLO epoch=1", true);
        assert!(backend.stats().ends_with(" fenced=3"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The fencing side effect is admin-grade: an unauthenticated
    /// session (`admin_ok = false`) cannot depose a primary, while the
    /// harmless probe forms stay open to it.
    #[test]
    fn fencing_over_hello_requires_admin_rights() {
        let dir = temp_dir("fence-auth");
        let backend = ReplicatedBackend::primary(seed(), &dir).unwrap();

        // Probes and non-fencing announcements never need auth.
        assert!(backend.repl("REPL HELLO", false).lines[0].starts_with("OK REPL HELLO "));
        assert!(backend.repl("REPL HELLO epoch=0", false).lines[0].starts_with("OK REPL HELLO "));

        // A fencing announcement without admin rights is refused and
        // leaves the primary untouched.
        assert_eq!(
            backend.repl("REPL HELLO epoch=3", false).lines[0],
            "ERR DENIED REPL HELLO epoch=3 would fence this primary and requires AUTH \
             on this server"
        );
        assert!(!backend.stats().contains("fenced="));
        let db = backend.parse_database();
        let insert = Mutation::Insert(db.parse_fact("Employee(9, 'Flux', 'Ops')").unwrap());
        assert!(backend.mutate(insert, None).starts_with("OK INSERT "));

        // The same announcement with admin rights fences.
        assert!(backend.repl("REPL HELLO epoch=3", true).lines[0].ends_with("fenced=3"));
        assert!(backend.stats().ends_with(" fenced=3"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_mismatched_compact_threshold_is_refused_at_hello() {
        let dir = temp_dir("mismatch");
        let backend = ReplicatedBackend::primary(seed(), &dir).unwrap();
        backend.set_auto_compact(Some(16));
        assert_eq!(
            backend.repl("REPL HELLO epoch=0 compact=off", true).lines[0],
            "ERR REPL COMPACT MISMATCH ours=16 yours=off"
        );
        assert_eq!(
            backend.repl("REPL HELLO epoch=0 compact=8", true).lines[0],
            "ERR REPL COMPACT MISMATCH ours=16 yours=8"
        );
        let hello = &backend.repl("REPL HELLO epoch=0 compact=16", true).lines[0];
        assert_eq!(
            hello,
            "OK REPL HELLO epoch=0 base=0 end=0 snap=0 role=primary compact=16 caps=bin"
        );
        // A refused handshake never fences: the epoch check runs after.
        assert_eq!(
            backend
                .repl("REPL HELLO epoch=9 compact=8", true)
                .lines
                .len(),
            1
        );
        assert!(!backend.stats().contains("fenced="));
        // Malformed announcements draw the usage line.
        assert!(backend.repl("REPL HELLO epoch=x", true).lines[0].starts_with("ERR REPL usage"));
        assert!(
            backend.repl("REPL HELLO compact=soon", true).lines[0].starts_with("ERR REPL usage")
        );
        assert!(backend.repl("REPL HELLO nonsense", true).lines[0].starts_with("ERR REPL usage"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retarget_on_a_primary_is_refused() {
        let dir = temp_dir("retarget");
        let backend = ReplicatedBackend::primary(seed(), &dir).unwrap();
        assert_eq!(
            backend.retarget("127.0.0.1:1"),
            "ERR REPL RETARGET on a primary; only a follower can change upstream"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn the_served_snapshot_round_trips() {
        let dir = temp_dir("snapshot");
        let backend = ReplicatedBackend::primary(seed(), &dir).unwrap();
        let lines = backend.repl("REPL SNAPSHOT", true).lines;
        let bytes = field_u64(&lines[0], "bytes=").unwrap();
        let mut assembled = Vec::new();
        for line in &lines[1..] {
            assembled
                .extend_from_slice(&from_hex(line.strip_prefix("REPL CHUNK ").unwrap()).unwrap());
        }
        assert_eq!(assembled.len() as u64, bytes);
        let snapshot = Snapshot::decode(&assembled).unwrap();
        backend.read(|engine| {
            assert_eq!(&snapshot.db, engine.database());
            assert_eq!(&snapshot.keys, engine.keys());
            assert_eq!(snapshot.generation, engine.generation());
        });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The binary forms carry the same payloads the textual forms do:
    /// `FETCH … BIN` answers one batch frame whose records match the hex
    /// lines byte for byte, and `SNAPSHOT BIN` chunks reassemble to the
    /// exact snapshot image.
    #[test]
    fn the_binary_fetch_and_snapshot_round_trip() {
        let dir = temp_dir("bin");
        let backend = ReplicatedBackend::primary(seed(), &dir).unwrap();
        let db = backend.parse_database();
        let insert = |text: &str| Mutation::Insert(db.parse_fact(text).unwrap());
        backend.mutate(insert("Employee(9, 'Flux', 'Ops')"), None);
        backend.mutate(insert("Employee(10, 'Mesh', 'Ops')"), None);

        let reply = backend.repl("REPL FETCH 0 64 BIN", true);
        let header = reply.lines[0].clone();
        assert!(header.starts_with("OK REPL BATCH "), "{header}");
        let len: usize = header.split_whitespace().nth(3).unwrap().parse().unwrap();
        assert_eq!(reply.raw.len(), len);
        assert_eq!(field_u64(&header, "n="), Some(2));
        assert_eq!(field_u64(&header, "next="), Some(2));
        assert_eq!(field_u64(&header, "end="), Some(2));
        let payloads = decode_record_batch(&reply.raw).unwrap();
        assert_eq!(payloads.len(), 2);
        let textual = backend.repl("REPL FETCH 0 64", true).lines;
        for (payload, line) in payloads.iter().zip(&textual[1..]) {
            let bytes = from_hex(line.strip_prefix("REPL RECORD ").unwrap()).unwrap();
            assert_eq!(payload.as_slice(), unwrap_checksummed(&bytes).unwrap());
        }

        let reply = backend.repl("REPL SNAPSHOT BIN", true);
        let header = reply.lines[0].clone();
        assert!(header.starts_with("OK REPL SNAPSHOT BIN "), "{header}");
        let bytes = field_u64(&header, "bytes=").unwrap();
        let chunks = field_u64(&header, "chunks=").unwrap();
        let mut assembled = Vec::new();
        let mut rest = reply.raw.as_slice();
        for _ in 0..chunks {
            let (len, crc) = chunk_header(&rest[..8]).unwrap();
            let payload = &rest[8..8 + len];
            verify_chunk(crc, payload).unwrap();
            assembled.extend_from_slice(payload);
            rest = &rest[8 + len..];
        }
        assert!(rest.is_empty(), "no trailing bytes after the last chunk");
        assert_eq!(assembled.len() as u64, bytes);
        Snapshot::decode(&assembled).unwrap();
        // Byte-identical to what the textual hex chunks carry.
        let textual = backend.repl("REPL SNAPSHOT", true).lines;
        let mut hex_assembled = Vec::new();
        for line in &textual[1..] {
            hex_assembled
                .extend_from_slice(&from_hex(line.strip_prefix("REPL CHUNK ").unwrap()).unwrap());
        }
        assert_eq!(assembled, hex_assembled);

        // Malformed binary forms draw the usage lines.
        assert!(backend.repl("REPL FETCH 0 64 NOPE", true).lines[0].starts_with("ERR REPL usage"));
        assert!(backend.repl("REPL SNAPSHOT NOPE", true).lines[0].starts_with("ERR REPL usage"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
