//! Primary/follower replication over the line protocol.
//!
//! A [`ReplicatedBackend`] wraps the classic single-engine backend with a
//! replication sidecar: the **primary** appends every state-changing verb
//! to an in-memory record list (and, with `--log-dir`, a framed on-disk
//! log) *before* applying it, snapshots at every compaction point and
//! truncates the disk log there; a **follower** bootstraps from the
//! primary's snapshot over the ordinary text protocol (`REPL SNAPSHOT`),
//! then tails the record stream (`REPL FETCH`), applying each record
//! through the same replay path cold-start recovery uses.  Because wire
//! replies are deterministic functions of engine state and command order,
//! a caught-up follower answers every read — including seeded estimates
//! and `gen=`/`cached=` provenance — byte-identically to the primary.
//!
//! The protocol is pull-based and rides the existing line protocol:
//!
//! ```text
//! REPL HELLO                 -> OK REPL HELLO epoch=E base=B end=N snap=S
//! REPL SNAPSHOT              -> OK REPL SNAPSHOT epoch=E offset=S bytes=B chunks=K
//!                               REPL CHUNK <hex>          (x K)
//! REPL FETCH <from> <max>    -> OK REPL RECORDS n=N next=F end=E
//!                               REPL RECORD <hex(crc32||payload)>   (x N)
//! PROMOTE [FORCE]            -> OK PROMOTED epoch=E end=N   (follower, behind AUTH)
//! ```
//!
//! Mutating verbs on a follower answer `ERR READONLY …`; `PROMOTE` flips
//! the role and bumps the epoch without touching the engine, so a
//! promoted follower keeps serving the exact state it replicated.
//! `PROMOTE FORCE` promotes even a behind follower — the operator's (or
//! supervisor's) explicit acceptance that the acknowledged-but-unfetched
//! suffix is lost — and reports the loss as `dropped=<n>`.

use std::path::{Path, PathBuf};
use std::sync::{Mutex, RwLock};

use cdr_core::replog::{
    apply_record, from_hex, hello_request, open_log, parse_compact_token, read_snapshot_file,
    survivors_of, to_hex, unwrap_checksummed, wrap_checksummed, write_snapshot_file, LogOp,
    LogRecord, ReplogError, LOG_FILE,
};
use cdr_core::{CompactionOutcome, RepairEngine};
use cdr_num::BigNat;
use cdr_repairdb::{Mutation, Snapshot};

use crate::backend::apply_single;
use crate::client::Client;
use crate::reply;

/// Bytes of snapshot per `REPL CHUNK` line (16 KiB of hex on the wire,
/// comfortably under the default line cap).
const SNAPSHOT_CHUNK_BYTES: usize = 8192;

/// Most records one `REPL FETCH` answers, whatever the client asked for.
const MAX_FETCH_RECORDS: u64 = 256;

/// How many records the tailer requests per fetch.
const TAIL_FETCH_RECORDS: u64 = 64;

fn rlock<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn wlock<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// `key=value` extraction from a reply header (`field_u64(line, "end=")`).
pub(crate) use cdr_core::replog::field_u64;

/// Renders a threshold for the `COMPACT MISMATCH` refusal (`16` / `off`).
fn threshold_value(threshold: Option<u64>) -> String {
    match threshold {
        Some(t) => t.to_string(),
        None => "off".to_string(),
    }
}

/// The usage refusal for a malformed `REPL HELLO` announcement.
fn hello_usage() -> String {
    "ERR REPL usage: REPL HELLO [epoch=<e>] [compact=<waste>|compact=off]".to_string()
}

/// Which side of the replication pair this backend currently is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Accepts mutations, appends-then-applies, serves the log.
    Primary,
    /// Tails a primary, serves reads, refuses mutations.
    Follower,
}

impl Role {
    fn as_str(self) -> &'static str {
        match self {
            Role::Primary => "primary",
            Role::Follower => "follower",
        }
    }
}

/// What one tailer iteration achieved.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum TailOutcome {
    /// Records were applied (or the snapshot was re-bootstrapped): fetch
    /// again immediately.
    Progress,
    /// Caught up (or frozen on divergence): sleep a poll tick before
    /// retrying.
    Idle,
    /// The upstream is unreachable or misbehaving: back off with capped
    /// exponential delay (plus seeded jitter) before retrying, and count
    /// the retry in the `repl retries=` gauge.
    Failed,
    /// This node is now a primary: the tailer is done for good.
    Promoted,
}

/// The replication sidecar state, guarded by one mutex.  Lock order is
/// engine write guard *then* this — never the reverse.
struct ReplState {
    role: Role,
    epoch: u64,
    /// The encoded snapshot served to bootstrapping followers.
    snapshot_bytes: Vec<u8>,
    /// The log offset the snapshot captures.
    snapshot_offset: u64,
    /// The offset of `records[0]`: offsets below this are only reachable
    /// through the snapshot.
    mem_base: u64,
    /// Encoded record payloads from `mem_base` to the end of the log.
    records: Vec<Vec<u8>>,
    /// The on-disk log (primaries started with `--log-dir`).
    log: Option<cdr_core::LogWriter>,
    /// The `--log-dir`, for snapshot rewrites.
    dir: Option<PathBuf>,
    /// The primary this follower tails.
    upstream: Option<String>,
    /// Records replayed from disk at boot — the recovery gauge proving a
    /// cold restart replayed only the post-snapshot suffix.
    replayed: u64,
    /// The tailer's warm upstream connection between iterations.
    tail_client: Option<Client>,
    /// The epoch of the newest primary announced over `REPL HELLO`, when
    /// it is strictly newer than ours: this node was deposed, and every
    /// mutating verb answers `ERR FENCED epoch=<e>` until it is rebuilt.
    fenced: Option<u64>,
    /// Upstream fetch/connect failures the tailer has retried — the
    /// `repl retries=` gauge backing the backoff tests.
    retries: u64,
    /// The upstream's log end as last observed (bootstrap HELLO, then
    /// every FETCH header): `PROMOTE` refuses while `end()` lags this,
    /// closing the promote-while-behind race.
    upstream_end: u64,
    /// This node's auto-compaction threshold, announced (and checked)
    /// in the HELLO handshake: mismatched thresholds diverge replicas
    /// after promotion, so they are refused at connect time.
    auto_compact: Option<u64>,
}

impl ReplState {
    /// One past the last record offset.
    fn end(&self) -> u64 {
        self.mem_base + self.records.len() as u64
    }

    /// Appends one operation at the current end: encode, write to the
    /// disk log (if any), retain in memory.  Disk errors are reported but
    /// not fatal — the in-memory stream (and therefore every follower)
    /// stays exact; only cold-restart durability degrades.
    fn append(&mut self, op: LogOp) {
        let record = LogRecord {
            epoch: self.epoch,
            offset: self.end(),
            op,
        };
        let payload = record.encode();
        if let Some(log) = &mut self.log {
            if let Err(e) = log.append(&payload) {
                eprintln!("cdr-server: command log append failed: {e}");
            }
        }
        self.records.push(payload);
    }

    /// The bookkeeping after the engine compacted (policy, explicit verb,
    /// or batch path): log the compaction record, then snapshot the dense
    /// post-compaction state and truncate the disk log behind it.
    fn record_compaction(&mut self, engine: &RepairEngine, outcome: &CompactionOutcome) {
        self.append(LogOp::Compact {
            fact_ids_before: outcome.report.fact_ids_before,
            survivors: survivors_of(&outcome.report),
        });
        let snapshot = Snapshot {
            epoch: self.epoch,
            offset: self.end(),
            generation: engine.generation(),
            rel_generations: engine.rel_generations().to_vec(),
            db: engine.database().clone(),
            keys: engine.keys().clone(),
        };
        match snapshot.encode() {
            Ok(bytes) => {
                self.snapshot_bytes = bytes;
                self.snapshot_offset = snapshot.offset;
                if let Some(dir) = &self.dir {
                    if let Err(e) = write_snapshot_file(dir, &snapshot) {
                        eprintln!("cdr-server: snapshot write failed: {e}");
                    } else if let Some(log) = &mut self.log {
                        if let Err(e) = log.truncate() {
                            eprintln!("cdr-server: log truncation failed: {e}");
                        }
                    }
                }
            }
            // Unreachable post-compaction (the database is dense); keep
            // serving the previous snapshot rather than dying.
            Err(e) => eprintln!("cdr-server: snapshot encode failed: {e}"),
        }
    }
}

/// A replicated single-engine backend: the engine behind its usual
/// read/write lock, plus the replication sidecar.
pub struct ReplicatedBackend {
    engine: RwLock<RepairEngine>,
    repl: Mutex<ReplState>,
    /// Re-applies the serving tuning (budget, parallelism, cache
    /// capacity) to an engine rebuilt from a snapshot.
    tune: Box<dyn Fn(RepairEngine) -> RepairEngine + Send + Sync>,
}

impl ReplicatedBackend {
    /// Boots a primary over `dir`.
    ///
    /// With a snapshot present, recovery ignores `seed`'s data and
    /// rebuilds the engine from the snapshot plus the valid suffix of the
    /// on-disk log (the torn tail a `SIGKILL` leaves is trimmed, never
    /// replayed); `seed` still donates its tuning.  On first boot the
    /// seed *is* the state: its snapshot is written at offset 0 — which
    /// requires the seed database to be compacted (freshly built data
    /// always is).
    pub fn primary(seed: RepairEngine, dir: &Path) -> Result<ReplicatedBackend, ReplogError> {
        std::fs::create_dir_all(dir)?;
        let budget = seed.default_budget();
        let parallelism = seed.parallelism();
        let cache_capacity = seed.cache_stats().capacity as usize;
        let tune = move |engine: RepairEngine| {
            engine
                .with_default_budget(budget)
                .with_parallelism(parallelism)
                .with_plan_cache_capacity(cache_capacity)
        };
        let log_path = dir.join(LOG_FILE);
        let (engine, state) = match read_snapshot_file(dir)? {
            Some(snapshot) => {
                let snapshot_bytes = snapshot.encode()?;
                let Snapshot {
                    epoch,
                    offset,
                    generation,
                    rel_generations,
                    db,
                    keys,
                } = snapshot;
                let mut engine = tune(RepairEngine::restore(db, keys, generation, rel_generations));
                let (log, payloads) = open_log(&log_path)?;
                let schema = engine.database().schema().clone();
                let mut epoch = epoch;
                for (expected, payload) in (offset..).zip(payloads.iter()) {
                    let record = LogRecord::decode(payload, &schema)?;
                    if record.offset != expected {
                        return Err(ReplogError::Diverged(format!(
                            "log record at offset {} where {} was expected",
                            record.offset, expected
                        )));
                    }
                    apply_record(&mut engine, &record)?;
                    epoch = epoch.max(record.epoch);
                }
                let replayed = payloads.len() as u64;
                let state = ReplState {
                    role: Role::Primary,
                    epoch,
                    snapshot_bytes,
                    snapshot_offset: offset,
                    mem_base: offset,
                    records: payloads,
                    log: Some(log),
                    dir: Some(dir.to_path_buf()),
                    upstream: None,
                    replayed,
                    tail_client: None,
                    fenced: None,
                    retries: 0,
                    upstream_end: 0,
                    auto_compact: None,
                };
                (engine, state)
            }
            None => {
                let engine = seed;
                let snapshot = Snapshot {
                    epoch: 0,
                    offset: 0,
                    generation: engine.generation(),
                    rel_generations: engine.rel_generations().to_vec(),
                    db: engine.database().clone(),
                    keys: engine.keys().clone(),
                };
                write_snapshot_file(dir, &snapshot)?;
                let snapshot_bytes = snapshot.encode()?;
                let (mut log, stale) = open_log(&log_path)?;
                if !stale.is_empty() {
                    // A log with no snapshot beside it describes nothing
                    // recoverable; start clean.
                    log.truncate()?;
                }
                let state = ReplState {
                    role: Role::Primary,
                    epoch: 0,
                    snapshot_bytes,
                    snapshot_offset: 0,
                    mem_base: 0,
                    records: Vec::new(),
                    log: Some(log),
                    dir: Some(dir.to_path_buf()),
                    upstream: None,
                    replayed: 0,
                    tail_client: None,
                    fenced: None,
                    retries: 0,
                    upstream_end: 0,
                    auto_compact: None,
                };
                (engine, state)
            }
        };
        Ok(ReplicatedBackend {
            engine: RwLock::new(engine),
            repl: Mutex::new(state),
            tune: Box::new(tune),
        })
    }

    /// Bootstraps a follower: exchanges the `REPL HELLO` handshake
    /// (announcing this node's auto-compaction threshold, so a
    /// divergence-inducing mismatch is refused right here instead of
    /// surfacing after a promotion), fetches the primary's snapshot over
    /// the line protocol, restores the engine from it (re-applying the
    /// serving tuning via `tune`), and leaves the connection warm for the
    /// tailer.
    ///
    /// `auto_compact` must be the threshold this node will serve with —
    /// the same value handed to
    /// [`ServerConfig::auto_compact`](crate::ServerConfig::auto_compact).
    pub fn follower(
        upstream: &str,
        auto_compact: Option<u64>,
        tune: impl Fn(RepairEngine) -> RepairEngine + Send + Sync + 'static,
    ) -> Result<ReplicatedBackend, ReplogError> {
        let mut client = Client::connect(upstream)?;
        let hello = client.send(&hello_request(0, Some(auto_compact)))?;
        if !hello.starts_with("OK REPL HELLO") {
            return Err(ReplogError::Diverged(format!(
                "upstream {upstream} refused the handshake: {hello}"
            )));
        }
        let upstream_end = field_u64(&hello, "end=").unwrap_or(0);
        let (snapshot_bytes, snapshot) = fetch_snapshot(&mut client)?;
        let Snapshot {
            epoch,
            offset,
            generation,
            rel_generations,
            db,
            keys,
        } = snapshot;
        let engine = tune(RepairEngine::restore(db, keys, generation, rel_generations));
        let state = ReplState {
            role: Role::Follower,
            epoch,
            snapshot_bytes,
            snapshot_offset: offset,
            mem_base: offset,
            records: Vec::new(),
            log: None,
            dir: None,
            upstream: Some(upstream.to_string()),
            replayed: 0,
            tail_client: Some(client),
            fenced: None,
            retries: 0,
            upstream_end,
            auto_compact,
        };
        Ok(ReplicatedBackend {
            engine: RwLock::new(engine),
            repl: Mutex::new(state),
            tune: Box::new(tune),
        })
    }

    /// The node's current role.
    pub fn role(&self) -> Role {
        lock(&self.repl).role
    }

    /// Installs the auto-compaction threshold this node serves with —
    /// the value the HELLO handshake announces and checks.  The server
    /// sets this from its config at start-up.
    pub fn set_auto_compact(&self, threshold: Option<u64>) {
        lock(&self.repl).auto_compact = threshold;
    }

    /// Shared query access to the engine.
    pub fn read<R>(&self, f: impl FnOnce(&RepairEngine) -> R) -> R {
        f(&rlock(&self.engine))
    }

    /// A schema snapshot for lock-free command parsing.
    pub fn parse_database(&self) -> std::sync::Arc<cdr_repairdb::Database> {
        rlock(&self.engine).database_arc()
    }

    /// Applies one mutation on a primary (append-then-apply); answers
    /// `ERR READONLY` on a follower.
    pub fn mutate(&self, mutation: Mutation, auto_compact: Option<u64>) -> String {
        let mut engine = wlock(&self.engine);
        let mut repl = lock(&self.repl);
        let verb = match mutation {
            Mutation::Insert(_) => "INSERT",
            Mutation::Delete(_) => "DELETE",
        };
        if repl.role == Role::Follower {
            return reply::readonly(verb);
        }
        if let Some(epoch) = repl.fenced {
            return reply::fenced(verb, epoch);
        }
        if let Some(threshold) = auto_compact {
            if let Some(outcome) = engine.maybe_compact(threshold) {
                repl.record_compaction(&engine, &outcome);
            }
        }
        repl.append(LogOp::Mutation(mutation.clone()));
        apply_single(&mut engine, mutation)
    }

    /// Applies a mutation batch atomically on a primary; `ERR READONLY`
    /// on a follower.  The batch is logged before it is applied — replay
    /// re-runs it through the same atomic path, so a rejected batch
    /// reproduces its rejection (and its untouched engine) exactly.
    pub fn mutate_batch(&self, mutations: Vec<Mutation>, auto_compact: Option<u64>) -> String {
        let mut engine = wlock(&self.engine);
        let mut repl = lock(&self.repl);
        if repl.role == Role::Follower {
            return reply::readonly("BATCH");
        }
        if let Some(epoch) = repl.fenced {
            return reply::fenced("BATCH", epoch);
        }
        if let Some(threshold) = auto_compact {
            if let Some(outcome) = engine.maybe_compact(threshold) {
                repl.record_compaction(&engine, &outcome);
            }
        }
        repl.append(LogOp::Batch(mutations.clone()));
        match engine.apply_batch(mutations) {
            Ok(report) => reply::render_batch_mutation(&report, engine.total_repairs()),
            Err(e) => reply::render_count_error(&e),
        }
    }

    /// Compacts a primary (logging the translation table, snapshotting,
    /// truncating the disk log); `ERR READONLY` on a follower.
    pub fn compact(&self) -> Result<(CompactionOutcome, BigNat), String> {
        let mut engine = wlock(&self.engine);
        let mut repl = lock(&self.repl);
        if repl.role == Role::Follower {
            return Err(reply::readonly("COMPACT"));
        }
        if let Some(epoch) = repl.fenced {
            return Err(reply::fenced("COMPACT", epoch));
        }
        let outcome = engine.compact();
        repl.record_compaction(&engine, &outcome);
        let total = engine.total_repairs().clone();
        Ok((outcome, total))
    }

    /// The `STATS` reply with the replication gauge tail.
    pub fn stats(&self) -> String {
        let head = self.read(reply::render_stats);
        let repl = lock(&self.repl);
        let fenced = match repl.fenced {
            Some(epoch) => format!(" fenced={epoch}"),
            None => String::new(),
        };
        format!(
            "{head} | repl role={} epoch={} base={} end={} replayed={} retries={}{fenced}",
            repl.role.as_str(),
            repl.epoch,
            repl.mem_base,
            repl.end(),
            repl.replayed,
            repl.retries
        )
    }

    /// Serves one `REPL …` line.  `admin_ok` says whether this session
    /// may exercise admin-grade side effects: the fencing bite of an
    /// epoch-announcing `HELLO` is as destructive as `PROMOTE` (it stops
    /// all writes on a primary, monotonically), so on a server that
    /// gates admin verbs it requires `AUTH` too.  The bare probe form
    /// and non-fencing announcements stay open.
    pub fn repl(&self, line: &str, admin_ok: bool) -> Vec<String> {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let sub = tokens.get(1).copied().unwrap_or("").to_ascii_uppercase();
        let mut repl = lock(&self.repl);
        match sub.as_str() {
            "HELLO" => {
                // `REPL HELLO [epoch=<e>] [compact=<t>|compact=off]` —
                // the bare form is the legacy probe; the announcements
                // drive the fencing and threshold-mismatch handshakes.
                let mut announced_epoch: Option<u64> = None;
                let mut announced_compact: Option<Option<u64>> = None;
                for token in &tokens[2..] {
                    if let Some(value) = token.strip_prefix("epoch=") {
                        match value.parse::<u64>() {
                            Ok(epoch) => announced_epoch = Some(epoch),
                            Err(_) => return vec![hello_usage()],
                        }
                    } else if let Some(value) = token.strip_prefix("compact=") {
                        match parse_compact_token(value) {
                            Some(threshold) => announced_compact = Some(threshold),
                            None => return vec![hello_usage()],
                        }
                    } else {
                        return vec![hello_usage()];
                    }
                }
                // A mismatched auto-compaction threshold diverges the
                // replicas after a promotion (DELETE ids depend on the
                // compaction points); refuse it before any state changes.
                if let Some(theirs) = announced_compact {
                    if theirs != repl.auto_compact {
                        return vec![format!(
                            "ERR REPL COMPACT MISMATCH ours={} yours={}",
                            threshold_value(repl.auto_compact),
                            threshold_value(theirs)
                        )];
                    }
                }
                // Epoch fencing: a strictly newer epoch announced to a
                // primary means a successor was promoted elsewhere — this
                // node is deposed and must refuse writes from now on.
                // The fence is monotone with no unfence path, so an
                // unauthenticated session must not be able to plant it.
                if let (Some(theirs), Role::Primary) = (announced_epoch, repl.role) {
                    if theirs > repl.epoch {
                        if !admin_ok {
                            return vec![format!(
                                "ERR DENIED REPL HELLO epoch={theirs} would fence this \
                                 primary and requires AUTH on this server"
                            )];
                        }
                        let already = repl.fenced.map_or(0, |epoch| epoch);
                        if theirs > already {
                            eprintln!(
                                "cdr-server: fenced at epoch {theirs} (ours {}); \
                                 refusing writes",
                                repl.epoch
                            );
                            repl.fenced = Some(theirs);
                        }
                    }
                }
                let fenced = match repl.fenced {
                    Some(epoch) => format!(" fenced={epoch}"),
                    None => String::new(),
                };
                vec![format!(
                    "OK REPL HELLO epoch={} base={} end={} snap={} role={} {}{fenced}",
                    repl.epoch,
                    repl.mem_base,
                    repl.end(),
                    repl.snapshot_offset,
                    repl.role.as_str(),
                    cdr_core::replog::compact_token(repl.auto_compact)
                )]
            }
            "SNAPSHOT" => {
                let chunks: Vec<&[u8]> = repl.snapshot_bytes.chunks(SNAPSHOT_CHUNK_BYTES).collect();
                let mut lines = Vec::with_capacity(chunks.len() + 1);
                lines.push(format!(
                    "OK REPL SNAPSHOT epoch={} offset={} bytes={} chunks={}",
                    repl.epoch,
                    repl.snapshot_offset,
                    repl.snapshot_bytes.len(),
                    chunks.len()
                ));
                for chunk in chunks {
                    lines.push(format!("REPL CHUNK {}", to_hex(chunk)));
                }
                lines
            }
            "FETCH" => {
                let (Some(Ok(from)), Some(Ok(max))) = (
                    tokens.get(2).map(|t| t.parse::<u64>()),
                    tokens.get(3).map(|t| t.parse::<u64>()),
                ) else {
                    return vec!["ERR REPL usage: REPL FETCH <from> <max>".to_string()];
                };
                if from < repl.mem_base {
                    return vec![format!(
                        "ERR REPL COMPACTED offset {from} predates base={}; re-bootstrap from REPL SNAPSHOT",
                        repl.mem_base
                    )];
                }
                if from > repl.end() {
                    return vec![format!(
                        "ERR REPL RANGE offset {from} is past end={}",
                        repl.end()
                    )];
                }
                let start = (from - repl.mem_base) as usize;
                let n = (repl.records.len() - start).min(max.min(MAX_FETCH_RECORDS) as usize);
                let mut lines = Vec::with_capacity(n + 1);
                lines.push(format!(
                    "OK REPL RECORDS n={} next={} end={}",
                    n,
                    from + n as u64,
                    repl.end()
                ));
                for payload in &repl.records[start..start + n] {
                    lines.push(format!(
                        "REPL RECORD {}",
                        to_hex(&wrap_checksummed(payload))
                    ));
                }
                lines
            }
            _ => vec![
                "ERR REPL usage: REPL HELLO | REPL SNAPSHOT | REPL FETCH <from> <max>".to_string(),
            ],
        }
    }

    /// `PROMOTE`: flips a follower into a primary at a new epoch.  The
    /// engine is not touched — no compaction, no generation bump — so the
    /// promoted node keeps serving exactly the state it replicated.
    ///
    /// A follower that is still behind the upstream's last observed log
    /// end refuses with a deterministic `ERR REPL BEHIND end=<e>
    /// upstream=<u>`: promoting it would silently drop the acknowledged
    /// suffix it had not yet fetched.  `force` overrides that refusal —
    /// the catch-up escape hatch for records the dead primary
    /// acknowledged but no follower ever fetched — and the reply then
    /// carries the accepted loss as `dropped=<n>`.
    pub fn promote(&self, force: bool) -> String {
        let _engine = wlock(&self.engine);
        let mut repl = lock(&self.repl);
        match repl.role {
            Role::Primary => format!("ERR REPL already primary at epoch={}", repl.epoch),
            Role::Follower => {
                let dropped = repl.upstream_end.saturating_sub(repl.end());
                if dropped > 0 && !force {
                    return format!(
                        "ERR REPL BEHIND end={} upstream={}",
                        repl.end(),
                        repl.upstream_end
                    );
                }
                repl.role = Role::Primary;
                repl.epoch += 1;
                repl.tail_client = None;
                repl.upstream = None;
                if dropped > 0 {
                    format!(
                        "OK PROMOTED epoch={} end={} dropped={dropped}",
                        repl.epoch,
                        repl.end()
                    )
                } else {
                    format!("OK PROMOTED epoch={} end={}", repl.epoch, repl.end())
                }
            }
        }
    }

    /// `RETARGET <host:port>`: points a surviving follower at the newly
    /// promoted primary.  The warm tailer connection is dropped, so the
    /// next tail iteration reconnects (and re-runs the HELLO handshake)
    /// against the new upstream; the record stream continues at the same
    /// logical offsets, because a promoted follower keeps the log it
    /// replicated.
    pub fn retarget(&self, upstream: &str) -> String {
        let mut repl = lock(&self.repl);
        match repl.role {
            Role::Primary => {
                "ERR REPL RETARGET on a primary; only a follower can change upstream".to_string()
            }
            Role::Follower => {
                repl.upstream = Some(upstream.to_string());
                repl.tail_client = None;
                format!("OK RETARGET {upstream}")
            }
        }
    }

    /// Panics while holding the engine write lock (the chaos hook).
    pub fn chaos_panic(&self) -> ! {
        let _guard = wlock(&self.engine);
        panic!("chaos: PANIC verb")
    }

    /// Counts one upstream failure and tells the pump to back off.
    fn tail_failed(&self) -> TailOutcome {
        lock(&self.repl).retries += 1;
        TailOutcome::Failed
    }

    /// One tailer iteration: fetch the next records from the upstream and
    /// apply them.  All network and decode failures degrade to
    /// [`TailOutcome::Failed`] (drop the connection, count the retry,
    /// back off) — a dead or hostile upstream must never panic the
    /// tailer.
    pub(crate) fn tail_once(&self) -> TailOutcome {
        let (client, from, upstream, epoch, auto_compact) = {
            let mut repl = lock(&self.repl);
            if repl.role == Role::Primary {
                return TailOutcome::Promoted;
            }
            let Some(upstream) = repl.upstream.clone() else {
                return TailOutcome::Promoted;
            };
            (
                repl.tail_client.take(),
                repl.end(),
                upstream,
                repl.epoch,
                repl.auto_compact,
            )
        };
        let mut client = match client {
            Some(client) => client,
            None => {
                // A fresh connection re-runs the HELLO handshake:
                // announce our epoch (fencing a stale revived primary on
                // the spot when it does not gate admin verbs; a gated one
                // answers `ERR DENIED`, which equally stops us tailing
                // it) and our compact threshold (so a mismatch is refused
                // here, not discovered as replay divergence), and refuse
                // to tail an upstream behind our own epoch.
                let Ok(mut client) = Client::connect(&upstream) else {
                    return self.tail_failed();
                };
                let Ok(hello) = client.send(&hello_request(epoch, Some(auto_compact))) else {
                    return self.tail_failed();
                };
                if !hello.starts_with("OK REPL HELLO") {
                    eprintln!("cdr-server: upstream {upstream} refused the handshake: {hello}");
                    return self.tail_failed();
                }
                if field_u64(&hello, "epoch=").is_some_and(|theirs| theirs < epoch) {
                    eprintln!("cdr-server: upstream {upstream} is stale ({hello}); not tailing it");
                    return self.tail_failed();
                }
                if let Some(end) = field_u64(&hello, "end=") {
                    let mut repl = lock(&self.repl);
                    repl.upstream_end = repl.upstream_end.max(end);
                }
                client
            }
        };
        // Network I/O happens with no lock held: reads keep flowing on
        // both nodes while records travel.
        let header = match client.send(&format!("REPL FETCH {from} {TAIL_FETCH_RECORDS}")) {
            Ok(header) => header,
            Err(_) => return self.tail_failed(),
        };
        if header.starts_with("ERR REPL COMPACTED") {
            return self.rebootstrap(client);
        }
        let Some(n) = field_u64(&header, "n=") else {
            return self.tail_failed();
        };
        let upstream_end = field_u64(&header, "end=");
        let mut payloads = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let line = match client.read_line() {
                Ok(line) => line,
                Err(_) => return self.tail_failed(),
            };
            let Some(hex) = line.strip_prefix("REPL RECORD ") else {
                return self.tail_failed();
            };
            let Ok(bytes) = from_hex(hex) else {
                return self.tail_failed();
            };
            let Ok(payload) = unwrap_checksummed(&bytes) else {
                return self.tail_failed();
            };
            payloads.push(payload.to_vec());
        }
        if payloads.is_empty() {
            // Caught up; keep the connection warm for the next poll.
            let mut repl = lock(&self.repl);
            if let Some(end) = upstream_end {
                repl.upstream_end = repl.upstream_end.max(end);
            }
            repl.tail_client = Some(client);
            return TailOutcome::Idle;
        }
        let mut engine = wlock(&self.engine);
        let mut repl = lock(&self.repl);
        if repl.role == Role::Primary {
            return TailOutcome::Promoted;
        }
        if let Some(end) = upstream_end {
            repl.upstream_end = repl.upstream_end.max(end);
        }
        if repl.end() != from {
            // The cursor moved under us (a re-bootstrap raced this fetch);
            // drop the stale records and re-read from the new cursor.
            repl.tail_client = Some(client);
            return TailOutcome::Idle;
        }
        let schema = engine.database().schema().clone();
        let mut progressed = false;
        for payload in payloads {
            let Ok(record) = LogRecord::decode(&payload, &schema) else {
                break;
            };
            if record.offset != repl.end() {
                break;
            }
            if let Err(e) = apply_record(&mut engine, &record) {
                // Divergence is an invariant violation the tests assert
                // never happens; freeze rather than serve wrong answers.
                eprintln!("cdr-server: follower stopped tailing: {e}");
                return TailOutcome::Idle;
            }
            repl.epoch = record.epoch;
            repl.records.push(payload);
            progressed = true;
        }
        repl.tail_client = Some(client);
        if progressed {
            TailOutcome::Progress
        } else {
            TailOutcome::Idle
        }
    }

    /// The tailer fell behind the upstream's snapshot horizon: fetch the
    /// current snapshot and restart the engine from it.
    fn rebootstrap(&self, mut client: Client) -> TailOutcome {
        let Ok((snapshot_bytes, snapshot)) = fetch_snapshot(&mut client) else {
            return self.tail_failed();
        };
        let Snapshot {
            epoch,
            offset,
            generation,
            rel_generations,
            db,
            keys,
        } = snapshot;
        let rebuilt = (self.tune)(RepairEngine::restore(db, keys, generation, rel_generations));
        let mut engine = wlock(&self.engine);
        let mut repl = lock(&self.repl);
        if repl.role == Role::Primary {
            return TailOutcome::Promoted;
        }
        *engine = rebuilt;
        repl.epoch = epoch;
        repl.snapshot_bytes = snapshot_bytes;
        repl.snapshot_offset = offset;
        repl.mem_base = offset;
        repl.records.clear();
        repl.tail_client = Some(client);
        TailOutcome::Progress
    }
}

/// Pulls and reassembles the upstream's snapshot: the raw bytes (served
/// verbatim to any downstream follower) plus the decoded image.
fn fetch_snapshot(client: &mut Client) -> Result<(Vec<u8>, Snapshot), ReplogError> {
    let header = client.send("REPL SNAPSHOT")?;
    let (Some(bytes), Some(chunks)) = (field_u64(&header, "bytes="), field_u64(&header, "chunks="))
    else {
        return Err(ReplogError::Diverged(format!(
            "upstream refused the snapshot: {header}"
        )));
    };
    let mut assembled = Vec::with_capacity(bytes as usize);
    for _ in 0..chunks {
        let line = client.read_line()?;
        let Some(hex) = line.strip_prefix("REPL CHUNK ") else {
            return Err(ReplogError::Diverged(format!(
                "expected a REPL CHUNK line, got: {line}"
            )));
        };
        assembled.extend_from_slice(&from_hex(hex)?);
    }
    if assembled.len() as u64 != bytes {
        return Err(ReplogError::Diverged(format!(
            "snapshot reassembled to {} bytes, header promised {bytes}",
            assembled.len()
        )));
    }
    let snapshot = Snapshot::decode(&assembled)?;
    Ok((assembled, snapshot))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdr_core::replog::read_log_payloads;
    use cdr_workloads::employee_example;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cdr-replication-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn seed() -> RepairEngine {
        let (db, keys) = employee_example();
        RepairEngine::new(db, keys)
    }

    #[test]
    fn a_fresh_primary_logs_then_applies_and_snapshots_at_compaction() {
        let dir = temp_dir("fresh");
        let backend = ReplicatedBackend::primary(seed(), &dir).unwrap();
        assert_eq!(backend.role(), Role::Primary);
        let db = backend.parse_database();
        let insert = |text: &str| Mutation::Insert(db.parse_fact(text).unwrap());
        let reply = backend.mutate(insert("Employee(9, 'Flux', 'Ops')"), None);
        assert!(reply.starts_with("OK INSERT id=4 "), "{reply}");
        let reply = backend.mutate(Mutation::Delete(cdr_repairdb::FactId::new(4)), None);
        assert!(reply.starts_with("OK DELETE id=4 "), "{reply}");
        // Two records on disk, none compacted away yet.
        assert_eq!(read_log_payloads(&dir.join(LOG_FILE)).unwrap().len(), 2);
        let stats = backend.stats();
        assert!(
            stats.ends_with("| repl role=primary epoch=0 base=0 end=2 replayed=0 retries=0"),
            "{stats}"
        );
        // Compaction logs its record, snapshots, truncates the disk log.
        let (outcome, _) = backend.compact().unwrap();
        assert_eq!(outcome.report.live_facts, 4);
        assert_eq!(read_log_payloads(&dir.join(LOG_FILE)).unwrap().len(), 0);
        let hello = &backend.repl("REPL HELLO", true)[0];
        assert_eq!(
            hello,
            "OK REPL HELLO epoch=0 base=0 end=3 snap=3 role=primary compact=off"
        );
        // In-memory records are retained across the snapshot for tailers.
        let fetched = backend.repl("REPL FETCH 0 64", true);
        assert!(
            fetched[0].starts_with("OK REPL RECORDS n=3 "),
            "{}",
            fetched[0]
        );
        assert_eq!(fetched.len(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_replays_only_the_post_snapshot_suffix() {
        let dir = temp_dir("recover");
        let db = {
            let backend = ReplicatedBackend::primary(seed(), &dir).unwrap();
            let db = backend.parse_database();
            let insert = |text: &str| Mutation::Insert(db.parse_fact(text).unwrap());
            backend.mutate(insert("Employee(7, 'Ada', 'IT')"), None);
            backend.compact().unwrap();
            backend.mutate(insert("Employee(8, 'Kim', 'HR')"), None);
            backend.mutate(insert("Employee(8, 'Kim, Jr.', 'HR')"), None);
            backend.read(|engine| (engine.database().clone(), engine.generation()))
        };
        // Cold restart over the same directory: the snapshot captured the
        // compaction point, so exactly the 2 post-snapshot inserts replay.
        let recovered = ReplicatedBackend::primary(seed(), &dir).unwrap();
        let stats = recovered.stats();
        assert!(
            stats.contains(" repl role=primary epoch=0 base=2 end=4 replayed=2"),
            "{stats}"
        );
        recovered.read(|engine| {
            assert_eq!(engine.database(), &db.0);
            assert_eq!(engine.generation(), db.1);
        });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repl_fetch_bounds_are_enforced() {
        let dir = temp_dir("bounds");
        let backend = ReplicatedBackend::primary(seed(), &dir).unwrap();
        assert!(backend.repl("REPL FETCH 5 4", true)[0].starts_with("ERR REPL RANGE "));
        assert!(backend.repl("REPL FETCH x 4", true)[0].starts_with("ERR REPL usage"));
        assert!(backend.repl("REPL NONSENSE", true)[0].starts_with("ERR REPL usage"));
        assert_eq!(
            backend.repl("REPL FETCH 0 10", true),
            vec!["OK REPL RECORDS n=0 next=0 end=0".to_string()]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn promote_on_a_primary_is_refused() {
        let dir = temp_dir("promote");
        let backend = ReplicatedBackend::primary(seed(), &dir).unwrap();
        assert_eq!(
            backend.promote(false),
            "ERR REPL already primary at epoch=0"
        );
        assert_eq!(
            backend.promote(true),
            "ERR REPL already primary at epoch=0",
            "FORCE never applies to a primary"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_newer_epoch_announced_over_hello_fences_the_primary() {
        let dir = temp_dir("fence");
        let backend = ReplicatedBackend::primary(seed(), &dir).unwrap();
        let db = backend.parse_database();
        let insert = |text: &str| Mutation::Insert(db.parse_fact(text).unwrap());

        // An equal (or lower) epoch never fences.
        let hello = &backend.repl("REPL HELLO epoch=0", true)[0];
        assert_eq!(
            hello,
            "OK REPL HELLO epoch=0 base=0 end=0 snap=0 role=primary compact=off"
        );
        assert!(backend
            .mutate(insert("Employee(9, 'Flux', 'Ops')"), None)
            .starts_with("OK INSERT "));

        // A strictly newer epoch deposes this primary: the reply carries
        // the fence, and every mutating verb refuses deterministically.
        let hello = &backend.repl("REPL HELLO epoch=3", true)[0];
        assert_eq!(
            hello,
            "OK REPL HELLO epoch=0 base=0 end=1 snap=0 role=primary compact=off fenced=3"
        );
        assert_eq!(
            backend.mutate(insert("Employee(9, 'Nope', 'Ops')"), None),
            "ERR FENCED epoch=3 INSERT refused; a newer primary was promoted"
        );
        assert_eq!(
            backend.mutate_batch(vec![insert("Employee(9, 'Nope', 'Ops')")], None),
            "ERR FENCED epoch=3 BATCH refused; a newer primary was promoted"
        );
        assert_eq!(
            backend.compact().unwrap_err(),
            "ERR FENCED epoch=3 COMPACT refused; a newer primary was promoted"
        );
        // Reads keep flowing, and the gauge surfaces the fence.
        let stats = backend.stats();
        assert!(stats.starts_with("OK STATS "), "{stats}");
        assert!(stats.ends_with(" retries=0 fenced=3"), "{stats}");
        // The fence is monotone: an older announcement cannot unfence.
        backend.repl("REPL HELLO epoch=1", true);
        assert!(backend.stats().ends_with(" fenced=3"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The fencing side effect is admin-grade: an unauthenticated
    /// session (`admin_ok = false`) cannot depose a primary, while the
    /// harmless probe forms stay open to it.
    #[test]
    fn fencing_over_hello_requires_admin_rights() {
        let dir = temp_dir("fence-auth");
        let backend = ReplicatedBackend::primary(seed(), &dir).unwrap();

        // Probes and non-fencing announcements never need auth.
        assert!(backend.repl("REPL HELLO", false)[0].starts_with("OK REPL HELLO "));
        assert!(backend.repl("REPL HELLO epoch=0", false)[0].starts_with("OK REPL HELLO "));

        // A fencing announcement without admin rights is refused and
        // leaves the primary untouched.
        assert_eq!(
            backend.repl("REPL HELLO epoch=3", false)[0],
            "ERR DENIED REPL HELLO epoch=3 would fence this primary and requires AUTH \
             on this server"
        );
        assert!(!backend.stats().contains("fenced="));
        let db = backend.parse_database();
        let insert = Mutation::Insert(db.parse_fact("Employee(9, 'Flux', 'Ops')").unwrap());
        assert!(backend.mutate(insert, None).starts_with("OK INSERT "));

        // The same announcement with admin rights fences.
        assert!(backend.repl("REPL HELLO epoch=3", true)[0].ends_with("fenced=3"));
        assert!(backend.stats().ends_with(" fenced=3"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_mismatched_compact_threshold_is_refused_at_hello() {
        let dir = temp_dir("mismatch");
        let backend = ReplicatedBackend::primary(seed(), &dir).unwrap();
        backend.set_auto_compact(Some(16));
        assert_eq!(
            backend.repl("REPL HELLO epoch=0 compact=off", true)[0],
            "ERR REPL COMPACT MISMATCH ours=16 yours=off"
        );
        assert_eq!(
            backend.repl("REPL HELLO epoch=0 compact=8", true)[0],
            "ERR REPL COMPACT MISMATCH ours=16 yours=8"
        );
        let hello = &backend.repl("REPL HELLO epoch=0 compact=16", true)[0];
        assert_eq!(
            hello,
            "OK REPL HELLO epoch=0 base=0 end=0 snap=0 role=primary compact=16"
        );
        // A refused handshake never fences: the epoch check runs after.
        assert_eq!(backend.repl("REPL HELLO epoch=9 compact=8", true).len(), 1);
        assert!(!backend.stats().contains("fenced="));
        // Malformed announcements draw the usage line.
        assert!(backend.repl("REPL HELLO epoch=x", true)[0].starts_with("ERR REPL usage"));
        assert!(backend.repl("REPL HELLO compact=soon", true)[0].starts_with("ERR REPL usage"));
        assert!(backend.repl("REPL HELLO nonsense", true)[0].starts_with("ERR REPL usage"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retarget_on_a_primary_is_refused() {
        let dir = temp_dir("retarget");
        let backend = ReplicatedBackend::primary(seed(), &dir).unwrap();
        assert_eq!(
            backend.retarget("127.0.0.1:1"),
            "ERR REPL RETARGET on a primary; only a follower can change upstream"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn the_served_snapshot_round_trips() {
        let dir = temp_dir("snapshot");
        let backend = ReplicatedBackend::primary(seed(), &dir).unwrap();
        let lines = backend.repl("REPL SNAPSHOT", true);
        let bytes = field_u64(&lines[0], "bytes=").unwrap();
        let mut assembled = Vec::new();
        for line in &lines[1..] {
            assembled
                .extend_from_slice(&from_hex(line.strip_prefix("REPL CHUNK ").unwrap()).unwrap());
        }
        assert_eq!(assembled.len() as u64, bytes);
        let snapshot = Snapshot::decode(&assembled).unwrap();
        backend.read(|engine| {
            assert_eq!(&snapshot.db, engine.database());
            assert_eq!(&snapshot.keys, engine.keys());
            assert_eq!(snapshot.generation, engine.generation());
        });
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
