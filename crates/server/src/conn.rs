//! Per-connection protocol decoding: the push-parser that turns raw
//! socket bytes into [`Command`]s, and the rate-limit token bucket.
//!
//! The reactor thread owns the sockets and feeds whatever bytes arrive
//! into a [`Decoder`]; complete commands queue for the worker pool.  The
//! decoder speaks two layers:
//!
//! - **Line mode** (the default): bytes accumulate until a newline;
//!   overlong lines are discarded up to their newline instead of being
//!   buffered without bound ([`Command::TooLong`]).
//! - **Bulk mode**: a `BULK <len>` header line switches the next `len`
//!   raw bytes into one binary frame ([`Command::Bulk`]), then returns
//!   to line mode.  A header whose length exceeds the configured frame
//!   cap (or does not parse at all) is rejected **at the header** —
//!   [`Command::BadFrame`] — without allocating for the advertised
//!   length and without leaving line mode.

use std::time::Instant;

/// A per-connection token bucket: `limit` tokens of capacity, refilled at
/// `limit` tokens per second.  Every chargeable command costs one token;
/// one arriving to an empty bucket is rejected with the deterministic
/// [`reply::RATE_LIMITED`](crate::reply::RATE_LIMITED) line instead of
/// being executed.
pub(crate) struct TokenBucket {
    capacity: f64,
    tokens: f64,
    refill_per_sec: f64,
    last: Instant,
}

impl TokenBucket {
    pub(crate) fn new(limit: u32) -> Self {
        let capacity = f64::from(limit.max(1));
        TokenBucket {
            capacity,
            tokens: capacity,
            refill_per_sec: capacity,
            last: Instant::now(),
        }
    }

    /// Tries to spend one token; `false` means the command is throttled.
    pub(crate) fn admit(&mut self) -> bool {
        let now = Instant::now();
        let elapsed = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + elapsed * self.refill_per_sec).min(self.capacity);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// One complete protocol unit, ready for a worker.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Command {
    /// A complete line (newline stripped, `\r\n` tolerated, lossy UTF-8).
    Line(String),
    /// A line longer than the configured cap was discarded up to its
    /// newline; the protocol continues at the next line.
    TooLong,
    /// The body of a `BULK <len>` frame, exactly `len` bytes.
    Bulk(Vec<u8>),
    /// A `BULK` header that was rejected before its body (oversize or
    /// malformed length).  The connection stays in line mode.
    BadFrame(String),
}

/// Accumulates socket bytes and hands out complete [`Command`]s.
pub(crate) struct Decoder {
    max_line_bytes: usize,
    max_frame_bytes: usize,
    pending: Vec<u8>,
    discarding: bool,
    /// `Some(len)`: inside a bulk frame, `len` body bytes expected.
    bulk_need: Option<usize>,
}

/// `Some(Ok(len))` for a well-formed `BULK <len>` header, `Some(Err(…))`
/// for a malformed one (the verb claims the whole line), `None` for any
/// other line.
fn parse_bulk_header(line: &str) -> Option<Result<usize, String>> {
    let mut tokens = line.split_whitespace();
    let verb = tokens.next()?;
    if !verb.eq_ignore_ascii_case("BULK") {
        return None;
    }
    let Some(operand) = tokens.next() else {
        return Some(Err("usage: BULK <len>".to_string()));
    };
    if tokens.next().is_some() {
        return Some(Err("usage: BULK <len>".to_string()));
    }
    match operand.parse::<usize>() {
        Ok(len) => Some(Ok(len)),
        Err(_) => Some(Err(format!("`{operand}` is not a frame length"))),
    }
}

impl Decoder {
    pub(crate) fn new(max_line_bytes: usize, max_frame_bytes: usize) -> Self {
        Decoder {
            max_line_bytes,
            max_frame_bytes,
            pending: Vec::new(),
            discarding: false,
            bulk_need: None,
        }
    }

    /// Feeds raw socket bytes.  While discarding an overlong line, bytes
    /// up to the next newline are dropped instead of buffered.
    pub(crate) fn push(&mut self, bytes: &[u8]) {
        if self.discarding && self.bulk_need.is_none() {
            if let Some(pos) = bytes.iter().position(|&b| b == b'\n') {
                self.pending.extend_from_slice(&bytes[pos..]);
            }
        } else {
            self.pending.extend_from_slice(bytes);
        }
    }

    /// Pulls the next complete command, if the buffered bytes hold one.
    pub(crate) fn next(&mut self) -> Option<Command> {
        loop {
            if let Some(need) = self.bulk_need {
                if self.pending.len() < need {
                    return None;
                }
                let frame: Vec<u8> = self.pending.drain(..need).collect();
                self.bulk_need = None;
                return Some(Command::Bulk(frame));
            }
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.pending.drain(..=pos).collect();
                line.pop();
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                if self.discarding || line.len() > self.max_line_bytes {
                    self.discarding = false;
                    return Some(Command::TooLong);
                }
                let text = String::from_utf8_lossy(&line).into_owned();
                match parse_bulk_header(&text) {
                    None => return Some(Command::Line(text)),
                    Some(Ok(len)) if len > self.max_frame_bytes => {
                        return Some(Command::BadFrame(format!(
                            "frame length {len} exceeds the {} byte cap; frame refused",
                            self.max_frame_bytes
                        )));
                    }
                    Some(Ok(len)) => {
                        self.bulk_need = Some(len);
                        continue;
                    }
                    Some(Err(why)) => return Some(Command::BadFrame(why)),
                }
            }
            if self.pending.len() > self.max_line_bytes {
                // Too much data without a newline: drop what we have and
                // skip ahead to the next line boundary.
                self.pending.clear();
                self.discarding = true;
            }
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(decoder: &mut Decoder) -> Vec<Command> {
        let mut out = Vec::new();
        while let Some(cmd) = decoder.next() {
            out.push(cmd);
        }
        out
    }

    fn lines_of(chunks: &[&[u8]], max: usize) -> Vec<Command> {
        let mut decoder = Decoder::new(max, 1024);
        let mut out = Vec::new();
        for chunk in chunks {
            decoder.push(chunk);
            out.append(&mut drain(&mut decoder));
        }
        out
    }

    #[test]
    fn split_writes_reassemble_into_lines() {
        let commands = lines_of(&[b"STA", b"TS\r\nCOUNT auto ", b"TRUE\nQ", b"UIT\n"], 1024);
        assert_eq!(
            commands,
            [
                Command::Line("STATS".to_string()),
                Command::Line("COUNT auto TRUE".to_string()),
                Command::Line("QUIT".to_string()),
            ]
        );
    }

    #[test]
    fn overlong_lines_are_discarded_not_buffered() {
        let noise = b"x".repeat(4096);
        let commands = lines_of(&[&noise, &noise, &noise, b"tail\nSTATS\n"], 1000);
        assert_eq!(
            commands,
            [Command::TooLong, Command::Line("STATS".to_string())]
        );
    }

    #[test]
    fn token_bucket_rejects_a_burst_beyond_capacity_then_refills() {
        let mut bucket = TokenBucket::new(3);
        assert!(bucket.admit());
        assert!(bucket.admit());
        assert!(bucket.admit());
        assert!(!bucket.admit(), "the burst capacity is exactly the limit");
        std::thread::sleep(std::time::Duration::from_millis(500));
        assert!(bucket.admit(), "tokens refill at the limit per second");
    }

    #[test]
    fn non_utf8_bytes_survive_lossily() {
        let commands = lines_of(&[&[0xFF, 0xFE, b'A', b'\n']], 1024);
        match &commands[0] {
            Command::Line(s) => assert!(s.ends_with('A')),
            other => panic!("lossy decoding still yields a line, got {other:?}"),
        }
    }

    #[test]
    fn a_bulk_header_switches_to_frame_mode_for_exactly_len_bytes() {
        let mut decoder = Decoder::new(1024, 1024);
        decoder.push(b"STATS\nBULK 5\nab");
        assert_eq!(decoder.next(), Some(Command::Line("STATS".to_string())));
        assert_eq!(decoder.next(), None, "frame body incomplete");
        decoder.push(b"\ncd"); // a newline inside the frame is data
        assert_eq!(decoder.next(), Some(Command::Bulk(b"ab\ncd".to_vec())));
        decoder.push(b"QUIT\n");
        assert_eq!(decoder.next(), Some(Command::Line("QUIT".to_string())));
    }

    #[test]
    fn an_oversize_frame_header_is_refused_without_allocating() {
        let mut decoder = Decoder::new(1024, 1024);
        decoder.push(b"BULK 99999999\nSTATS\n");
        match decoder.next() {
            Some(Command::BadFrame(why)) => {
                assert!(why.contains("99999999"), "{why}");
            }
            other => panic!("expected BadFrame, got {other:?}"),
        }
        assert_eq!(
            decoder.next(),
            Some(Command::Line("STATS".to_string())),
            "the connection stays in line mode"
        );
        assert!(
            decoder.pending.capacity() < 4096,
            "no allocation for the lie"
        );
    }

    #[test]
    fn malformed_bulk_headers_claim_the_verb() {
        for header in ["BULK\n", "BULK ten\n", "BULK 5 extra\n", "bulk -1\n"] {
            let mut decoder = Decoder::new(1024, 1024);
            decoder.push(header.as_bytes());
            assert!(
                matches!(decoder.next(), Some(Command::BadFrame(_))),
                "{header:?} must not fall through to the line path"
            );
        }
        // Case-insensitive like every other verb.
        let mut decoder = Decoder::new(1024, 1024);
        decoder.push(b"bulk 2\nhi");
        assert_eq!(decoder.next(), Some(Command::Bulk(b"hi".to_vec())));
    }

    #[test]
    fn a_zero_length_frame_is_a_frame() {
        let mut decoder = Decoder::new(1024, 1024);
        decoder.push(b"BULK 0\nSTATS\n");
        assert_eq!(decoder.next(), Some(Command::Bulk(Vec::new())));
        assert_eq!(decoder.next(), Some(Command::Line("STATS".to_string())));
    }
}
